"""FIG3 -- Figure 3: the nonzero pattern of the transition probability matrix.

The paper displays the TPM's sparsity pattern to show "the compositional
structure of the problem" and reports matrix-formation times in its
annotation lines.  This benchmark times the vectorized assembly and prints
the structural statistics of the pattern: block structure along the phase
axis, bandwidth, and fill.

Shape claims checked:
* the matrix is extremely sparse (structured, not random);
* most transitions stay within one (data, counter) phase block's
  neighbourhood, reflecting the compositional Kronecker-like structure;
* assembly scales to hundreds of thousands of states in seconds.
"""

import pytest

from repro.core.reporting import format_record


class TestFig3Structure:
    def test_bench_matrix_formation(self, benchmark, fig_spec):
        spec = fig_spec()
        model = benchmark.pedantic(spec.build_model, rounds=3, iterations=1)
        report = model.structure_report()
        print("\n[FIG3] TPM structure report (baseline spec)")
        print(format_record(report))
        benchmark.extra_info.update(report)

        assert report["density"] < 0.01
        assert 1.0 < report["nnz_per_row"] < 200.0

    def test_bench_matrix_formation_large(self, benchmark, fig_spec):
        spec = fig_spec(n_phase_points=1024, counter_length=16)
        model = benchmark.pedantic(spec.build_model, rounds=1, iterations=1)
        report = model.structure_report()
        print("\n[FIG3] TPM structure report (large spec, "
              f"{int(report['n_states'])} states)")
        print(format_record(report))
        # "This representation makes it possible to manipulate and store P
        # even when the total state space is very large": assembly of a
        # ~1e5-state model must take seconds, not minutes.
        assert report["n_states"] >= 90_000
        assert report["form_time_s"] < 60.0
        assert report["density"] < 1e-3

    def test_block_structure_dominates(self, fig_spec):
        model = fig_spec().build_model()
        report = model.structure_report()
        # NULL decisions preserve the counter coordinate, so a visible
        # fraction of the pattern lies in counter-diagonal blocks...
        assert report["fraction_counter_preserving"] > 0.05
        # ...and phase moves are tightly banded: at most G plus the
        # largest n_r atom, never an arbitrary jump.
        max_expected = model.phase_step_units + int(
            abs(model.nr_steps.values).max()
        )
        assert report["max_phase_move_steps"] <= max_expected
