"""EXT-SJ -- extension experiment: sinusoidal-jitter frequency response.

The paper handles sinusoidal jitter with a white-noise shortcut ("one can
even mimic deterministic sinusoidally varying jitter by assigning the
amplitude distribution of n_r appropriately").  The Markov-modulated
drift extension models the sinusoid as a hidden rotating state, capturing
the loop's *tracking* of slow jitter that the shortcut ignores.

Shape claims checked:

* BER grows with the sinusoid's frequency at fixed amplitude (the loop
  tracks slow jitter, not fast jitter);
* in the high-frequency limit the hidden-state model converges to the
  white-noise amplitude-distribution approximation -- i.e. the paper's
  shortcut is recovered exactly in its regime of validity;
* at low frequency the hidden-state BER is far below the shortcut's
  (the shortcut is pessimistic there).
"""

import pytest

from repro.cdr import (
    PhaseGrid,
    build_cdr_chain,
    build_modulated_cdr_chain,
    sinusoidal_drift_source,
)
from repro.core import format_table
from repro.core.measures import bit_error_rate
from repro.markov import solve_direct
from repro.noise import DiscreteDistribution, eye_opening_noise, sinusoidal_jitter

AMPLITUDE = 0.12
PERIODS = [128, 32, 8, 4]


def common_params():
    grid = PhaseGrid(32)
    return dict(
        grid=grid,
        nw=eye_opening_noise(0.06, n_atoms=7),
        nr=DiscreteDistribution(
            [-grid.step, 0.0, grid.step], [0.25, 0.5, 0.25]
        ),
        counter_length=2,
        phase_step_units=2,
        max_run_length=2,
    )


def modulated_ber(period):
    params = common_params()
    sj = sinusoidal_drift_source("sj", AMPLITUDE, period)
    model = build_modulated_cdr_chain(drift_source=sj, **params)
    eta = solve_direct(model.chain.P).distribution
    return bit_error_rate(model, eta)


@pytest.fixture(scope="module")
def frequency_sweep():
    return {period: modulated_ber(period) for period in PERIODS}


@pytest.fixture(scope="module")
def white_noise_ber():
    params = common_params()
    params["nw"] = params["nw"].convolve(sinusoidal_jitter(AMPLITUDE, n_atoms=9))
    model = build_cdr_chain(**params)
    eta = solve_direct(model.chain.P).distribution
    return bit_error_rate(model, eta)


class TestSinusoidalJitterResponse:
    def test_bench_modulated_point(self, benchmark):
        ber = benchmark.pedantic(lambda: modulated_ber(16), rounds=1, iterations=1)
        benchmark.extra_info["ber"] = ber

    def test_report(self, frequency_sweep, white_noise_ber):
        rows = [
            {"SJ_period": p, "ber": frequency_sweep[p]} for p in PERIODS
        ]
        rows.append({"SJ_period": "white-noise approx", "ber": white_noise_ber})
        print("\n[EXT-SJ] sinusoidal-jitter frequency response "
              f"(amplitude {AMPLITUDE} UI)")
        print(format_table(rows))

    def test_ber_grows_with_frequency(self, frequency_sweep):
        bers = [frequency_sweep[p] for p in PERIODS]  # descending period
        assert bers[0] < bers[1] < bers[3]

    def test_high_frequency_matches_white_noise_shortcut(
        self, frequency_sweep, white_noise_ber
    ):
        ratio = frequency_sweep[8] / white_noise_ber
        assert 1.0 / 3.0 < ratio < 3.0

    def test_low_frequency_beats_shortcut(self, frequency_sweep, white_noise_ber):
        assert frequency_sweep[128] < white_noise_ber / 10.0
