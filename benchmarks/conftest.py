"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper artifact
reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see them)
and asserts the paper's *shape* claims, since the authors' exact SONET
noise tables did not survive into the available text.
"""

import warnings

import pytest

from repro import CDRSpec


def _fig_spec(**overrides):
    """The baseline design point used across the figure benchmarks."""
    params = dict(
        n_phase_points=128,
        n_clock_phases=16,
        counter_length=8,
        transition_density=0.5,
        max_run_length=3,
        nw_std=0.02,
        nw_atoms=11,
        nr_max=0.008,
        nr_mean=0.002,
    )
    params.update(overrides)
    return CDRSpec(**params)


@pytest.fixture
def fig_spec():
    return _fig_spec


@pytest.fixture(autouse=True)
def _quiet_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield
