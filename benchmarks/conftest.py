"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper artifact
reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see them)
and asserts the paper's *shape* claims, since the authors' exact SONET
noise tables did not survive into the available text.

Observability: every benchmark test runs under its own
:class:`repro.obs.Tracer`, so library spans (``cdr.build_tpm``,
``markov.solve``, ...) are recorded per test.  Set ``REPRO_TRACE_DIR`` to
a directory (created on demand, nested paths included) to export one
``repro.run-trace/1`` manifest per test alongside the solver traces that
``bench_solver_comparison`` writes there.
"""

import os
import re
import warnings

import pytest

from repro import CDRSpec
from repro import obs


def _fig_spec(**overrides):
    """The baseline design point used across the figure benchmarks."""
    params = dict(
        n_phase_points=128,
        n_clock_phases=16,
        counter_length=8,
        transition_density=0.5,
        max_run_length=3,
        nw_std=0.02,
        nw_atoms=11,
        nr_max=0.008,
        nr_mean=0.002,
    )
    params.update(overrides)
    return CDRSpec(**params)


@pytest.fixture
def fig_spec():
    return _fig_spec


def trace_export_dir():
    """The ``REPRO_TRACE_DIR`` export directory, created on demand.

    Returns None when the env var is unset (benchmarks stay side-effect
    free by default).  Nested paths are created with all intermediate
    directories.
    """
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if not trace_dir:
        return None
    os.makedirs(trace_dir, exist_ok=True)
    return trace_dir


def _slug(name):
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-")


@pytest.fixture(autouse=True)
def bench_tracer(request):
    """Per-test tracer; exports a run manifest when REPRO_TRACE_DIR is set."""
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        yield tracer
    trace_dir = trace_export_dir()
    if trace_dir and tracer.roots:
        manifest = obs.build_run_manifest(kind="benchmark", tracer=tracer)
        path = os.path.join(trace_dir, f"{_slug(request.node.name)}.run.json")
        obs.write_run_manifest(path, manifest)


@pytest.fixture(autouse=True)
def _quiet_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield
