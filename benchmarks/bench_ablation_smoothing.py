"""ABL-SMOOTH -- ablation of the Gauss-Jacobi smoothing interleave.

"In our current implementation, the lumping and expanding steps are
interleaved with simple Gauss-Jacobi iterations."  This ablation sweeps
the number of smoothing sweeps per V-cycle on a stiff CDR chain.

Shape claims checked:

* V-cycle count decreases monotonically (within tolerance) as smoothing
  increases -- the coarse correction alone cannot converge (the library
  enforces at least one sweep for exactly that reason);
* heavy smoothing trades more work per cycle for far fewer cycles; the
  total sweep count (cycles x sweeps) stays within a small factor, so
  smoothing is a genuine knob rather than wasted work.
"""

import pytest

from repro import CDRSpec
from repro.core import format_table
from repro.markov import MultigridOptions, solve_multigrid

TOL = 1e-9
SWEEPS = [1, 2, 4, 8, 16]


@pytest.fixture(scope="module")
def model():
    return CDRSpec(
        n_phase_points=256,
        n_clock_phases=16,
        counter_length=16,
        max_run_length=2,
        nw_std=0.01,
        nw_atoms=9,
        nr_max=0.002,
        nr_mean=0.0005,
    ).build_model()


def run(model, nu):
    return solve_multigrid(
        model.chain.P, strategy=model.multigrid_strategy(),
        tol=TOL, nu_pre=nu, nu_post=nu, max_cycles=1_000,
    )


@pytest.fixture(scope="module")
def sweep_results(model):
    return {nu: run(model, nu) for nu in SWEEPS}


class TestSmoothingAblation:
    def test_bench_nu1(self, benchmark, model):
        res = benchmark.pedantic(lambda: run(model, 1), rounds=1, iterations=1)
        benchmark.extra_info["cycles"] = res.iterations

    def test_bench_nu8(self, benchmark, model):
        res = benchmark.pedantic(lambda: run(model, 8), rounds=1, iterations=1)
        benchmark.extra_info["cycles"] = res.iterations

    def test_zero_smoothing_rejected(self):
        # The coarse correction alone cannot converge; the options object
        # encodes that as a hard error.
        with pytest.raises(ValueError, match="smoothing"):
            MultigridOptions(nu_pre=0, nu_post=0)

    def test_ablation_table(self, sweep_results):
        rows = []
        for nu, res in sweep_results.items():
            rows.append(
                {
                    "sweeps_per_side": nu,
                    "cycles": res.iterations,
                    "total_sweeps": 2 * nu * res.iterations,
                    "time_s": res.solve_time,
                    "converged": res.converged,
                }
            )
        print("\n[ABL-SMOOTH] smoothing-sweep ablation")
        print(format_table(rows))
        for res in sweep_results.values():
            assert res.converged

    def test_more_smoothing_fewer_cycles(self, sweep_results):
        cycles = [sweep_results[nu].iterations for nu in SWEEPS]
        assert cycles[-1] < cycles[0]
        # roughly monotone: each doubling should not increase cycles
        for a, b in zip(cycles, cycles[1:]):
            assert b <= a + 2

    def test_total_work_bounded(self, sweep_results):
        totals = [2 * nu * sweep_results[nu].iterations for nu in SWEEPS]
        assert max(totals) < 20 * min(totals)

    def test_w_cycle_vs_v_cycle(self, model):
        """W-cycles double the coarse corrections per cycle; they must not
        need more cycles than V-cycles and both must agree."""
        import numpy as np

        v = solve_multigrid(
            model.chain.P, strategy=model.multigrid_strategy(),
            tol=TOL, nu_pre=4, nu_post=4, max_cycles=1_000, cycle_type="V",
        )
        w = solve_multigrid(
            model.chain.P, strategy=model.multigrid_strategy(),
            tol=TOL, nu_pre=4, nu_post=4, max_cycles=1_000, cycle_type="W",
        )
        print(f"\n[ABL-SMOOTH] V-cycle: {v.iterations} cycles "
              f"({v.solve_time:.2f}s); W-cycle: {w.iterations} cycles "
              f"({w.solve_time:.2f}s)")
        assert v.converged and w.converged
        assert w.iterations <= v.iterations
        assert np.abs(v.distribution - w.distribution).sum() < 1e-6
