"""FIG5 -- Figure 5: effect of the loop-filter counter length on BER.

"We study the effect of the counter overflow length on the BER
performance, all noise levels being held constant ... We observe that the
best BER performance is obtained when counter length is set to 8 ...  When
the length is set [small] the loop has high bandwidth.  The system tends
to follow the dominant noise source, n_w, and as a consequence detection
errors occur.  When the length is set [large], the effect of the noise
source n_r becomes predominant: the loop response becomes too slow to
follow the drift caused by n_r and, again, bit errors occur ... there is
an optimal counter length for given levels of noise."

The exact SONET noise tables of the paper are lost; with our parametric
tables the optimum lands at a different (but interior) counter length.
The asserted shape claims:

* BER is U-shaped in counter length: an interior length beats both the
  shortest and the longest swept lengths;
* the long-counter penalty is driven by n_r (slip rate explodes);
* the short-counter penalty is driven by n_w (phase dither tracks it).
"""

import pytest

from repro import CDRSpec, sweep_counter_length
from repro.core import format_table

LENGTHS = [1, 2, 4, 8, 16, 32]


def fig5_spec():
    # A coarse phase-select step (8 phases) makes bang-bang dither expensive
    # for high-bandwidth loops; the drift punishes slow ones.
    return CDRSpec(
        n_phase_points=64,
        n_clock_phases=8,
        transition_density=0.5,
        max_run_length=2,
        nw_std=0.1,
        nw_atoms=11,
        nr_max=0.016,
        nr_mean=0.008,
    )


@pytest.fixture(scope="module")
def sweep_records():
    return sweep_counter_length(fig5_spec(), LENGTHS, solver="direct")


class TestFig5:
    def test_bench_counter_sweep(self, benchmark):
        records = benchmark.pedantic(
            lambda: sweep_counter_length(fig5_spec(), LENGTHS, solver="direct"),
            rounds=1,
            iterations=1,
        )
        print("\n[FIG5] BER vs counter length")
        print(format_table(
            records,
            columns=["counter_length", "ber", "slip_rate", "phase_rms",
                     "n_states", "solve_time_s"],
        ))
        best = min(records, key=lambda r: r["ber"])
        print(f"optimal counter length: {best['counter_length']} "
              f"(paper's example: 8 for its noise tables)")
        for rec in records:
            print(f"  length {rec['counter_length']:>2}: "
                  f"{rec['ber'] / best['ber']:8.2f}x the optimal BER")

    def test_interior_optimum(self, sweep_records):
        bers = [r["ber"] for r in sweep_records]
        best_idx = bers.index(min(bers))
        assert 0 < best_idx < len(bers) - 1, (
            "optimal counter length must be interior (U-shape)"
        )
        # Both penalties are material, as in the paper (4.5x / 10x there).
        assert bers[0] > 2.0 * bers[best_idx]
        assert bers[-1] > 2.0 * bers[best_idx]

    def test_long_counter_penalty_is_drift_driven(self, sweep_records):
        best = min(sweep_records, key=lambda r: r["ber"])
        longest = sweep_records[-1]
        # "the loop response becomes too slow to follow the drift caused
        # by n_r": cycle slips explode for the longest counter.
        assert longest["slip_rate"] > 100.0 * max(best["slip_rate"], 1e-300)

    def test_short_counter_penalty_is_nw_driven(self):
        """With the drift removed entirely, the short-counter penalty
        remains (it is caused by n_w dither), while the long-counter
        penalty disappears."""
        spec = fig5_spec().replace(nr_mean=0.0, nr_max=1e-4)
        records = sweep_counter_length(spec, [1, 8, 32], solver="direct")
        bers = [r["ber"] for r in records]
        assert bers[0] > bers[1]        # short still pays the dither tax
        assert bers[2] <= bers[1] * 10  # long no longer catastrophic
