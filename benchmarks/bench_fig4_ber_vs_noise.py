"""FIG4 -- Figure 4: stationary phase-error density and BER vs. noise level.

The paper's Figure 4 shows two runs of the analysis: with the nominal eye
jitter the "noise levels are so small that the CDR system has negligible
BER"; with the standard deviation of ``n_w`` increased 10x "the BER
increases to [a large value]".  Each plot is annotated with
``COUNTER / STDnw / MAXnr / BER`` and ``Size / Iter / Matrixformtime /
Solvetime`` lines.

This benchmark reproduces both design points end to end, prints the same
annotation lines plus the two densities, and asserts the shape claims:

* the nominal-noise BER is "negligible" (many orders below spec);
* the 10x-noise BER is larger by several orders of magnitude;
* both densities integrate to one and the noisy density is the convolved
  (wider) version of the phase-error density.
"""

import numpy as np
import pytest

from repro import analyze_cdr
from repro.core import format_pdf_ascii


def run_point(spec, solver="multigrid"):
    return analyze_cdr(spec, solver=solver, tol=1e-10)


class TestFig4:
    def test_bench_nominal_noise(self, benchmark, fig_spec):
        spec = fig_spec()  # STDnw = 0.02
        analysis = benchmark.pedantic(
            lambda: run_point(spec), rounds=1, iterations=1
        )
        print("\n[FIG4-top] nominal noise")
        values, probs = analysis.phase_error_pdf()
        print(format_pdf_ascii(values, probs, title="phase error PDF"))
        print(analysis.report())
        benchmark.extra_info["ber"] = analysis.ber
        # "the noise levels are so small that the CDR system has
        # negligible BER"
        assert analysis.ber < 1e-12

    def test_bench_10x_noise(self, benchmark, fig_spec):
        spec = fig_spec(nw_std=0.2)  # 10x STDnw
        analysis = benchmark.pedantic(
            lambda: run_point(spec), rounds=1, iterations=1
        )
        print("\n[FIG4-bottom] 10x eye-opening noise")
        values, probs = analysis.phase_error_pdf()
        print(format_pdf_ascii(values, probs, title="phase error PDF"))
        svalues, sprobs = analysis.sampled_phase_pdf()
        print(format_pdf_ascii(svalues, sprobs, title="Phi + n_w PDF"))
        print(analysis.report())
        benchmark.extra_info["ber"] = analysis.ber
        assert analysis.ber > 1e-7

    def test_noise_ratio_shape(self, fig_spec):
        quiet = run_point(fig_spec(), solver="direct")
        loud = run_point(fig_spec(nw_std=0.2), solver="direct")
        print("\n[FIG4] BER(10x STDnw) / BER(1x STDnw) = "
              f"{loud.ber / max(quiet.ber, 1e-300):.3e}")
        # "When the standard deviation ... is increased [10] times, the
        # BER increases to [a large value]": many orders of magnitude.
        assert loud.ber > quiet.ber * 1e6

    def test_densities_consistent(self, fig_spec):
        analysis = run_point(fig_spec(nw_std=0.2), solver="direct")
        values, probs = analysis.phase_error_pdf()
        svalues, sprobs = analysis.sampled_phase_pdf()
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert sprobs.sum() == pytest.approx(1.0, abs=1e-9)
        var_phi = np.dot(values**2, probs) - np.dot(values, probs) ** 2
        var_s = np.dot(svalues**2, sprobs) - np.dot(svalues, sprobs) ** 2
        assert var_s > var_phi  # convolution widens
