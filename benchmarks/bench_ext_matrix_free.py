"""EXT-OP -- extension experiment: matrix-free vs. assembled operator.

The paper: "For now, we use explicit sparse storage ... For solving more
complex models, we are looking into using hierarchical generalized
Kronecker-algebra ... representations."  The matrix-free
:class:`repro.cdr.operator.CDRTransitionOperator` realizes that direction
for this model class.

Shape claims checked:

* the operator's state is a *constant-size* term list (independent of the
  phase-grid resolution), versus the assembled matrix's O(n) nonzeros;
* matrix-free and assembled applications agree to machine precision;
* both application costs scale linearly, so the matrix-free route trades
  no asymptotic time for its O(1) descriptor memory.

The end-to-end sweep (``TestEndToEndSolve``) additionally runs the full
BER pipeline -- spec -> backend registry -> multigrid -> measures -- once
per (backend, grid size) pair in a *fresh subprocess*, so ``ru_maxrss``
is a faithful per-configuration peak.  (The committed ``BENCH_ext_op.json``
timing artifact is owned by the registered benchmark harness --
``python -m repro bench run --suite ext-op`` -- not by this file.)
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cdr import CDRTransitionOperator, PhaseGrid, build_cdr_chain
from repro.core import format_table
from repro.noise import DiscreteDistribution, eye_opening_noise


def params(M):
    grid = PhaseGrid(M)
    return dict(
        grid=grid,
        nw=eye_opening_noise(0.04, n_atoms=9),
        nr=DiscreteDistribution(
            [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
        ),
        counter_length=8,
        phase_step_units=max(1, M // 16),
        max_run_length=2,
    )


@pytest.fixture(scope="module")
def size_sweep():
    rows = []
    for M in (128, 512, 2048):
        p = params(M)
        model = build_cdr_chain(**p)
        op = CDRTransitionOperator(**p)
        x = np.full(op.n, 1.0 / op.n)
        # agreement check rides along
        agree = float(np.abs(op.rmatvec(x) - model.chain.P.T.dot(x)).max())
        rows.append(
            {
                "M": M,
                "n_states": op.n,
                "assembled_nnz": model.chain.nnz,
                "operator_terms": len(op._terms),
                "max_abs_diff": agree,
            }
        )
    return rows


class TestMatrixFreeOperator:
    def test_bench_matrix_free_apply(self, benchmark):
        p = params(1024)
        op = CDRTransitionOperator(**p)
        x = np.full(op.n, 1.0 / op.n)
        benchmark(op.rmatvec, x)

    def test_bench_assembled_apply(self, benchmark):
        p = params(1024)
        model = build_cdr_chain(**p)
        PT = model.chain.P.T.tocsr()
        x = np.full(model.n_states, 1.0 / model.n_states)
        benchmark(PT.dot, x)

    def test_descriptor_size_constant_in_grid(self, size_sweep):
        print("\n[EXT-OP] matrix-free descriptor vs assembled matrix")
        print(format_table(size_sweep))
        terms = [r["operator_terms"] for r in size_sweep]
        assert terms[0] == terms[1] == terms[2]
        nnz = [r["assembled_nnz"] for r in size_sweep]
        assert nnz[2] > 10 * nnz[0]

    def test_agreement_at_all_sizes(self, size_sweep):
        for row in size_sweep:
            assert row["max_abs_diff"] < 1e-13, row


_CHILD = """\
import json, resource, sys, time
from repro.core.analyzer import analyze_cdr
from repro.core.spec import CDRSpec

backend, M = sys.argv[1], int(sys.argv[2])
spec = CDRSpec(n_phase_points=M, n_clock_phases=16, counter_length=8,
               max_run_length=2, nw_std=0.1, nw_atoms=9)
t0 = time.perf_counter()
res = analyze_cdr(spec, backend=backend, solver="multigrid", tol=1e-10)
wall = time.perf_counter() - t0
rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform != "darwin":
    rss *= 1024  # kibibytes on Linux
print(json.dumps({
    "backend": backend,
    "M": M,
    "n_states": res.n_states,
    "wall_s": round(wall, 3),
    "peak_rss_mb": round(rss / 1e6, 1),
    "ber": res.ber,
    "iterations": res.solver_result.iterations,
    "converged": res.solver_result.converged,
}))
"""


def _run_child(backend, M):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, backend, str(M)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout)


@pytest.fixture(scope="module")
def solve_sweep():
    rows = []
    for M in (128, 512, 2048):
        for backend in ("assembled", "matrix-free"):
            rows.append(_run_child(backend, M))
    return rows


class TestEndToEndSolve:
    """[EXT-OP] assembled vs matrix-free multigrid, end to end."""

    def test_bench_end_to_end_sweep(self, solve_sweep):
        print("\n[EXT-OP] assembled vs matrix-free multigrid (per-process)")
        print(format_table(solve_sweep))
        for row in solve_sweep:
            assert row["converged"], row

    def test_backends_agree_at_every_size(self, solve_sweep):
        by_m = {}
        for row in solve_sweep:
            by_m.setdefault(row["M"], {})[row["backend"]] = row
        for M, pair in by_m.items():
            a, mf = pair["assembled"], pair["matrix-free"]
            assert abs(mf["ber"] - a["ber"]) <= 1e-6 * a["ber"], M

    def test_matrix_free_memory_no_worse_at_scale(self, solve_sweep):
        at_largest = {
            r["backend"]: r for r in solve_sweep if r["M"] == 2048
        }
        # The matrix-free run never assembles the fine TPM; allow noise
        # from allocator behaviour but its peak must not exceed the
        # assembled run's by more than 10%.
        assert (
            at_largest["matrix-free"]["peak_rss_mb"]
            <= 1.1 * at_largest["assembled"]["peak_rss_mb"]
        ), at_largest
