"""EXT-OP -- extension experiment: matrix-free vs. assembled operator.

The paper: "For now, we use explicit sparse storage ... For solving more
complex models, we are looking into using hierarchical generalized
Kronecker-algebra ... representations."  The matrix-free
:class:`repro.cdr.operator.CDRTransitionOperator` realizes that direction
for this model class.

Shape claims checked:

* the operator's state is a *constant-size* term list (independent of the
  phase-grid resolution), versus the assembled matrix's O(n) nonzeros;
* matrix-free and assembled applications agree to machine precision;
* both application costs scale linearly, so the matrix-free route trades
  no asymptotic time for its O(1) descriptor memory.
"""

import numpy as np
import pytest

from repro.cdr import CDRTransitionOperator, PhaseGrid, build_cdr_chain
from repro.core import format_table
from repro.noise import DiscreteDistribution, eye_opening_noise


def params(M):
    grid = PhaseGrid(M)
    return dict(
        grid=grid,
        nw=eye_opening_noise(0.04, n_atoms=9),
        nr=DiscreteDistribution(
            [-grid.step, 0.0, grid.step], [0.2, 0.5, 0.3]
        ),
        counter_length=8,
        phase_step_units=max(1, M // 16),
        max_run_length=2,
    )


@pytest.fixture(scope="module")
def size_sweep():
    rows = []
    for M in (128, 512, 2048):
        p = params(M)
        model = build_cdr_chain(**p)
        op = CDRTransitionOperator(**p)
        x = np.full(op.n, 1.0 / op.n)
        # agreement check rides along
        agree = float(np.abs(op.rmatvec(x) - model.chain.P.T.dot(x)).max())
        rows.append(
            {
                "M": M,
                "n_states": op.n,
                "assembled_nnz": model.chain.nnz,
                "operator_terms": len(op._terms),
                "max_abs_diff": agree,
            }
        )
    return rows


class TestMatrixFreeOperator:
    def test_bench_matrix_free_apply(self, benchmark):
        p = params(1024)
        op = CDRTransitionOperator(**p)
        x = np.full(op.n, 1.0 / op.n)
        benchmark(op.rmatvec, x)

    def test_bench_assembled_apply(self, benchmark):
        p = params(1024)
        model = build_cdr_chain(**p)
        PT = model.chain.P.T.tocsr()
        x = np.full(model.n_states, 1.0 / model.n_states)
        benchmark(PT.dot, x)

    def test_descriptor_size_constant_in_grid(self, size_sweep):
        print("\n[EXT-OP] matrix-free descriptor vs assembled matrix")
        print(format_table(size_sweep))
        terms = [r["operator_terms"] for r in size_sweep]
        assert terms[0] == terms[1] == terms[2]
        nnz = [r["assembled_nnz"] for r in size_sweep]
        assert nnz[2] > 10 * nnz[0]

    def test_agreement_at_all_sizes(self, size_sweep):
        for row in size_sweep:
            assert row["max_abs_diff"] < 1e-13, row
