"""TAB-MC -- the infeasibility-of-simulation claim (paper introduction).

"For SONET/SDH applications it is not uncommon to have BER requirements in
the order of [1e-10+].  Such specifications are practically impossible to
verify through straightforward simulation because of the extremely long
sequence that would need to be simulated in order to get meaningful error
statistics."

This benchmark:

1. validates the analysis against Monte-Carlo at a simulation-accessible
   BER (the two must agree within the MC confidence interval);
2. times both approaches at that design point;
3. prints the extrapolated simulation cost down to 1e-12 BER, versus the
   (flat) analysis cost.

Shape claims checked:

* MC and analysis agree where MC is feasible;
* required MC symbols scale as 1/BER, so the cost ratio
  analysis/simulation diverges as the BER spec tightens;
* at 1e-10 the extrapolated MC time exceeds the analysis time by > 1e6x.
"""

import numpy as np
import pytest

from repro import CDRSpec, analyze_cdr
from repro.cdr import required_symbols_for_ber, simulate_cdr
from repro.core import format_table


def mc_spec():
    return CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=3,
        nw_std=0.17,
        nw_atoms=11,
        nr_max=0.03,
        nr_mean=0.008,
    )


def run_mc(spec, n_symbols, seed=11):
    rng = np.random.default_rng(seed)
    return simulate_cdr(
        grid=spec.grid,
        nw=spec.nw_distribution(),
        nr=spec.nr_distribution(),
        counter_length=spec.counter_length,
        phase_step_units=spec.phase_step_units,
        data_source=spec.data_source(),
        n_symbols=n_symbols,
        warmup_symbols=5_000,
        rng=rng,
    )


@pytest.fixture(scope="module")
def validation():
    spec = mc_spec()
    analysis = analyze_cdr(spec, solver="direct")
    mc = run_mc(spec, 300_000)
    return spec, analysis, mc


class TestMCCrossover:
    def test_bench_analysis(self, benchmark):
        spec = mc_spec()
        analysis = benchmark.pedantic(
            lambda: analyze_cdr(spec, solver="direct"), rounds=3, iterations=1
        )
        benchmark.extra_info["ber"] = analysis.ber_discrete

    def test_bench_monte_carlo_100k(self, benchmark):
        spec = mc_spec()
        res = benchmark.pedantic(
            lambda: run_mc(spec, 100_000), rounds=1, iterations=1
        )
        benchmark.extra_info["ber"] = res.ber

    def test_agreement_at_accessible_ber(self, validation):
        spec, analysis, mc = validation
        lo, hi = mc.ber_confidence_interval(z=3.5)
        print(f"\n[TAB-MC] analysis BER {analysis.ber_discrete:.4e}, "
              f"MC BER {mc.ber:.4e}, 3.5-sigma CI [{lo:.4e}, {hi:.4e}]")
        assert analysis.ber_discrete > 1e-3  # MC-accessible by design
        assert lo <= analysis.ber_discrete <= hi

    def test_extrapolated_cost_wall(self, validation):
        spec, analysis, mc = validation
        analysis_cost = analysis.build_seconds + analysis.solve_seconds
        sym_per_s = mc.n_symbols / mc.sim_time
        rows = []
        for target in (1e-4, 1e-6, 1e-8, 1e-10, 1e-12):
            n = required_symbols_for_ber(target)
            mc_seconds = n / sym_per_s
            rows.append(
                {
                    "target_ber": f"{target:.0e}",
                    "mc_symbols": n,
                    "mc_hours": mc_seconds / 3600.0,
                    "mc_over_analysis": mc_seconds / analysis_cost,
                }
            )
        print("\n[TAB-MC] extrapolated Monte-Carlo cost "
              f"(this host: {sym_per_s:.0f} symbols/s, "
              f"analysis: {analysis_cost:.2f}s)")
        print(format_table(rows))
        # Required symbols scale 1/BER...
        assert rows[2]["mc_symbols"] == pytest.approx(
            100.0 * rows[1]["mc_symbols"], rel=0.01
        )
        # ...so the 1e-10 spec is a wall for simulation but not analysis.
        assert rows[3]["mc_over_analysis"] > 1e6
