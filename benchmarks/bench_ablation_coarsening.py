"""ABL-COARSE -- ablation of the paper's coarsening strategy.

"The multi-level algorithm can achieve much better performance if the
special structure in the MC ... is exploited to develop a coarsening or
lumping strategy.  For the model of the clock recovery circuit ... we
employed a coarsening strategy which lumps the two states corresponding to
consecutive discretized phase error values."

Compared configurations on the same stiff CDR chain:

* ``phase-pairing`` -- the paper's structured strategy;
* ``algebraic``     -- generic strongest-coupling pairwise aggregation
  (structure-blind baseline);
* ``none``          -- no coarse correction at all (pure weighted-Jacobi,
  i.e. what the multigrid degenerates to without a hierarchy).

Shape claims checked: both hierarchies converge to the same answer and
beat no-coarsening by a wide margin in iteration count.  A finding of
this reproduction worth reporting: on drift-dominated CDR chains the
coupling-aware algebraic pairing can need *fewer* V-cycles than the
paper's phase-pairing (it follows the strong counter/data couplings),
but it pays a far larger per-cycle setup cost -- it re-derives a
partition from the matrix at every level of every cycle, whereas the
structured hierarchy is precomputed once from the model layout.
"""

import numpy as np
import pytest

from repro import CDRSpec
from repro.core import format_table
from repro.markov import solve_jacobi, solve_multigrid

TOL = 1e-9


@pytest.fixture(scope="module")
def model():
    return CDRSpec(
        n_phase_points=256,
        n_clock_phases=16,
        counter_length=16,
        max_run_length=2,
        nw_std=0.01,
        nw_atoms=9,
        nr_max=0.002,
        nr_mean=0.0005,
    ).build_model()


def run_paired(model):
    return solve_multigrid(
        model.chain.P, strategy=model.multigrid_strategy(),
        tol=TOL, nu_pre=8, nu_post=8, max_cycles=500,
    )


def run_algebraic(model):
    # Default strategy: pairwise strongest-coupling aggregation per level.
    return solve_multigrid(
        model.chain.P, strategy=None,
        tol=TOL, nu_pre=8, nu_post=8, max_cycles=500,
    )


def run_unaided(model):
    # No hierarchy at all: the smoother alone (equal total sweep budget
    # would be unfair to quantify exactly; report its own convergence).
    return solve_jacobi(model.chain.P, tol=TOL, max_iter=500_000)


class TestCoarseningAblation:
    def test_bench_phase_pairing(self, benchmark, model):
        res = benchmark.pedantic(lambda: run_paired(model), rounds=1, iterations=1)
        benchmark.extra_info["cycles"] = res.iterations
        assert res.converged

    def test_bench_algebraic(self, benchmark, model):
        res = benchmark.pedantic(lambda: run_algebraic(model), rounds=1, iterations=1)
        benchmark.extra_info["cycles"] = res.iterations
        assert res.converged

    def test_ablation_table(self, model):
        paired = run_paired(model)
        algebraic = run_algebraic(model)
        unaided = run_unaided(model)
        rows = [
            {"strategy": "phase-pairing (paper)", "iterations": paired.iterations,
             "residual": paired.residual, "time_s": paired.solve_time},
            {"strategy": "algebraic pairing", "iterations": algebraic.iterations,
             "residual": algebraic.residual, "time_s": algebraic.solve_time},
            {"strategy": "no coarsening (jacobi)", "iterations": unaided.iterations,
             "residual": unaided.residual, "time_s": unaided.solve_time},
        ]
        print("\n[ABL-COARSE] coarsening-strategy ablation "
              f"({model.n_states} states)")
        print(format_table(rows))

        assert paired.converged and algebraic.converged
        np.testing.assert_allclose(
            paired.distribution, algebraic.distribution, atol=1e-6
        )
        # The hierarchy must reduce the iteration count by at least an
        # order of magnitude over the bare smoother (a V-cycle costs
        # roughly 2 * nu * 2 = 32 fine-sweep equivalents here, so this is
        # also a genuine total-work win on stiff problems).
        assert unaided.iterations > 10 * paired.iterations
        assert unaided.iterations > 10 * algebraic.iterations
        # Cycle counts may differ (see module docstring) but both must be
        # true multigrid: a small number of cycles, not smoother-like
        # iteration counts.
        assert paired.iterations < 100
        assert algebraic.iterations < 100
