"""TAB-SOLVE -- the paper's solver-performance claims.

The paper reports, per analysis run, the state-space size, the number of
multigrid cycles ("Iter"), and the matrix-form / solve CPU times, and
claims the dedicated multi-level method "is capable of solving million
state problems in less than an hour" where "standard iterative
techniques ... do not exploit the properties of MCs".

This benchmark sweeps the model size (by refining the phase grid, exactly
how the paper's problems grow) on a *stiff* design point -- long counter,
small noise, the regime the method was built for -- and compares the
paper's multigrid against power iteration, weighted Jacobi, Gauss-Seidel
and preconditioned GMRES.

Shape claims checked:

* multigrid V-cycle count stays nearly flat as the state space grows 8x,
  while its per-cycle cost is O(nnz) -- the paper's scalability argument;
* stationary iterative baselines need orders of magnitude more sweeps
  than multigrid needs cycles;
* all solvers agree on the answer.

Set ``REPRO_TRACE_DIR`` to a directory to additionally export every
solve's convergence profile as a JSON trace artifact
(``repro.solver-trace/1`` schema, one file per solver/size).
"""

import os

import numpy as np
import pytest

from repro import CDRSpec
from repro.core import format_table
from repro.markov import (
    RecordingMonitor,
    solve_gauss_seidel,
    solve_jacobi,
    solve_multigrid,
    solve_power,
)

TOL = 1e-9


def stiff_spec(n_phase_points):
    return CDRSpec(
        n_phase_points=n_phase_points,
        n_clock_phases=16,
        counter_length=16,
        max_run_length=2,
        nw_std=0.01,
        nw_atoms=9,
        nr_max=0.002,
        nr_mean=0.0005,
    )


def trace_monitor(label):
    """A fresh recorder, exported to REPRO_TRACE_DIR on request.

    Returns ``(monitor, flush)``; call ``flush()`` after the solve to write
    ``<REPRO_TRACE_DIR>/<label>.trace.json``.  The directory (nested paths
    included) is created if missing; when the env var is unset ``flush``
    is a no-op, so benchmarks stay side-effect free by default.
    """
    monitor = RecordingMonitor()

    def flush():
        trace_dir = os.environ.get("REPRO_TRACE_DIR")
        if not trace_dir:
            return
        os.makedirs(trace_dir, exist_ok=True)
        monitor.write_trace(os.path.join(trace_dir, f"{label}.trace.json"))

    return monitor, flush


def run_multigrid(model, tol=TOL, monitor=None):
    return solve_multigrid(
        model.chain.P,
        strategy=model.multigrid_strategy(),
        tol=tol,
        nu_pre=8,
        nu_post=8,
        max_cycles=500,
        monitor=monitor,
    )


@pytest.fixture(scope="module")
def size_sweep():
    sizes = [64, 128, 256, 512]
    rows = []
    for M in sizes:
        model = stiff_spec(M).build_model()
        mg_mon, mg_flush = trace_monitor(f"multigrid-M{M}")
        mg = run_multigrid(model, monitor=mg_mon)
        mg_flush()
        pw_mon, pw_flush = trace_monitor(f"power-M{M}")
        pw = solve_power(model.chain.P, tol=TOL, max_iter=500_000, monitor=pw_mon)
        pw_flush()
        rows.append(
            {
                "M": M,
                "n_states": model.n_states,
                "mg_cycles": mg.iterations,
                "mg_time_s": mg.solve_time,
                "mg_rate": mg.convergence_rate(),
                "power_iters": pw.iterations,
                "power_time_s": pw.solve_time,
                "agree": float(np.abs(mg.distribution - pw.distribution).sum()),
            }
        )
    return rows


class TestSolverScaling:
    def test_bench_multigrid_mid(self, benchmark):
        model = stiff_spec(256).build_model()
        res = benchmark.pedantic(lambda: run_multigrid(model), rounds=1, iterations=1)
        benchmark.extra_info["cycles"] = res.iterations
        assert res.converged

    def test_bench_power_mid(self, benchmark):
        model = stiff_spec(256).build_model()
        res = benchmark.pedantic(
            lambda: solve_power(model.chain.P, tol=TOL, max_iter=500_000),
            rounds=1, iterations=1,
        )
        benchmark.extra_info["iterations"] = res.iterations
        assert res.converged

    def test_bench_jacobi_mid(self, benchmark):
        model = stiff_spec(256).build_model()
        res = benchmark.pedantic(
            lambda: solve_jacobi(model.chain.P, tol=TOL, max_iter=500_000),
            rounds=1, iterations=1,
        )
        benchmark.extra_info["iterations"] = res.iterations
        assert res.converged

    def test_bench_gauss_seidel_mid(self, benchmark):
        model = stiff_spec(256).build_model()
        res = benchmark.pedantic(
            lambda: solve_gauss_seidel(model.chain.P, tol=TOL, max_iter=100_000),
            rounds=1, iterations=1,
        )
        benchmark.extra_info["iterations"] = res.iterations
        assert res.converged

    def test_cycle_count_flat_with_size(self, size_sweep):
        print("\n[TAB-SOLVE] multigrid vs power iteration, stiff CDR chain")
        print(format_table(size_sweep))
        cycles = [r["mg_cycles"] for r in size_sweep]
        # 8x growth in states: cycle count may wobble but must not scale
        # with the problem (allow 2x).
        assert max(cycles) <= 2 * max(cycles[0], 1) + 10

    def test_multigrid_needs_far_fewer_iterations(self, size_sweep):
        for row in size_sweep:
            assert row["power_iters"] > 10 * row["mg_cycles"], row

    def test_solvers_agree(self, size_sweep):
        for row in size_sweep:
            assert row["agree"] < 1e-6, row
