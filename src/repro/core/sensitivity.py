"""Design-margin sensitivity of the performance measures.

Because one analysis costs milliseconds-to-seconds, derivatives of the
BER and slip MTBF with respect to any spec field are cheap central
differences on *exact* analyses -- no Monte-Carlo noise to difference
through.  This is the quantified version of the paper's design-margin
story: how much eye closure, drift, or counter mis-sizing the design can
absorb before the spec is violated.

Log-space derivatives are reported for the error measures (they vary over
many decades): ``dlog10(BER)/dx`` answers "how many decades of BER per
unit of parameter".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.analyzer import analyze_cdr
from repro.core.spec import CDRSpec

__all__ = ["SensitivityReport", "measure_sensitivity", "sensitivity_table"]

_FLOOR = 1e-300


@dataclass
class SensitivityReport:
    """Central-difference sensitivities of one measure to one parameter."""

    parameter: str
    value: float
    step: float
    measure: str
    base: float
    derivative: float
    log10_derivative: float

    def summary(self) -> str:
        return (
            f"d log10({self.measure}) / d {self.parameter} = "
            f"{self.log10_derivative:+.3g} per unit "
            f"(at {self.parameter} = {self.value:g})"
        )


def measure_sensitivity(
    spec: CDRSpec,
    parameter: str,
    rel_step: float = 0.05,
    measure: str = "ber",
    solver: str = "auto",
    tol: float = 1e-10,
) -> SensitivityReport:
    """Central-difference sensitivity of ``measure`` to ``parameter``.

    ``measure`` is any float attribute of
    :class:`~repro.core.analyzer.CDRAnalysis` (``"ber"``, ``"slip_rate"``,
    ``"phase_rms"``, ...).  The parameter must be a float spec field.
    """
    value = getattr(spec, parameter)
    if not isinstance(value, float):
        raise ValueError(
            f"{parameter} is not a continuous spec field; sweep it instead"
        )
    if rel_step <= 0:
        raise ValueError("rel_step must be positive")
    step = abs(value) * rel_step if value != 0 else rel_step

    def run(v: float) -> float:
        analysis = analyze_cdr(spec.replace(**{parameter: v}), solver=solver, tol=tol)
        out = getattr(analysis, measure)
        if not isinstance(out, float):
            raise ValueError(f"measure {measure!r} is not a float attribute")
        return out

    base = run(value)
    hi = run(value + step)
    lo = run(value - step)
    derivative = (hi - lo) / (2.0 * step)
    log_derivative = (
        (math.log10(max(hi, _FLOOR)) - math.log10(max(lo, _FLOOR)))
        / (2.0 * step)
    )
    return SensitivityReport(
        parameter=parameter,
        value=value,
        step=step,
        measure=measure,
        base=base,
        derivative=derivative,
        log10_derivative=log_derivative,
    )


def sensitivity_table(
    spec: CDRSpec,
    parameters: Sequence[str] = ("nw_std", "nr_mean", "nr_max"),
    measure: str = "ber",
    rel_step: float = 0.05,
    solver: str = "auto",
) -> List[Dict]:
    """Sensitivities of one measure to several parameters, as records."""
    records = []
    for parameter in parameters:
        rep = measure_sensitivity(
            spec, parameter, rel_step=rel_step, measure=measure, solver=solver
        )
        records.append(
            {
                "parameter": rep.parameter,
                "value": rep.value,
                measure: rep.base,
                f"d{measure}/dx": rep.derivative,
                f"dlog10({measure})/dx": rep.log10_derivative,
            }
        )
    return records
