"""High-level CDR performance evaluation (the paper's contribution).

:func:`repro.core.analyzer.analyze_cdr` runs the published flow end to end:
spec -> Markov-chain compilation -> multigrid stationary solve ->
BER / cycle-slip / jitter measures.
"""

from repro.core.spec import CDRSpec
from repro.core.measures import (
    accumulated_jitter_variance_rate,
    bit_error_rate,
    bit_error_rate_discrete,
    cycle_slip_rate,
    mean_symbols_between_slips,
    phase_error_pdf,
    phase_statistics,
    recovered_clock_jitter,
    sampled_phase_pdf,
)
from repro.core.analyzer import CDRAnalysis, analyze_cdr, analyze_model
from repro.core.acquisition import (
    AcquisitionAnalysis,
    analyze_acquisition,
    lock_probability_curve,
    transient_error_rate,
)
from repro.core.reporting import format_pdf_ascii, format_record, format_table
from repro.core.sensitivity import (
    SensitivityReport,
    measure_sensitivity,
    sensitivity_table,
)
from repro.core.serialize import (
    analysis_to_dict,
    analysis_to_json,
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)

__all__ = [
    "CDRSpec",
    "CDRAnalysis",
    "analyze_cdr",
    "analyze_model",
    "AcquisitionAnalysis",
    "analyze_acquisition",
    "lock_probability_curve",
    "transient_error_rate",
    "accumulated_jitter_variance_rate",
    "bit_error_rate",
    "bit_error_rate_discrete",
    "cycle_slip_rate",
    "mean_symbols_between_slips",
    "phase_error_pdf",
    "sampled_phase_pdf",
    "phase_statistics",
    "recovered_clock_jitter",
    "format_table",
    "format_pdf_ascii",
    "format_record",
    "SensitivityReport",
    "measure_sensitivity",
    "sensitivity_table",
    "spec_to_dict",
    "spec_from_dict",
    "analysis_to_dict",
    "spec_to_json",
    "spec_from_json",
    "analysis_to_json",
]
