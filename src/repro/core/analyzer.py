"""The end-to-end CDR performance analyzer -- the paper's contribution.

``analyze_cdr(spec)`` performs the whole published flow:

1. compile the spec's FSM/noise description into the product Markov chain
   (vectorized assembly; the paper's "Matrixformtime");
2. compute the stationary distribution, by default with the multi-level
   aggregation multigrid using the paper's phase-pairing coarsening (the
   "Iter" and "Solvetime" numbers);
3. derive the performance measures: BER from the tails of the stationary
   noisy-phase distribution, cycle-slip rate / mean time between slips
   from the wrap flux, and phase-error statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cdr.model import CDRChainModel
from repro.core import measures as _measures
from repro.core.spec import CDRSpec
from repro.markov.solvers.result import StationaryResult
from repro.markov.stationary import stationary_distribution

__all__ = ["CDRAnalysis", "analyze_cdr", "analyze_model"]

_MULTIGRID_MIN_STATES = 8_192


@dataclass
class CDRAnalysis:
    """Everything the analysis produces for one design point."""

    spec: Optional[CDRSpec]
    model: CDRChainModel
    solver_result: StationaryResult
    ber: float
    ber_discrete: float
    slip_rate: float
    mean_symbols_between_slips: float
    phase_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def stationary(self) -> np.ndarray:
        return self.solver_result.distribution

    @property
    def n_states(self) -> int:
        return self.model.n_states

    @property
    def form_time(self) -> float:
        return self.model.form_time

    @property
    def solve_time(self) -> float:
        return self.solver_result.solve_time

    @property
    def phase_rms(self) -> float:
        return self.phase_stats.get("rms_ui", float("nan"))

    def phase_error_pdf(self):
        """``(values, probs)`` of the stationary phase error (paper plots)."""
        return _measures.phase_error_pdf(self.model, self.stationary)

    def sampled_phase_pdf(self):
        """``(values, probs)`` of the stationary ``Phi + n_w``."""
        return _measures.sampled_phase_pdf(self.model, self.stationary)

    def report(self) -> str:
        """The paper's two annotation lines for a Figure-4/5 style plot."""
        spec = self.spec
        counter = spec.counter_length if spec else self.model.counter_length
        std_nw = spec.nw_std if spec else self.model.nw.std()
        max_nr = spec.nr_max if spec else float(
            np.max(np.abs(self.model.nr_steps.values)) * self.model.grid.step
        )
        line1 = (
            f"COUNTER: {counter}  STDnw: {std_nw:.1e}  "
            f"MAXnr: {max_nr:.1e}  BER: {self.ber:.1e}"
        )
        line2 = (
            f"Size: {self.n_states}  Iter: {self.solver_result.iterations}  "
            f"Matrixformtime: {self.form_time / 60.0:.2f} mins  "
            f"Solvetime: {self.solve_time / 60.0:.2f} mins"
        )
        return line1 + "\n" + line2


def analyze_model(
    model: CDRChainModel,
    spec: Optional[CDRSpec] = None,
    solver: str = "auto",
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    **solver_kwargs,
) -> CDRAnalysis:
    """Analyze an already-built model (see :func:`analyze_cdr`)."""
    if solver == "auto":
        solver = "multigrid" if model.n_states >= _MULTIGRID_MIN_STATES else "direct"
    if solver == "multigrid":
        # The paper's structured coarsening plus heavy Gauss-Jacobi
        # smoothing: CDR chains are drift-dominated, where extra cheap
        # sweeps per V-cycle pay for themselves several times over.
        solver_kwargs.setdefault("strategy", model.multigrid_strategy())
        solver_kwargs.setdefault("nu_pre", 8)
        solver_kwargs.setdefault("nu_post", 8)
    result = stationary_distribution(
        model.chain, method=solver, tol=tol, max_iter=max_iter, **solver_kwargs
    )
    eta = result.distribution
    return CDRAnalysis(
        spec=spec,
        model=model,
        solver_result=result,
        ber=_measures.bit_error_rate(model, eta),
        ber_discrete=_measures.bit_error_rate_discrete(model, eta),
        slip_rate=_measures.cycle_slip_rate(model, eta),
        mean_symbols_between_slips=_measures.mean_symbols_between_slips(model, eta),
        phase_stats=_measures.phase_statistics(model, eta),
    )


def analyze_cdr(
    spec: CDRSpec,
    solver: str = "auto",
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    **solver_kwargs,
) -> CDRAnalysis:
    """Build and analyze a CDR design point.

    Parameters
    ----------
    spec:
        The design/jitter specification.
    solver:
        Any name accepted by :func:`repro.markov.stationary.stationary_distribution`;
        ``"auto"`` picks direct LU for small chains and the paper's
        multigrid (with phase-pairing coarsening) for large ones.
    tol, max_iter, solver_kwargs:
        Forwarded to the solver.  Pass
        ``monitor=repro.markov.RecordingMonitor()`` here to capture the
        solve's per-iteration telemetry (the CLI's ``--trace`` flag does
        exactly this and exports the recording as JSON).
    """
    model = spec.build_model()
    return analyze_model(
        model, spec=spec, solver=solver, tol=tol, max_iter=max_iter, **solver_kwargs
    )
