"""The end-to-end CDR performance analyzer -- the paper's contribution.

``analyze_cdr(spec)`` performs the whole published flow:

1. compile the spec's FSM/noise description into the product Markov chain
   (vectorized assembly; the paper's "Matrixformtime");
2. compute the stationary distribution, by default with the multi-level
   aggregation multigrid using the paper's phase-pairing coarsening (the
   "Iter" and "Solvetime" numbers);
3. derive the performance measures: BER from the tails of the stationary
   noisy-phase distribution, cycle-slip rate / mean time between slips
   from the wrap flux, and phase-error statistics.

Every run is traced with :mod:`repro.obs` spans: the root ``cdr.analyze``
span (stored on the result as :attr:`CDRAnalysis.trace`) nests
``cdr.build_tpm``, ``markov.solve`` and ``cdr.measures`` children, and the
solver's per-iteration telemetry is always recorded (available as
:attr:`CDRAnalysis.solver_recording` for run manifests).  Stage wall times
are exposed as :attr:`CDRAnalysis.build_seconds` /
:attr:`CDRAnalysis.solve_seconds` (the legacy ``form_time`` /
``solve_time`` aliases have been removed).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

import repro.cdr.backends  # noqa: F401  (registers the built-in backends)
from repro.cdr.model import CDRChainModel
from repro.core import measures as _measures
from repro.core.spec import CDRSpec
from repro.markov.monitor import MultiSolveRecorder, RecordingMonitor, TeeMonitor
from repro.markov.registry import get_backend
from repro.markov.solvers.result import StationaryResult
from repro.markov.stationary import stationary_distribution
from repro.obs import Tracer, get_registry, get_tracer, span, use_tracer

__all__ = ["CDRAnalysis", "analyze_cdr", "analyze_model"]

_MULTIGRID_MIN_STATES = 8_192


@dataclass
class CDRAnalysis:
    """Everything the analysis produces for one design point."""

    spec: Optional[CDRSpec]
    model: CDRChainModel
    solver_result: StationaryResult
    ber: float
    ber_discrete: float
    slip_rate: float
    mean_symbols_between_slips: float
    phase_stats: Dict[str, float] = field(default_factory=dict)
    #: Registered backend that realized the transition matrix.
    backend: str = "assembled"
    #: Registry key of the solver that actually ran (``auto`` resolved).
    solver_entry: Optional[str] = None
    #: Root span of this run (``cdr.analyze``) with nested stage spans.
    trace: Optional[object] = field(default=None, repr=False)
    #: Per-iteration solver telemetry recorded during the solve.
    solver_recording: Optional[RecordingMonitor] = field(default=None, repr=False)
    #: Structured resilience events (solver attempts, escalations, backend
    #: degradations, checkpoint resumes) when the run used the resilient
    #: solve path; empty for plain solves.  Embedded in run manifests.
    resilience_events: List[Dict[str, Any]] = field(default_factory=list, repr=False)

    @property
    def stationary(self) -> np.ndarray:
        return self.solver_result.distribution

    @property
    def n_states(self) -> int:
        return self.model.n_states

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Wall seconds per pipeline stage, from the run's spans.

        Keys are span names (``cdr.build_tpm``, ``markov.solve``,
        ``cdr.measures``); the build entry falls back to the model's
        recorded assembly time when the model was built outside this
        analysis (``analyze_model`` on a pre-built model).
        """
        stages: Dict[str, float] = {}
        if self.trace is not None:
            stages.update(self.trace.stage_seconds())
        stages.setdefault("cdr.build_tpm", self.model.form_time)
        stages.setdefault("markov.solve", self.solver_result.solve_time)
        return stages

    @property
    def build_seconds(self) -> float:
        """Wall seconds spent assembling the TPM (paper "Matrixformtime")."""
        return self.stage_seconds["cdr.build_tpm"]

    @property
    def solve_seconds(self) -> float:
        """Wall seconds spent in the stationary solver (paper "Solvetime")."""
        return self.stage_seconds["markov.solve"]

    @property
    def phase_rms(self) -> float:
        return self.phase_stats.get("rms_ui", float("nan"))

    def phase_error_pdf(self):
        """``(values, probs)`` of the stationary phase error (paper plots)."""
        return _measures.phase_error_pdf(self.model, self.stationary)

    def sampled_phase_pdf(self):
        """``(values, probs)`` of the stationary ``Phi + n_w``."""
        return _measures.sampled_phase_pdf(self.model, self.stationary)

    def report(self) -> str:
        """The paper's two annotation lines for a Figure-4/5 style plot."""
        spec = self.spec
        counter = spec.counter_length if spec else self.model.counter_length
        std_nw = spec.nw_std if spec else self.model.nw.std()
        max_nr = spec.nr_max if spec else float(
            np.max(np.abs(self.model.nr_steps.values)) * self.model.grid.step
        )
        line1 = (
            f"COUNTER: {counter}  STDnw: {std_nw:.1e}  "
            f"MAXnr: {max_nr:.1e}  BER: {self.ber:.1e}"
        )
        line2 = (
            f"Size: {self.n_states}  Iter: {self.solver_result.iterations}  "
            f"Matrixformtime: {self.build_seconds / 60.0:.2f} mins  "
            f"Solvetime: {self.solve_seconds / 60.0:.2f} mins"
        )
        return line1 + "\n" + line2


class _ensure_tracer:
    """Activate a private tracer when none is active (so spans always
    record), leaving an externally-installed tracer untouched."""

    def __init__(self) -> None:
        self._cm = None

    def __enter__(self):
        tracer = get_tracer()
        if tracer is None:
            self._cm = use_tracer(Tracer())
            tracer = self._cm.__enter__()
        return tracer

    def __exit__(self, *exc) -> bool:
        if self._cm is not None:
            return bool(self._cm.__exit__(*exc))
        return False


def _resolve_resilience_policy(model, solver, max_iter, solver_kwargs, resilience):
    """Turn the ``resilience`` argument into a concrete FallbackPolicy.

    ``True`` builds the registry default chain headed by the requested
    solver (with the caller's solver kwargs and ``max_iter`` applied to
    that first attempt only); a :class:`~repro.resilience.FallbackPolicy`
    is used as-is.
    """
    from repro.resilience import FallbackPolicy

    if isinstance(resilience, FallbackPolicy):
        return resilience
    policy = FallbackPolicy.from_registry(
        model.chain,
        first_method=solver,
        first_kwargs=dict(solver_kwargs),
    )
    if max_iter is not None:
        steps = (dataclasses.replace(policy.steps[0], max_iter=max_iter),)
        policy = dataclasses.replace(policy, steps=steps + policy.steps[1:])
    return policy


def _solve_and_measure(
    model: CDRChainModel,
    spec: Optional[CDRSpec],
    root,
    solver: str,
    tol: float,
    max_iter: Optional[int],
    solver_kwargs,
    backend: str = "assembled",
    resilience=None,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 25,
    resume: bool = False,
    solve_context=None,
) -> CDRAnalysis:
    """The solve + measures stages, recorded under the open ``root`` span."""
    if solver == "auto":
        if isinstance(model, CDRChainModel):
            solver = (
                "multigrid" if model.n_states >= _MULTIGRID_MIN_STATES else "direct"
            )
        else:
            # Matrix-free backends never assemble: direct LU is off the
            # table, so small models fall back to power iteration.
            solver = (
                "multigrid" if model.n_states >= _MULTIGRID_MIN_STATES else "power"
            )
    if solver == "multigrid":
        # The paper's structured coarsening plus heavy Gauss-Jacobi
        # smoothing: CDR chains are drift-dominated, where extra cheap
        # sweeps per V-cycle pay for themselves several times over.  With
        # a solve context the coarsening partitions come from its cache
        # (built once per chain structure, with the model's phase-pairing
        # -- a bare assembled CSR carries no phase structure to discover).
        if solve_context is not None and "strategy" not in solver_kwargs:
            solver_kwargs.setdefault(
                "hierarchy",
                solve_context.hierarchy_for(
                    model.chain, strategy=model.multigrid_strategy()
                ),
            )
        else:
            solver_kwargs.setdefault("strategy", model.multigrid_strategy())
        solver_kwargs.setdefault("nu_pre", 8)
        solver_kwargs.setdefault("nu_post", 8)
    elif solver == "krylov" and solve_context is not None:
        # The cached hierarchy doubles as the AMG preconditioner.
        solver_kwargs.setdefault("preconditioner", "amg")
        solver_kwargs.setdefault(
            "hierarchy",
            solve_context.hierarchy_for(
                model.chain, strategy=model.multigrid_strategy()
            ),
        )
    x0 = solver_kwargs.pop("x0", None)

    # Always record the solver's per-iteration events so run manifests can
    # embed the full repro.solver-trace/1 story; tee to a caller monitor.
    # The resilient path may run several attempts, each opening a fresh
    # solve -- a multi-solve recorder keeps the winning attempt's trace.
    recorder = MultiSolveRecorder() if resilience is not None else RecordingMonitor()
    user_monitor = solver_kwargs.pop("monitor", None)
    monitor = recorder if user_monitor is None else TeeMonitor(recorder, user_monitor)

    resilience_events: List[Dict[str, Any]] = []
    with span(
        "markov.solve", n_states=model.n_states, backend=backend
    ) as solve_span:
        if resilience is not None:
            from repro.resilience import resilient_stationary

            policy = _resolve_resilience_policy(
                model, solver, max_iter, solver_kwargs, resilience
            )
            outcome = resilient_stationary(
                model.chain, policy, tol=tol, x0=x0, monitor=monitor,
                checkpoint_path=checkpoint_path,
                checkpoint_interval=checkpoint_interval, resume=resume,
                solve_context=solve_context,
            )
            result = outcome.result
            resilience_events = outcome.events()
            solve_span.set_attributes(
                attempts=len(outcome.attempts), escalations=outcome.escalations
            )
        else:
            warmed = False
            if x0 is None and solve_context is not None:
                x0 = solve_context.warm_start_for(model.chain)
                warmed = x0 is not None
            result = stationary_distribution(
                model.chain, method=solver, tol=tol, max_iter=max_iter,
                monitor=monitor, x0=x0, **solver_kwargs,
            )
            result.warm_started = warmed
            if solve_context is not None and result.converged:
                solve_context.record_solution(model.chain, result.distribution)
        solve_span.set_attributes(
            method=result.method,
            iterations=result.iterations,
            residual=result.residual,
            converged=result.converged,
        )
    registry = get_registry()
    registry.counter(
        "repro_solver_iterations_total",
        "Stationary-solver iterations across all solves",
    ).inc(result.iterations, method=result.method)
    registry.histogram(
        "repro_solve_seconds", "Wall time of stationary solves"
    ).observe(result.solve_time, method=result.method)

    eta = result.distribution
    with span("cdr.measures"):
        analysis = CDRAnalysis(
            spec=spec,
            model=model,
            solver_result=result,
            ber=_measures.bit_error_rate(model, eta),
            ber_discrete=_measures.bit_error_rate_discrete(model, eta),
            slip_rate=_measures.cycle_slip_rate(model, eta),
            mean_symbols_between_slips=_measures.mean_symbols_between_slips(model, eta),
            phase_stats=_measures.phase_statistics(model, eta),
            backend=backend,
            solver_entry=solver,
            trace=root,
            solver_recording=recorder,
            resilience_events=resilience_events,
        )
    root.set_attributes(n_states=model.n_states, ber=analysis.ber)
    registry.counter(
        "repro_analyses_total", "Completed end-to-end CDR analyses"
    ).inc()
    return analysis


def analyze_model(
    model: CDRChainModel,
    spec: Optional[CDRSpec] = None,
    solver: str = "auto",
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    resilience=None,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 25,
    resume: bool = False,
    solve_context=None,
    **solver_kwargs,
) -> CDRAnalysis:
    """Analyze an already-built model (see :func:`analyze_cdr`).

    ``model`` may be the classic assembled
    :class:`~repro.cdr.model.CDRChainModel` or a matrix-free
    :class:`~repro.cdr.backends.OperatorCDRModel` facade; the analysis
    records which backend produced it.
    """
    backend = getattr(model, "backend", "assembled")
    with _ensure_tracer(), span("cdr.analyze") as root:
        return _solve_and_measure(
            model, spec, root, solver, tol, max_iter, solver_kwargs,
            backend=backend, resilience=resilience,
            checkpoint_path=checkpoint_path,
            checkpoint_interval=checkpoint_interval, resume=resume,
            solve_context=solve_context,
        )


def analyze_cdr(
    spec: CDRSpec,
    solver: str = "auto",
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    backend: Optional[str] = None,
    resilience=None,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 25,
    resume: bool = False,
    solve_context=None,
    **solver_kwargs,
) -> CDRAnalysis:
    """Build and analyze a CDR design point.

    Parameters
    ----------
    spec:
        The design/jitter specification.
    solver:
        Any name registered in :mod:`repro.markov.registry`; ``"auto"``
        picks direct LU for small assembled chains and the paper's
        multigrid (with phase-pairing coarsening) for large ones.  With a
        matrix-free backend, ``auto`` picks power iteration for small
        models and multigrid for large ones (direct LU needs the
        assembled matrix).
    backend:
        Registered TPM backend (``assembled`` / ``matrix-free`` /
        ``kronecker``); ``None`` uses ``spec.backend``.
    resilience:
        ``None`` (default) solves directly.  ``True`` or a
        :class:`~repro.resilience.FallbackPolicy` routes the solve through
        :func:`~repro.resilience.resilient_stationary`: numerical guards
        on every iterate, escalation through the registry fallback chain,
        and -- when the policy carries a memory budget that trips on an
        assembled backend -- one automatic rebuild with the matrix-free
        backend.  The attempt/escalation trail lands on
        :attr:`CDRAnalysis.resilience_events` and in run manifests.
    checkpoint_path, checkpoint_interval, resume:
        Solver-state checkpointing for the resilient path (the CLI's
        ``--checkpoint`` / ``--resume`` flags); see
        :class:`~repro.resilience.SolverCheckpointer`.
    solve_context:
        Optional :class:`~repro.markov.SolveContext`.  Supplies the
        cached coarsening hierarchy to multigrid / Krylov+AMG solves,
        warm-starts the iteration from the context's last solution of a
        structurally identical chain (``x0`` in ``solver_kwargs`` takes
        precedence), and records the converged distribution back into
        the context.  Sweeps and Monte-Carlo campaigns share one context
        across all their points.
    tol, max_iter, solver_kwargs:
        Forwarded to the solver.  Pass
        ``monitor=repro.markov.RecordingMonitor()`` here to capture the
        solve's per-iteration telemetry (the CLI's ``--trace`` flag does
        exactly this and exports the recording as JSON); the analyzer
        additionally keeps its own recording on
        :attr:`CDRAnalysis.solver_recording` either way.

    The whole run is traced: the returned analysis carries the root
    ``cdr.analyze`` span with nested build/solve/measures children
    (:attr:`CDRAnalysis.trace` / :attr:`CDRAnalysis.stage_seconds`), and
    when a :func:`repro.obs.use_tracer` context is active the spans also
    land in that tracer for run-manifest export.
    """
    entry = get_backend(spec.backend if backend is None else backend)
    degradation_event = None
    with _ensure_tracer(), span("cdr.analyze", backend=entry.name) as root:
        model = entry.build(spec)  # emits the cdr.build_tpm child span
        try:
            return _solve_and_measure(
                model, spec, root, solver, tol, max_iter, dict(solver_kwargs),
                backend=entry.name, resilience=resilience,
                checkpoint_path=checkpoint_path,
                checkpoint_interval=checkpoint_interval, resume=resume,
                solve_context=solve_context,
            )
        except Exception as exc:
            from repro.resilience import BudgetExceeded

            if not (
                isinstance(exc, BudgetExceeded)
                and exc.budget == "memory"
                and entry.name == "assembled"
                and resilience is not None
            ):
                raise
            # The assembled TPM blew the memory budget: degrade to the
            # O(n)-memory matrix-free backend and solve there.  More
            # fallback methods cannot un-allocate the matrix; a different
            # backend can.
            degradation_event = {
                "event": "backend_degraded",
                "from_backend": entry.name,
                "to_backend": "matrix-free",
                "reason": str(exc),
            }
            root.set_attributes(backend_degraded="matrix-free")
            get_registry().counter(
                "repro_backend_degradations_total",
                "Analyses degraded from assembled to matrix-free on memory budget",
            ).inc()
    free_entry = get_backend("matrix-free")
    from repro.markov.registry import get_solver
    from repro.resilience import FallbackPolicy

    if solver != "auto" and not get_solver(solver).matrix_free:
        solver = "auto"  # the requested solver cannot run unassembled
    if isinstance(resilience, FallbackPolicy):
        # Peak RSS is monotone: the budget that tripped on the assembled
        # matrix would trip again instantly.  Degrading the backend *is*
        # the recovery, so the retry runs without the memory gate.
        resilience = dataclasses.replace(resilience, memory_budget_bytes=None)
    with _ensure_tracer(), span("cdr.analyze", backend=free_entry.name) as root:
        model = free_entry.build(spec)
        analysis = _solve_and_measure(
            model, spec, root, solver, tol, max_iter, dict(solver_kwargs),
            backend=free_entry.name, resilience=resilience,
            checkpoint_path=checkpoint_path,
            checkpoint_interval=checkpoint_interval, resume=resume,
            solve_context=solve_context,
        )
    analysis.resilience_events.insert(0, degradation_event)
    return analysis
