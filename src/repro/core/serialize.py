"""JSON-friendly serialization of specs and analysis results.

Design sweeps produce hundreds of analyses; persisting them (and the
specs that produced them) lets reports be regenerated and design points
diffed without re-solving.  Only plain-Python types are emitted, so the
dictionaries round-trip through ``json`` untouched.

Distribution overrides (``nw_override`` / ``nr_override``) are serialized
as explicit atom tables.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.core.analyzer import CDRAnalysis
from repro.core.spec import CDRSpec
from repro.noise.distributions import DiscreteDistribution

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "analysis_to_dict",
    "spec_to_json",
    "spec_from_json",
    "analysis_to_json",
]

_SCALAR_FIELDS = (
    "n_phase_points",
    "n_clock_phases",
    "counter_length",
    "transition_density",
    "max_run_length",
    "nw_std",
    "nw_atoms",
    "nw_span_sigmas",
    "nr_max",
    "nr_mean",
    "nr_skew",
    "backend",
)


def _dist_to_dict(dist: Optional[DiscreteDistribution]) -> Optional[Dict]:
    if dist is None:
        return None
    return {
        "values": [float(v) for v in dist.values],
        "probs": [float(p) for p in dist.probs],
    }


def _dist_from_dict(payload: Optional[Dict]) -> Optional[DiscreteDistribution]:
    if payload is None:
        return None
    return DiscreteDistribution(payload["values"], payload["probs"])


def spec_to_dict(spec: CDRSpec) -> Dict:
    """Plain-dict form of a spec (JSON-serializable)."""
    out = {field: getattr(spec, field) for field in _SCALAR_FIELDS}
    out["nw_override"] = _dist_to_dict(spec.nw_override)
    out["nr_override"] = _dist_to_dict(spec.nr_override)
    return out


def spec_from_dict(payload: Dict) -> CDRSpec:
    """Inverse of :func:`spec_to_dict` (unknown keys rejected)."""
    payload = dict(payload)
    kwargs = {}
    for field in _SCALAR_FIELDS:
        if field in payload:
            kwargs[field] = payload.pop(field)
    kwargs["nw_override"] = _dist_from_dict(payload.pop("nw_override", None))
    kwargs["nr_override"] = _dist_from_dict(payload.pop("nr_override", None))
    if payload:
        raise ValueError(f"unknown spec fields: {sorted(payload)}")
    return CDRSpec(**kwargs)


def analysis_to_dict(analysis: CDRAnalysis, include_pdf: bool = False) -> Dict:
    """Plain-dict form of an analysis result.

    The stationary vector itself is omitted (it can be megabytes and is
    reproducible from the spec); set ``include_pdf`` to embed the
    phase-error marginal, which is what plots need.
    """
    out = {
        "spec": spec_to_dict(analysis.spec) if analysis.spec is not None else None,
        "n_states": analysis.n_states,
        "ber": analysis.ber,
        "ber_discrete": analysis.ber_discrete,
        "slip_rate": analysis.slip_rate,
        "mean_symbols_between_slips": _finite_or_none(
            analysis.mean_symbols_between_slips
        ),
        "phase_stats": dict(analysis.phase_stats),
        "backend": analysis.backend,
        "solver": {
            "entry": analysis.solver_entry,
            "method": analysis.solver_result.method,
            "iterations": analysis.solver_result.iterations,
            "residual": analysis.solver_result.residual,
            "converged": analysis.solver_result.converged,
            "solve_time_s": analysis.solve_seconds,
        },
        "form_time_s": analysis.build_seconds,
        "stage_seconds": dict(analysis.stage_seconds),
    }
    if include_pdf:
        values, probs = analysis.phase_error_pdf()
        out["phase_error_pdf"] = {
            "values": [float(v) for v in values],
            "probs": [float(p) for p in probs],
        }
    return out


def _finite_or_none(x: float):
    import math

    return x if math.isfinite(x) else None


def spec_to_json(spec: CDRSpec, **json_kwargs) -> str:
    return json.dumps(spec_to_dict(spec), **json_kwargs)


def spec_from_json(text: str) -> CDRSpec:
    return spec_from_dict(json.loads(text))


def analysis_to_json(analysis: CDRAnalysis, include_pdf: bool = False, **json_kwargs) -> str:
    return json.dumps(analysis_to_dict(analysis, include_pdf=include_pdf), **json_kwargs)
