"""Design specification for a digital phase-selection CDR loop.

:class:`CDRSpec` gathers every knob of the analyzed design and its jitter
environment in one validated, immutable record -- the input to
:func:`repro.core.analyzer.analyze_cdr`.  Field names follow the paper's
annotations: ``counter_length`` is the "COUNTER" value of Figures 4-5,
``nw_std`` is "STDnw", ``nr_max`` is "MAXnr".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.cdr.data_source import transition_run_length_source
from repro.cdr.model import CDRChainModel, build_cdr_chain
from repro.cdr.phase_error import PhaseGrid
from repro.noise.distributions import DiscreteDistribution
from repro.noise.jitter import eye_opening_noise, sonet_drift_noise

__all__ = ["CDRSpec"]


@dataclass(frozen=True)
class CDRSpec:
    """Complete specification of the CDR model to analyze.

    Attributes
    ----------
    n_phase_points:
        Phase-error grid resolution ``M`` (points per UI).  Must be a
        multiple of ``n_clock_phases``.
    n_clock_phases:
        Number of selectable VCO phases; the loop correction step is
        ``1 / n_clock_phases`` UI ("G is the smallest phase increment
        available from the internal clock").
    counter_length:
        Up/down counter length ``N`` of the loop filter.
    transition_density:
        Per-symbol data transition probability.
    max_run_length:
        Longest run without transitions (SONET-style spec).
    nw_std:
        RMS of the zero-mean Gaussian eye-opening jitter ``n_w``, in UI.
    nw_atoms:
        Number of atoms in the discretized ``n_w``.
    nw_span_sigmas:
        Half-width of the ``n_w`` discretization grid in sigmas.
    nr_max:
        Bound of the per-symbol drift noise ``n_r`` in UI ("MAXnr").
    nr_mean:
        Mean drift per symbol in UI (frequency offset); ``|nr_mean| <=
        nr_max``.
    nr_skew:
        Probability weight of each non-zero ``n_r`` atom before the mean
        constraint (variance knob of the drift).
    nw_override, nr_override:
        Custom distributions replacing the built-in Gaussian / SONET-drift
        models (advanced use; ``nw_std`` / ``nr_*`` are then ignored for
        model building but ``nw_std`` is still used for Gaussian-tail BER
        unless a value is derivable from the override).
    backend:
        How the transition matrix is realized: any name registered in
        :mod:`repro.markov.registry` (``assembled`` builds the explicit
        sparse TPM; ``matrix-free`` and ``kronecker`` apply the operator
        structurally without materializing it).
    """

    n_phase_points: int = 256
    n_clock_phases: int = 16
    counter_length: int = 8
    transition_density: float = 0.5
    max_run_length: int = 3
    nw_std: float = 0.02
    nw_atoms: int = 11
    nw_span_sigmas: float = 4.0
    nr_max: float = 0.008
    nr_mean: float = 0.002
    nr_skew: float = 0.25
    nw_override: Optional[DiscreteDistribution] = None
    nr_override: Optional[DiscreteDistribution] = None
    backend: str = "assembled"

    def __post_init__(self) -> None:
        # Every rejection names the offending value and says how to fix
        # it: a bad spec must fail here, before any model is built, not
        # hours later inside a sweep.
        if self.n_phase_points < 2:
            raise ValueError(
                f"n_phase_points must be at least 2 (got "
                f"{self.n_phase_points}): the phase grid needs at least "
                f"two points to represent a phase error"
            )
        if self.n_clock_phases < 1:
            raise ValueError(
                f"n_clock_phases must be at least 1 (got "
                f"{self.n_clock_phases}): the phase selector needs at "
                f"least one clock phase to choose from"
            )
        if self.n_phase_points % self.n_clock_phases != 0:
            raise ValueError(
                f"n_phase_points ({self.n_phase_points}) must be a "
                f"multiple of n_clock_phases ({self.n_clock_phases}) so "
                f"the phase-select step lands on the quantizer grid; "
                f"try n_phase_points="
                f"{self.n_clock_phases * max(1, round(self.n_phase_points / self.n_clock_phases))}"
            )
        if self.counter_length < 1:
            raise ValueError(
                f"counter_length must be at least 1 (got "
                f"{self.counter_length}): the up/down counter needs at "
                f"least one count before it can fire a phase step"
            )
        if not 0.0 < self.transition_density <= 1.0:
            raise ValueError(
                f"transition_density must be in (0, 1] (got "
                f"{self.transition_density}): it is the probability of a "
                f"data transition per symbol, and without transitions the "
                f"loop receives no timing information"
            )
        if self.max_run_length < 1:
            raise ValueError(
                f"max_run_length must be at least 1 (got "
                f"{self.max_run_length})"
            )
        if self.nw_override is None and self.nw_std <= 0:
            raise ValueError(
                f"nw_std must be positive (got {self.nw_std}): a zero or "
                f"negative sigma makes the discretized eye-opening noise "
                f"degenerate; pass nw_override=DiscreteDistribution(...) "
                f"to model a custom (even noiseless) eye"
            )
        if self.nw_atoms < 1:
            raise ValueError(
                f"nw_atoms must be at least 1 (got {self.nw_atoms})"
            )
        if self.nr_override is None:
            if self.nr_max <= 0:
                raise ValueError(
                    f"nr_max must be positive (got {self.nr_max}); pass "
                    f"nr_override=DiscreteDistribution(...) for a custom "
                    f"drift model"
                )
            if abs(self.nr_mean) > self.nr_max:
                raise ValueError(
                    f"|nr_mean| must not exceed nr_max (got nr_mean="
                    f"{self.nr_mean}, nr_max={self.nr_max}): the drift "
                    f"distribution is supported on [-nr_max, nr_max]"
                )
        # Validate against the registry (importing repro.cdr.backends makes
        # sure the built-in backends have registered themselves).
        import repro.cdr.backends  # noqa: F401
        from repro.markov.registry import backend_names, get_backend

        if self.backend not in backend_names():
            get_backend(self.backend)  # raises the choose-from ValueError

    # ------------------------------------------------------------------ #

    @property
    def phase_step_units(self) -> int:
        """Loop correction step ``G`` in grid units."""
        return self.n_phase_points // self.n_clock_phases

    @property
    def grid(self) -> PhaseGrid:
        return PhaseGrid(self.n_phase_points)

    def nw_distribution(self) -> DiscreteDistribution:
        """The (discretized) eye-opening noise used for model building."""
        if self.nw_override is not None:
            return self.nw_override
        return eye_opening_noise(
            self.nw_std, n_atoms=self.nw_atoms, n_sigmas=self.nw_span_sigmas
        )

    def nr_distribution(self) -> DiscreteDistribution:
        """The drift noise (UI-valued; quantized to the grid by the builder)."""
        if self.nr_override is not None:
            return self.nr_override
        # Deliberately NOT snapped to the grid: the builder's
        # mean-preserving split quantization spreads the bound over two
        # adjacent step counts, which keeps the phase lattice connected
        # even when the phase-select step G is a power of two.
        return sonet_drift_noise(
            max_ui=self.nr_max,
            mean_ui=self.nr_mean,
            skew=self.nr_skew,
        )

    def data_source(self):
        return transition_run_length_source(
            "data", self.transition_density, self.max_run_length
        )

    def expected_state_count(self) -> int:
        """State count of the product chain this spec compiles to."""
        return (
            self.max_run_length
            * (2 * self.counter_length - 1)
            * self.n_phase_points
        )

    def build_model(self) -> CDRChainModel:
        """Compile this spec into a :class:`repro.cdr.model.CDRChainModel`."""
        return build_cdr_chain(
            grid=self.grid,
            nw=self.nw_distribution(),
            nr=self.nr_distribution(),
            counter_length=self.counter_length,
            phase_step_units=self.phase_step_units,
            data_source=self.data_source(),
        )

    def replace(self, **changes) -> "CDRSpec":
        """A copy of the spec with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        return (
            f"CDRSpec(M={self.n_phase_points}, phases={self.n_clock_phases}, "
            f"COUNTER={self.counter_length}, p_t={self.transition_density}, "
            f"L={self.max_run_length}, STDnw={self.nw_std:g}, "
            f"MAXnr={self.nr_max:g}, MEANnr={self.nr_mean:g})"
        )
