"""System performance measures derived from the stationary distribution.

"The quantities of interest for our system, such as the probability of a
sampling error, or the mean time between failures due to sampling errors
are thus available from standard Markov chain analysis" (paper, Section 1).

All functions take a compiled :class:`repro.cdr.model.CDRChainModel` and a
stationary distribution over its states.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cdr.model import CDRChainModel
from repro.markov.correlation import autocovariance
from repro.markov.passage import mean_time_between_events, stationary_event_rate

__all__ = [
    "phase_error_pdf",
    "sampled_phase_pdf",
    "bit_error_rate",
    "bit_error_rate_discrete",
    "cycle_slip_rate",
    "mean_symbols_between_slips",
    "phase_statistics",
    "recovered_clock_jitter",
    "accumulated_jitter_variance_rate",
]


def phase_error_pdf(
    model: CDRChainModel, stationary: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stationary distribution of the phase error Phi.

    Returns ``(values, probs)``: the grid values (UI) and their stationary
    probabilities -- the left-hand density of every plot in the paper's
    Figures 4 and 5.
    """
    return model.grid.values.copy(), model.phase_marginal(stationary)


def sampled_phase_pdf(
    model: CDRChainModel, stationary: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stationary distribution of the *noisy* sampling phase Phi + n_w.

    The right-hand density of the paper's plots ("the input to the phase
    detector, i.e., Phi + n_w"); its tails beyond +-1/2 UI are the bit
    error probability.  Computed exactly as the convolution of the phase
    marginal with the discretized ``n_w``.
    """
    phi_vals, phi_probs = phase_error_pdf(model, stationary)
    vv = np.add.outer(phi_vals, model.nw.values).ravel()
    pp = np.multiply.outer(phi_probs, model.nw.probs).ravel()
    order = np.argsort(vv)
    return vv[order], pp[order]


def bit_error_rate_discrete(
    model: CDRChainModel,
    stationary: np.ndarray,
    threshold_ui: float = 0.5,
) -> float:
    """BER by integrating the tails of the discretized ``Phi + n_w``.

    This is exactly the paper's computation ("the BER computed by
    integrating the tails of the distribution computed using MC
    analysis").  Because the discretized ``n_w`` has bounded support, the
    result floors at zero once the tails are out of reach of the largest
    atom; use :func:`bit_error_rate` for deep-tail estimates.
    """
    phi_probs = model.phase_marginal(stationary)
    phi = model.grid.values
    # P(|phi + w| > thr) per grid point, from the n_w atoms.
    noisy = np.add.outer(phi, model.nw.values)  # (M, K)
    exceed = (np.abs(noisy) > threshold_ui).astype(float)
    per_phi = exceed @ model.nw.probs
    return float(np.dot(phi_probs, per_phi))


def bit_error_rate(
    model: CDRChainModel,
    stationary: np.ndarray,
    threshold_ui: float = 0.5,
    nw_std: Optional[float] = None,
) -> float:
    """BER with an exact Gaussian tail for ``n_w``.

    Conditions on the stationary phase error and integrates the *continuous*
    Gaussian eye-opening noise: ``BER = E_phi[Q((t - phi)/s) + Q((t +
    phi)/s)]``.  This keeps BERs meaningful far below the probability floor
    of the finite ``n_w`` discretization (the 1e-10 .. 1e-13 regime the
    paper targets).  ``nw_std`` defaults to the standard deviation of the
    model's ``n_w`` distribution.
    """
    sigma = model.nw.std() if nw_std is None else float(nw_std)
    phi_probs = model.phase_marginal(stationary)
    phi = model.grid.values
    if sigma <= 0.0:
        exceed = (np.abs(phi) > threshold_ui).astype(float)
        return float(np.dot(phi_probs, exceed))
    sq = sigma * math.sqrt(2.0)
    upper = 0.5 * _erfc((threshold_ui - phi) / sq)
    lower = 0.5 * _erfc((threshold_ui + phi) / sq)
    return float(np.dot(phi_probs, upper + lower))


def _erfc(x: np.ndarray) -> np.ndarray:
    from scipy.special import erfc

    return erfc(x)


def _slip_events(model: CDRChainModel):
    """Slip-event description: the sparse flux matrix when the backend
    assembled one, otherwise the per-state flux vector computed
    structurally (matrix-free backends never build the matrix)."""
    E = getattr(model, "slip_matrix", None)
    if E is not None:
        return E
    return model.slip_row_sums()


def cycle_slip_rate(model: CDRChainModel, stationary: np.ndarray) -> float:
    """Expected cycle slips per symbol (stationary flux through the wrap)."""
    return stationary_event_rate(stationary, _slip_events(model))


def mean_symbols_between_slips(model: CDRChainModel, stationary: np.ndarray) -> float:
    """The paper's "average time between cycle slips", in symbols."""
    return mean_time_between_events(stationary, _slip_events(model))


def phase_statistics(model: CDRChainModel, stationary: np.ndarray) -> Dict[str, float]:
    """Mean / RMS / standard deviation / peak of the stationary phase error."""
    values, probs = phase_error_pdf(model, stationary)
    mean = float(np.dot(values, probs))
    second = float(np.dot(values * values, probs))
    var = max(second - mean * mean, 0.0)
    nonzero = probs > 0
    return {
        "mean_ui": mean,
        "rms_ui": math.sqrt(second),
        "std_ui": math.sqrt(var),
        "peak_ui": float(np.max(np.abs(values[nonzero]))) if nonzero.any() else 0.0,
    }


def accumulated_jitter_variance_rate(
    model: CDRChainModel,
    stationary: np.ndarray,
    max_lag: int = 512,
) -> float:
    """CLT variance rate of the *accumulated* phase error.

    ``sigma^2 = R(0) + 2 sum_{k=1..max_lag} R(k)``: the variance of the
    summed recovered-clock phase error grows as ``sigma^2 * n`` symbols.
    This is the sparse, truncated-series counterpart of
    :func:`repro.markov.fundamental.time_average_variance` (which is exact
    but dense); ``max_lag`` must exceed the loop's correlation length.
    """
    f = model.phase_values_per_state()
    R = autocovariance(model.chain, stationary, f, max_lag)
    return float(max(R[0] + 2.0 * R[1:].sum(), 0.0))


def recovered_clock_jitter(
    model: CDRChainModel,
    stationary: np.ndarray,
    max_lag: int = 256,
) -> Dict[str, float]:
    """Recovered-clock jitter characterization from the phase process.

    Returns the RMS jitter (UI), and the correlation length of the phase
    error (lags until the autocovariance first drops below ``1/e`` of its
    variance) -- the quantity behind "specifications on the recovered
    clock jitter".
    """
    f = model.phase_values_per_state()
    R = autocovariance(model.chain, stationary, f, max_lag)
    var = R[0]
    rms = math.sqrt(max(var, 0.0))
    corr_len = max_lag
    if var > 0:
        below = np.flatnonzero(R < var / math.e)
        if below.size:
            corr_len = int(below[0])
    return {"rms_ui": rms, "correlation_symbols": float(corr_len)}
