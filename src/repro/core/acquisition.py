"""Lock-acquisition analysis of the phase-selection loop.

The stationary analyses answer "how does the locked loop err?"; this
module answers "how long until it locks?"  Both reduce to standard
Markov-chain computations on the same compiled model:

* **mean lock time** -- mean first-passage time from any starting phase
  offset to the locked region (solving the linear system of the paper's
  "mean transition times between certain sets of MC states");
* **lock probability vs. time** -- transient distribution propagation,
  giving ``P(locked within k symbols)`` curves and acquisition-time
  quantiles.

The locked region is defined as all states whose phase error lies within
``+-locked_threshold_ui``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cdr.model import CDRChainModel
from repro.markov.passage import hitting_time_moments
from repro.markov.transient import distribution_trajectory

__all__ = [
    "AcquisitionAnalysis",
    "analyze_acquisition",
    "lock_probability_curve",
    "transient_error_rate",
]


def _locked_states(model: CDRChainModel, locked_threshold_ui: float) -> np.ndarray:
    phases = model.phase_values_per_state()
    return np.flatnonzero(np.abs(phases) <= locked_threshold_ui)


def _start_state(model: CDRChainModel, phase_index: int) -> int:
    """Canonical acquisition start: given phase offset, centered counter,
    data source in its initial hidden state."""
    return model.state_index(
        model.data_source.initial_state, 0, int(phase_index)
    )


@dataclass
class AcquisitionAnalysis:
    """Lock-acquisition figures of a CDR design.

    Attributes
    ----------
    locked_threshold_ui:
        Half-width of the locked region in UI.
    mean_lock_time_by_phase:
        For each starting phase index (counter centered, data source at
        its initial state), the expected symbols until the loop first
        enters the locked region.
    std_lock_time_by_phase:
        Standard deviation of the same first-passage time -- the spread
        a lab acquisition-time measurement would see.
    worst_case_symbols:
        Maximum of the means -- the spec-sheet acquisition time.
    worst_case_phase_ui:
        The starting phase error that attains it.
    worst_case_std_symbols:
        Lock-time standard deviation from the worst-case start.
    mean_from_uniform:
        Acquisition time averaged over a uniform random initial phase.
    """

    locked_threshold_ui: float
    mean_lock_time_by_phase: np.ndarray
    std_lock_time_by_phase: np.ndarray
    worst_case_symbols: float
    worst_case_phase_ui: float
    worst_case_std_symbols: float
    mean_from_uniform: float

    def summary(self) -> str:
        return (
            f"lock region |phi| <= {self.locked_threshold_ui:g} UI: "
            f"worst-case {self.worst_case_symbols:.1f} "
            f"+- {self.worst_case_std_symbols:.1f} symbols "
            f"(from {self.worst_case_phase_ui:+.3f} UI), "
            f"uniform-start mean {self.mean_from_uniform:.1f} symbols"
        )


def analyze_acquisition(
    model: CDRChainModel,
    locked_threshold_ui: float = 0.1,
) -> AcquisitionAnalysis:
    """Mean lock times from every starting phase offset.

    Raises :class:`ValueError` when the locked region is empty (threshold
    below the grid resolution).
    """
    if locked_threshold_ui <= 0:
        raise ValueError("locked_threshold_ui must be positive")
    locked = _locked_states(model, locked_threshold_ui)
    if locked.size == 0:
        raise ValueError(
            "locked region contains no grid points; increase the threshold"
        )
    t, v = hitting_time_moments(model.chain, locked)
    M = model.n_phase_points
    starts = np.array([_start_state(model, m) for m in range(M)])
    by_phase = t[starts]
    std_by_phase = np.sqrt(v[starts])
    finite = np.where(np.isfinite(by_phase), by_phase, -np.inf)
    worst = int(np.argmax(finite))
    return AcquisitionAnalysis(
        locked_threshold_ui=locked_threshold_ui,
        mean_lock_time_by_phase=by_phase,
        std_lock_time_by_phase=std_by_phase,
        worst_case_symbols=float(by_phase[worst]),
        worst_case_phase_ui=float(model.grid.value_of(worst)),
        worst_case_std_symbols=float(std_by_phase[worst]),
        mean_from_uniform=float(np.mean(by_phase[np.isfinite(by_phase)])),
    )


def lock_probability_curve(
    model: CDRChainModel,
    n_symbols: int,
    start_phase_ui: Optional[float] = None,
    locked_threshold_ui: float = 0.1,
) -> np.ndarray:
    """``P(phase error within the locked region at symbol k)`` for k = 0..n.

    Not a first-passage probability (the loop may leave the region again);
    this is the transient lock-indicator expectation, the curve an
    acquisition-time lab measurement averages over.  ``start_phase_ui``
    defaults to the worst case: half a UI away.
    """
    if n_symbols < 0:
        raise ValueError("n_symbols must be non-negative")
    if start_phase_ui is None:
        start_phase_ui = -0.5 + model.grid.step / 2.0
    m0 = model.grid.index_of(start_phase_ui)
    start = _start_state(model, m0)
    x0 = np.zeros(model.n_states)
    x0[start] = 1.0
    locked = _locked_states(model, locked_threshold_ui)
    mask = np.zeros(model.n_states)
    mask[locked] = 1.0
    traj = distribution_trajectory(model.chain, x0, n_symbols)
    return traj @ mask


def transient_error_rate(
    model: CDRChainModel,
    n_symbols: int,
    start_phase_ui: Optional[float] = None,
    threshold_ui: float = 0.5,
) -> np.ndarray:
    """Per-symbol decision-error probability during acquisition.

    ``out[k] = P(|Phi_k + n_w| > threshold)`` starting from the given
    phase offset -- the burst of bit errors a receiver emits while pulling
    in, before settling to the stationary BER.  Uses the discretized
    ``n_w`` atoms (exact w.r.t. the chain model).
    """
    if n_symbols < 0:
        raise ValueError("n_symbols must be non-negative")
    if start_phase_ui is None:
        start_phase_ui = -0.5 + model.grid.step / 2.0
    m0 = model.grid.index_of(start_phase_ui)
    x0 = np.zeros(model.n_states)
    x0[_start_state(model, m0)] = 1.0
    # Per-state error probability under the discretized n_w.
    phi = model.grid.values
    noisy = np.add.outer(phi, model.nw.values)
    per_phi = (np.abs(noisy) > threshold_ui).astype(float) @ model.nw.probs
    D = model.n_data_states * model.n_counter_states
    per_state = np.tile(per_phi, D)
    traj = distribution_trajectory(model.chain, x0, n_symbols)
    return traj @ per_state
