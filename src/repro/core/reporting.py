"""Plain-text reporting helpers used by examples and the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_pdf_ascii", "format_record"]


def format_table(
    records: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".4g",
) -> str:
    """Render a list of dict records as an aligned ASCII table."""
    if not records:
        return "(no rows)"
    if columns is None:
        # Union of keys across all records, in first-seen order, so a
        # ragged record list still renders every field.
        columns = list(dict.fromkeys(k for rec in records for k in rec))
    if not columns:
        return "(no columns)"

    def fmt(v) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    rows = [[fmt(rec.get(c, "")) for c in columns] for rec in records]
    widths = [
        max(len(str(c)), max(len(r[i]) for r in rows)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(x.ljust(w) for x, w in zip(r, widths)) for r in rows)
    return "\n".join([header, rule, body])


def format_pdf_ascii(
    values: np.ndarray,
    probs: np.ndarray,
    n_bins: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """A terminal-friendly rendering of a probability density.

    Bins the atoms into ``n_bins`` columns and draws a column chart --
    enough to see the Figure-4 densities without a plotting stack.
    """
    values = np.asarray(values, dtype=float).ravel()
    probs = np.asarray(probs, dtype=float).ravel()
    if values.shape != probs.shape:
        raise ValueError("values and probs must have the same shape")
    # Non-finite atoms (NaN/inf values or weights) cannot be binned;
    # drop them rather than propagating NaN into the whole chart.
    finite = np.isfinite(values) & np.isfinite(probs)
    values, probs = values[finite], probs[finite]
    if values.size == 0:
        return (title + "\n" if title else "") + "(no finite probability mass)"
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    mass, _ = np.histogram(values, bins=edges, weights=probs)
    peak = mass.max() if mass.max() > 0 else 1.0
    levels = np.round(mass / peak * height).astype(int)
    lines = []
    if title:
        lines.append(title)
    for row in range(height, 0, -1):
        lines.append("".join("#" if lv >= row else " " for lv in levels))
    lines.append("-" * n_bins)
    lines.append(f"{lo:+.3f} UI".ljust(n_bins - 10) + f"{hi:+.3f} UI")
    return "\n".join(lines)


def format_record(record: Dict, floatfmt: str = ".4g") -> str:
    """One-record ``key: value`` listing."""
    if not record:
        return "(empty record)"
    return "\n".join(
        f"{k}: {format(v, floatfmt) if isinstance(v, float) else v}"
        for k, v in record.items()
    )
