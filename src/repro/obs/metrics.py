"""Process-wide metrics registry with Prometheus text exposition.

Counters, gauges and histograms for the analysis pipeline, exportable two
ways from the same registry:

* :meth:`MetricsRegistry.render_prometheus` -- the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` + samples), ready to serve
  from a ``/metrics`` endpoint or push to a gateway;
* :meth:`MetricsRegistry.to_dict` -- a JSON-friendly snapshot embedded in
  run manifests (:mod:`repro.obs.manifest`).

Library code uses the process-wide default registry so metrics accumulate
across every analysis in the process::

    from repro.obs import get_registry

    get_registry().counter(
        "repro_analyses_total", "Completed end-to-end analyses"
    ).inc()

Metric instances are get-or-create: asking for an existing name returns
the registered instance (a conflicting type raises ``ValueError``).
Labels are passed per-observation (``c.inc(1, solver="multigrid")``);
each distinct label combination is tracked as its own sample series.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "render_snapshot_prometheus",
]

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Escape a label value per the text exposition format (backslash,
    double quote, line feed)."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    """Escape HELP text per the text exposition format.

    Unlike label values, HELP lines escape only backslash and line feed;
    double quotes are literal.
    """
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    return repr(float(v))


class _Metric:
    """Shared bookkeeping: name, help text, per-label-set samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def _type_line(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """Monotonically increasing count (events, symbols, iterations)."""

    kind = "counter"

    def __init__(self, name: str, help: str) -> None:
        super().__init__(name, help)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self._type_line()
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(k), "value": v}
                for k, v in sorted(self._values.items())
            ],
        }


class Gauge(_Metric):
    """A value that can go up and down (throughput, sizes, residuals)."""

    kind = "gauge"

    def __init__(self, name: str, help: str) -> None:
        super().__init__(name, help)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    render = Counter.render
    to_dict = Counter.to_dict


#: Default histogram buckets, tuned for stage durations in seconds.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0
)


class Histogram(_Metric):
    """Distribution of observations with cumulative Prometheus buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # per label-set: (per-bound counts, total count, total sum)
        self._series: Dict[_LabelKey, Tuple[List[int], List[float]]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            if key not in self._series:
                self._series[key] = ([0] * len(self.bounds), [0, 0.0])
            counts, totals = self._series[key]
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[i] += 1
            totals[0] += 1
            totals[1] += value

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return int(series[1][0]) if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return float(series[1][1]) if series else 0.0

    def render(self) -> List[str]:
        lines = self._type_line()
        for key in sorted(self._series):
            counts, (n, total) = self._series[key]
            for bound, c in zip(self.bounds, counts):
                le = _render_labels(key, [("le", _format_value(bound))])
                lines.append(f"{self.name}_bucket{le} {int(c)}")
            le = _render_labels(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{le} {int(n)}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {int(n)}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.bounds),
            "samples": [
                {
                    "labels": dict(key),
                    "bucket_counts": list(counts),
                    "count": int(n),
                    "sum": total,
                }
                for key, (counts, (n, total)) in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """Registry of named metrics with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        with self._lock:
            self._metrics.clear()

    # -- export ---------------------------------------------------------- #

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot ``{metric name: {type, help, samples}}``."""
        return {name: m.to_dict() for name, m in sorted(self._metrics.items())}


def render_snapshot_prometheus(snapshot: Dict[str, Any]) -> str:
    """Re-render a registry JSON snapshot as Prometheus exposition text.

    ``repro stats --prometheus`` uses this when a run manifest carries
    only the ``metrics.snapshot`` section (older manifests, or manifests
    stripped for size), so histograms still come out with their
    ``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` series and
    properly escaped label values.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload.get("type", "untyped")
        lines.append(f"# HELP {name} {_escape_help(payload.get('help', ''))}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in payload.get("samples", []):
            key = _label_key(sample.get("labels") or {})
            if kind == "histogram":
                counts = sample.get("bucket_counts", [])
                for bound, c in zip(payload.get("buckets", []), counts):
                    le = _render_labels(key, [("le", _format_value(bound))])
                    lines.append(f"{name}_bucket{le} {int(c)}")
                le = _render_labels(key, [("le", "+Inf")])
                lines.append(f"{name}_bucket{le} {int(sample.get('count', 0))}")
                lines.append(
                    f"{name}_sum{_render_labels(key)} "
                    f"{_format_value(sample.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{_render_labels(key)} "
                    f"{int(sample.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(key)} "
                    f"{_format_value(sample.get('value', 0.0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide default registry used by instrumented library code.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY
