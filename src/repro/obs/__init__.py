"""Pipeline-wide observability: spans, metrics, and run manifests.

Three layers, designed to compose into one artifact per run:

:mod:`repro.obs.tracing`
    A lightweight span tracer.  Library code opens nested spans
    (``with span("cdr.build_tpm") as sp: ...``) carrying wall/CPU time
    and structured attributes; a no-op fallback keeps the uninstrumented
    cost to one context-variable lookup.
:mod:`repro.obs.metrics`
    A process-wide registry of counters, gauges and histograms with
    Prometheus text exposition and a JSON snapshot form.
:mod:`repro.obs.manifest`
    Run manifests (schema ``repro.run-trace/1``): spec, versions, span
    tree, stage timings, peak RSS, result digests, the embedded
    ``repro.solver-trace/1`` solver trace, and the metrics snapshot.
:mod:`repro.obs.profile`
    Operator-level profiling: an instrumenting ``TransitionOperator``
    wrapper (matvec/rmatvec calls, bytes moved, per-call wall time,
    attributed per solver / multigrid level / measure kernel) and an
    optional deterministic stack profiler with collapsed-stack and
    speedscope export.  Snapshots land in run manifests as the
    ``profile`` section (schema ``repro.profile/1``).

The CLI surfaces all of it: ``python -m repro analyze --metrics out.json``
writes a manifest and ``python -m repro stats out.json`` pretty-prints one.
"""

from repro.obs.tracing import (
    Span,
    Tracer,
    current_span,
    get_tracer,
    span,
    use_tracer,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.manifest import (
    RUN_TRACE_SCHEMA,
    build_run_manifest,
    digest_array,
    format_run_manifest,
    load_run_manifest,
    peak_rss_bytes,
    write_run_manifest,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    InstrumentedOperator,
    ProfileSession,
    get_profile_session,
    instrument_operator,
    profiled,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "RUN_TRACE_SCHEMA",
    "build_run_manifest",
    "write_run_manifest",
    "load_run_manifest",
    "format_run_manifest",
    "peak_rss_bytes",
    "digest_array",
    "PROFILE_SCHEMA",
    "InstrumentedOperator",
    "ProfileSession",
    "get_profile_session",
    "instrument_operator",
    "profiled",
]
