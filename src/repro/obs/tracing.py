"""Span-based tracing for the end-to-end analysis pipeline.

The paper's tractability argument ("million state problems in less than an
hour") is a statement about *where time goes*: matrix formation versus the
stationary solve versus the measure extraction.  This module generalizes
the ad-hoc ``form_time`` / ``solve_time`` floats into nested, attributed
spans covering the whole flow:

* a :class:`Span` records wall-clock time (``perf_counter``), CPU time
  (``process_time``), arbitrary structured attributes (``n_states``,
  ``nnz``, ``memory_bytes`` ...) and its child spans;
* a :class:`Tracer` owns a stack of open spans and the finished roots;
* the module-level :func:`span` context manager reports to the *active*
  tracer (a :mod:`contextvars` variable, so nested/threaded flows behave),
  and collapses to a shared no-op when no tracer is active -- instrumented
  library code costs one context-variable lookup when nobody is listening.

Typical use::

    from repro.obs import Tracer, use_tracer, span

    tracer = Tracer()
    with use_tracer(tracer):
        with span("cdr.analyze"):
            ...  # nested spans from the library land under this root
    print(tracer.to_dicts())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One timed, attributed stage of a pipeline run.

    Times are ``perf_counter`` / ``process_time`` readings; consumers
    should only use differences (:attr:`wall_time`, :attr:`cpu_time`) and
    the start offsets relative to an enclosing span.
    """

    name: str
    start: float
    cpu_start: float
    end: Optional[float] = None
    cpu_end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    # -- lifecycle ------------------------------------------------------- #

    def finish(self) -> "Span":
        if self.end is None:
            self.end = time.perf_counter()
            self.cpu_end = time.process_time()
        return self

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def wall_time(self) -> float:
        """Wall-clock seconds (elapsed so far when still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    @property
    def cpu_time(self) -> float:
        """Process CPU seconds (elapsed so far when still open)."""
        cpu_end = self.cpu_end if self.cpu_end is not None else time.process_time()
        return cpu_end - self.cpu_start

    # -- attributes ------------------------------------------------------ #

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def set_attributes(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    # -- queries --------------------------------------------------------- #

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> Optional["Span"]:
        """First span (depth-first, self included) with the given name."""
        for s in self.iter_spans():
            if s.name == name:
                return s
        return None

    def stage_seconds(self) -> Dict[str, float]:
        """Wall seconds of each *direct* child, keyed by span name.

        Duplicate names accumulate (e.g. per-point sweep spans).
        """
        out: Dict[str, float] = {}
        for child in self.children:
            out[child.name] = out.get(child.name, 0.0) + child.wall_time
        return out

    def to_dict(self, origin: Optional[float] = None) -> Dict[str, Any]:
        """JSON-serializable nested form; offsets relative to ``origin``."""
        if origin is None:
            origin = self.start
        return {
            "name": self.name,
            "start_offset_s": self.start - origin,
            "wall_s": self.wall_time,
            "cpu_s": self.cpu_time,
            "attributes": dict(self.attributes),
            "children": [c.to_dict(origin) for c in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.wall_time:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NullSpan:
    """Stateless stand-in yielded when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self

    def set_attributes(self, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager opening one span on a specific tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self._span is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects a tree of spans for one run (not thread-safe by design:
    use one tracer per worker and merge the exported dicts)."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child span of the innermost open span (or a new root)."""
        return _SpanContext(self, name, attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON form of all root spans (offsets relative to first root)."""
        if not self.roots:
            return []
        origin = self.roots[0].start
        return [r.to_dict(origin) for r in self.roots]

    def find(self, name: str) -> Optional[Span]:
        for root in self.roots + self._stack[:1]:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    # -- internal -------------------------------------------------------- #

    def _open(self, name: str, attributes: Dict[str, Any]) -> Span:
        s = Span(
            name=name,
            start=time.perf_counter(),
            cpu_start=time.process_time(),
            attributes=dict(attributes),
        )
        if self._stack:
            self._stack[-1].children.append(s)
        self._stack.append(s)
        return s

    def _close(self, s: Optional[Span]) -> None:
        if s is None:
            return
        s.finish()
        if self._stack and self._stack[-1] is s:
            self._stack.pop()
        else:  # tolerate out-of-order exits instead of corrupting the tree
            try:
                self._stack.remove(s)
            except ValueError:
                pass
        if not self._stack and s not in self.roots:
            self.roots.append(s)


_ACTIVE_TRACER: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None
)


def get_tracer() -> Optional[Tracer]:
    """The tracer instrumented library code currently reports to."""
    return _ACTIVE_TRACER.get()


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the active tracer for the enclosed block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (no-op when none is active).

    Usage::

        with span("cdr.build_tpm", n_states=n) as sp:
            ...
            sp.set_attributes(nnz=P.nnz)
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


def current_span():
    """The innermost open span of the active tracer (or a no-op span)."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None or tracer.current is None:
        return _NULL_SPAN
    return tracer.current
