"""Run manifests: one JSON artifact telling a whole analysis's story.

A manifest (schema ``repro.run-trace/1``, the pipeline-wide extension of
the solver-level ``repro.solver-trace/1`` from :mod:`repro.markov.monitor`)
captures everything needed to audit or reproduce one run:

* the :class:`~repro.core.spec.CDRSpec` that was analyzed,
* package versions (python / numpy / scipy / repro) and the platform,
* the nested span tree (stage wall/CPU timings and structured attributes,
  see :mod:`repro.obs.tracing`) plus a flat per-stage summary,
* peak RSS of the process,
* headline results with SHA-256 digests of the stationary vector and the
  result record (regression-diffable without storing megabytes),
* the embedded per-iteration solver trace (``repro.solver-trace/1``),
* a metrics snapshot, both as JSON and as Prometheus exposition text.

The CLI writes one via ``python -m repro analyze ... --metrics out.json``
and pretty-prints one via ``python -m repro stats out.json``.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from typing import IO, Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Span, Tracer

__all__ = [
    "RUN_TRACE_SCHEMA",
    "build_run_manifest",
    "write_run_manifest",
    "load_run_manifest",
    "format_run_manifest",
    "peak_rss_bytes",
    "digest_array",
]

#: Schema tag embedded in every run manifest.
RUN_TRACE_SCHEMA = "repro.run-trace/1"


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or None when unavailable."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kibibytes on Linux, bytes on macOS.
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def digest_array(arr) -> str:
    """SHA-256 hex digest of an ndarray's contiguous byte image."""
    import numpy as np

    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def _digest_json(payload: Any) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def _versions() -> Dict[str, str]:
    import numpy
    import scipy

    import repro
    from repro.kernels import active_tier

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": repro.__version__,
        # Which matvec kernel tier operators in this run applied through
        # (numpy / cext / numba) -- timings are not comparable across tiers.
        "kernels": active_tier(),
    }


def _platform() -> Dict[str, str]:
    import platform

    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "python_implementation": platform.python_implementation(),
    }


def build_run_manifest(
    *,
    kind: str = "analysis",
    spec: Any = None,
    analysis: Any = None,
    tracer: Optional[Tracer] = None,
    results: Optional[Dict[str, Any]] = None,
    solver_trace: Optional[Dict[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
    argv: Optional[List[str]] = None,
    resilience: Optional[List[Dict[str, Any]]] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a ``repro.run-trace/1`` manifest dict.

    Every argument is optional so the same builder serves analyses,
    sweeps, acquisition runs and benchmarks; pass whatever the run
    produced and the manifest records that subset.

    Parameters
    ----------
    kind:
        Free-form run category (``analysis`` / ``sweep`` / ``acquire`` /
        ``benchmark`` ...).
    spec:
        A :class:`~repro.core.spec.CDRSpec` or an already-serialized dict.
    analysis:
        A :class:`~repro.core.analyzer.CDRAnalysis`; contributes headline
        results, digests, stage timings, the span tree and the embedded
        solver trace when not given explicitly.
    tracer:
        The run's :class:`~repro.obs.tracing.Tracer`; its root spans
        become the manifest's ``spans`` (overriding ``analysis.trace``).
    results:
        Extra result fields merged over the analysis-derived ones.
    solver_trace:
        A ``repro.solver-trace/1`` dict (e.g.
        ``RecordingMonitor.to_trace()``); defaults to the recording the
        analyzer captured.
    registry:
        Metrics registry to snapshot; defaults to the process-wide one.
    argv:
        Command line to record (defaults to ``sys.argv`` of the process).
    resilience:
        Structured resilience events (solver attempts, escalations,
        backend degradations, checkpoint resumes, fault injections);
        defaults to ``analysis.resilience_events`` when the analysis ran
        on the resilient path.
    profile:
        A ``repro.profile/1`` snapshot dict (hot-path operator
        attribution); defaults to the active
        :class:`repro.obs.profile.ProfileSession`'s snapshot when one is
        open while the manifest is built, else the section is omitted.
    """
    registry = get_registry() if registry is None else registry

    if profile is None:
        from repro.obs.profile import get_profile_session

        session = get_profile_session()
        if session is not None and session.operators:
            profile = session.snapshot()

    spec_dict: Optional[Dict[str, Any]] = None
    if spec is None and analysis is not None:
        spec = getattr(analysis, "spec", None)
    if spec is not None:
        if isinstance(spec, dict):
            spec_dict = spec
        else:
            from repro.core.serialize import spec_to_dict

            spec_dict = spec_to_dict(spec)

    spans: List[Dict[str, Any]] = []
    stages: Dict[str, float] = {}
    if tracer is not None:
        spans = tracer.to_dicts()
        for root in tracer.roots:
            for name, seconds in root.stage_seconds().items():
                stages[name] = stages.get(name, 0.0) + seconds
    elif analysis is not None and getattr(analysis, "trace", None) is not None:
        spans = [analysis.trace.to_dict()]
    if analysis is not None:
        # The analyzer's canonical stage summary wins over raw span sums.
        stages.update(getattr(analysis, "stage_seconds", {}) or {})

    result_record: Dict[str, Any] = {}
    digests: Dict[str, str] = {}
    if analysis is not None:
        result_record = {
            "n_states": analysis.n_states,
            "ber": analysis.ber,
            "ber_discrete": analysis.ber_discrete,
            "slip_rate": analysis.slip_rate,
            "mean_symbols_between_slips": analysis.mean_symbols_between_slips,
            "phase_stats": dict(analysis.phase_stats),
            "backend": getattr(analysis, "backend", None),
            "solver_entry": getattr(analysis, "solver_entry", None),
            "solver_method": analysis.solver_result.method,
            "solver_iterations": analysis.solver_result.iterations,
            "solver_residual": analysis.solver_result.residual,
            "solver_converged": analysis.solver_result.converged,
        }
        digests["stationary_sha256"] = digest_array(analysis.stationary)
        if solver_trace is None and analysis.solver_recording is not None:
            solver_trace = analysis.solver_recording.to_trace()
        if resilience is None:
            resilience = getattr(analysis, "resilience_events", None) or None
    if results:
        result_record.update(results)
    if result_record:
        digests["results_sha256"] = _digest_json(result_record)
    if spec_dict is not None:
        digests["spec_sha256"] = _digest_json(spec_dict)

    return {
        "schema": RUN_TRACE_SCHEMA,
        "kind": kind,
        "created_unix": time.time(),
        "argv": list(sys.argv) if argv is None else list(argv),
        "versions": _versions(),
        "platform": _platform(),
        "spec": spec_dict,
        "spans": spans,
        "stages": stages,
        "peak_rss_bytes": peak_rss_bytes(),
        "results": result_record,
        "digests": digests,
        "solver_trace": solver_trace,
        "resilience": list(resilience) if resilience else None,
        "profile": profile,
        "metrics": {
            "snapshot": registry.to_dict(),
            "prometheus": registry.render_prometheus(),
        },
    }


def write_run_manifest(
    path_or_file: Union[str, IO[str]],
    manifest: Dict[str, Any],
    indent: int = 2,
) -> None:
    """Write a manifest as JSON to a path or open text file."""
    if manifest.get("schema") != RUN_TRACE_SCHEMA:
        raise ValueError("not a run manifest (missing/wrong schema tag)")
    if hasattr(path_or_file, "write"):
        json.dump(manifest, path_or_file, indent=indent)
        return
    with open(path_or_file, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=indent)
        fh.write("\n")


def load_run_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest back, validating its schema tag."""
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != RUN_TRACE_SCHEMA:
        raise ValueError(
            f"unrecognized manifest schema {manifest.get('schema')!r}; "
            f"expected {RUN_TRACE_SCHEMA!r}"
        )
    return manifest


# ---------------------------------------------------------------------- #
# pretty-printing (the `repro stats` command)
# ---------------------------------------------------------------------- #

_SPAN_ATTR_ORDER = (
    "n_states", "nnz", "memory_bytes", "method", "iterations", "residual",
    "converged", "parameter", "value", "mode", "symbols_per_second",
)


def _format_span(node: Dict[str, Any], depth: int, lines: List[str]) -> None:
    attrs = node.get("attributes", {})
    shown = []
    for key in _SPAN_ATTR_ORDER:
        if key in attrs:
            v = attrs[key]
            shown.append(f"{key}={v:.3g}" if isinstance(v, float) else f"{key}={v}")
    extra = f"  [{' '.join(shown)}]" if shown else ""
    lines.append(
        f"  {'  ' * depth}{node['name']:<{max(28 - 2 * depth, 8)}} "
        f"{node['wall_s']:9.3f} s  (cpu {node['cpu_s']:.3f} s){extra}"
    )
    for child in node.get("children", []):
        _format_span(child, depth + 1, lines)


def _format_resilience_event(ev: Dict[str, Any]) -> str:
    kind = ev.get("event", "?")
    if kind == "solver_attempt":
        line = f"[{ev.get('status', '?')}] {ev.get('method', '?')}"
        if ev.get("iterations") is not None:
            line += f": {ev['iterations']} iterations"
        if ev.get("residual") is not None:
            line += f", residual {ev['residual']:.3e}"
        if ev.get("perturbed_x0"):
            line += " (perturbed x0)"
        if ev.get("warm_x0"):
            line += " (warm x0)"
        if ev.get("error_type"):
            line += f" -- {ev['error_type']}: {ev.get('message', '')}"
        return line
    if kind == "backend_degraded":
        return (
            f"backend degraded {ev.get('from_backend', '?')} -> "
            f"{ev.get('to_backend', '?')} ({ev.get('reason', '')})"
        )
    if kind == "checkpoint_resume":
        return (
            f"resumed from checkpoint at iteration {ev.get('iteration', '?')}"
        )
    return " ".join(f"{k}={v}" for k, v in ev.items())


def _format_failures_by_cause(failed: List[Dict[str, Any]]) -> List[str]:
    """Group per-point failure entries by taxonomy family + leaf class.

    The entries carry the typed failure through the ledger round-trip
    (``taxonomy`` is the nearest resilience-taxonomy family, ``"external"``
    for exceptions from outside it), so a 40-point sweep with mixed
    failure modes reads as causes, not as 40 interchangeable errors.
    """
    groups: Dict[Any, List[Dict[str, Any]]] = {}
    for entry in failed:
        key = (entry.get("taxonomy", "external"),
               entry.get("error_type", "unknown"))
        groups.setdefault(key, []).append(entry)
    lines = [f"failures by cause ({len(failed)} point(s)):"]
    for (taxonomy, error_type) in sorted(groups):
        entries = groups[(taxonomy, error_type)]
        indices = ", ".join(str(e.get("index", "?")) for e in entries[:8])
        if len(entries) > 8:
            indices += ", ..."
        label = error_type if taxonomy in (error_type, "external") \
            else f"{taxonomy}/{error_type}"
        lines.append(
            f"  {label}: {len(entries)} point(s) [{indices}]"
        )
        message = entries[0].get("message")
        if message:
            lines.append(f"    e.g. {message}")
    return lines


def format_run_manifest(manifest: Dict[str, Any]) -> str:
    """Human-readable rendering of a run manifest (``repro stats``)."""
    lines: List[str] = []
    created = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(manifest.get("created_unix", 0))
    )
    lines.append(f"{manifest['schema']} ({manifest.get('kind', '?')}) -- {created}")
    versions = manifest.get("versions", {})
    if versions:
        lines.append(
            "versions: " + "  ".join(f"{k} {v}" for k, v in versions.items())
        )
    rss = manifest.get("peak_rss_bytes")
    if rss:
        lines.append(f"peak RSS: {rss / 1e6:.1f} MB")
    spec = manifest.get("spec")
    if spec:
        keys = ("n_phase_points", "n_clock_phases", "counter_length",
                "nw_std", "nr_max", "nr_mean")
        lines.append(
            "spec: " + "  ".join(f"{k}={spec[k]}" for k in keys if k in spec)
        )
    spans = manifest.get("spans") or []
    if spans:
        lines.append("spans:")
        for root in spans:
            _format_span(root, 0, lines)
    results = manifest.get("results") or {}
    if results:
        lines.append("results:")
        for key, value in results.items():
            if isinstance(value, float):
                lines.append(f"  {key}: {value:.6g}")
            elif not isinstance(value, (dict, list)):
                lines.append(f"  {key}: {value}")
    exec_stats = results.get("exec_stats") or {}
    if exec_stats:
        parts = [f"jobs={exec_stats.get('jobs')}",
                 f"mode={exec_stats.get('mode')}"]
        parts += [
            f"{key}={exec_stats[key]}"
            for key in ("completed", "failed", "retries", "timeouts",
                        "workers_lost", "respawns", "warm_starts")
            if exec_stats.get(key)
        ]
        lines.append("executor: " + "  ".join(parts))
    failed = results.get("failed_points") or results.get("failed_seeds") or []
    if failed:
        lines.extend(_format_failures_by_cause(failed))
    trace = manifest.get("solver_trace")
    if trace:
        lines.append(
            f"solver trace: {trace.get('method')} -- "
            f"{trace.get('iterations')} iterations recorded, "
            f"residual {trace.get('residual'):.3e}, "
            f"{len(trace.get('vcycle_events') or [])} V-cycle level events"
        )
    resilience = manifest.get("resilience") or []
    if resilience:
        lines.append("resilience:")
        for ev in resilience:
            lines.append("  " + _format_resilience_event(ev))
    profile = manifest.get("profile") or {}
    hot_path = profile.get("hot_path") or []
    if hot_path:
        lines.append("hot path (operator attribution):")
        for row in hot_path:
            mb = row.get("bytes", 0) / 1e6
            lines.append(
                f"  {row['role'] + '.' + row['op']:<36} "
                f"{row['seconds']:9.4f} s  {row['calls']:>8} calls"
                + (f"  {mb:10.1f} MB" if mb else "")
            )
    snapshot = (manifest.get("metrics") or {}).get("snapshot") or {}
    if snapshot:
        lines.append(f"metrics ({len(snapshot)}):")
        for name, payload in snapshot.items():
            samples = payload.get("samples", [])
            if payload.get("type") == "histogram":
                n = sum(s.get("count", 0) for s in samples)
                total = sum(s.get("sum", 0.0) for s in samples)
                lines.append(
                    f"  {name} ({payload['type']}): "
                    f"count={n} sum={total:.6g}"
                )
            else:
                parts = []
                for s in samples[:4]:
                    labels = dict(s.get("labels") or {})
                    tag = (
                        "{" + ",".join(f'{k}="{v}"' for k, v in labels.items()) + "} "
                        if labels else ""
                    )
                    parts.append(f"{tag}{s['value']:g}")
                lines.append(f"  {name} ({payload['type']}): {', '.join(parts)}")
    digests = manifest.get("digests") or {}
    if digests:
        lines.append(
            "digests: "
            + "  ".join(f"{k}={v[:12]}" for k, v in digests.items())
        )
    return "\n".join(lines)
