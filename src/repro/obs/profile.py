"""Operator-level profiling: where the matvec time actually goes.

ROADMAP item 1 blames the Python-level matvec for the matrix-free
performance gap, but until now nothing in the pipeline could *attribute*
wall-clock to operator x solver x stage.  This module adds two
instruments, both off by default and activated through one contextvar so
the uninstrumented cost of the hooks is a single ``ContextVar.get()``:

:class:`InstrumentedOperator`
    A transparent :class:`~repro.markov.linop.TransitionOperator` wrapper
    counting calls, per-call wall time and vector bytes moved for every
    protocol method (``matvec`` / ``rmatvec`` / ``diagonal`` /
    ``row_sums`` and the optional ``to_csr`` / ``restrict`` /
    ``matmat`` / ``rmatmat``).  Solvers,
    multigrid levels and the scenario measure kernels wrap the operators
    they consume via :func:`instrument_operator`, which collapses to the
    identity when no session is active.

:class:`ProfileSession`
    Collects the per-role operator statistics, optionally mirrors each
    call into Prometheus histograms (``repro_operator_call_seconds``,
    ``repro_operator_bytes_total``) and, with ``stacks=True``, runs a
    deterministic profiler (``sys.setprofile``, exact call stacks -- not
    sampling) whose aggregated self-time stacks export as collapsed-stack
    text (``flamegraph.pl`` / speedscope-ingestible) or as a speedscope
    JSON document.  Each stack is prefixed with the innermost open
    :mod:`repro.obs` span, so flamegraphs read per pipeline stage.

Typical use::

    from repro.obs import profile

    with profile.profiled(stacks=True) as session:
        analyze_cdr(spec)
    print(session.snapshot()["hot_path"])        # ranked operator cost
    session.write_collapsed("analyze.collapsed") # flamegraph input
    session.write_speedscope("analyze.speedscope.json")

The session snapshot (schema ``repro.profile/1``) is embedded as the
``profile`` section of ``repro.run-trace/1`` manifests whenever a session
is active while the manifest is built.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "PROFILE_SCHEMA",
    "InstrumentedOperator",
    "ProfileSession",
    "get_profile_session",
    "instrument_operator",
    "profiled",
]

#: Schema tag of a session snapshot (the manifest ``profile`` section).
PROFILE_SCHEMA = "repro.profile/1"

#: Buckets for per-call operator timings (microseconds to seconds).
OPERATOR_CALL_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0
)


def _nbytes(value: Any) -> int:
    """Bytes moved by one argument/result (0 for non-array values)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray):  # scipy sparse matrices
        total = int(data.nbytes)
        for name in ("indices", "indptr", "row", "col"):
            arr = getattr(value, name, None)
            if isinstance(arr, np.ndarray):
                total += int(arr.nbytes)
        return total
    return 0


class InstrumentedOperator:
    """Counting wrapper around any transition operator.

    Satisfies the full :class:`~repro.markov.linop.TransitionOperator`
    protocol and forwards the *optional* capabilities (``to_csr``,
    ``restrict``, the blocked ``matmat`` / ``rmatmat``) only when the
    wrapped operator has them, so capability
    probes (``ensure_csr``, matrix-free multigrid) behave exactly as they
    would on the bare operator.  Every forwarded call is timed and its
    vector traffic (argument + result bytes) recorded on the session
    under this wrapper's ``role`` label.
    """

    __slots__ = ("inner", "role", "_session")

    def __init__(self, inner, role: str, session: "ProfileSession") -> None:
        self.inner = inner
        self.role = role
        self._session = session
        session.note_operator(role, type(inner).__name__, inner.shape[0])

    @property
    def shape(self) -> Tuple[int, int]:
        return self.inner.shape

    def _timed(self, kind: str, fn, *args):
        t0 = time.perf_counter()
        out = fn(*args)
        seconds = time.perf_counter() - t0
        moved = _nbytes(out)
        for a in args:
            moved += _nbytes(a)
        self._session.record(self.role, kind, seconds, moved)
        return out

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self._timed("matvec", self.inner.matvec, v)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self._timed("rmatvec", self.inner.rmatvec, x)

    def diagonal(self) -> np.ndarray:
        return self._timed("diagonal", self.inner.diagonal)

    def row_sums(self) -> np.ndarray:
        return self._timed("row_sums", self.inner.row_sums)

    def __getattr__(self, name: str):
        # Optional capabilities stay optional: looked up on the wrapped
        # operator (AttributeError propagates for absent ones) and counted
        # when present.  Everything else forwards untouched.
        attr = getattr(self.inner, name)
        if name in ("to_csr", "restrict", "matmat", "rmatmat") and callable(attr):
            def counted(*args, _attr=attr, _name=name, **kwargs):
                t0 = time.perf_counter()
                out = _attr(*args, **kwargs)
                self._session.record(
                    self.role, _name, time.perf_counter() - t0, _nbytes(out)
                )
                return out
            return counted
        return attr

    def __repr__(self) -> str:
        return f"InstrumentedOperator({self.inner!r}, role={self.role!r})"


class _StackProfiler:
    """Deterministic (event-based, not sampling) stack profiler.

    A ``sys.setprofile`` hook attributes every slice of wall time to the
    full Python call stack active during it, aggregated into
    ``{stack tuple: self seconds}``.  Stacks are rooted at the innermost
    open :mod:`repro.obs` span (``span:<name>`` synthetic frame) so the
    export separates pipeline stages.  Being deterministic, two captures
    of the same run see the same call tree -- only the timings move.
    """

    def __init__(self) -> None:
        self.self_seconds: Dict[Tuple[str, ...], float] = {}
        self._stack: List[str] = []
        self._last: Optional[float] = None
        self._span_cache: Tuple[Optional[int], str] = (None, "span:-")
        self._previous = None

    # -- span prefix ----------------------------------------------------- #

    def _span_frame(self) -> str:
        from repro.obs.tracing import get_tracer

        tracer = get_tracer()
        current = tracer.current if tracer is not None else None
        key = id(current) if current is not None else None
        cached_key, cached = self._span_cache
        if key == cached_key:
            return cached
        name = f"span:{current.name}" if current is not None else "span:-"
        self._span_cache = (key, name)
        return name

    # -- the profile hook ------------------------------------------------ #

    def _attribute(self, now: float) -> None:
        if self._last is not None and self._stack:
            key = (self._span_frame(),) + tuple(self._stack)
            dt = now - self._last
            self.self_seconds[key] = self.self_seconds.get(key, 0.0) + dt
        self._last = now

    def _hook(self, frame, event: str, arg) -> None:
        now = time.perf_counter()
        self._attribute(now)
        if event == "call":
            code = frame.f_code
            self._stack.append(f"{code.co_filename.rpartition('/')[2]}:{code.co_name}")
        elif event == "return":
            if self._stack:
                self._stack.pop()
        elif event == "c_call":
            name = getattr(arg, "__qualname__", None) or getattr(
                arg, "__name__", "<builtin>"
            )
            self._stack.append(f"<c>:{name}")
        elif event == "c_return" or event == "c_exception":
            if self._stack:
                self._stack.pop()
        self._last = time.perf_counter()

    def start(self) -> None:
        self._previous = sys.getprofile()
        self._last = time.perf_counter()
        sys.setprofile(self._hook)

    def stop(self) -> None:
        self._attribute(time.perf_counter())
        sys.setprofile(self._previous)
        self._previous = None


class ProfileSession:
    """One profiling capture: operator statistics plus optional stacks.

    Parameters
    ----------
    metrics:
        Mirror every instrumented operator call into the Prometheus
        registry (histogram ``repro_operator_call_seconds`` and counter
        ``repro_operator_bytes_total``, labelled ``role`` / ``op``).
    stacks:
        Also run the deterministic stack profiler for the lifetime of the
        session (expensive -- every Python call is intercepted; reserve it
        for dedicated profiling runs).
    registry:
        Metrics registry to report into (the process default when None).
    """

    def __init__(
        self,
        metrics: bool = True,
        stacks: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        # role -> op kind -> [calls, seconds, bytes]
        self.operators: Dict[str, Dict[str, List[float]]] = {}
        self.operator_info: Dict[str, Dict[str, Any]] = {}
        self.stack_profiler = _StackProfiler() if stacks else None
        self._hist = None
        self._bytes_counter = None
        if metrics:
            registry = get_registry() if registry is None else registry
            self._hist = registry.histogram(
                "repro_operator_call_seconds",
                "Per-call wall time of instrumented transition-operator "
                "applications",
                buckets=OPERATOR_CALL_BUCKETS,
            )
            self._bytes_counter = registry.counter(
                "repro_operator_bytes_total",
                "Vector bytes moved through instrumented transition "
                "operators",
            )

    # -- collection ------------------------------------------------------ #

    def note_operator(self, role: str, type_name: str, n_states: int) -> None:
        info = self.operator_info.setdefault(
            role, {"operator": type_name, "n_states": n_states, "instances": 0}
        )
        info["instances"] += 1

    def record(
        self, role: str, kind: str, seconds: float, nbytes: int
    ) -> None:
        per_role = self.operators.setdefault(role, {})
        cell = per_role.get(kind)
        if cell is None:
            cell = per_role[kind] = [0, 0.0, 0]
        cell[0] += 1
        cell[1] += seconds
        cell[2] += nbytes
        if self._hist is not None:
            self._hist.observe(seconds, role=role, op=kind)
            self._bytes_counter.inc(nbytes, role=role, op=kind)

    def record_stage(self, role: str, kind: str, seconds: float) -> None:
        """Attribute stage time with no vector traffic (multigrid levels)."""
        self.record(role, kind, seconds, 0)

    # -- snapshot -------------------------------------------------------- #

    def hot_path(self, limit: int = 10) -> List[Dict[str, Any]]:
        """The costliest (role, op) cells, most seconds first."""
        rows = [
            {
                "role": role,
                "op": kind,
                "calls": int(calls),
                "seconds": seconds,
                "bytes": int(nbytes),
            }
            for role, per_role in self.operators.items()
            for kind, (calls, seconds, nbytes) in per_role.items()
        ]
        rows.sort(key=lambda r: r["seconds"], reverse=True)
        return rows[:limit]

    def snapshot(self) -> Dict[str, Any]:
        """JSON form of the session (the manifest ``profile`` section)."""
        operators = {}
        for role, per_role in sorted(self.operators.items()):
            ops = {
                kind: {
                    "calls": int(calls),
                    "seconds": seconds,
                    "bytes": int(nbytes),
                }
                for kind, (calls, seconds, nbytes) in sorted(per_role.items())
            }
            entry: Dict[str, Any] = {
                "ops": ops,
                "total_seconds": sum(o["seconds"] for o in ops.values()),
                "total_calls": sum(o["calls"] for o in ops.values()),
                "total_bytes": sum(o["bytes"] for o in ops.values()),
            }
            entry.update(self.operator_info.get(role, {}))
            operators[role] = entry
        from repro.kernels import active_tier

        return {
            "schema": PROFILE_SCHEMA,
            "operators": operators,
            "hot_path": self.hot_path(),
            "stacks_captured": self.stack_profiler is not None,
            "kernel_tier": active_tier(),
        }

    # -- stack export ---------------------------------------------------- #

    def collapsed_stacks(self) -> Dict[Tuple[str, ...], float]:
        """Aggregated ``{stack tuple: self seconds}`` of the capture."""
        if self.stack_profiler is None:
            raise ValueError(
                "no stacks captured; open the session with stacks=True"
            )
        return dict(self.stack_profiler.self_seconds)

    def write_collapsed(self, path: str) -> None:
        """Write collapsed-stack text (``frame;frame;... microseconds``).

        The classic Brendan Gregg format: one line per unique stack, value
        in integer microseconds -- feed it to ``flamegraph.pl`` or drop it
        into https://www.speedscope.app directly.
        """
        lines = []
        for stack, seconds in sorted(self.collapsed_stacks().items()):
            micros = int(round(seconds * 1e6))
            if micros > 0:
                lines.append(";".join(stack) + f" {micros}")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))

    def write_speedscope(self, path: str, name: str = "repro profile") -> None:
        """Write the capture as a speedscope JSON document."""
        stacks = self.collapsed_stacks()
        frame_index: Dict[str, int] = {}
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, seconds in sorted(stacks.items()):
            if seconds <= 0.0:
                continue
            sample = []
            for frame in stack:
                if frame not in frame_index:
                    frame_index[frame] = len(frame_index)
                sample.append(frame_index[frame])
            samples.append(sample)
            weights.append(seconds)
        total = sum(weights)
        document = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profile",
            "activeProfileIndex": 0,
            "shared": {
                "frames": [{"name": f} for f in frame_index],
            },
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
            fh.write("\n")


_ACTIVE_SESSION: ContextVar[Optional[ProfileSession]] = ContextVar(
    "repro_obs_profile_session", default=None
)


def get_profile_session() -> Optional[ProfileSession]:
    """The active :class:`ProfileSession`, or None when profiling is off."""
    return _ACTIVE_SESSION.get()


@contextmanager
def profiled(
    metrics: bool = True,
    stacks: bool = False,
    registry: Optional[MetricsRegistry] = None,
):
    """Activate a :class:`ProfileSession` for the enclosed block.

    While active, :func:`instrument_operator` wraps operators (so solver,
    multigrid and scenario-kernel traffic is counted) and run manifests
    built inside the block embed the session snapshot.
    """
    session = ProfileSession(metrics=metrics, stacks=stacks, registry=registry)
    token = _ACTIVE_SESSION.set(session)
    if session.stack_profiler is not None:
        session.stack_profiler.start()
    try:
        yield session
    finally:
        if session.stack_profiler is not None:
            session.stack_profiler.stop()
        _ACTIVE_SESSION.reset(token)


def instrument_operator(op, role: str):
    """Wrap ``op`` for counting when a profile session is active.

    The disabled path is one ``ContextVar.get()`` and a ``None`` check --
    the instrumentation hooks in the solvers and measure kernels cost
    nothing measurable when nobody is profiling.  Already-instrumented
    operators pass through untouched, so layered call sites (scenario
    kernel over solver over backend) count each application exactly once,
    under the innermost role that wrapped it.
    """
    session = _ACTIVE_SESSION.get()
    if session is None or isinstance(op, InstrumentedOperator):
        return op
    return InstrumentedOperator(op, role, session)
