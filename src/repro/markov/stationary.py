"""Front-end for stationary-distribution computation.

``stationary_distribution(chain)`` picks a sensible solver automatically
(direct for small chains, multigrid for large ones) or dispatches to a
named method.  All solvers return a
:class:`~repro.markov.solvers.result.StationaryResult`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.classify import is_irreducible
from repro.markov.monitor import SolverMonitor
from repro.markov.multigrid import MultigridOptions, MultigridSolver
from repro.markov.solvers import (
    StationaryResult,
    solve_direct,
    solve_eigen,
    solve_gauss_seidel,
    solve_jacobi,
    solve_krylov,
    solve_power,
    solve_sor,
)

__all__ = ["stationary_distribution", "SOLVER_NAMES"]

SOLVER_NAMES = (
    "auto",
    "direct",
    "power",
    "jacobi",
    "gauss-seidel",
    "sor",
    "krylov",
    "arnoldi",
    "multigrid",
)

_DIRECT_CUTOFF = 20_000


def stationary_distribution(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    method: str = "auto",
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    check_irreducible: bool = False,
    monitor: Optional[SolverMonitor] = None,
    **kwargs,
) -> StationaryResult:
    """Compute the stationary distribution ``eta`` with ``eta P = eta``.

    Parameters
    ----------
    chain:
        A :class:`MarkovChain` or a row-stochastic matrix.
    method:
        One of :data:`SOLVER_NAMES`.  ``"auto"`` uses a direct sparse-LU
        solve below ~20k states and multigrid above.
    tol:
        Residual tolerance ``||eta P - eta||_1`` for iterative methods.
    max_iter:
        Iteration cap (method-specific default when omitted).
    x0:
        Initial guess for iterative methods.
    check_irreducible:
        When True, verify irreducibility first and raise ``ValueError`` on
        reducible chains (which have non-unique stationary vectors).
    monitor:
        Optional :class:`~repro.markov.monitor.SolverMonitor` receiving the
        solver's per-iteration telemetry (see :mod:`repro.markov.monitor`).
    kwargs:
        Extra method-specific options (e.g. ``damping`` for power,
        ``strategy`` for multigrid, ``variant`` for krylov).
    """
    if isinstance(chain, MarkovChain):
        mc = chain
    else:
        mc = MarkovChain(chain)
    if method not in SOLVER_NAMES:
        raise ValueError(f"unknown method {method!r}; choose from {SOLVER_NAMES}")
    if check_irreducible and not is_irreducible(mc):
        raise ValueError(
            "chain is reducible: the stationary distribution is not unique"
        )
    P = mc.P
    if method == "auto":
        method = "direct" if mc.n_states <= _DIRECT_CUTOFF else "multigrid"
    if method == "direct":
        return solve_direct(P, tol=tol, monitor=monitor)
    if method == "power":
        return solve_power(
            P, tol=tol, max_iter=max_iter or 100_000, x0=x0,
            damping=kwargs.get("damping", 1.0), monitor=monitor,
        )
    if method == "jacobi":
        return solve_jacobi(
            P, tol=tol, max_iter=max_iter or 100_000, x0=x0, monitor=monitor
        )
    if method == "gauss-seidel":
        return solve_gauss_seidel(
            P, tol=tol, max_iter=max_iter or 50_000, x0=x0, monitor=monitor
        )
    if method == "sor":
        return solve_sor(
            P, tol=tol, max_iter=max_iter or 50_000, x0=x0,
            omega=kwargs.get("omega", 1.2), monitor=monitor,
        )
    if method == "arnoldi":
        return solve_eigen(
            P, tol=tol, max_iter=max_iter or 10_000, x0=x0, monitor=monitor
        )
    if method == "krylov":
        return solve_krylov(
            P, tol=tol, max_iter=max_iter or 5_000, x0=x0,
            variant=kwargs.get("variant", "gmres"),
            preconditioner=kwargs.get("preconditioner", "ilu"),
            monitor=monitor,
        )
    # multigrid
    options = MultigridOptions(
        tol=tol,
        max_cycles=max_iter or 200,
        nu_pre=kwargs.get("nu_pre", 1),
        nu_post=kwargs.get("nu_post", 1),
        coarsest_size=kwargs.get("coarsest_size", 512),
        cycle_type=kwargs.get("cycle_type", "V"),
    )
    solver = MultigridSolver(strategy=kwargs.get("strategy"), options=options)
    return solver.solve(P, x0=x0, monitor=monitor)
