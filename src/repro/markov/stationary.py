"""Front-end for stationary-distribution computation.

``stationary_distribution(chain)`` picks a sensible solver automatically
(direct for small chains, multigrid for large ones) or dispatches to a
named method through the solver registry
(:mod:`repro.markov.registry`).  All solvers return a
:class:`~repro.markov.solvers.result.StationaryResult`.

``chain`` may be anything :func:`repro.markov.linop.as_operator` accepts:
a :class:`~repro.markov.chain.MarkovChain`, a row-stochastic matrix, or an
unassembled :class:`~repro.markov.linop.TransitionOperator` (matrix-free
CDR operator, Kronecker descriptor).  Matrix-free operators reach every
solver whose registry entry is flagged ``matrix_free``; the others
materialize via ``to_csr()`` or raise
:class:`~repro.markov.linop.OperatorCapabilityError`.

The historical ``SOLVER_NAMES`` tuple (deprecated since the registry
landed) has been removed; use
:func:`repro.markov.registry.solver_names`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.classify import is_irreducible
from repro.markov.linop import AssembledOperator, as_operator, ensure_csr
from repro.markov.monitor import SolverMonitor
from repro.markov.registry import get_solver
from repro.markov.solvers import StationaryResult
from repro.obs.profile import instrument_operator

# Importing the solver modules populates the registry (each registers
# itself with @register_solver); multigrid registers "multigrid".
import repro.markov.multigrid  # noqa: F401
import repro.markov.solvers.direct  # noqa: F401
import repro.markov.solvers.eigen  # noqa: F401
import repro.markov.solvers.gauss_seidel  # noqa: F401
import repro.markov.solvers.jacobi  # noqa: F401
import repro.markov.solvers.krylov  # noqa: F401
import repro.markov.solvers.power  # noqa: F401
import repro.markov.solvers.sor  # noqa: F401

__all__ = ["stationary_distribution"]

_DIRECT_CUTOFF = 20_000


def _resolve_auto(op, n: int) -> str:
    """Pick a concrete method for ``method='auto'``.

    Assembled chains keep the historical policy (direct below ~20k states,
    multigrid above).  Unassembled operators default to power iteration --
    the one method guaranteed to work matrix-free without a coarsening
    strategy; callers with structure should pass ``method='multigrid'``
    plus a strategy (the analyzer does).
    """
    if isinstance(op, AssembledOperator):
        return "direct" if n <= _DIRECT_CUTOFF else "multigrid"
    return "power"


def stationary_distribution(
    chain,
    method: str = "auto",
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    check_irreducible: bool = False,
    monitor: Optional[SolverMonitor] = None,
    **kwargs,
) -> StationaryResult:
    """Compute the stationary distribution ``eta`` with ``eta P = eta``.

    Parameters
    ----------
    chain:
        A :class:`MarkovChain`, a row-stochastic matrix, or a
        :class:`~repro.markov.linop.TransitionOperator`.
    method:
        ``"auto"`` or a registered solver name (see
        :func:`repro.markov.registry.solver_names`).  ``"auto"`` uses a
        direct sparse-LU solve below ~20k states and multigrid above.
    tol:
        Residual tolerance ``||eta P - eta||_1`` for iterative methods.
    max_iter:
        Iteration cap (method-specific default when omitted).
    x0:
        Initial guess for iterative methods.
    check_irreducible:
        When True, verify irreducibility first and raise ``ValueError`` on
        reducible chains (which have non-unique stationary vectors).
        Requires an assembled (or assemblable) chain.
    monitor:
        Optional :class:`~repro.markov.monitor.SolverMonitor` receiving the
        solver's per-iteration telemetry (see :mod:`repro.markov.monitor`).
    kwargs:
        Extra method-specific options (e.g. ``damping`` for power,
        ``strategy`` for multigrid, ``variant`` for krylov).
    """
    if isinstance(chain, MarkovChain):
        op = as_operator(chain)
    elif sp.issparse(chain) or isinstance(chain, np.ndarray):
        # Route raw matrices through MarkovChain to keep the historical
        # stochasticity validation.
        op = as_operator(MarkovChain(chain))
    else:
        op = as_operator(chain)
    n = op.shape[0]
    if method != "auto":
        entry = get_solver(method)
    else:
        entry = get_solver(_resolve_auto(op, n))
    if check_irreducible and not is_irreducible(MarkovChain(ensure_csr(op))):
        raise ValueError(
            "chain is reducible: the stationary distribution is not unique"
        )
    # Every solver consumes the operator through this one dispatch point,
    # so wrapping here profiles all of them.  No-op unless a
    # repro.obs.profile session is active.
    op = instrument_operator(op, role=f"solver.{entry.name}")
    return entry.fn(
        op, tol=tol, max_iter=max_iter, x0=x0, monitor=monitor, **kwargs
    )
