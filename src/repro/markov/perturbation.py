"""Perturbation analysis of stationary distributions.

How much does the stationary vector move when the TPM moves?  For an
ergodic chain with deviation matrix ``D`` (group inverse of ``I - P``),
the exact first-order expansion is

    eta(P + t dP) = eta + t * (eta dP) D + O(t^2)

provided ``P + t dP`` stays stochastic (``dP`` has zero row sums).  This
gives both a sensitivity analysis (which transition probabilities is the
BER most sensitive to?) and the classical condition number of the chain
``kappa = max_j (max_i D_ij - min_i D_ij) / 2`` bounding
``||eta' - eta||_inf <= kappa ||E||_inf`` for a perturbation ``E``.

Dense (uses the deviation matrix); intended for reduced or moderate-size
models.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.fundamental import deviation_matrix
from repro.markov.solvers.direct import solve_direct

__all__ = [
    "stationary_perturbation",
    "perturbed_stationary",
    "condition_number",
]

_ROWSUM_ATOL = 1e-9


def _as_P(chain: Union[MarkovChain, sp.spmatrix, np.ndarray]):
    if isinstance(chain, MarkovChain):
        return chain.P
    if sp.issparse(chain):
        return chain.tocsr()
    return sp.csr_matrix(np.asarray(chain, dtype=float))


def _check_direction(dP, n: int) -> np.ndarray:
    dP = dP.toarray() if sp.issparse(dP) else np.asarray(dP, dtype=float)
    if dP.shape != (n, n):
        raise ValueError(f"perturbation must be {n}x{n}")
    rowsums = dP.sum(axis=1)
    if not np.allclose(rowsums, 0.0, atol=_ROWSUM_ATOL):
        raise ValueError(
            "perturbation rows must sum to zero (the perturbed matrix must "
            "stay stochastic to first order)"
        )
    return dP


def stationary_perturbation(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    dP,
    stationary: Optional[np.ndarray] = None,
) -> np.ndarray:
    """First-order change ``d(eta)/dt`` of the stationary vector along ``dP``.

    ``dP`` must have zero row sums.  Returns the derivative vector (sums
    to zero).
    """
    P = _as_P(chain)
    n = P.shape[0]
    dPd = _check_direction(dP, n)
    eta = (
        np.asarray(stationary, dtype=float)
        if stationary is not None
        else solve_direct(P).distribution
    )
    D = deviation_matrix(P, eta)
    return (eta @ dPd) @ D


def perturbed_stationary(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    dP,
    t: float,
    stationary: Optional[np.ndarray] = None,
) -> np.ndarray:
    """First-order estimate of ``eta(P + t dP)`` (clipped and renormalized)."""
    eta = (
        np.asarray(stationary, dtype=float)
        if stationary is not None
        else solve_direct(_as_P(chain)).distribution
    )
    out = eta + t * stationary_perturbation(chain, dP, eta)
    out = np.clip(out, 0.0, None)
    total = out.sum()
    if total <= 0:
        raise ArithmeticError("perturbation estimate collapsed to zero")
    return out / total


def condition_number(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    stationary: Optional[np.ndarray] = None,
) -> float:
    """The stationary-distribution condition number (Seneta/Meyer form).

    ``kappa = max_j (max_i D_ij - min_i D_ij) / 2`` satisfies
    ``||eta' - eta||_inf <= kappa * ||P' - P||_inf``.  Large values mean
    small modeling errors in the TPM (e.g. noise-table uncertainty) can
    move the stationary distribution -- and hence the BER -- a lot.
    """
    P = _as_P(chain)
    eta = (
        np.asarray(stationary, dtype=float)
        if stationary is not None
        else solve_direct(P).distribution
    )
    D = deviation_matrix(P, eta)
    spread = D.max(axis=0) - D.min(axis=0)
    return float(spread.max() / 2.0)
