"""Discrete-time Markov chain engine.

Everything the paper's analysis rests on: sparse transition-probability
matrices (:mod:`repro.markov.chain`), structural classification
(:mod:`repro.markov.classify`), stationary solvers from power iteration to
the multi-level aggregation multigrid of Horton & Leutenegger
(:mod:`repro.markov.solvers`, :mod:`repro.markov.multigrid`), lumping and
aggregation/disaggregation (:mod:`repro.markov.lumping`,
:mod:`repro.markov.aggregation`), first-passage and event-rate analysis
(:mod:`repro.markov.passage`), and transient/correlation analyses
(:mod:`repro.markov.transient`, :mod:`repro.markov.correlation`).
"""

from repro.markov.chain import MarkovChain, random_chain, validate_stochastic_matrix
from repro.markov.classify import (
    ChainStructure,
    absorbing_states,
    classify,
    communicating_classes,
    is_aperiodic,
    is_irreducible,
    period,
    reachable_from,
)
from repro.markov.lumping import (
    Partition,
    aggregate_distribution,
    is_lumpable,
    lump,
    lumped_tpm,
)
from repro.markov.aggregation import disaggregate, solve_aggregation_disaggregation
from repro.markov.monitor import (
    IterationEvent,
    NullMonitor,
    MultiSolveRecorder,
    RecordingMonitor,
    SolverMonitor,
    TeeMonitor,
    VCycleLevelEvent,
    load_trace,
)
from repro.markov.multigrid import (
    MultigridOptions,
    MultigridSolver,
    coarsening_names,
    get_coarsening,
    pairing_hierarchy,
    pairwise_strength_partition,
    register_coarsening,
    solve_multigrid,
    strength_of_connection_partition,
)
from repro.markov.context import (
    AMGPreconditioner,
    CoarseningHierarchy,
    SolveContext,
    build_hierarchy,
    structural_digest,
)
from repro.markov.passage import (
    expected_visits,
    hitting_probabilities,
    hitting_time_moments,
    mean_first_passage_times,
    mean_recurrence_time,
    mean_time_between_events,
    stationary_event_rate,
)
from repro.markov.solvers import (
    StationaryResult,
    solve_direct,
    solve_eigen,
    solve_gauss_seidel,
    solve_jacobi,
    solve_krylov,
    solve_power,
    solve_sor,
    subdominant_eigenvalue,
)
from repro.markov.fundamental import (
    deviation_matrix,
    fundamental_matrix_kemeny_snell,
    kemeny_constant,
    pairwise_mean_first_passage,
    time_average_variance,
)
from repro.markov.censoring import censored_chain, stochastic_complement
from repro.markov.reversibility import (
    detailed_balance_violation,
    is_reversible,
    reversibilization,
)
from repro.markov.perturbation import (
    condition_number,
    perturbed_stationary,
    stationary_perturbation,
)
from repro.markov.linop import (
    AssembledOperator,
    OperatorCapabilityError,
    TransitionOperator,
    as_operator,
    ensure_csr,
    operator_matmat,
    operator_residual,
    operator_rmatmat,
    unwrap_operator,
)
from repro.markov.registry import (
    BackendEntry,
    SolverEntry,
    backend_names,
    backend_table,
    get_backend,
    get_solver,
    register_backend,
    register_solver,
    solver_names,
    solver_table,
)
from repro.markov.stationary import stationary_distribution
from repro.markov.correlation import (
    autocorrelation,
    autocovariance,
    power_spectral_density,
)
from repro.markov.transient import (
    distribution_at,
    distribution_trajectory,
    expected_trajectory,
    mixing_time,
    total_variation,
)


__all__ = [
    "MarkovChain",
    "random_chain",
    "validate_stochastic_matrix",
    "ChainStructure",
    "classify",
    "communicating_classes",
    "is_irreducible",
    "is_aperiodic",
    "period",
    "absorbing_states",
    "reachable_from",
    "Partition",
    "is_lumpable",
    "lump",
    "lumped_tpm",
    "aggregate_distribution",
    "disaggregate",
    "solve_aggregation_disaggregation",
    "MultigridOptions",
    "MultigridSolver",
    "solve_multigrid",
    "pairing_hierarchy",
    "pairwise_strength_partition",
    "strength_of_connection_partition",
    "register_coarsening",
    "get_coarsening",
    "coarsening_names",
    "SolveContext",
    "CoarseningHierarchy",
    "AMGPreconditioner",
    "build_hierarchy",
    "structural_digest",
    "unwrap_operator",
    "SolverMonitor",
    "NullMonitor",
    "MultiSolveRecorder",
    "RecordingMonitor",
    "TeeMonitor",
    "IterationEvent",
    "VCycleLevelEvent",
    "load_trace",
    "StationaryResult",
    "solve_direct",
    "solve_power",
    "solve_jacobi",
    "solve_gauss_seidel",
    "solve_sor",
    "solve_krylov",
    "solve_eigen",
    "subdominant_eigenvalue",
    "stationary_distribution",
    "TransitionOperator",
    "AssembledOperator",
    "OperatorCapabilityError",
    "as_operator",
    "ensure_csr",
    "operator_matmat",
    "operator_rmatmat",
    "operator_residual",
    "SolverEntry",
    "register_solver",
    "get_solver",
    "solver_names",
    "solver_table",
    "BackendEntry",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_table",
    "deviation_matrix",
    "fundamental_matrix_kemeny_snell",
    "kemeny_constant",
    "pairwise_mean_first_passage",
    "time_average_variance",
    "censored_chain",
    "stochastic_complement",
    "is_reversible",
    "detailed_balance_violation",
    "reversibilization",
    "stationary_perturbation",
    "perturbed_stationary",
    "condition_number",
    "mean_first_passage_times",
    "hitting_time_moments",
    "hitting_probabilities",
    "expected_visits",
    "mean_recurrence_time",
    "stationary_event_rate",
    "mean_time_between_events",
    "autocovariance",
    "autocorrelation",
    "power_spectral_density",
    "distribution_at",
    "distribution_trajectory",
    "expected_trajectory",
    "total_variation",
    "mixing_time",
]
