"""Solve contexts: reusable coarsening hierarchies and warm starts.

Every multigrid solve used to rebuild its coarse hierarchy from scratch,
even though sweep points, Monte-Carlo repetitions and service re-solves
differ only in *noise parameters*, never in chain structure.  This module
splits hierarchy **construction** from hierarchy **use**:

construction (cached here)
    The partitions of each level and the uniform-weight Galerkin
    restrictions used to discover them.  Keyed by a *structural digest* of
    the operator -- shape, branch/sparsity structure, backend class --
    so two specs differing only in noise rates share one hierarchy.

use (stays per-solve)
    The Koury-McAllister-Stewart coarse operators are re-weighted by the
    *current iterate* inside every V-cycle; that is the mathematical core
    of multilevel aggregation and is never cached.

:class:`SolveContext` owns the hierarchy cache plus a warm-start store
(the last stationary vector per structure), and surfaces
hit/miss/build-seconds counters through :mod:`repro.obs` metrics
(``repro_hierarchy_cache_hits_total`` / ``..._misses_total`` /
``repro_hierarchy_build_seconds_total`` / ``repro_warm_starts_total``).

:class:`AMGPreconditioner` exposes a cached hierarchy to the Krylov
solvers (``preconditioner="amg"``): one V-cycle of damped-Jacobi
smoothing plus fixed-weight Galerkin coarse corrections on the augmented
system, applied fully matrix-free at the fine level (``rmatvec`` +
``diagonal()`` + ``restrict`` are all it needs).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator, splu

from repro.markov.chain import MarkovChain
from repro.markov.linop import (
    AssembledOperator,
    OperatorCapabilityError,
    as_operator,
    ensure_csr,
    unwrap_operator,
)
from repro.markov.lumping import Partition, lumped_tpm, prepare_block_weights
from repro.markov.multigrid import (
    CoarseningStrategy,
    pairing_hierarchy,
    resolve_strategy,
)
from repro.obs.metrics import get_registry

__all__ = [
    "structural_digest",
    "CoarseningHierarchy",
    "build_hierarchy",
    "SolveContext",
    "AMGPreconditioner",
]

#: Floor applied to diagonal entries of the augmented smoother splitting.
_DIAG_FLOOR = 1e-10


# --------------------------------------------------------------------- #
# structural digests
# --------------------------------------------------------------------- #

def structural_digest(op) -> str:
    """Digest of an operator's *structure* (values excluded).

    Two operators share a digest exactly when a coarsening hierarchy (and
    a warm-start vector shape) built for one is valid for the other:

    * operators exposing ``structure_token()`` (the CDR matrix-free
      operator, branch-sum operators, Kronecker descriptors) hash that
      token -- backend class, dimensions and branch/shift structure, with
      every noise-dependent probability excluded;
    * assembled matrices hash their sparsity pattern
      (``shape`` + ``indptr`` + ``indices`` bytes);
    * anything else falls back to class name + shape, which can only
      cause a *performance* mismatch (a reused partition is still a valid
      partition -- fine-level residual checks guard correctness).
    """
    base = unwrap_operator(op)
    if isinstance(base, MarkovChain):
        # Normalize: a chain and its as_operator() wrapper must digest
        # identically, token (builder-set) and all.
        base = AssembledOperator(base.P, structure_token=base.structure_token())
    h = hashlib.sha256()
    h.update(type(base).__name__.encode())
    token_fn = getattr(base, "structure_token", None)
    token = token_fn() if token_fn is not None else None
    if token is not None:
        h.update(repr(token).encode())
        return h.hexdigest()[:16]
    P = None
    if sp.issparse(base):
        P = base.tocsr()
    elif isinstance(base, AssembledOperator):
        P = base.P
    if P is not None:
        h.update(np.asarray(P.shape, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(P.indptr).tobytes())
        h.update(np.ascontiguousarray(P.indices).tobytes())
        return h.hexdigest()[:16]
    h.update(repr(tuple(getattr(base, "shape", ()))).encode())
    return h.hexdigest()[:16]


# --------------------------------------------------------------------- #
# hierarchy construction (the cached half of the construction/use split)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class CoarseningHierarchy:
    """A built (and reusable) coarsening hierarchy.

    Holds only *structure*: the per-level partitions and bookkeeping.
    The weighted coarse operators are rebuilt from the current iterate on
    every V-cycle (hierarchy *use*), so reusing this object across specs
    that share a structure is exact, not an approximation.
    """

    digest: str
    strategy: str
    partitions: Tuple[Partition, ...]
    level_sizes: Tuple[int, ...]
    build_seconds: float

    @property
    def n_states(self) -> int:
        return self.level_sizes[0]

    @property
    def n_levels(self) -> int:
        return len(self.level_sizes)

    def as_strategy(self) -> CoarseningStrategy:
        """The cached partitions wrapped as a coarsening strategy."""
        return pairing_hierarchy(self.partitions)

    def __repr__(self) -> str:
        sizes = "->".join(str(s) for s in self.level_sizes)
        return (
            f"CoarseningHierarchy({self.strategy!r}, {sizes}, "
            f"built in {self.build_seconds:.3f}s)"
        )


def _restrict_uniform(P_l, partition: Partition) -> sp.csr_matrix:
    """Uniform-weight Galerkin restriction of a level operator."""
    if sp.issparse(P_l):
        return lumped_tpm(P_l, partition)
    restrict = getattr(P_l, "restrict", None)
    if restrict is not None:
        return restrict(partition, None)
    return lumped_tpm(ensure_csr(P_l), partition)


def build_hierarchy(
    op,
    strategy="auto",
    coarsest_size: int = 512,
    max_levels: int = 25,
) -> CoarseningHierarchy:
    """Build a coarsening hierarchy once, for reuse across many solves.

    Runs the strategy level by level against uniform-weight Galerkin
    coarse operators (structure discovery does not depend on any iterate)
    and records the partition stack.  ``strategy`` is a registered name
    (``"auto"``, ``"phase-pairing"``, ``"algebraic"``, ``"pairwise"``) or
    a callable ``(level, P) -> Partition | None``.
    """
    operator = as_operator(op)
    base = unwrap_operator(operator)
    strategy_name = strategy if isinstance(strategy, str) else getattr(
        strategy, "__name__", "custom"
    )
    strat = resolve_strategy(strategy, base)
    digest = structural_digest(base)
    t0 = time.perf_counter()
    partitions = []
    sizes = [base.shape[0]]
    current = base
    level = 0
    while sizes[-1] > coarsest_size and level < max_levels - 1:
        part = strat(level, current)
        if part is None or part.n_blocks >= sizes[-1]:
            break
        current = _restrict_uniform(current, part)
        partitions.append(part)
        sizes.append(part.n_blocks)
        level += 1
    return CoarseningHierarchy(
        digest=digest,
        strategy=strategy_name,
        partitions=tuple(partitions),
        level_sizes=tuple(sizes),
        build_seconds=time.perf_counter() - t0,
    )


# --------------------------------------------------------------------- #
# the solve context
# --------------------------------------------------------------------- #

class SolveContext:
    """Campaign-scoped solver state: hierarchy cache + warm-start store.

    Build one per sweep / Monte-Carlo campaign / service process and pass
    it to :func:`repro.cdr.sweep.sweep_parameter`,
    :func:`repro.core.analyzer.analyze_cdr` or
    :func:`repro.resilience.resilient_stationary`; every solve that
    shares a chain *structure* then shares one hierarchy, and successive
    solves warm-start from the last stationary vector of that structure.

    Parameters
    ----------
    strategy:
        Coarsening strategy name or callable used when a hierarchy must
        be built (default ``"auto"``: the paper's phase-pairing when the
        operator carries phase-grid structure, algebraic
        strength-of-connection otherwise).
    coarsest_size, max_levels:
        Hierarchy-construction bounds (match the multigrid defaults).
    warm_start:
        When False the context never suggests initial vectors (the
        hierarchy cache still works).
    """

    def __init__(
        self,
        strategy="auto",
        coarsest_size: int = 512,
        max_levels: int = 25,
        warm_start: bool = True,
    ) -> None:
        self.strategy = strategy
        self.coarsest_size = int(coarsest_size)
        self.max_levels = int(max_levels)
        self.warm_start = bool(warm_start)
        self._hierarchies: Dict[str, CoarseningHierarchy] = {}
        self._solutions: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.warm_starts = 0
        self.build_seconds = 0.0

    # -- hierarchy cache ------------------------------------------------ #

    def hierarchy_for(self, op, strategy=None) -> CoarseningHierarchy:
        """The cached hierarchy for this operator's structure (built once).

        ``strategy`` overrides the context default for the *build* only
        (e.g. the analyzer passes the CDR model's phase-pairing for
        assembled chains, whose bare CSR carries no phase structure); a
        cached hierarchy is returned regardless of which strategy built
        it -- the digest keys structure, not strategy.
        """
        digest = structural_digest(op)
        cached = self._hierarchies.get(digest)
        registry = get_registry()
        if cached is not None:
            self.hits += 1
            registry.counter(
                "repro_hierarchy_cache_hits_total",
                "Coarsening hierarchies served from a SolveContext cache",
            ).inc()
            return cached
        self.misses += 1
        registry.counter(
            "repro_hierarchy_cache_misses_total",
            "Coarsening hierarchies built because no cached one matched",
        ).inc()
        hierarchy = build_hierarchy(
            op,
            strategy=self.strategy if strategy is None else strategy,
            coarsest_size=self.coarsest_size,
            max_levels=self.max_levels,
        )
        self.build_seconds += hierarchy.build_seconds
        registry.counter(
            "repro_hierarchy_build_seconds_total",
            "Wall seconds spent building coarsening hierarchies",
        ).inc(hierarchy.build_seconds)
        self._hierarchies[digest] = hierarchy
        return hierarchy

    def strategy_for(self, op, strategy=None) -> CoarseningStrategy:
        """The cached hierarchy as a multigrid coarsening strategy."""
        return self.hierarchy_for(op, strategy=strategy).as_strategy()

    # -- warm starts ----------------------------------------------------- #

    def warm_start_for(self, op) -> Optional[np.ndarray]:
        """Initial vector for this structure, or None for a cold start."""
        if not self.warm_start:
            return None
        base = unwrap_operator(as_operator(op))
        vec = self._solutions.get(structural_digest(base))
        if vec is None or vec.shape[0] != base.shape[0]:
            return None
        self.warm_starts += 1
        get_registry().counter(
            "repro_warm_starts_total",
            "Solves warm-started from a SolveContext stationary vector",
        ).inc()
        return vec.copy()

    def record_solution(self, op, distribution: np.ndarray) -> None:
        """Remember a converged stationary vector for later warm starts."""
        vec = np.asarray(distribution, dtype=float)
        if vec.ndim != 1 or not np.all(np.isfinite(vec)):
            return
        self._solutions[structural_digest(op)] = vec.copy()

    # -- convenience ----------------------------------------------------- #

    def solve(self, chain, method: str = "multigrid", tol: float = 1e-10,
              x0: Optional[np.ndarray] = None, **kwargs):
        """Context-threaded ``stationary_distribution``.

        Injects the cached hierarchy (multigrid strategy / Krylov AMG
        preconditioner), warm-starts from the last solution of the same
        structure when no ``x0`` is given, and records the converged
        vector for the next solve.
        """
        from repro.markov.stationary import stationary_distribution

        op = as_operator(chain)
        warmed = False
        if x0 is None:
            x0 = self.warm_start_for(op)
            warmed = x0 is not None
        if method == "multigrid":
            kwargs.setdefault("hierarchy", self.hierarchy_for(op))
        elif method == "krylov":
            kwargs.setdefault("preconditioner", "amg")
            kwargs.setdefault("hierarchy", self.hierarchy_for(op))
        result = stationary_distribution(
            op, method=method, tol=tol, x0=x0, **kwargs
        )
        if result.converged:
            self.record_solution(op, result.distribution)
        result.warm_started = warmed
        return result

    def stats(self) -> Dict[str, float]:
        """Cache/warm-start counters (mirrored into sweep manifests)."""
        return {
            "hierarchy_hits": self.hits,
            "hierarchy_misses": self.misses,
            "hierarchy_build_seconds": self.build_seconds,
            "warm_starts": self.warm_starts,
            "cached_structures": len(self._hierarchies),
        }

    def __repr__(self) -> str:
        return (
            f"SolveContext(strategy={self.strategy!r}, "
            f"hierarchies={len(self._hierarchies)}, hits={self.hits}, "
            f"misses={self.misses}, warm_starts={self.warm_starts})"
        )


# --------------------------------------------------------------------- #
# the hierarchy as a Krylov preconditioner
# --------------------------------------------------------------------- #

class _AMGLevel:
    """Per-level data of the preconditioner cycle (fixed for one solve)."""

    __slots__ = ("apply_at", "a_diag", "block_of", "n_blocks", "prolong_w")

    def __init__(self, apply_at, a_diag, partition: Partition, prolong_w):
        self.apply_at = apply_at          # v -> P_l^T v
        self.a_diag = a_diag              # diag(I - P_l^T) floored
        self.block_of = partition.block_of
        self.n_blocks = partition.n_blocks
        self.prolong_w = prolong_w        # w_i / mass(block(i))


class AMGPreconditioner:
    """One V-cycle of a coarsening hierarchy as ``M`` for GMRES/BiCGStab.

    Approximates the inverse of the augmented stationary system
    ``A = I - P^T`` (last row replaced by normalization): damped-Jacobi
    smoothing on each level, block-sum restriction of the residual,
    weighted disaggregation of the coarse correction, and a factored
    direct solve of the *augmented* coarsest system (which pins the
    normalization the singular fine-level ``I - P^T`` leaves free).

    The coarse operators are the same weighted Galerkin restrictions
    multigrid uses, built **once** per preconditioner with fixed weights
    (the warm-start vector when available, uniform otherwise) -- Krylov
    methods require a fixed ``M``.  The fine level is matrix-free:
    only ``rmatvec``, ``diagonal()`` and ``restrict`` are consumed.
    """

    def __init__(
        self,
        op,
        hierarchy: CoarseningHierarchy,
        weights: Optional[np.ndarray] = None,
        nu: int = 1,
        omega: float = 0.8,
    ) -> None:
        operator = as_operator(op)
        n = operator.shape[0]
        if hierarchy.n_states != n:
            raise ValueError(
                f"hierarchy was built for {hierarchy.n_states} states, "
                f"operator has {n}"
            )
        if weights is None:
            w = np.full(n, 1.0 / n)
        else:
            w = np.clip(np.asarray(weights, dtype=float), 0.0, None)
            if w.shape != (n,) or w.sum() <= 0:
                w = np.full(n, 1.0 / n)
        self.nu = max(1, int(nu))
        self.omega = float(omega)
        self.shape = (n, n)
        self._levels = []
        current = operator
        for part in hierarchy.partitions:
            w_l, mass = prepare_block_weights(part, w)
            if sp.issparse(current):
                diag = current.diagonal()
                C = lumped_tpm(current, part, weights=w_l)
                PT = current.T.tocsr()
                apply_at = PT.dot
            else:
                diag = current.diagonal()
                restrict = getattr(current, "restrict", None)
                if restrict is None:
                    raise OperatorCapabilityError(
                        f"{type(unwrap_operator(current)).__name__} has no "
                        "restrict(partition, weights); the AMG "
                        "preconditioner needs it to build coarse levels"
                    )
                C = restrict(part, w_l)
                apply_at = current.rmatvec
            a_diag = np.maximum(1.0 - diag, _DIAG_FLOOR)
            self._levels.append(
                _AMGLevel(apply_at, a_diag, part, w_l / mass[part.block_of])
            )
            current = C
            w = mass
        coarsest = current if sp.issparse(current) else ensure_csr(current)
        from repro.markov.solvers.direct import augmented_system

        self._coarse_lu = splu(augmented_system(coarsest).tocsc())

    # ------------------------------------------------------------------ #

    def _cycle(self, level: int, r: np.ndarray) -> np.ndarray:
        if level == len(self._levels):
            return self._coarse_lu.solve(r)
        lvl = self._levels[level]
        # damped Jacobi from zero on (I - P^T) z = r
        z = self.omega * r / lvl.a_diag
        for _ in range(self.nu - 1):
            resid = r - (z - lvl.apply_at(z))
            z = z + self.omega * resid / lvl.a_diag
        resid = r - (z - lvl.apply_at(z))
        rc = np.bincount(lvl.block_of, weights=resid, minlength=lvl.n_blocks)
        zc = self._cycle(level + 1, rc)
        z = z + lvl.prolong_w * zc[lvl.block_of]
        resid = r - (z - lvl.apply_at(z))
        return z + self.omega * resid / lvl.a_diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        """One V-cycle: an approximate ``A^{-1} r``."""
        return self._cycle(0, np.asarray(r, dtype=float))

    def as_linear_operator(self) -> LinearOperator:
        return LinearOperator(self.shape, matvec=self.apply, dtype=float)
