"""Cross-solver conformance harness.

The paper's credibility argument is that the multi-level aggregation solver
matches slower reference solvers down to BER-tail magnitudes.  This module
systematizes that check: every stationary solver runs on a shared family of
fixture chains (birth-death, periodic, nearly-uncoupled, and a small CDR
phase-error chain) under telemetry, and the harness asserts

* **pairwise agreement** -- all stationary vectors within an L1 ball;
* **monitor-event consistency** -- ``len(events) == result.iterations`` and
  ``events[-1].residual == result.residual`` exactly (the invariant the
  solvers' internal :class:`~repro.markov.monitor.RecordingMonitor`
  bookkeeping guarantees);
* **residual trend** -- converged solves end below tolerance and do not
  finish worse than they started.

``tests/markov/test_conformance.py`` drives this module; it is importable
on its own so benchmarks and notebooks can reuse the fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.monitor import RecordingMonitor
from repro.markov.multigrid import solve_multigrid
from repro.markov.solvers import (
    StationaryResult,
    solve_direct,
    solve_eigen,
    solve_gauss_seidel,
    solve_jacobi,
    solve_krylov,
    solve_power,
    solve_sor,
)

__all__ = [
    "CONFORMANCE_SOLVERS",
    "ConformanceCase",
    "SolverRun",
    "PathologyVerdict",
    "birth_death_fixture",
    "periodic_fixture",
    "nearly_uncoupled_fixture",
    "bottleneck_fixture",
    "cdr_phase_error_fixture",
    "alexander_offset_fixture",
    "bangbang_frequency_fixture",
    "mesochronous_fixture",
    "absorbing_fixture",
    "reducible_fixture",
    "zero_row_fixture",
    "default_cases",
    "pathological_cases",
    "run_case",
    "diagnose_chain",
    "run_pathology",
    "check_agreement",
    "check_monitor_consistency",
    "check_residual_trend",
    "run_conformance",
]

#: Default solve tolerance.  Tight enough that even on ill-conditioned
#: (nearly-uncoupled) fixtures the iterate error stays well inside the
#: 1e-8 L1 agreement ball.
DEFAULT_TOL = 1e-12

#: Default pairwise L1 agreement tolerance.
DEFAULT_ATOL = 1e-8


def _dispatch(solver_fn, P, tol, monitor, **kwargs):
    return solver_fn(P, tol=tol, monitor=monitor, **kwargs)


#: The full solver matrix: name -> callable(P, tol=..., monitor=..., **kw).
CONFORMANCE_SOLVERS: Dict[str, Callable[..., StationaryResult]] = {
    "power": solve_power,
    "jacobi": solve_jacobi,
    "gauss-seidel": solve_gauss_seidel,
    "sor": solve_sor,
    "krylov": solve_krylov,
    "direct": solve_direct,
    "arnoldi": solve_eigen,
    "multigrid": solve_multigrid,
}


# --------------------------------------------------------------------- #
# Fixture chains
# --------------------------------------------------------------------- #

def birth_death_fixture(n: int = 64, up: float = 0.3, down: float = 0.4) -> MarkovChain:
    """Banded birth-death chain -- the structure of a phase-error grid."""
    rows, cols, vals = [], [], []
    for i in range(n):
        p_up = up if i < n - 1 else 0.0
        p_down = down if i > 0 else 0.0
        for j, p in ((i - 1, p_down), (i, 1.0 - p_up - p_down), (i + 1, p_up)):
            if p > 0:
                rows.append(i)
                cols.append(j)
                vals.append(p)
    return MarkovChain(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))


def periodic_fixture(n: int = 16, forward: float = 0.6) -> MarkovChain:
    """Reflecting random walk: bipartite (period 2), non-uniform stationary.

    No self-loops anywhere, so plain power iteration oscillates forever --
    the conformance matrix runs power with ``damping=0.5`` on this case.
    """
    P = np.zeros((n, n))
    for i in range(n):
        if i == 0:
            P[i, 1] = 1.0
        elif i == n - 1:
            P[i, n - 2] = 1.0
        else:
            P[i, i + 1] = forward
            P[i, i - 1] = 1.0 - forward
    return MarkovChain(P)


def nearly_uncoupled_fixture(
    block_size: int = 6, eps: float = 0.02, seed: int = 42
) -> MarkovChain:
    """Two dense blocks bridged by probability ``eps`` -- a stiff chain.

    Nearly-uncoupled chains are the classic hard case for aggregation
    methods (and the regime where naive iterative methods stall); the small
    ``eps`` makes the subdominant eigenvalue approach 1.
    """
    rng = np.random.default_rng(seed)
    n = 2 * block_size
    M = np.zeros((n, n))
    for blk in range(2):
        s = blk * block_size
        A = rng.uniform(0.1, 1.0, (block_size, block_size))
        A /= A.sum(axis=1, keepdims=True)
        M[s:s + block_size, s:s + block_size] = A
    # One bridge state per block carries the eps coupling.
    M[block_size - 1] *= 1.0 - eps
    M[block_size - 1, block_size] = eps
    M[n - 1] *= 1.0 - eps
    M[n - 1, 0] = eps
    return MarkovChain(M)


def bottleneck_fixture(
    n_half: int = 100, eps: float = 2e-3, up: float = 0.3, down: float = 0.35
) -> MarkovChain:
    """Two birth-death segments joined by an ``eps`` bottleneck.

    The banded analogue of :func:`nearly_uncoupled_fixture`: nearly
    uncoupled (mixing gap ~ ``eps``) but with the grid-like band structure
    the multigrid's pairwise coarsening is built for -- the scaled-up stiff
    case of the conformance matrix.
    """
    n = 2 * n_half
    rows, cols, vals = [], [], []
    for i in range(n):
        p_up = up if i < n - 1 else 0.0
        p_down = down if i > 0 else 0.0
        if i == n_half - 1:
            p_up = eps
        if i == n_half:
            p_down = eps
        for j, p in ((i - 1, p_down), (i, 1.0 - p_up - p_down), (i + 1, p_up)):
            if p > 0:
                rows.append(i)
                cols.append(j)
                vals.append(p)
    return MarkovChain(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))


def cdr_phase_error_fixture() -> MarkovChain:
    """A small CDR phase-error chain built from :mod:`repro.cdr.model`.

    Uses a coarse phase grid and short counter so the chain stays a few
    hundred states -- big enough to exercise real CDR structure (banded
    drift plus counter dynamics), small enough for the full solver matrix.
    """
    from repro.core.spec import CDRSpec

    spec = CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=2,
        nw_std=0.08,
        nw_atoms=7,
    )
    return spec.build_model().chain


def alexander_offset_fixture() -> MarkovChain:
    """The Alexander-PD-with-sampler-offset scenario chain, scaled down.

    Same product structure as :func:`cdr_phase_error_fixture` but with the
    asymmetric decision threshold of the ``alexander-offset`` catalog
    scenario (arXiv:2001.03553): the stationary phase distribution is
    off-center, so solvers exercising symmetric-looking CDR chains do not
    get a free pass from symmetry.
    """
    from repro.scenarios.registry import get_scenario

    scenario = get_scenario("alexander-offset")
    params = scenario.params_for("fast")
    params["n_phase_points"] = 32
    return scenario.build(params, backend="assembled").chain


def bangbang_frequency_fixture() -> MarkovChain:
    """The bang-bang frequency-error scenario chain at ``freq_max=1``.

    With a frequency span of one notch every ``(f, m)`` state
    communicates (larger spans leave the outer frequency rings
    transient), so the fixture is irreducible -- safe for the full solver
    matrix including the direct solve -- while still exercising the extra
    state dimension none of the other fixtures have.
    """
    from repro.scenarios.registry import get_scenario

    scenario = get_scenario("bangbang-freq")
    params = scenario.params_for("fast")
    params["n_phase_points"] = 32
    params["freq_max"] = 1
    return scenario.build(params, backend="assembled").chain


def mesochronous_fixture() -> MarkovChain:
    """The mesochronous-settling scenario chain, scaled down.

    Zero-mean drift noise: the phase random walk has no deterministic
    bias, a regime the biased ``cdr_phase_error_fixture`` never visits.
    """
    from repro.scenarios.registry import get_scenario

    scenario = get_scenario("mesochronous-settle")
    params = scenario.params_for("fast")
    params["n_phase_points"] = 32
    return scenario.build(params, backend="assembled").chain


# --------------------------------------------------------------------- #
# Pathological fixtures: chains a solver must diagnose, not chew on
# --------------------------------------------------------------------- #

def absorbing_fixture(n: int = 12, up: float = 0.3, down: float = 0.4) -> MarkovChain:
    """Birth-death chain whose state 0 is absorbing.

    The chain is reducible; the unique stationary distribution is the
    point mass on the absorbing state.  A solver must either reach that
    delta or raise a typed diagnosis -- returning a smeared-out vector
    silently would be the bug.
    """
    chain = birth_death_fixture(n, up=up, down=down)
    P = chain.P.tolil()
    P[0, :] = 0.0
    P[0, 0] = 1.0
    return MarkovChain(P.tocsr())


def reducible_fixture(n_half: int = 8) -> MarkovChain:
    """Two disconnected birth-death components -- no unique stationary
    distribution.

    Each block is individually a valid chain but nothing couples them, so
    ``pi P = pi`` has a two-dimensional solution space.  Iterative solvers
    land on a mixture fixed by the initial guess; the direct solver's
    augmented system is singular.  Either outcome is acceptable to
    :func:`diagnose_chain` -- hanging or returning non-finite garbage is
    not.
    """
    A = birth_death_fixture(n_half, up=0.3, down=0.4).P
    B = birth_death_fixture(n_half, up=0.45, down=0.2).P
    return MarkovChain(sp.block_diag([A, B], format="csr"))


def zero_row_fixture(n: int = 10) -> MarkovChain:
    """An invalid "transition matrix" with one all-zero row.

    Built with ``validate=False`` (the constructor would reject it), this
    models a corrupted or half-assembled operator reaching the solve
    layer.  The resilience pre-check
    (:func:`repro.resilience.check_operator`) must refuse it before any
    solver burns iterations on it.
    """
    P = birth_death_fixture(n).P.tolil()
    P[n // 2, :] = 0.0
    return MarkovChain(P.tocsr(), validate=False)


@dataclass(frozen=True)
class ConformanceCase:
    """One fixture chain plus per-solver option overrides.

    Attributes
    ----------
    name:
        Case identifier (used as the pytest parameter id).
    build:
        Zero-argument callable returning the fixture :class:`MarkovChain`.
    overrides:
        ``solver name -> extra kwargs`` (e.g. damping for power iteration
        on periodic chains, coarsest_size for multigrid on small chains).
    """

    name: str
    build: Callable[[], MarkovChain]
    overrides: Dict[str, dict] = field(default_factory=dict)


def default_cases() -> List[ConformanceCase]:
    """The standard conformance fixture family."""
    mg_small = {"multigrid": {"coarsest_size": 8}}
    return [
        ConformanceCase("birth-death", birth_death_fixture, dict(mg_small)),
        ConformanceCase(
            "periodic",
            periodic_fixture,
            {**mg_small, "power": {"damping": 0.5}},
        ),
        ConformanceCase("nearly-uncoupled", nearly_uncoupled_fixture, dict(mg_small)),
        ConformanceCase("cdr-phase-error", cdr_phase_error_fixture, dict(mg_small)),
        ConformanceCase("alexander-offset", alexander_offset_fixture, dict(mg_small)),
        ConformanceCase(
            "bangbang-frequency", bangbang_frequency_fixture, dict(mg_small)
        ),
        ConformanceCase("mesochronous", mesochronous_fixture, dict(mg_small)),
    ]


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #

@dataclass
class SolverRun:
    """One solver's result on one fixture, with its recorded telemetry."""

    solver: str
    result: StationaryResult
    recorder: RecordingMonitor


def run_case(
    case: ConformanceCase,
    tol: float = DEFAULT_TOL,
    solvers: Optional[Sequence[str]] = None,
) -> Dict[str, SolverRun]:
    """Run the solver matrix on one case, each solve under a fresh recorder."""
    chain = case.build()
    names = list(solvers) if solvers is not None else list(CONFORMANCE_SOLVERS)
    runs: Dict[str, SolverRun] = {}
    for name in names:
        if name not in CONFORMANCE_SOLVERS:
            raise ValueError(f"unknown conformance solver {name!r}")
        recorder = RecordingMonitor()
        kwargs = dict(case.overrides.get(name, {}))
        result = _dispatch(
            CONFORMANCE_SOLVERS[name], chain.P, tol, recorder, **kwargs
        )
        runs[name] = SolverRun(name, result, recorder)
    return runs


# --------------------------------------------------------------------- #
# Checks
# --------------------------------------------------------------------- #

def check_agreement(
    runs: Dict[str, SolverRun], atol: float = DEFAULT_ATOL
) -> float:
    """Assert pairwise L1 agreement of all stationary vectors.

    Returns the worst pairwise L1 distance observed.
    """
    names = sorted(runs)
    worst = 0.0
    failures: List[Tuple[str, str, float]] = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            d = float(
                np.abs(runs[a].result.distribution - runs[b].result.distribution).sum()
            )
            worst = max(worst, d)
            if d > atol:
                failures.append((a, b, d))
    if failures:
        lines = ", ".join(f"{a} vs {b}: {d:.3e}" for a, b, d in failures)
        raise AssertionError(f"stationary vectors disagree beyond {atol:g}: {lines}")
    return worst


def check_monitor_consistency(run: SolverRun) -> None:
    """Assert the recorded events match the reported result exactly."""
    res, rec = run.result, run.recorder
    if len(rec.events) != res.iterations:
        raise AssertionError(
            f"{run.solver}: {len(rec.events)} monitor events but "
            f"result.iterations == {res.iterations}"
        )
    if not rec.events:
        raise AssertionError(f"{run.solver}: no iteration events recorded")
    if rec.events[-1].residual != res.residual:
        raise AssertionError(
            f"{run.solver}: final event residual {rec.events[-1].residual!r} "
            f"!= reported residual {res.residual!r}"
        )
    if rec.residual_history != res.residual_history:
        raise AssertionError(
            f"{run.solver}: recorder history and result.residual_history differ"
        )
    if not rec.finished or rec.converged != res.converged:
        raise AssertionError(
            f"{run.solver}: solve_finished missing or inconsistent "
            f"(recorder={rec.converged}, result={res.converged})"
        )
    if rec.iterations != res.iterations:
        raise AssertionError(
            f"{run.solver}: solve_finished iterations {rec.iterations} "
            f"!= result.iterations {res.iterations}"
        )
    # Iteration indices must be 1-based and strictly increasing.
    indices = [e.iteration for e in rec.events]
    if indices != list(range(1, len(indices) + 1)):
        raise AssertionError(f"{run.solver}: iteration indices not 1..N: {indices[:5]}...")
    # Elapsed times must be non-decreasing.
    elapsed = [e.elapsed for e in rec.events]
    if any(b < a for a, b in zip(elapsed, elapsed[1:])):
        raise AssertionError(f"{run.solver}: event timestamps go backwards")


def check_residual_trend(run: SolverRun, tol: float = DEFAULT_TOL) -> None:
    """Assert the residual trajectory behaves: ends below start, and below
    tolerance when the solver claims convergence.

    Monotonicity is only required end-to-start (iterative methods on stiff
    chains may plateau or wobble transiently, Krylov restarts are not
    monotone), which is the invariant every convergent solve must satisfy.
    """
    res, rec = run.result, run.recorder
    history = rec.residual_history
    if res.converged and res.residual >= tol * (1 + 1e-12) and res.residual >= 1e-6:
        raise AssertionError(
            f"{run.solver}: claims convergence at residual {res.residual:.3e}"
        )
    if len(history) >= 2 and history[-1] > history[0] * (1.0 + 1e-9):
        raise AssertionError(
            f"{run.solver}: residual ended worse than it started "
            f"({history[0]:.3e} -> {history[-1]:.3e})"
        )
    if any(r < 0 for r in history):
        raise AssertionError(f"{run.solver}: negative residual recorded")


# --------------------------------------------------------------------- #
# Pathology diagnosis: every solver must return or raise, never hang
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class PathologyVerdict:
    """What one solver did with one pathological chain.

    ``outcome`` is ``"converged"`` (a finite, non-negative stationary
    vector came back) or ``"diagnosed"`` (a typed error explained why
    not).  Anything else -- a hang, a raw crash, silent garbage -- is a
    conformance failure, surfaced as an exception from
    :func:`diagnose_chain` itself.
    """

    solver: str
    outcome: str
    diagnosis: Optional[str]
    message: str
    result: Optional[StationaryResult] = None


def pathological_cases() -> List[ConformanceCase]:
    """The pathological fixture family for :func:`run_pathology`."""
    return [
        ConformanceCase("absorbing", absorbing_fixture),
        ConformanceCase("reducible", reducible_fixture),
        ConformanceCase("zero-row", zero_row_fixture),
    ]


def diagnose_chain(
    chain: MarkovChain,
    solver: str,
    tol: float = 1e-10,
    max_iter: int = 2000,
    wall_clock_budget: float = 30.0,
) -> PathologyVerdict:
    """Run one solver on a (possibly pathological) chain under full guards.

    Bounded three ways -- ``max_iter``, a stagnation guard, and a
    wall-clock budget -- so no chain can hang the caller.  Every
    diagnosable failure (the resilience taxonomy, singular factorizations,
    capability mismatches, eigensolver breakdowns) is folded into a
    ``"diagnosed"`` verdict carrying the error type and message; a
    convergent solve is checked for contamination before being accepted.
    """
    from repro.markov.linop import OperatorCapabilityError
    from repro.resilience import GuardPolicy, ResilienceError, guarded_solve

    guard = GuardPolicy(wall_clock_budget=wall_clock_budget)
    try:
        result = guarded_solve(
            chain, method=solver, guard=guard, tol=tol, max_iter=max_iter
        )
    except (
        ResilienceError,            # the typed taxonomy (guards, budgets)
        ArithmeticError,            # singular factorization (direct)
        OperatorCapabilityError,    # solver needs a capability op lacks
        np.linalg.LinAlgError,      # dense/eigen breakdowns
        ValueError,                 # scipy rejecting a malformed system
        RuntimeError,               # ARPACK no-convergence and kin
    ) as exc:
        return PathologyVerdict(
            solver, "diagnosed", type(exc).__name__, str(exc)
        )
    return PathologyVerdict(
        solver, "converged", None,
        f"converged in {result.iterations} iterations at residual "
        f"{result.residual:.3e}",
        result,
    )


def run_pathology(
    case: ConformanceCase,
    solvers: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, PathologyVerdict]:
    """Run :func:`diagnose_chain` for every solver on one pathological case."""
    chain = case.build()
    names = list(solvers) if solvers is not None else list(CONFORMANCE_SOLVERS)
    return {name: diagnose_chain(chain, name, **kwargs) for name in names}


def run_conformance(
    cases: Optional[Sequence[ConformanceCase]] = None,
    tol: float = DEFAULT_TOL,
    atol: float = DEFAULT_ATOL,
    solvers: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, SolverRun]]:
    """Run every check on every case; returns all runs keyed by case name."""
    all_runs: Dict[str, Dict[str, SolverRun]] = {}
    for case in cases if cases is not None else default_cases():
        runs = run_case(case, tol=tol, solvers=solvers)
        check_agreement(runs, atol=atol)
        for run in runs.values():
            check_monitor_consistency(run)
            check_residual_trend(run, tol=tol)
        all_runs[case.name] = runs
    return all_runs
