"""Solver telemetry: structured per-iteration events for stationary solvers.

Every stationary solver accepts an optional ``monitor=`` argument
implementing the :class:`SolverMonitor` protocol and emits one structured
event per iteration (sweep, V-cycle, Krylov step, or the single "iteration"
of a direct/eigen solve).  The multigrid solver additionally emits one
:class:`VCycleLevelEvent` per level visited in each V-cycle, carrying the
level's size, sparsity, aggregate count and smoothing timings -- the data
needed to see where a multi-level solve spends its time.

The solvers themselves use an internal :class:`RecordingMonitor` as the
single source of truth for their convergence bookkeeping: the
``iterations``, ``residual`` and ``residual_history`` fields of
:class:`~repro.markov.solvers.result.StationaryResult` are derived from the
recorded events, which guarantees the invariants the conformance harness
(:mod:`repro.markov.conformance`) checks:

* ``result.iterations == len(events)``;
* ``result.residual == events[-1].residual`` (exact float equality).

Traces serialize to a stable JSON schema (``repro.solver-trace/1``) via
:meth:`RecordingMonitor.to_trace` / :meth:`RecordingMonitor.write_trace`,
which the CLI exposes as ``python -m repro analyze ... --trace out.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import IO, Any, Dict, List, Optional, Protocol, Union, runtime_checkable

__all__ = [
    "TRACE_SCHEMA",
    "IterationEvent",
    "VCycleLevelEvent",
    "SolverMonitor",
    "NullMonitor",
    "NULL_MONITOR",
    "RecordingMonitor",
    "MultiSolveRecorder",
    "TeeMonitor",
    "as_monitor",
    "instrument",
    "load_trace",
]

#: Identifier embedded in every exported trace so downstream consumers can
#: detect schema drift.
TRACE_SCHEMA = "repro.solver-trace/1"


@dataclass(frozen=True)
class IterationEvent:
    """One solver iteration (sweep / V-cycle / Krylov step).

    Attributes
    ----------
    iteration:
        1-based iteration index in the solver's natural unit.
    residual:
        ``||x P - x||_1`` of the iterate after this iteration.
    elapsed:
        Wall-clock seconds since the solve started.
    """

    iteration: int
    residual: float
    elapsed: float


@dataclass(frozen=True)
class VCycleLevelEvent:
    """Per-level telemetry for one multigrid V-cycle.

    Attributes
    ----------
    cycle:
        1-based V-cycle index this visit belongs to.
    level:
        Level in the hierarchy (0 is the fine level).
    n_states:
        Number of states of the level's chain.
    nnz:
        Non-zeros of the level's transition matrix.
    n_blocks:
        Aggregate (block) count produced by the coarsening strategy at this
        level; 0 when the level was solved directly instead of coarsened.
    pre_smooth_time, post_smooth_time:
        Wall-clock seconds spent in pre-/post-smoothing at this level
        during this cycle (summed over the W-cycle's repeats).
    """

    cycle: int
    level: int
    n_states: int
    nnz: int
    n_blocks: int
    pre_smooth_time: float
    post_smooth_time: float


@runtime_checkable
class SolverMonitor(Protocol):
    """Observer protocol every stationary solver reports to.

    Implementations must tolerate any call order the solvers produce:
    ``solve_started`` once, then any number of ``iteration_finished`` /
    ``vcycle_level`` calls, then ``solve_finished`` once.
    """

    def solve_started(self, method: str, n_states: int, tol: float) -> None: ...

    def iteration_finished(
        self, iteration: int, residual: float, elapsed: float
    ) -> None: ...

    def vcycle_level(
        self,
        cycle: int,
        level: int,
        n_states: int,
        nnz: int,
        n_blocks: int,
        pre_smooth_time: float,
        post_smooth_time: float,
    ) -> None: ...

    def solve_finished(
        self, converged: bool, iterations: int, residual: float, elapsed: float
    ) -> None: ...


class NullMonitor:
    """Monitor that ignores every event (the default)."""

    def solve_started(self, method: str, n_states: int, tol: float) -> None:
        pass

    def iteration_finished(
        self, iteration: int, residual: float, elapsed: float
    ) -> None:
        pass

    def vcycle_level(
        self,
        cycle: int,
        level: int,
        n_states: int,
        nnz: int,
        n_blocks: int,
        pre_smooth_time: float,
        post_smooth_time: float,
    ) -> None:
        pass

    def solve_finished(
        self, converged: bool, iterations: int, residual: float, elapsed: float
    ) -> None:
        pass


#: Shared stateless instance; solvers fall back to it when ``monitor=None``.
NULL_MONITOR = NullMonitor()


class RecordingMonitor:
    """Monitor that records every event for later inspection/export.

    A recorder observes exactly one solve: reusing it for a second solve
    raises ``RuntimeError`` (create a fresh recorder per solve so traces
    stay unambiguous).
    """

    def __init__(self) -> None:
        self.method: Optional[str] = None
        self.n_states: Optional[int] = None
        self.tol: Optional[float] = None
        self.events: List[IterationEvent] = []
        self.vcycle_events: List[VCycleLevelEvent] = []
        self.converged: Optional[bool] = None
        self.iterations: Optional[int] = None
        self.residual: Optional[float] = None
        self.solve_time: Optional[float] = None

    # -- SolverMonitor protocol ---------------------------------------- #

    def solve_started(self, method: str, n_states: int, tol: float) -> None:
        if self.method is not None:
            raise RuntimeError(
                "RecordingMonitor already holds a solve; use a fresh recorder"
            )
        self.method = method
        self.n_states = n_states
        self.tol = tol

    def iteration_finished(
        self, iteration: int, residual: float, elapsed: float
    ) -> None:
        self.events.append(IterationEvent(iteration, float(residual), elapsed))

    def vcycle_level(
        self,
        cycle: int,
        level: int,
        n_states: int,
        nnz: int,
        n_blocks: int,
        pre_smooth_time: float,
        post_smooth_time: float,
    ) -> None:
        self.vcycle_events.append(
            VCycleLevelEvent(
                cycle, level, n_states, nnz, n_blocks,
                pre_smooth_time, post_smooth_time,
            )
        )

    def solve_finished(
        self, converged: bool, iterations: int, residual: float, elapsed: float
    ) -> None:
        self.converged = converged
        self.iterations = iterations
        self.residual = float(residual)
        self.solve_time = elapsed

    # -- Derived views -------------------------------------------------- #

    @property
    def n_iterations(self) -> int:
        return len(self.events)

    @property
    def residual_history(self) -> List[float]:
        """Residual after each recorded iteration (the legacy history list)."""
        return [e.residual for e in self.events]

    @property
    def finished(self) -> bool:
        return self.iterations is not None

    def last_residual(self) -> Optional[float]:
        return self.events[-1].residual if self.events else None

    # -- Export --------------------------------------------------------- #

    def to_trace(self) -> Dict[str, Any]:
        """JSON-serializable trace of the recorded solve."""
        return {
            "schema": TRACE_SCHEMA,
            "method": self.method,
            "n_states": self.n_states,
            "tol": self.tol,
            "converged": self.converged,
            "iterations": self.iterations,
            "residual": self.residual,
            "solve_time": self.solve_time,
            "events": [asdict(e) for e in self.events],
            "vcycle_events": [asdict(e) for e in self.vcycle_events],
        }

    def write_trace(self, path_or_file: Union[str, IO[str]], indent: int = 2) -> None:
        """Write the trace as JSON to a path or open text file."""
        trace = self.to_trace()
        if hasattr(path_or_file, "write"):
            json.dump(trace, path_or_file, indent=indent)
            return
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=indent)
            fh.write("\n")


class MultiSolveRecorder:
    """Record a *sequence* of solves, one fresh recorder per ``solve_started``.

    A plain :class:`RecordingMonitor` refuses a second solve; drivers that
    legitimately run several (the resilient fallback chain retrying or
    escalating through methods) use this instead.  ``recorders`` holds one
    recorder per attempt in order; ``last`` -- the most recent attempt,
    i.e. the winning one after a successful escalation -- answers the
    single-solve API (``to_trace`` / ``write_trace``) so run manifests and
    ``--trace`` export work unchanged.
    """

    def __init__(self) -> None:
        self.recorders: List[RecordingMonitor] = []

    @property
    def last(self) -> Optional[RecordingMonitor]:
        return self.recorders[-1] if self.recorders else None

    # -- SolverMonitor protocol ---------------------------------------- #

    def solve_started(self, method: str, n_states: int, tol: float) -> None:
        recorder = RecordingMonitor()
        recorder.solve_started(method, n_states, tol)
        self.recorders.append(recorder)

    def iteration_finished(
        self, iteration: int, residual: float, elapsed: float
    ) -> None:
        if self.recorders:
            self.recorders[-1].iteration_finished(iteration, residual, elapsed)

    def vcycle_level(self, *args: Any, **kwargs: Any) -> None:
        if self.recorders:
            self.recorders[-1].vcycle_level(*args, **kwargs)

    def solve_finished(
        self, converged: bool, iterations: int, residual: float, elapsed: float
    ) -> None:
        if self.recorders:
            self.recorders[-1].solve_finished(
                converged, iterations, residual, elapsed
            )

    # -- Single-solve API, answered by the winning attempt -------------- #

    def to_trace(self) -> Dict[str, Any]:
        if self.last is None:
            raise RuntimeError("MultiSolveRecorder holds no solves yet")
        return self.last.to_trace()

    def write_trace(self, path_or_file: Union[str, IO[str]], indent: int = 2) -> None:
        if self.last is None:
            raise RuntimeError("MultiSolveRecorder holds no solves yet")
        self.last.write_trace(path_or_file, indent=indent)


class TeeMonitor:
    """Fan one event stream out to several monitors (first wins on errors)."""

    def __init__(self, *monitors: SolverMonitor) -> None:
        self.monitors = tuple(m for m in monitors if m is not None)

    def solve_started(self, method: str, n_states: int, tol: float) -> None:
        for m in self.monitors:
            m.solve_started(method, n_states, tol)

    def iteration_finished(
        self, iteration: int, residual: float, elapsed: float
    ) -> None:
        for m in self.monitors:
            m.iteration_finished(iteration, residual, elapsed)

    def vcycle_level(
        self,
        cycle: int,
        level: int,
        n_states: int,
        nnz: int,
        n_blocks: int,
        pre_smooth_time: float,
        post_smooth_time: float,
    ) -> None:
        for m in self.monitors:
            m.vcycle_level(
                cycle, level, n_states, nnz, n_blocks,
                pre_smooth_time, post_smooth_time,
            )

    def solve_finished(
        self, converged: bool, iterations: int, residual: float, elapsed: float
    ) -> None:
        for m in self.monitors:
            m.solve_finished(converged, iterations, residual, elapsed)


def as_monitor(monitor: Optional[SolverMonitor]) -> SolverMonitor:
    """Normalize an optional user monitor to a concrete instance."""
    return NULL_MONITOR if monitor is None else monitor


def instrument(
    method: str,
    n_states: int,
    tol: float,
    monitor: Optional[SolverMonitor],
) -> "tuple[RecordingMonitor, SolverMonitor]":
    """Set up a solver's telemetry: ``(recorder, monitor_to_report_to)``.

    Every solver records its own events in a fresh :class:`RecordingMonitor`
    (the source of truth for its result's ``iterations`` / ``residual`` /
    ``residual_history``) and tees them to the caller's monitor when one was
    passed.  ``solve_started`` has already been emitted on return.
    """
    recorder = RecordingMonitor()
    mon: SolverMonitor = (
        recorder if monitor is None else TeeMonitor(recorder, monitor)
    )
    mon.solve_started(method, n_states, tol)
    return recorder, mon


def load_trace(path: str) -> Dict[str, Any]:
    """Read a trace JSON file back, validating its schema tag."""
    with open(path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    if trace.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"unrecognized trace schema {trace.get('schema')!r}; "
            f"expected {TRACE_SCHEMA!r}"
        )
    return trace
