"""Transient (finite-horizon) analysis of Markov chains.

Complements the stationary analyses: distribution evolution over a finite
horizon, expected trajectories of state functions (e.g. the mean phase
error during lock acquisition), and empirical mixing diagnostics.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain

__all__ = [
    "distribution_at",
    "distribution_trajectory",
    "expected_trajectory",
    "total_variation",
    "mixing_time",
]


def _as_P(chain: Union[MarkovChain, sp.csr_matrix]) -> sp.csr_matrix:
    return chain.P if isinstance(chain, MarkovChain) else chain.tocsr()


def distribution_at(
    chain: Union[MarkovChain, sp.csr_matrix],
    initial: np.ndarray,
    n_steps: int,
) -> np.ndarray:
    """State distribution after ``n_steps`` steps from ``initial``."""
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    P = _as_P(chain)
    PT = P.T.tocsr()
    x = np.asarray(initial, dtype=float).copy()
    if x.shape != (P.shape[0],):
        raise ValueError("initial distribution has wrong size")
    for _ in range(n_steps):
        x = PT.dot(x)
    return x


def distribution_trajectory(
    chain: Union[MarkovChain, sp.csr_matrix],
    initial: np.ndarray,
    n_steps: int,
) -> np.ndarray:
    """All distributions ``x_0 .. x_{n_steps}`` as a ``(n_steps+1, n)`` array."""
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    P = _as_P(chain)
    PT = P.T.tocsr()
    x = np.asarray(initial, dtype=float).copy()
    out = np.empty((n_steps + 1, x.size))
    out[0] = x
    for k in range(1, n_steps + 1):
        x = PT.dot(x)
        out[k] = x
    return out


def expected_trajectory(
    chain: Union[MarkovChain, sp.csr_matrix],
    initial: np.ndarray,
    fn_values: np.ndarray,
    n_steps: int,
) -> np.ndarray:
    """``E[f(X_k)]`` for ``k = 0 .. n_steps`` without storing distributions."""
    P = _as_P(chain)
    PT = P.T.tocsr()
    x = np.asarray(initial, dtype=float).copy()
    f = np.asarray(fn_values, dtype=float)
    if f.shape != (P.shape[0],):
        raise ValueError("fn_values has wrong size")
    out = np.empty(n_steps + 1)
    out[0] = float(np.dot(x, f))
    for k in range(1, n_steps + 1):
        x = PT.dot(x)
        out[k] = float(np.dot(x, f))
    return out


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance ``0.5 * ||p - q||_1`` between distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return 0.5 * float(np.abs(p - q).sum())


def mixing_time(
    chain: Union[MarkovChain, sp.csr_matrix],
    stationary: np.ndarray,
    epsilon: float = 0.25,
    initial: Optional[np.ndarray] = None,
    max_steps: int = 100_000,
) -> int:
    """Steps until total variation to stationarity drops below ``epsilon``.

    Measured from ``initial`` (default: the worst single-state start is not
    searched; a point mass at state 0 is used).  Returns ``max_steps`` when
    the threshold is not reached -- callers should treat that as a lower
    bound, not a failure.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    P = _as_P(chain)
    PT = P.T.tocsr()
    n = P.shape[0]
    if initial is None:
        x = np.zeros(n)
        x[0] = 1.0
    else:
        x = np.asarray(initial, dtype=float).copy()
    pi = np.asarray(stationary, dtype=float)
    for k in range(max_steps + 1):
        if total_variation(x, pi) < epsilon:
            return k
        x = PT.dot(x)
    return max_steps
