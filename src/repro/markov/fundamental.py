"""Fundamental-matrix analysis of ergodic chains.

The deviation matrix (group inverse of ``I - P``) packages everything the
stationary vector alone cannot answer: mean first-passage times between
*all* pairs of states, the Kemeny constant (the size-independent expected
time to stationarity), and the asymptotic variance of time averages -- the
central-limit variance of ``(1/n) sum f(X_k)``, which for the CDR model is
exactly the long-run variance of *accumulated* recovered-clock jitter.

Dense computations: intended for chains up to a few thousand states
(reduced or lumped models); the sparse large-model analyses live in
:mod:`repro.markov.passage` and :mod:`repro.markov.correlation`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.solvers.direct import solve_direct

__all__ = [
    "deviation_matrix",
    "fundamental_matrix_kemeny_snell",
    "kemeny_constant",
    "pairwise_mean_first_passage",
    "time_average_variance",
]

_DENSE_LIMIT = 5000


def _dense_P(chain: Union[MarkovChain, sp.spmatrix, np.ndarray]) -> np.ndarray:
    if isinstance(chain, MarkovChain):
        P = chain.P
    elif sp.issparse(chain):
        P = chain
    else:
        return np.asarray(chain, dtype=float)
    if P.shape[0] > _DENSE_LIMIT:
        raise ValueError(
            f"fundamental-matrix analysis is dense; {P.shape[0]} states "
            f"exceeds the {_DENSE_LIMIT}-state limit (lump the chain first)"
        )
    return P.toarray()


def _stationary(P: np.ndarray, stationary: Optional[np.ndarray]) -> np.ndarray:
    if stationary is not None:
        return np.asarray(stationary, dtype=float)
    return solve_direct(sp.csr_matrix(P)).distribution


def fundamental_matrix_kemeny_snell(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    stationary: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Kemeny & Snell's fundamental matrix ``Z = (I - P + 1 eta)^{-1}``.

    Exists for any ergodic chain; ``Z`` and the deviation matrix ``D``
    are related by ``D = Z - 1 eta``.
    """
    P = _dense_P(chain)
    eta = _stationary(P, stationary)
    n = P.shape[0]
    return np.linalg.inv(np.eye(n) - P + np.outer(np.ones(n), eta))


def deviation_matrix(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    stationary: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The deviation matrix ``D = sum_k (P^k - 1 eta)`` (group inverse of I-P).

    ``D[i, j]`` is the expected excess number of visits to ``j`` starting
    from ``i``, relative to stationarity.
    """
    P = _dense_P(chain)
    eta = _stationary(P, stationary)
    Z = fundamental_matrix_kemeny_snell(P, eta)
    return Z - np.outer(np.ones(P.shape[0]), eta)


def kemeny_constant(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    stationary: Optional[np.ndarray] = None,
) -> float:
    """The Kemeny constant ``K = sum_j eta_j m_{ij}`` (same for every ``i``).

    The expected number of steps to reach a stationary-sampled target --
    a single-number mixing metric of the loop dynamics.  Computed as
    ``trace(Z) - 1``.
    """
    P = _dense_P(chain)
    eta = _stationary(P, stationary)
    Z = fundamental_matrix_kemeny_snell(P, eta)
    return float(np.trace(Z) - 1.0)


def pairwise_mean_first_passage(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    stationary: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The full mean-first-passage matrix ``M`` with ``M[i, j] = E_i[T_j]``.

    Diagonal entries are the mean recurrence times ``1 / eta_j`` (Kac),
    not zero.  Uses ``M = (I - Z + 1 diag(Z)) diag(1/eta)`` (Kemeny &
    Snell, Theorem 4.4.7).
    """
    P = _dense_P(chain)
    eta = _stationary(P, stationary)
    Z = fundamental_matrix_kemeny_snell(P, eta)
    n = P.shape[0]
    E = np.ones((n, n))
    M = (np.eye(n) - Z + E @ np.diag(np.diag(Z))) @ np.diag(1.0 / eta)
    return M


def time_average_variance(
    chain: Union[MarkovChain, sp.spmatrix, np.ndarray],
    fn_values: np.ndarray,
    stationary: Optional[np.ndarray] = None,
) -> float:
    """Asymptotic (CLT) variance of ``(1/sqrt(n)) sum (f(X_k) - eta f)``.

    ``sigma^2 = 2 <f_c, D f_c>_eta - Var_eta[f]`` with ``f_c = f - eta f``
    and ``D`` the deviation matrix (the ``k = 0`` autocovariance term is
    counted once inside the ``D``-sum, hence the subtraction).  For the
    CDR phase error this is the long-run accumulation rate of
    recovered-clock jitter: the variance of the summed phase error grows
    as ``sigma^2 * n``.
    """
    P = _dense_P(chain)
    eta = _stationary(P, stationary)
    f = np.asarray(fn_values, dtype=float)
    if f.shape != (P.shape[0],):
        raise ValueError("fn_values must have one entry per state")
    mean = float(eta @ f)
    fc = f - mean
    D = deviation_matrix(P, eta)
    var = float(eta @ (fc * fc))
    cross = float((eta * fc) @ (D @ fc))
    return max(2.0 * cross - var, 0.0)
