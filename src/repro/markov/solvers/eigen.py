"""Arnoldi (ARPACK) eigensolver for the stationary distribution.

The stationary vector is the left Perron eigenvector of ``P`` (paper Eq.
(5)); ARPACK's implicitly-restarted Arnoldi iteration finds the few
largest-magnitude eigenpairs of ``P^T`` directly.  As a byproduct it
exposes the *subdominant* eigenvalue, whose modulus governs the mixing
rate -- the quantity that decides whether the basic iterative methods are
viable or the multigrid is needed.

Needs the assembled matrix (ARPACK wants a concrete sparse operator with a
cheap transpose), so matrix-free operators are materialized through
:func:`~repro.markov.linop.ensure_csr`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import ArpackNoConvergence, eigs

from repro.markov.linop import ensure_csr
from repro.markov.monitor import SolverMonitor, instrument
from repro.markov.registry import register_solver
from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

__all__ = ["solve_eigen", "subdominant_eigenvalue"]


def solve_eigen(
    P,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    x0: Optional[np.ndarray] = None,
    monitor: Optional[SolverMonitor] = None,
) -> StationaryResult:
    """Stationary vector via ARPACK on ``P^T`` (largest-magnitude pair).

    The monitor sees a single iteration event with the final residual
    (ARPACK does not expose per-restart residuals).
    """
    P = ensure_csr(P)
    n = P.shape[0]
    if n < 3:
        # ARPACK needs k < n - 1; fall back to the direct solver.
        from repro.markov.solvers.direct import solve_direct

        return solve_direct(P, tol=tol, monitor=monitor)
    v0 = prepare_initial_guess(n, x0)
    recorder, mon = instrument("arnoldi", n, tol, monitor)
    start = time.perf_counter()
    try:
        vals, vecs = eigs(P.T.tocsc(), k=1, which="LM", v0=v0,
                          maxiter=max_iter, tol=tol)
        converged = True
    except ArpackNoConvergence as exc:
        vals, vecs = exc.eigenvalues, exc.eigenvectors
        converged = vals.size > 0
        if not converged:
            raise ArithmeticError("ARPACK failed to produce any eigenpair") from exc
    x = np.abs(np.real(vecs[:, 0]))
    total = x.sum()
    if total <= 0:
        raise ArithmeticError("ARPACK returned a zero eigenvector")
    x /= total
    res = residual_norm(P, x)
    elapsed = time.perf_counter() - start
    mon.iteration_finished(1, res, elapsed)
    converged = converged and res < max(tol * 100, 1e-6)
    mon.solve_finished(converged, 1, res, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=1,
        residual=res,
        converged=converged,
        method="arnoldi",
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )


@register_solver(
    "arnoldi",
    matrix_free=False,
    description="ARPACK Arnoldi on P^T (largest-magnitude eigenpair)",
    default_max_iter=10_000,
)
def _dispatch_eigen(P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs):
    # ARPACK exposes no per-iteration iterate, so on_iterate never fires.
    kwargs.pop("on_iterate", None)
    return solve_eigen(
        P,
        tol=tol,
        max_iter=10_000 if max_iter is None else max_iter,
        x0=x0,
        monitor=monitor,
        **kwargs,
    )


def subdominant_eigenvalue(
    P: sp.csr_matrix, tol: float = 1e-8, max_iter: int = 20_000
) -> Tuple[complex, float]:
    """The second-largest-modulus eigenvalue of ``P`` and the mixing gap.

    Returns ``(lambda_2, 1 - |lambda_2|)``.  A gap near zero signals a
    stiff chain: power/Jacobi iteration counts scale as ``1 / gap`` while
    multigrid cycle counts do not -- this is the diagnostic behind the
    paper's choice of solver.
    """
    n = P.shape[0]
    if n < 4:
        w = np.linalg.eigvals(P.toarray())
        w = w[np.argsort(-np.abs(w))]
        lam2 = complex(w[1]) if w.size > 1 else 0.0j
        return lam2, 1.0 - abs(lam2)
    vals = eigs(P.T.tocsc(), k=2, which="LM", maxiter=max_iter, tol=tol,
                return_eigenvectors=False)
    vals = vals[np.argsort(-np.abs(vals))]
    lam2 = complex(vals[1])
    return lam2, 1.0 - abs(lam2)
