"""SOR (successive over-relaxation) iteration for the stationary vector.

Gauss-Seidel with a relaxation factor ``omega``: the update direction of
one GS sweep is scaled by ``omega`` (over-relaxation for ``omega > 1``,
under-relaxation below).  On the banded, advection-dominated chains of
the CDR model a modest over-relaxation typically shaves 20-40% off the
Gauss-Seidel sweep count (Stewart, ch. 3).

Needs the assembled triangular factors, so matrix-free operators are
materialized through :func:`~repro.markov.linop.ensure_csr`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.markov.linop import ensure_csr
from repro.markov.monitor import SolverMonitor
from repro.markov.registry import register_solver
from repro.markov.solvers.result import StationaryResult, iterate_fixed_point

__all__ = ["solve_sor"]

_DIAG_FLOOR = 1e-14


def solve_sor(
    P,
    tol: float = 1e-10,
    max_iter: int = 50_000,
    x0: Optional[np.ndarray] = None,
    omega: float = 1.2,
    monitor: Optional[SolverMonitor] = None,
    on_iterate=None,
) -> StationaryResult:
    """SOR sweeps on ``(I - P^T) x = 0`` with renormalization.

    ``omega = 1`` reduces to Gauss-Seidel.  Stability typically requires
    ``0 < omega < 2``; the useful range for Markov problems is about
    ``[0.9, 1.6]``.
    """
    if not 0.0 < omega < 2.0:
        raise ValueError("omega must be in (0, 2)")
    P = ensure_csr(P)
    n = P.shape[0]
    A = (sp.identity(n, format="csr") - P.T).tocsr()
    D = A.diagonal()
    D = np.where(D < _DIAG_FLOOR, _DIAG_FLOOR, D)
    L = sp.tril(A, k=-1).tocsr()
    U = sp.triu(A, k=1).tocsr()
    # SOR splitting: (D/omega + L) x_new = ((1/omega - 1) D - U) x_old
    M = (sp.diags(D / omega) + L).tocsr()
    N = sp.diags((1.0 / omega - 1.0) * D) - U
    PT = P.T.tocsr()
    method = f"sor(omega={omega:g})"

    def step(x: np.ndarray) -> np.ndarray:
        rhs = N.dot(x)
        y = spsolve_triangular(M, rhs, lower=True)
        # For omega > 1 the N diagonal turns negative, so an over-relaxed
        # sweep can flip the whole iterate's sign (it still spans the same
        # Perron direction).  Keep whichever sign orientation carries the
        # mass instead of clipping the raw iterate to an all-zero vector.
        pos = np.clip(y, 0.0, None)
        neg = np.clip(-y, 0.0, None)
        x = pos if pos.sum() >= neg.sum() else neg
        total = x.sum()
        if total <= 0:
            raise ArithmeticError("SOR sweep annihilated the iterate")
        return x / total

    return iterate_fixed_point(
        n,
        step,
        lambda x: float(np.abs(PT.dot(x) - x).sum()),
        method=method,
        tol=tol,
        max_iter=max_iter,
        x0=x0,
        monitor=monitor,
        on_iterate=on_iterate,
    )


@register_solver(
    "sor",
    matrix_free=False,
    description="over-relaxed Gauss-Seidel (omega) sweeps",
    default_max_iter=50_000,
)
def _dispatch_sor(P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs):
    return solve_sor(
        P,
        tol=tol,
        max_iter=50_000 if max_iter is None else max_iter,
        x0=x0,
        monitor=monitor,
        omega=kwargs.pop("omega", 1.2),
        **kwargs,
    )
