"""SOR (successive over-relaxation) iteration for the stationary vector.

Gauss-Seidel with a relaxation factor ``omega``: the update direction of
one GS sweep is scaled by ``omega`` (over-relaxation for ``omega > 1``,
under-relaxation below).  On the banded, advection-dominated chains of
the CDR model a modest over-relaxation typically shaves 20-40% off the
Gauss-Seidel sweep count (Stewart, ch. 3).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.markov.monitor import SolverMonitor, instrument
from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

__all__ = ["solve_sor"]

_DIAG_FLOOR = 1e-14


def solve_sor(
    P: sp.csr_matrix,
    tol: float = 1e-10,
    max_iter: int = 50_000,
    x0: Optional[np.ndarray] = None,
    omega: float = 1.2,
    monitor: Optional[SolverMonitor] = None,
) -> StationaryResult:
    """SOR sweeps on ``(I - P^T) x = 0`` with renormalization.

    ``omega = 1`` reduces to Gauss-Seidel.  Stability typically requires
    ``0 < omega < 2``; the useful range for Markov problems is about
    ``[0.9, 1.6]``.
    """
    if not 0.0 < omega < 2.0:
        raise ValueError("omega must be in (0, 2)")
    n = P.shape[0]
    x = prepare_initial_guess(n, x0)
    A = (sp.identity(n, format="csr") - P.T).tocsr()
    D = A.diagonal()
    D = np.where(D < _DIAG_FLOOR, _DIAG_FLOOR, D)
    L = sp.tril(A, k=-1).tocsr()
    U = sp.triu(A, k=1).tocsr()
    # SOR splitting: (D/omega + L) x_new = ((1/omega - 1) D - U) x_old
    M = (sp.diags(D / omega) + L).tocsr()
    N = sp.diags((1.0 / omega - 1.0) * D) - U
    PT = P.T.tocsr()
    method = f"sor(omega={omega:g})"
    recorder, mon = instrument(method, n, tol, monitor)
    start = time.perf_counter()
    converged = False
    for it in range(1, max_iter + 1):
        rhs = N.dot(x)
        x = spsolve_triangular(M, rhs, lower=True)
        x = np.clip(x, 0.0, None)
        total = x.sum()
        if total <= 0:
            raise ArithmeticError("SOR sweep annihilated the iterate")
        x /= total
        res = float(np.abs(PT.dot(x) - x).sum())
        mon.iteration_finished(it, res, time.perf_counter() - start)
        if res < tol:
            converged = True
            break
    elapsed = time.perf_counter() - start
    residual = recorder.last_residual()
    if residual is None:
        residual = residual_norm(P, x)
    mon.solve_finished(converged, recorder.n_iterations, residual, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=recorder.n_iterations,
        residual=residual,
        converged=converged,
        method=method,
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )
