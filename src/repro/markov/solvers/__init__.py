"""Stationary-distribution solvers.

The paper surveys "a variety of standard iterative techniques" before
introducing its multi-level method; this subpackage implements those
baselines (power iteration, Gauss-Jacobi, Gauss-Seidel, Krylov, direct
sparse LU) behind a common :class:`~repro.markov.solvers.result.StationaryResult`
interface, so the benchmark harness can compare them head-to-head with the
multigrid solver of :mod:`repro.markov.multigrid`.
"""

from repro.markov.solvers.result import StationaryResult
from repro.markov.solvers.direct import solve_direct
from repro.markov.solvers.power import solve_power
from repro.markov.solvers.jacobi import solve_jacobi
from repro.markov.solvers.gauss_seidel import solve_gauss_seidel
from repro.markov.solvers.krylov import solve_krylov
from repro.markov.solvers.sor import solve_sor
from repro.markov.solvers.eigen import solve_eigen, subdominant_eigenvalue

__all__ = [
    "StationaryResult",
    "solve_direct",
    "solve_power",
    "solve_jacobi",
    "solve_gauss_seidel",
    "solve_krylov",
    "solve_sor",
    "solve_eigen",
    "subdominant_eigenvalue",
]
