"""Gauss-Seidel iteration for the stationary distribution.

Splitting ``A = I - P^T = (D - L) - U`` (``L`` strictly lower, ``U``
strictly upper triangular), each sweep solves the triangular system
``(D - L) x_new = U x_old`` and renormalizes.  Gauss-Seidel typically
converges in fewer sweeps than Jacobi on Markov problems at the cost of a
triangular solve per sweep (Stewart, *Introduction to the Numerical
Solution of Markov Chains*, ch. 3 -- reference [4] of the paper).

Needs the assembled triangular factors, so matrix-free operators are
materialized through :func:`~repro.markov.linop.ensure_csr`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.markov.linop import ensure_csr
from repro.markov.monitor import SolverMonitor
from repro.markov.registry import register_solver
from repro.markov.solvers.result import StationaryResult, iterate_fixed_point

__all__ = ["solve_gauss_seidel"]

_DIAG_FLOOR = 1e-14


def solve_gauss_seidel(
    P,
    tol: float = 1e-10,
    max_iter: int = 50_000,
    x0: Optional[np.ndarray] = None,
    monitor: Optional[SolverMonitor] = None,
    on_iterate=None,
) -> StationaryResult:
    """Gauss-Seidel sweeps on ``(I - P^T) x = 0`` with renormalization."""
    P = ensure_csr(P)
    n = P.shape[0]
    A = (sp.identity(n, format="csr") - P.T).tocsr()
    lower = sp.tril(A, k=0).tocsr()
    # Guard absorbing states (zero diagonal in A) so the triangular solve
    # stays well-defined.
    diag = lower.diagonal()
    fix = diag < _DIAG_FLOOR
    if np.any(fix):
        lower = lower + sp.diags(np.where(fix, _DIAG_FLOOR, 0.0))
    upper = (-sp.triu(A, k=1)).tocsr()
    PT = P.T.tocsr()

    def step(x: np.ndarray) -> np.ndarray:
        rhs = upper.dot(x)
        x = spsolve_triangular(lower, rhs, lower=True)
        x = np.clip(x, 0.0, None)
        total = x.sum()
        if total <= 0:
            raise ArithmeticError("Gauss-Seidel sweep annihilated the iterate")
        return x / total

    return iterate_fixed_point(
        n,
        step,
        lambda x: float(np.abs(PT.dot(x) - x).sum()),
        method="gauss-seidel",
        tol=tol,
        max_iter=max_iter,
        x0=x0,
        monitor=monitor,
        on_iterate=on_iterate,
    )


@register_solver(
    "gauss-seidel",
    matrix_free=False,
    description="Gauss-Seidel triangular sweeps",
    default_max_iter=50_000,
)
def _dispatch_gauss_seidel(
    P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs
):
    return solve_gauss_seidel(
        P,
        tol=tol,
        max_iter=50_000 if max_iter is None else max_iter,
        x0=x0,
        monitor=monitor,
        **kwargs,
    )
