"""Gauss-Seidel iteration for the stationary distribution.

Splitting ``A = I - P^T = (D - L) - U`` (``L`` strictly lower, ``U``
strictly upper triangular), each sweep solves the triangular system
``(D - L) x_new = U x_old`` and renormalizes.  Gauss-Seidel typically
converges in fewer sweeps than Jacobi on Markov problems at the cost of a
triangular solve per sweep (Stewart, *Introduction to the Numerical
Solution of Markov Chains*, ch. 3 -- reference [4] of the paper).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro.markov.monitor import SolverMonitor, instrument
from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

__all__ = ["solve_gauss_seidel"]

_DIAG_FLOOR = 1e-14


def solve_gauss_seidel(
    P: sp.csr_matrix,
    tol: float = 1e-10,
    max_iter: int = 50_000,
    x0: Optional[np.ndarray] = None,
    monitor: Optional[SolverMonitor] = None,
) -> StationaryResult:
    """Gauss-Seidel sweeps on ``(I - P^T) x = 0`` with renormalization."""
    n = P.shape[0]
    x = prepare_initial_guess(n, x0)
    A = (sp.identity(n, format="csr") - P.T).tocsr()
    lower = sp.tril(A, k=0).tocsr()
    # Guard absorbing states (zero diagonal in A) so the triangular solve
    # stays well-defined.
    diag = lower.diagonal()
    fix = diag < _DIAG_FLOOR
    if np.any(fix):
        lower = lower + sp.diags(np.where(fix, _DIAG_FLOOR, 0.0))
    upper = (-sp.triu(A, k=1)).tocsr()
    PT = P.T.tocsr()
    recorder, mon = instrument("gauss-seidel", n, tol, monitor)
    start = time.perf_counter()
    converged = False
    for it in range(1, max_iter + 1):
        rhs = upper.dot(x)
        x = spsolve_triangular(lower, rhs, lower=True)
        x = np.clip(x, 0.0, None)
        total = x.sum()
        if total <= 0:
            raise ArithmeticError("Gauss-Seidel sweep annihilated the iterate")
        x /= total
        res = float(np.abs(PT.dot(x) - x).sum())
        mon.iteration_finished(it, res, time.perf_counter() - start)
        if res < tol:
            converged = True
            break
    elapsed = time.perf_counter() - start
    residual = recorder.last_residual()
    if residual is None:
        residual = residual_norm(P, x)
    mon.solve_finished(converged, recorder.n_iterations, residual, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=recorder.n_iterations,
        residual=residual,
        converged=converged,
        method="gauss-seidel",
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )
