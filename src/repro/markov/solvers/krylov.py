"""Krylov-subspace solution of the stationary equations.

The paper mentions that aggregation/disaggregation can accelerate "possibly
the Krylov subspace methods"; here GMRES / BiCGStab from scipy are applied
to the augmented nonsingular system (one stationary equation replaced by the
normalization), optionally preconditioned.

Preconditioners:

``"auto"`` (default)
    ILU when the matrix is assembled, none otherwise -- the historical
    behaviour.
``"ilu"``
    Incomplete-LU right preconditioning.  Needs the assembled matrix:
    requesting it explicitly on a matrix-free operator raises a typed
    :class:`~repro.markov.linop.OperatorCapabilityError` (it used to be
    silently skipped, which made matrix-free solves look mysteriously
    slower instead of failing loudly).
``"amg"``
    One V-cycle of an aggregation hierarchy
    (:class:`~repro.markov.context.AMGPreconditioner`), fully
    matrix-free.  Pass ``hierarchy=`` a prebuilt
    :class:`~repro.markov.context.CoarseningHierarchy` or a
    :class:`~repro.markov.context.SolveContext` (whose cache then makes
    repeated solves of one structure pay the hierarchy build once);
    omitted, a hierarchy is built on the spot.
``None``
    Unpreconditioned.

Matrix-free capable: for an unassembled
:class:`~repro.markov.linop.TransitionOperator` the augmented system is
applied as ``y = x - P^T x`` with the last entry overwritten by ``sum(x)``
-- no matrix is formed.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy.sparse.linalg import LinearOperator, bicgstab, gmres, spilu

from repro.markov.linop import (
    AssembledOperator,
    OperatorCapabilityError,
    as_operator,
    operator_residual,
    operator_rmatmat,
)
from repro.markov.monitor import SolverMonitor, instrument
from repro.markov.registry import register_solver
from repro.markov.solvers.direct import augmented_system
from repro.markov.solvers.result import StationaryResult, prepare_initial_guess

__all__ = ["solve_krylov"]

_PRECONDITIONERS = (None, "auto", "ilu", "amg")


def _amg_preconditioner(op, hierarchy, weights):
    """Resolve the ``hierarchy`` argument into an AMG ``M`` operator."""
    from repro.markov.context import (
        AMGPreconditioner,
        CoarseningHierarchy,
        SolveContext,
        build_hierarchy,
    )

    if hierarchy is None:
        hierarchy = build_hierarchy(op)
    elif isinstance(hierarchy, SolveContext):
        hierarchy = hierarchy.hierarchy_for(op)
    elif not isinstance(hierarchy, CoarseningHierarchy):
        raise TypeError(
            "hierarchy must be a CoarseningHierarchy or SolveContext, "
            f"got {type(hierarchy).__name__}"
        )
    return AMGPreconditioner(op, hierarchy, weights=weights)


def solve_krylov(
    P,
    tol: float = 1e-10,
    max_iter: int = 5_000,
    x0: Optional[np.ndarray] = None,
    variant: str = "gmres",
    preconditioner: Optional[str] = "auto",
    restart: int = 50,
    monitor: Optional[SolverMonitor] = None,
    on_iterate=None,
    hierarchy=None,
) -> StationaryResult:
    """Solve the augmented system with GMRES or BiCGStab.

    Parameters
    ----------
    variant:
        ``"gmres"`` (default) or ``"bicgstab"``.
    preconditioner:
        ``"auto"`` (ILU when assembled, none otherwise), ``"ilu"``,
        ``"amg"`` (one hierarchy V-cycle, matrix-free capable) or
        ``None``.  ILU can fail on highly structured singular-ish
        systems; in that case the solver transparently retries
        unpreconditioned.  Explicit ``"ilu"`` on a matrix-free operator
        raises :class:`~repro.markov.linop.OperatorCapabilityError`.
    restart:
        GMRES restart length.
    hierarchy:
        For ``preconditioner="amg"``: a prebuilt
        :class:`~repro.markov.context.CoarseningHierarchy` or a
        :class:`~repro.markov.context.SolveContext`; built fresh when
        omitted.
    monitor:
        Optional :class:`~repro.markov.monitor.SolverMonitor`.  One event
        per scipy callback (each GMRES restart cycle / each BiCGStab
        iteration) with the true stationary residual of the normalized
        snapshot, plus one final event after the solve.  ``iterations`` on
        the result equals the number of recorded events.
    """
    if variant not in ("gmres", "bicgstab"):
        raise ValueError(f"unknown Krylov variant {variant!r}")
    if preconditioner not in _PRECONDITIONERS:
        raise ValueError(
            f"unknown preconditioner {preconditioner!r}; "
            f"expected one of {_PRECONDITIONERS}"
        )
    op = as_operator(P)
    n = op.shape[0]
    assembled = isinstance(op, AssembledOperator)
    resolved = preconditioner
    if resolved == "auto":
        resolved = "ilu" if assembled else None
    if resolved == "ilu" and not assembled:
        raise OperatorCapabilityError(
            f"{type(op).__name__} cannot be ILU-preconditioned: ILU "
            "factorization needs the assembled sparsity pattern.  Use "
            "preconditioner='amg' (matrix-free) or None"
        )
    x_init = prepare_initial_guess(n, x0)
    b = np.zeros(n)
    b[n - 1] = 1.0

    M = None
    suffix = ""
    if assembled:
        A = augmented_system(op.P).tocsc()
        if resolved == "ilu":
            try:
                ilu = spilu(A, drop_tol=1e-5, fill_factor=10)
                M = LinearOperator((n, n), matvec=ilu.solve)
                suffix = "+ilu"
            except RuntimeError:
                M = None
        A_op = LinearOperator((n, n), matvec=A.dot, matmat=A.dot)
    else:
        def apply_augmented(v: np.ndarray) -> np.ndarray:
            v = np.asarray(v, dtype=float)
            y = v - op.rmatvec(v)
            y[n - 1] = v.sum()
            return y

        def apply_augmented_block(V: np.ndarray) -> np.ndarray:
            V = np.asarray(V, dtype=float)
            Y = V - operator_rmatmat(op, V)
            Y[n - 1, :] = V.sum(axis=0)
            return Y

        A_op = LinearOperator(
            (n, n), matvec=apply_augmented, matmat=apply_augmented_block
        )

    if resolved == "amg":
        amg = _amg_preconditioner(op, hierarchy, weights=x_init)
        M = amg.as_linear_operator()
        suffix = "+amg"

    method = f"krylov-{variant}{suffix}"
    recorder, mon = instrument(method, n, tol, monitor)
    start = time.perf_counter()

    def snapshot_residual(v: np.ndarray) -> float:
        v = np.clip(np.asarray(v, dtype=float), 0.0, None)
        total = v.sum()
        if total <= 0:
            return float("inf")
        return operator_residual(op, v / total)

    def on_snapshot(xk: np.ndarray) -> None:
        if on_iterate is not None:
            v = np.clip(np.asarray(xk, dtype=float), 0.0, None)
            total = v.sum()
            if total > 0:
                on_iterate(recorder.n_iterations + 1, v / total)
        mon.iteration_finished(
            recorder.n_iterations + 1,
            snapshot_residual(xk),
            time.perf_counter() - start,
        )

    if variant == "gmres":
        x, info = gmres(
            A_op, b, x0=x_init, rtol=tol, atol=0.0, maxiter=max_iter,
            restart=restart, M=M, callback=on_snapshot, callback_type="x",
        )
    else:
        x, info = bicgstab(
            A_op, b, x0=x_init, rtol=tol, atol=0.0, maxiter=max_iter, M=M,
            callback=on_snapshot,
        )

    x = np.clip(np.asarray(x, dtype=float), 0.0, None)
    total = x.sum()
    if total <= 0:
        raise ArithmeticError(f"{variant} produced a zero stationary vector")
    x /= total
    res = operator_residual(op, x)
    elapsed = time.perf_counter() - start
    mon.iteration_finished(recorder.n_iterations + 1, res, elapsed)
    mon.solve_finished(info == 0, recorder.n_iterations, res, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=recorder.n_iterations,
        residual=res,
        converged=(info == 0),
        method=method,
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )


@register_solver(
    "krylov",
    matrix_free=True,
    description="GMRES/BiCGStab on the augmented system (ILU/AMG "
    "preconditioning)",
    default_max_iter=5_000,
    fallback_priority=20,
)
def _dispatch_krylov(P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs):
    context = kwargs.pop("context", None)
    hierarchy = kwargs.pop("hierarchy", None)
    if context is not None and hierarchy is None:
        hierarchy = context
    return solve_krylov(
        P,
        tol=tol,
        max_iter=5_000 if max_iter is None else max_iter,
        x0=x0,
        monitor=monitor,
        variant=kwargs.pop("variant", "gmres"),
        preconditioner=kwargs.pop("preconditioner", "auto"),
        hierarchy=hierarchy,
        **kwargs,
    )
