"""Power iteration for the stationary distribution.

The stationary vector is the left eigenvector of ``P`` for eigenvalue 1
(paper Eq. (5)); power iteration simply repeats ``x <- x P`` with
renormalization.  An optional damping factor iterates on the *lazy* chain
``alpha P + (1 - alpha) I`` instead, which has the same stationary vector
but is guaranteed aperiodic, so the method also converges on periodic
chains.

Fully matrix-free: the sweep only needs ``rmatvec``, so any
:class:`~repro.markov.linop.TransitionOperator` backend works unassembled.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.markov.linop import as_operator, operator_residual
from repro.markov.monitor import SolverMonitor
from repro.markov.registry import register_solver
from repro.markov.solvers.result import StationaryResult, iterate_fixed_point

__all__ = ["solve_power"]


def solve_power(
    P,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    x0: Optional[np.ndarray] = None,
    damping: float = 1.0,
    monitor: Optional[SolverMonitor] = None,
    on_iterate=None,
) -> StationaryResult:
    """Power iteration ``x <- x (alpha P + (1-alpha) I)``.

    Parameters
    ----------
    P:
        Row-stochastic transition matrix in any
        :func:`~repro.markov.linop.as_operator`-coercible form (CSR,
        MarkovChain, matrix-free operator, Kronecker descriptor, ...).
    tol:
        Convergence threshold on ``||x P - x||_1``.
    max_iter:
        Iteration cap.
    damping:
        ``alpha`` above; 1.0 is plain power iteration, values below 1 make
        the iteration matrix aperiodic (use e.g. 0.5 for periodic chains).
    monitor:
        Optional :class:`~repro.markov.monitor.SolverMonitor` receiving one
        event per iteration.
    on_iterate:
        Optional ``on_iterate(iteration, x)`` hook per new iterate (the
        checkpointing attachment point).
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")
    op = as_operator(P)
    n = op.shape[0]
    method = "power" if damping == 1.0 else f"power(damping={damping:g})"

    def step(x: np.ndarray) -> np.ndarray:
        px = op.rmatvec(x)
        if damping != 1.0:
            px = damping * px + (1.0 - damping) * x
        return px / px.sum()

    return iterate_fixed_point(
        n,
        step,
        lambda x: operator_residual(op, x),
        method=method,
        tol=tol,
        max_iter=max_iter,
        x0=x0,
        monitor=monitor,
        on_iterate=on_iterate,
    )


@register_solver(
    "power",
    matrix_free=True,
    description="damped power iteration x <- x P",
    default_max_iter=100_000,
    fallback_priority=30,
)
def _dispatch_power(P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs):
    return solve_power(
        P,
        tol=tol,
        max_iter=100_000 if max_iter is None else max_iter,
        x0=x0,
        monitor=monitor,
        damping=kwargs.pop("damping", 1.0),
        **kwargs,
    )
