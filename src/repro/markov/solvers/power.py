"""Power iteration for the stationary distribution.

The stationary vector is the left eigenvector of ``P`` for eigenvalue 1
(paper Eq. (5)); power iteration simply repeats ``x <- x P`` with
renormalization.  An optional damping factor iterates on the *lazy* chain
``alpha P + (1 - alpha) I`` instead, which has the same stationary vector
but is guaranteed aperiodic, so the method also converges on periodic
chains.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.markov.monitor import SolverMonitor, instrument
from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

__all__ = ["solve_power"]


def solve_power(
    P: sp.csr_matrix,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    x0: Optional[np.ndarray] = None,
    damping: float = 1.0,
    monitor: Optional[SolverMonitor] = None,
) -> StationaryResult:
    """Power iteration ``x <- x (alpha P + (1-alpha) I)``.

    Parameters
    ----------
    P:
        Row-stochastic CSR matrix.
    tol:
        Convergence threshold on ``||x P - x||_1``.
    max_iter:
        Iteration cap.
    damping:
        ``alpha`` above; 1.0 is plain power iteration, values below 1 make
        the iteration matrix aperiodic (use e.g. 0.5 for periodic chains).
    monitor:
        Optional :class:`~repro.markov.monitor.SolverMonitor` receiving one
        event per iteration.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")
    n = P.shape[0]
    x = prepare_initial_guess(n, x0)
    PT = P.T.tocsr()
    method = "power" if damping == 1.0 else f"power(damping={damping:g})"
    recorder, mon = instrument(method, n, tol, monitor)
    start = time.perf_counter()
    converged = False
    for it in range(1, max_iter + 1):
        px = PT.dot(x)
        if damping != 1.0:
            px = damping * px + (1.0 - damping) * x
        px_sum = px.sum()
        px /= px_sum
        res = float(np.abs(PT.dot(px) - px).sum())
        mon.iteration_finished(it, res, time.perf_counter() - start)
        x = px
        if res < tol:
            converged = True
            break
    elapsed = time.perf_counter() - start
    residual = recorder.last_residual()
    if residual is None:
        residual = residual_norm(P, x)
    mon.solve_finished(converged, recorder.n_iterations, residual, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=recorder.n_iterations,
        residual=residual,
        converged=converged,
        method=method,
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )
