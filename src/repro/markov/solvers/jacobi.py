"""(Weighted) Gauss-Jacobi iteration for the stationary distribution.

This is the smoother the paper interleaves with its multigrid lumping steps
("the lumping and expanding steps are interleaved with simple Gauss-Jacobi
iterations").  Applied to the singular system ``(I - P^T) x = 0`` with the
diagonal splitting, one plain sweep reads::

    x_i <- ( sum_{j != i} P[j, i] x_j ) / (1 - P[i, i])

followed by renormalization.  The plain sweep is only *semi*-convergent:
the Jacobi iteration matrix ``H = D^{-1} (L + U)`` is non-negative with
spectral radius one, and can carry eigenvalues elsewhere on the unit circle
(e.g. -1 for bipartite-like chains), producing sustained oscillation.  The
weighted sweep ::

    x <- (1 - omega) x + omega H x,   0 < omega < 1

damps every unit-circle mode except the Perron eigenvalue and therefore
converges for any irreducible chain.  ``omega = 1`` recovers plain Jacobi.

Fully matrix-free: for an unassembled
:class:`~repro.markov.linop.TransitionOperator` the off-diagonal product is
computed as ``P^T x - diag(P) * x`` through ``rmatvec``, so the splitting
never materializes a matrix.  That is what lets the multigrid smoother run
on the matrix-free fine level.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.markov.linop import (
    AssembledOperator,
    as_operator,
    operator_residual,
    operator_rmatmat,
)
from repro.markov.monitor import SolverMonitor
from repro.markov.registry import register_solver
from repro.markov.solvers.result import StationaryResult, iterate_fixed_point

__all__ = ["solve_jacobi", "jacobi_sweeps", "jacobi_split", "DEFAULT_WEIGHT"]

_DIAG_FLOOR = 1e-14

#: Default damping weight; 0.7 is a good compromise between damping the
#: oscillatory modes and not slowing the smooth ones.
DEFAULT_WEIGHT = 0.7


class _OperatorOffDiagonal:
    """``P^T - diag(P)`` applied through an operator's ``rmatvec``.

    Quacks like the sparse off-diagonal factor of :func:`jacobi_split`
    (exposes ``dot``), so :func:`jacobi_sweeps` runs unchanged on
    matrix-free backends.
    """

    __slots__ = ("_op", "_diag")

    def __init__(self, op, diag: np.ndarray) -> None:
        self._op = op
        self._diag = diag

    def dot(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            return operator_rmatmat(self._op, x) - self._diag[:, None] * x
        return self._op.rmatvec(x) - self._diag * x


def _inverse_diag(diag: np.ndarray) -> np.ndarray:
    denom = 1.0 - diag
    # A state with P[i,i] == 1 is absorbing; the Jacobi update for it is
    # undefined.  Clamp so the sweep stays finite; such chains should be
    # handled by classification before solving.
    denom = np.where(denom < _DIAG_FLOOR, _DIAG_FLOOR, denom)
    return 1.0 / denom


def _split(P: sp.csr_matrix) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Return (P^T without its diagonal, inverse Jacobi diagonal)."""
    PT = P.T.tocsr()
    diag = P.diagonal()
    off = PT - sp.diags(diag)
    return off.tocsr(), _inverse_diag(diag)


def jacobi_split(P) -> Tuple[object, np.ndarray]:
    """Precompute the Jacobi splitting of ``P`` for repeated sweeps.

    The multigrid solver smooths with the same fine-level matrix on every
    V-cycle; caching this avoids re-transposing ``P`` each time.  For an
    assembled matrix the first element is the explicit off-diagonal CSR
    factor; for a matrix-free operator it is an equivalent ``dot``-able
    wrapper that routes through ``rmatvec``.
    """
    if sp.issparse(P):
        return _split(P.tocsr())
    op = as_operator(P)
    if isinstance(op, AssembledOperator):
        return _split(op.P)
    diag = np.asarray(op.diagonal(), dtype=float)
    return _OperatorOffDiagonal(op, diag), _inverse_diag(diag)


def jacobi_sweeps(
    P,
    x: np.ndarray,
    n_sweeps: int,
    weight: float = DEFAULT_WEIGHT,
    split: Optional[Tuple[object, np.ndarray]] = None,
) -> np.ndarray:
    """Apply ``n_sweeps`` normalized weighted-Jacobi sweeps to ``x``.

    Exposed separately because the multigrid solver uses it as the
    smoother.  Pass ``split=jacobi_split(P)`` to reuse the splitting across
    calls.  ``x`` may also be an ``(n, k)`` block of iterates: each column
    is swept and renormalized independently, with the off-diagonal
    applications going through the backend's blocked ``rmatmat`` when it
    has one (this is what lets several warm-start candidates smooth in a
    single kernel pass).
    """
    if not 0.0 < weight <= 1.0:
        raise ValueError("weight must be in (0, 1]")
    off, inv_diag = jacobi_split(P) if split is None else split
    blocked = x.ndim == 2
    scale = inv_diag[:, None] if blocked else inv_diag
    for _ in range(n_sweeps):
        h = off.dot(x) * scale
        x = (1.0 - weight) * x + weight * h
        total = x.sum(axis=0) if blocked else x.sum()
        if np.any(total <= 0) if blocked else total <= 0:
            raise ArithmeticError("Jacobi sweep annihilated the iterate")
        x = x / total
    return x


def solve_jacobi(
    P,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    x0: Optional[np.ndarray] = None,
    weight: float = DEFAULT_WEIGHT,
    monitor: Optional[SolverMonitor] = None,
    on_iterate=None,
) -> StationaryResult:
    """Iterate weighted-Jacobi sweeps until ``||x P - x||_1 < tol``."""
    if not 0.0 < weight <= 1.0:
        raise ValueError("weight must be in (0, 1]")
    op = as_operator(P)
    n = op.shape[0]
    off, inv_diag = jacobi_split(op)
    method = "jacobi" if weight == 1.0 else f"jacobi(weight={weight:g})"

    def step(x: np.ndarray) -> np.ndarray:
        h = off.dot(x) * inv_diag
        x = (1.0 - weight) * x + weight * h
        return x / x.sum()

    return iterate_fixed_point(
        n,
        step,
        lambda x: operator_residual(op, x),
        method=method,
        tol=tol,
        max_iter=max_iter,
        x0=x0,
        monitor=monitor,
        on_iterate=on_iterate,
    )


@register_solver(
    "jacobi",
    matrix_free=True,
    description="weighted Gauss-Jacobi sweeps (the paper's smoother)",
    default_max_iter=100_000,
)
def _dispatch_jacobi(P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs):
    return solve_jacobi(
        P,
        tol=tol,
        max_iter=100_000 if max_iter is None else max_iter,
        x0=x0,
        monitor=monitor,
        **kwargs,
    )
