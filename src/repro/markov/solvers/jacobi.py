"""(Weighted) Gauss-Jacobi iteration for the stationary distribution.

This is the smoother the paper interleaves with its multigrid lumping steps
("the lumping and expanding steps are interleaved with simple Gauss-Jacobi
iterations").  Applied to the singular system ``(I - P^T) x = 0`` with the
diagonal splitting, one plain sweep reads::

    x_i <- ( sum_{j != i} P[j, i] x_j ) / (1 - P[i, i])

followed by renormalization.  The plain sweep is only *semi*-convergent:
the Jacobi iteration matrix ``H = D^{-1} (L + U)`` is non-negative with
spectral radius one, and can carry eigenvalues elsewhere on the unit circle
(e.g. -1 for bipartite-like chains), producing sustained oscillation.  The
weighted sweep ::

    x <- (1 - omega) x + omega H x,   0 < omega < 1

damps every unit-circle mode except the Perron eigenvalue and therefore
converges for any irreducible chain.  ``omega = 1`` recovers plain Jacobi.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.markov.monitor import SolverMonitor, instrument
from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

__all__ = ["solve_jacobi", "jacobi_sweeps", "jacobi_split", "DEFAULT_WEIGHT"]

_DIAG_FLOOR = 1e-14

#: Default damping weight; 0.7 is a good compromise between damping the
#: oscillatory modes and not slowing the smooth ones.
DEFAULT_WEIGHT = 0.7


def _split(P: sp.csr_matrix) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Return (P^T without its diagonal, inverse Jacobi diagonal)."""
    PT = P.T.tocsr()
    diag = P.diagonal()
    off = PT - sp.diags(diag)
    denom = 1.0 - diag
    # A state with P[i,i] == 1 is absorbing; the Jacobi update for it is
    # undefined.  Clamp so the sweep stays finite; such chains should be
    # handled by classification before solving.
    denom = np.where(denom < _DIAG_FLOOR, _DIAG_FLOOR, denom)
    return off.tocsr(), 1.0 / denom


def jacobi_split(P: sp.csr_matrix) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Precompute the Jacobi splitting of ``P`` for repeated sweeps.

    The multigrid solver smooths with the same fine-level matrix on every
    V-cycle; caching this avoids re-transposing ``P`` each time.
    """
    return _split(P)


def jacobi_sweeps(
    P: sp.csr_matrix,
    x: np.ndarray,
    n_sweeps: int,
    weight: float = DEFAULT_WEIGHT,
    split: Optional[Tuple[sp.csr_matrix, np.ndarray]] = None,
) -> np.ndarray:
    """Apply ``n_sweeps`` normalized weighted-Jacobi sweeps to ``x``.

    Exposed separately because the multigrid solver uses it as the
    smoother.  Pass ``split=jacobi_split(P)`` to reuse the splitting across
    calls.
    """
    if not 0.0 < weight <= 1.0:
        raise ValueError("weight must be in (0, 1]")
    off, inv_diag = _split(P) if split is None else split
    for _ in range(n_sweeps):
        h = off.dot(x) * inv_diag
        x = (1.0 - weight) * x + weight * h
        total = x.sum()
        if total <= 0:
            raise ArithmeticError("Jacobi sweep annihilated the iterate")
        x = x / total
    return x


def solve_jacobi(
    P: sp.csr_matrix,
    tol: float = 1e-10,
    max_iter: int = 100_000,
    x0: Optional[np.ndarray] = None,
    weight: float = DEFAULT_WEIGHT,
    monitor: Optional[SolverMonitor] = None,
) -> StationaryResult:
    """Iterate weighted-Jacobi sweeps until ``||x P - x||_1 < tol``."""
    if not 0.0 < weight <= 1.0:
        raise ValueError("weight must be in (0, 1]")
    n = P.shape[0]
    x = prepare_initial_guess(n, x0)
    off, inv_diag = _split(P)
    PT = P.T.tocsr()
    method = "jacobi" if weight == 1.0 else f"jacobi(weight={weight:g})"
    recorder, mon = instrument(method, n, tol, monitor)
    start = time.perf_counter()
    converged = False
    for it in range(1, max_iter + 1):
        h = off.dot(x) * inv_diag
        x = (1.0 - weight) * x + weight * h
        x /= x.sum()
        res = float(np.abs(PT.dot(x) - x).sum())
        mon.iteration_finished(it, res, time.perf_counter() - start)
        if res < tol:
            converged = True
            break
    elapsed = time.perf_counter() - start
    residual = recorder.last_residual()
    if residual is None:
        residual = residual_norm(P, x)
    mon.solve_finished(converged, recorder.n_iterations, residual, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=recorder.n_iterations,
        residual=residual,
        converged=converged,
        method=method,
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )
