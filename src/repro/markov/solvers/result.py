"""Common result type and helpers shared by all stationary solvers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

__all__ = [
    "StationaryResult",
    "residual_norm",
    "prepare_initial_guess",
    "iterate_fixed_point",
]


def residual_norm(P: sp.csr_matrix, x: np.ndarray) -> float:
    """1-norm residual ``||x P - x||_1`` of a candidate stationary vector."""
    return float(np.abs(P.T.dot(x) - x).sum())


def prepare_initial_guess(n: int, x0: Optional[np.ndarray]) -> np.ndarray:
    """Validate/normalize an initial guess, defaulting to uniform."""
    if x0 is None:
        return np.full(n, 1.0 / n)
    x = np.asarray(x0, dtype=float).copy()
    if x.shape != (n,):
        raise ValueError(f"initial guess must have shape ({n},), got {x.shape}")
    if np.any(x < 0):
        raise ValueError("initial guess must be non-negative")
    total = x.sum()
    if total <= 0:
        raise ValueError("initial guess must have positive mass")
    return x / total


def iterate_fixed_point(
    n: int,
    step: Callable[[np.ndarray], np.ndarray],
    residual_fn: Callable[[np.ndarray], float],
    *,
    method: str,
    tol: float,
    max_iter: int,
    x0: Optional[np.ndarray] = None,
    monitor=None,
    on_iterate: Optional[Callable[[int, np.ndarray], None]] = None,
) -> "StationaryResult":
    """Shared driver for normalized fixed-point stationary iterations.

    Power iteration, weighted Jacobi, Gauss-Seidel and SOR (and formerly
    the CDR operator's private power loop) all share the same skeleton:
    prepare a guess, repeatedly apply a normalizing sweep, measure
    ``||x P - x||_1``, emit one monitor event per iteration, and stop at
    ``tol``.  This function is that skeleton, so every solver built on it
    reports iterations/residual/history through the same
    :class:`~repro.markov.monitor.RecordingMonitor` invariants
    (``iterations == len(events)``, ``residual == events[-1].residual``).

    Parameters
    ----------
    n:
        State count (sets the uniform default guess).
    step:
        ``step(x) -> x'``: one sweep, returning the next *normalized*
        iterate (must not mutate its argument's meaning for the caller).
    residual_fn:
        ``residual_fn(x') -> float``: the stationary residual of an
        iterate, conventionally ``||x' P - x'||_1``.
    method:
        Solver name recorded in the result and the telemetry trace.
    on_iterate:
        Optional ``on_iterate(iteration, x)`` hook called with each new
        iterate *before* the monitor event -- the attachment point for
        periodic checkpointing
        (:class:`repro.resilience.checkpoint.SolverCheckpointer`).

    Raises
    ------
    repro.resilience.errors.NumericalContamination
        The moment an iterate turns non-finite: a NaN/inf iterate can
        never recover, so burning the remaining ``max_iter`` sweeps on it
        would only waste hours and then return garbage.
    """
    from repro.markov.monitor import instrument

    x = prepare_initial_guess(n, x0)
    recorder, mon = instrument(method, n, tol, monitor)
    start = time.perf_counter()
    converged = False
    for iteration in range(1, max_iter + 1):
        x = step(x)
        if not np.all(np.isfinite(x)):
            from repro.resilience.errors import NumericalContamination

            bad = int(np.flatnonzero(~np.isfinite(x))[0])
            res = float("nan")
            mon.iteration_finished(iteration, res, time.perf_counter() - start)
            raise NumericalContamination(
                f"{method}: iterate turned non-finite at iteration "
                f"{iteration} (first bad entry at state {bad})",
                method=method, iteration=iteration, residual=res,
            )
        if on_iterate is not None:
            on_iterate(iteration, x)
        res = float(residual_fn(x))
        mon.iteration_finished(iteration, res, time.perf_counter() - start)
        if res < tol:
            converged = True
            break
    elapsed = time.perf_counter() - start
    residual = recorder.last_residual()
    if residual is None:
        residual = float(residual_fn(x))
    mon.solve_finished(converged, recorder.n_iterations, residual, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=recorder.n_iterations,
        residual=residual,
        converged=converged,
        method=method,
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )


@dataclass
class StationaryResult:
    """Outcome of a stationary-distribution computation.

    Attributes
    ----------
    distribution:
        The stationary row vector ``eta`` (non-negative, sums to one).
    iterations:
        Iteration count in the solver's natural unit (sweeps for the
        stationary iterative methods, V-cycles for multigrid, monitor
        events for Krylov -- one per restart/iteration snapshot plus a
        final event -- and 1 for direct/eigen).
    residual:
        Final ``||eta P - eta||_1``.
    converged:
        Whether the requested tolerance was reached.
    method:
        Human-readable solver name (appears in benchmark tables).
    residual_history:
        Residual after each iteration.  Since the telemetry refactor this
        is derived from the solver's internal
        :class:`~repro.markov.monitor.RecordingMonitor`, so
        ``len(residual_history) == iterations`` and
        ``residual_history[-1] == residual`` hold for every solver
        (direct/eigen solves record a single entry).
    solve_time:
        Wall-clock seconds spent inside the solver.
    warm_started:
        Whether the solve started from a reused stationary vector rather
        than the uniform guess (set by the solve-context layer; solvers
        themselves leave it False).
    """

    distribution: np.ndarray
    iterations: int
    residual: float
    converged: bool
    method: str
    residual_history: List[float] = field(default_factory=list)
    solve_time: float = 0.0
    warm_started: bool = False

    def __post_init__(self) -> None:
        self.distribution = np.asarray(self.distribution, dtype=float)

    @property
    def n_states(self) -> int:
        return self.distribution.size

    def convergence_rate(self) -> Optional[float]:
        """Geometric-mean per-iteration residual reduction factor.

        Contract: returns ``None`` whenever a rate cannot be estimated --
        that is, when fewer than two *positive* residuals were recorded.
        This covers empty histories, the single-entry histories of
        direct/eigen/one-iteration solves (a lone positive residual carries
        no rate information), and histories that are all exact zeros.
        Zero entries are filtered out before the geometric mean so a solve
        that bottoms out at 0.0 cannot divide by zero or return 0.
        """
        h = [r for r in self.residual_history if r > 0]
        if len(h) < 2:
            return None
        return float((h[-1] / h[0]) ** (1.0 / (len(h) - 1)))

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{self.method}: {status} in {self.iterations} iterations, "
            f"residual {self.residual:.3e}, {self.solve_time:.3f}s"
        )
