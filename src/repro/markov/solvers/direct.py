"""Direct (sparse LU) solution of the stationary equations.

The singular homogeneous system ``(P^T - I) eta^T = 0`` (paper Eq. (6)) is
made nonsingular by replacing one equation with the normalization
``eta . 1 = 1`` (paper Eq. (7)).  For an irreducible chain the resulting
system has a unique solution.  This is the coarsest-level solver inside the
multigrid method ("the coarsest problem is solved exactly with a direct
method") and the reference answer in tests.

Needs the assembled sparsity pattern: matrix-free operators are accepted
but are materialized through :func:`~repro.markov.linop.ensure_csr` (which
raises :class:`~repro.markov.linop.OperatorCapabilityError` when the
backend cannot assemble itself).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.markov.linop import ensure_csr
from repro.markov.monitor import SolverMonitor, instrument
from repro.markov.registry import register_solver
from repro.markov.solvers.result import StationaryResult, residual_norm

__all__ = ["solve_direct", "augmented_system"]


def augmented_system(P: sp.csr_matrix, row: Optional[int] = None) -> sp.csc_matrix:
    """Return ``A = I - P^T`` with equation ``row`` replaced by all-ones.

    ``row`` defaults to the last equation.  The associated right-hand side
    is ``e_row`` (zeros except a 1 in that position).

    The row replacement is done by direct CSR index surgery -- splicing a
    dense ones-row into the ``data``/``indices``/``indptr`` arrays --
    instead of a ``tolil()`` round-trip, which rebuilds the whole matrix as
    Python lists and is an O(n^2)-risk pattern on large chains.
    """
    n = P.shape[0]
    if row is None:
        row = n - 1
    if not 0 <= row < n:
        raise ValueError("row out of range")
    A = (sp.identity(n, format="csr") - P.T.tocsr()).tocsr()
    A.sort_indices()
    start, end = int(A.indptr[row]), int(A.indptr[row + 1])
    data = np.concatenate([A.data[:start], np.ones(n), A.data[end:]])
    indices = np.concatenate(
        [A.indices[:start], np.arange(n, dtype=A.indices.dtype), A.indices[end:]]
    )
    indptr = A.indptr.copy()
    indptr[row + 1 :] += n - (end - start)
    return sp.csr_matrix((data, indices, indptr), shape=(n, n)).tocsc()


def solve_direct(
    P,
    tol: float = 1e-10,
    x0: Optional[np.ndarray] = None,
    monitor: Optional[SolverMonitor] = None,
) -> StationaryResult:
    """Sparse-LU solve of the augmented stationary system.

    ``tol`` and ``x0`` are accepted for interface uniformity; the solution
    is exact up to round-off.  Raises :class:`ArithmeticError` when the LU
    factorization fails (e.g. reducible chain making the augmented matrix
    singular).  The monitor sees a single iteration event with the final
    residual.
    """
    P = ensure_csr(P)
    n = P.shape[0]
    recorder, mon = instrument("direct", n, tol, monitor)
    start = time.perf_counter()
    A = augmented_system(P)
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        lu = splu(A)
        x = lu.solve(b)
    except RuntimeError as exc:  # singular factorization
        raise ArithmeticError(
            "direct stationary solve failed (singular augmented system; "
            "is the chain irreducible?)"
        ) from exc
    if not np.all(np.isfinite(x)):
        raise ArithmeticError("direct stationary solve produced non-finite values")
    x = np.clip(x, 0.0, None)
    total = x.sum()
    if total <= 0:
        raise ArithmeticError("direct stationary solve produced a zero vector")
    x /= total
    res = residual_norm(P, x)
    elapsed = time.perf_counter() - start
    mon.iteration_finished(1, res, elapsed)
    converged = res < max(tol, 1e-6)
    mon.solve_finished(converged, 1, res, elapsed)
    return StationaryResult(
        distribution=x,
        iterations=1,
        residual=res,
        converged=converged,
        method="direct",
        residual_history=recorder.residual_history,
        solve_time=elapsed,
    )


@register_solver(
    "direct",
    matrix_free=False,
    description="sparse LU on the augmented normalization system",
    fallback_priority=40,
)
def _dispatch_direct(P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs):
    # max_iter is meaningless for a direct factorization, and on_iterate
    # never fires (there are no intermediate iterates); both accepted and
    # ignored so the registry contract stays uniform.
    kwargs.pop("on_iterate", None)
    return solve_direct(P, tol=tol, x0=x0, monitor=monitor, **kwargs)
