"""Two-level aggregation/disaggregation (A/D) iteration.

The classical Koury-McAllister-Stewart scheme the paper describes as "the
starting point for aggregation-disaggregation techniques for MCs that are
used to accelerate the convergence of basic iterative methods":

1. smooth the current iterate with a few Gauss-Jacobi sweeps,
2. aggregate: build the coarse chain weighted by the current iterate and
   solve it exactly,
3. disaggregate: rescale the iterate so its block masses match the coarse
   solution (multiplicative correction),
4. repeat until the fine-level residual converges.

The multi-level generalization (Horton & Leutenegger) lives in
:mod:`repro.markov.multigrid`; this two-level version is both a useful
solver in its own right and the reference implementation the multigrid
tests compare against.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.markov.solvers.jacobi import jacobi_sweeps
from repro.markov.lumping import Partition, lumped_tpm
from repro.markov.solvers.direct import solve_direct
from repro.markov.solvers.result import (
    StationaryResult,
    prepare_initial_guess,
    residual_norm,
)

__all__ = ["solve_aggregation_disaggregation", "disaggregate"]

_WEIGHT_FLOOR = 1e-300


def disaggregate(
    x: np.ndarray, coarse_dist: np.ndarray, partition: Partition
) -> np.ndarray:
    """Multiplicative prolongation of a coarse stationary vector.

    Rescales ``x`` block-wise so that the mass of block ``I`` equals
    ``coarse_dist[I]`` while preserving the intra-block shape of ``x``.
    """
    block = partition.block_of
    block_mass = np.bincount(block, weights=x, minlength=partition.n_blocks)
    block_mass = np.where(block_mass <= 0.0, 1.0, block_mass)
    factors = coarse_dist / block_mass
    out = x * factors[block]
    total = out.sum()
    if total <= 0:
        raise ArithmeticError("disaggregation produced a zero vector")
    return out / total


def solve_aggregation_disaggregation(
    P: sp.csr_matrix,
    partition: Partition,
    tol: float = 1e-10,
    max_iter: int = 500,
    x0: Optional[np.ndarray] = None,
    pre_sweeps: int = 1,
    post_sweeps: int = 1,
) -> StationaryResult:
    """Two-level A/D iteration with Gauss-Jacobi smoothing.

    Parameters
    ----------
    partition:
        The aggregation; a good choice groups strongly-coupled states
        (e.g. consecutive phase-error grid points in the CDR model).
    pre_sweeps, post_sweeps:
        Gauss-Jacobi smoothing sweeps before/after each coarse correction.
    """
    n = P.shape[0]
    if partition.n_states != n:
        raise ValueError("partition size does not match matrix size")
    x = prepare_initial_guess(n, x0)
    PT = P.T.tocsr()
    start = time.perf_counter()
    history = []
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        if pre_sweeps:
            x = jacobi_sweeps(P, x, pre_sweeps)
        w = np.maximum(x, _WEIGHT_FLOOR)
        C = lumped_tpm(P, partition, weights=w)
        coarse = solve_direct(C)
        x = disaggregate(w, coarse.distribution, partition)
        if post_sweeps:
            x = jacobi_sweeps(P, x, post_sweeps)
        res = float(np.abs(PT.dot(x) - x).sum())
        history.append(res)
        if res < tol:
            converged = True
            break
    elapsed = time.perf_counter() - start
    return StationaryResult(
        distribution=x,
        iterations=it,
        residual=residual_norm(P, x),
        converged=converged,
        method="aggregation-disaggregation",
        residual_history=history,
        solve_time=elapsed,
    )
