"""Structural classification of Markov chains.

Stationary-distribution solvers assume an irreducible chain (unique
stationary vector) and behave best on aperiodic ones; first-passage analyses
need the transient/recurrent split.  This module computes communicating
classes, recurrence, periodicity, absorbing states, and reachability from
the sparsity pattern of the TPM using ``scipy.sparse.csgraph``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.markov.chain import MarkovChain

__all__ = [
    "ChainStructure",
    "classify",
    "communicating_classes",
    "is_irreducible",
    "period",
    "is_aperiodic",
    "absorbing_states",
    "reachable_from",
]


def _adjacency(chain: MarkovChain) -> sp.csr_matrix:
    A = chain.P.copy()
    A.data = np.ones_like(A.data)
    return A


def communicating_classes(chain: MarkovChain) -> List[np.ndarray]:
    """Strongly connected components of the transition graph.

    Returns a list of index arrays, one per communicating class, in
    topological order of the condensation (ancestors first).
    """
    n_comp, labels = csgraph.connected_components(
        _adjacency(chain), directed=True, connection="strong"
    )
    classes = [np.flatnonzero(labels == c) for c in range(n_comp)]
    # scipy returns labels in reverse topological order for strong
    # connectivity; sort classes so that ancestors come first.
    order = np.argsort([labels[cls[0]] for cls in classes])
    # Determine topological order of the condensation explicitly.
    cond = _condensation(chain, labels, n_comp)
    topo = _topological_order(cond)
    del order
    return [classes[c] for c in topo]


def _condensation(chain: MarkovChain, labels: np.ndarray, n_comp: int) -> sp.csr_matrix:
    """Directed acyclic graph between communicating classes."""
    coo = chain.P.tocoo()
    src = labels[coo.row]
    dst = labels[coo.col]
    mask = src != dst
    data = np.ones(mask.sum())
    return sp.csr_matrix(
        (data, (src[mask], dst[mask])), shape=(n_comp, n_comp)
    )


def _topological_order(dag: sp.csr_matrix) -> List[int]:
    n = dag.shape[0]
    indeg = np.zeros(n, dtype=int)
    coo = dag.tocoo()
    for d in coo.col:
        indeg[d] += 1
    stack = [i for i in range(n) if indeg[i] == 0]
    out: List[int] = []
    adj = dag.tolil().rows
    while stack:
        u = stack.pop()
        out.append(u)
        for v in adj[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                stack.append(v)
    return out


def is_irreducible(chain: MarkovChain) -> bool:
    """True when the whole state space is one communicating class."""
    n_comp, _ = csgraph.connected_components(
        _adjacency(chain), directed=True, connection="strong"
    )
    return n_comp == 1


def period(chain: MarkovChain, state: int = 0) -> int:
    """Period of the communicating class containing ``state``.

    Computed as the gcd of differences of BFS levels across edges inside the
    class (the standard linear-time algorithm).  A period of 1 means the
    class is aperiodic.
    """
    n = chain.n_states
    if not 0 <= state < n:
        raise ValueError("state out of range")
    n_comp, labels = csgraph.connected_components(
        _adjacency(chain), directed=True, connection="strong"
    )
    cls = labels[state]
    members = np.flatnonzero(labels == cls)
    member_set = set(members.tolist())
    # BFS from `state` within the class, tracking levels.
    level = {state: 0}
    frontier = [state]
    g = 0
    indptr, indices = chain.P.indptr, chain.P.indices
    while frontier:
        nxt = []
        for u in frontier:
            for j in indices[indptr[u]:indptr[u + 1]]:
                j = int(j)
                if j not in member_set:
                    continue
                if j in level:
                    g = math.gcd(g, level[u] + 1 - level[j])
                else:
                    level[j] = level[u] + 1
                    nxt.append(j)
        frontier = nxt
    return abs(g) if g != 0 else 1


def is_aperiodic(chain: MarkovChain) -> bool:
    """True when the chain is irreducible with period one."""
    return is_irreducible(chain) and period(chain, 0) == 1


def absorbing_states(chain: MarkovChain, atol: float = 1e-12) -> np.ndarray:
    """States ``i`` with ``P[i, i] ~= 1``."""
    diag = chain.P.diagonal()
    return np.flatnonzero(np.abs(diag - 1.0) <= atol)


def reachable_from(chain: MarkovChain, sources: Sequence[int]) -> np.ndarray:
    """All states reachable from any state in ``sources`` (inclusive)."""
    sources = np.atleast_1d(np.asarray(sources, dtype=int))
    A = _adjacency(chain)
    seen = np.zeros(chain.n_states, dtype=bool)
    seen[sources] = True
    frontier = sources
    while frontier.size:
        nxt = []
        for u in frontier:
            row = A.indices[A.indptr[u]:A.indptr[u + 1]]
            nxt.append(row[~seen[row]])
            seen[row] = True
        frontier = np.unique(np.concatenate(nxt)) if nxt else np.array([], dtype=int)
    return np.flatnonzero(seen)


@dataclass
class ChainStructure:
    """Summary of a chain's communicating structure."""

    classes: List[np.ndarray]
    recurrent: List[np.ndarray] = field(default_factory=list)
    transient_states: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    irreducible: bool = False
    period: Optional[int] = None

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def is_ergodic(self) -> bool:
        """Irreducible and aperiodic."""
        return self.irreducible and self.period == 1

    def describe(self) -> str:
        lines = [
            f"communicating classes : {self.n_classes}",
            f"recurrent classes     : {len(self.recurrent)}",
            f"transient states      : {self.transient_states.size}",
            f"irreducible           : {self.irreducible}",
        ]
        if self.period is not None:
            lines.append(f"period                : {self.period}")
        return "\n".join(lines)


def classify(chain: MarkovChain) -> ChainStructure:
    """Full structural classification.

    A communicating class is recurrent iff it is *closed* (no probability
    leaves it); all states in non-closed classes are transient.
    """
    classes = communicating_classes(chain)
    coo = chain.P.tocoo()
    class_of = np.empty(chain.n_states, dtype=int)
    for c, members in enumerate(classes):
        class_of[members] = c
    leaks = np.zeros(len(classes), dtype=bool)
    mask = class_of[coo.row] != class_of[coo.col]
    for c in np.unique(class_of[coo.row[mask]]):
        leaks[c] = True
    recurrent = [cls for c, cls in enumerate(classes) if not leaks[c]]
    transient = (
        np.concatenate([cls for c, cls in enumerate(classes) if leaks[c]])
        if np.any(leaks)
        else np.array([], dtype=int)
    )
    irreducible = len(classes) == 1
    per = period(chain, int(classes[0][0])) if irreducible else None
    return ChainStructure(
        classes=classes,
        recurrent=recurrent,
        transient_states=np.sort(transient),
        irreducible=irreducible,
        period=per,
    )
