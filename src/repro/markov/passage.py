"""First-passage, absorption, and event-rate analysis.

The paper derives the "average time between cycle slips" from "the
computation of mean transition times between certain sets of MC states ...
It involves solving a linear system with the (modified) TPM."  This module
implements:

* mean first-passage times (hitting times) to a target set,
* absorption probabilities in multi-target settings,
* expected visit counts (the fundamental matrix, on request),
* stationary event rates and mean recurrence times (Kac's formula),
* stationary flux of an arbitrary per-transition event (used for the slip
  rate, where the event is "the phase error wrapped around").
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import MatrixRankWarning, splu, spsolve

from repro.markov.chain import MarkovChain
from repro.obs import span

__all__ = [
    "mean_first_passage_times",
    "hitting_time_moments",
    "hitting_probabilities",
    "expected_visits",
    "mean_recurrence_time",
    "stationary_event_rate",
    "mean_time_between_events",
]


def _as_P(chain: Union[MarkovChain, sp.csr_matrix]) -> sp.csr_matrix:
    """Accept chains, sparse matrices, and transition operators.

    Passage analyses slice the matrix by state subsets, so operators must
    materialize; :func:`~repro.markov.linop.ensure_csr` raises
    ``OperatorCapabilityError`` when they cannot.
    """
    if isinstance(chain, MarkovChain):
        return chain.P
    if sp.issparse(chain):
        return chain.tocsr()
    from repro.markov.linop import ensure_csr

    return ensure_csr(chain)


def _target_mask(n: int, targets: Sequence[int]) -> np.ndarray:
    targets = np.atleast_1d(np.asarray(targets, dtype=int))
    if targets.size == 0:
        raise ValueError("target set must be non-empty")
    if targets.min() < 0 or targets.max() >= n:
        raise ValueError("target state out of range")
    mask = np.zeros(n, dtype=bool)
    mask[targets] = True
    return mask


def mean_first_passage_times(
    chain: Union[MarkovChain, sp.csr_matrix],
    targets: Sequence[int],
) -> np.ndarray:
    """Expected steps to first hit ``targets`` from every state.

    Solves ``(I - Q) t = 1`` where ``Q`` is the restriction of ``P`` to the
    complement of the target set.  Entries for target states are zero;
    states from which the target is unreachable get ``inf``.
    """
    P = _as_P(chain)
    n = P.shape[0]
    mask = _target_mask(n, targets)
    others = np.flatnonzero(~mask)
    t = np.zeros(n)
    if others.size == 0:
        return t
    with span(
        "markov.passage.mfpt", n_states=n, n_targets=int(mask.sum())
    ):
        Q = P[others][:, others].tocsc()
        A = sp.identity(others.size, format="csc") - Q
        ones = np.ones(others.size)
        try:
            # Unreachable targets make A singular; spsolve then warns and
            # returns non-finite values, which we translate to inf below.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", MatrixRankWarning)
                sol = spsolve(A, ones)
        except RuntimeError:
            sol = np.full(others.size, np.inf)
        sol = np.asarray(sol, dtype=float)
        # Numerical singularity (unreachable targets) shows up as
        # huge/negative values; flag them as inf.
        bad = ~np.isfinite(sol) | (sol < 0) | (sol > 1e15)
        sol[bad] = np.inf
        t[others] = sol
        return t


def hitting_time_moments(
    chain: Union[MarkovChain, sp.csr_matrix],
    targets: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean and variance of the first-passage time to ``targets``.

    Solves two linear systems with the same restricted matrix: the mean
    ``m = (I - Q)^{-1} 1`` and the second moment
    ``s = (I - Q)^{-1} (1 + 2 Q m)``; the variance is ``s - m^2``.
    Entries for target states are zero; unreachable starts get ``inf``.

    The variance is what acquisition specs actually need: a loop with a
    40-symbol mean lock time and a heavy-tailed distribution is a worse
    design than one with a 50-symbol mean and tight spread.
    """
    P = _as_P(chain)
    n = P.shape[0]
    mask = _target_mask(n, targets)
    others = np.flatnonzero(~mask)
    mean = np.zeros(n)
    var = np.zeros(n)
    if others.size == 0:
        return mean, var
    with span(
        "markov.passage.hitting_moments", n_states=n, n_targets=int(mask.sum())
    ):
        Q = P[others][:, others].tocsc()
        A = (sp.identity(others.size, format="csc") - Q)
        ones = np.ones(others.size)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", MatrixRankWarning)
                lu = splu(A)
                m = lu.solve(ones)
                s = lu.solve(ones + 2.0 * Q.dot(m))
        except RuntimeError:
            m = np.full(others.size, np.inf)
            s = np.full(others.size, np.inf)
    m = np.asarray(m, dtype=float)
    s = np.asarray(s, dtype=float)
    bad = ~np.isfinite(m) | (m < 0) | (m > 1e15)
    m[bad] = np.inf
    s[bad] = np.inf
    v = np.full_like(m, np.inf)
    good = ~bad
    v[good] = np.clip(s[good] - m[good] * m[good], 0.0, None)
    mean[others] = m
    var[others] = v
    return mean, var


def hitting_probabilities(
    chain: Union[MarkovChain, sp.csr_matrix],
    targets: Sequence[int],
    avoid: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Probability of reaching ``targets`` before ``avoid`` from every state.

    With ``avoid=None`` this is the probability of ever hitting the target
    set (1 everywhere in an irreducible chain).
    """
    P = _as_P(chain)
    n = P.shape[0]
    tmask = _target_mask(n, targets)
    amask = np.zeros(n, dtype=bool)
    if avoid is not None:
        amask = _target_mask(n, avoid)
        if np.any(tmask & amask):
            raise ValueError("target and avoid sets overlap")
    free = np.flatnonzero(~tmask & ~amask)
    h = np.zeros(n)
    h[tmask] = 1.0
    if free.size == 0:
        return h
    Q = P[free][:, free].tocsc()
    # rhs_i = sum over target states of P[i, target]
    R = P[free][:, np.flatnonzero(tmask)]
    rhs = np.asarray(R.sum(axis=1)).ravel()
    A = sp.identity(free.size, format="csc") - Q
    sol = np.asarray(spsolve(A, rhs), dtype=float)
    h[free] = np.clip(sol, 0.0, 1.0)
    return h


def expected_visits(
    chain: Union[MarkovChain, sp.csr_matrix],
    targets: Sequence[int],
) -> np.ndarray:
    """Fundamental matrix ``N = (I - Q)^{-1}`` of the chain absorbed at ``targets``.

    ``N[i, j]`` is the expected number of visits to transient state ``j``
    starting from transient state ``i`` before absorption.  Returned dense:
    only call this for modest complements (the CDR analyses never need the
    full matrix; they use :func:`mean_first_passage_times`).
    """
    P = _as_P(chain)
    n = P.shape[0]
    mask = _target_mask(n, targets)
    others = np.flatnonzero(~mask)
    if others.size == 0:
        return np.zeros((0, 0))
    if others.size > 4000:
        raise ValueError(
            "expected_visits materializes a dense matrix; complement too large"
        )
    Q = P[others][:, others].toarray()
    return np.linalg.inv(np.eye(others.size) - Q)


def mean_recurrence_time(stationary: np.ndarray, states: Sequence[int]) -> float:
    """Kac's formula: mean return time to a set ``A`` is ``1 / eta(A)``.

    For a single state this is the classical ``m_i = 1 / eta_i``; for a set
    it is the mean time between successive entries measured in stationarity.
    """
    stationary = np.asarray(stationary, dtype=float)
    mask = _target_mask(stationary.size, states)
    mass = float(stationary[mask].sum())
    if mass <= 0.0:
        return float("inf")
    return 1.0 / mass


def stationary_event_rate(
    stationary: np.ndarray,
    event_matrix: Union[sp.spmatrix, np.ndarray],
) -> float:
    """Expected events per step in stationarity.

    ``event_matrix[i, j]`` is the probability of taking the ``i -> j``
    transition *and* triggering the event (so ``0 <= E <= P`` entrywise).
    The rate is ``sum_i eta_i sum_j E[i, j]``.  The CDR model builder emits
    such a matrix for phase-wrap (cycle-slip) transitions.

    The per-destination structure only enters through the row sums, so a
    1-D array of per-state event probabilities ``e_i = sum_j E[i, j]`` is
    accepted directly -- what matrix-free backends compute structurally
    without ever holding the event matrix.
    """
    stationary = np.asarray(stationary, dtype=float)
    if sp.issparse(event_matrix):
        E = event_matrix.tocsr()
        if E.shape[0] != stationary.size:
            raise ValueError("event matrix size does not match distribution")
        per_state = np.asarray(E.sum(axis=1)).ravel()
    else:
        per_state = np.asarray(event_matrix, dtype=float)
        if per_state.ndim == 2:
            per_state = per_state.sum(axis=1)
        if per_state.shape != stationary.shape:
            raise ValueError("event vector size does not match distribution")
    return float(np.dot(stationary, per_state))


def mean_time_between_events(
    stationary: np.ndarray,
    event_matrix: Union[sp.spmatrix, np.ndarray],
) -> float:
    """``1 / rate``: mean symbols between events (inf when the rate is zero)."""
    rate = stationary_event_rate(stationary, event_matrix)
    if rate <= 0.0:
        return float("inf")
    return 1.0 / rate
