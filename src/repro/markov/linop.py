"""Transition operators: one protocol over every TPM backend.

The paper's scaling complaint is that "explicit sparse storage" of the
transition probability matrix limits the model size, and its future-work
answer is hierarchical Kronecker-algebra representations.  This module is
the seam that makes both worlds interchangeable: a
:class:`TransitionOperator` is anything that can apply ``P v`` and
``P^T x`` and answer a few cheap structural queries, whether the matrix is
an assembled ``scipy.sparse`` CSR, the structural block-roll operator of
:class:`repro.cdr.operator.CDRTransitionOperator`, or a Kronecker/SAN
descriptor (:class:`repro.fsm.kronecker.KroneckerDescriptor`).

Every stationary solver in :mod:`repro.markov.solvers` and the multigrid
of :mod:`repro.markov.multigrid` consumes this protocol.  The iterative
methods (power, Jacobi, Krylov, multigrid) run fully matrix-free; methods
that need the explicit sparsity pattern (direct LU, Gauss-Seidel/SOR
triangular sweeps, ARPACK) call :func:`ensure_csr`, which materializes via
the operator's optional ``to_csr()`` or raises a clear
:class:`OperatorCapabilityError`.

Protocol summary (duck-typed; no inheritance required):

========================  ====================================================
``shape``                 ``(n, n)``
``matvec(v)``             ``P v`` (column action; row-sum/absorption queries)
``rmatvec(x)``            ``P^T x`` (distribution propagation -- what
                          stationary iterations need)
``diagonal()``            ``diag(P)`` (Jacobi splittings)
``row_sums()``            ``P 1`` (stochasticity checks)
``matmat(V)``             *optional* -- blocked ``P V`` for ``(n, k)`` blocks
``rmatmat(X)``            *optional* -- blocked ``P^T X``; column ``j`` must
                          be bit-identical to ``rmatvec(X[:, j])``
``to_csr()``              *optional* -- explicit CSR materialization
``restrict(partition,     *optional* -- weighted Galerkin coarse operator
weights)``                (what matrix-free multigrid coarsening calls)
========================  ====================================================

Call sites that want blocked applies without caring whether the backend
implements them use :func:`operator_matmat` / :func:`operator_rmatmat`,
which fall back to a column-at-a-time loop.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.lumping import Partition, lumped_tpm

__all__ = [
    "OperatorCapabilityError",
    "TransitionOperator",
    "AssembledOperator",
    "as_operator",
    "unwrap_operator",
    "ensure_csr",
    "operator_matmat",
    "operator_rmatmat",
    "operator_residual",
]


class OperatorCapabilityError(TypeError):
    """A solver asked a transition operator for a capability it lacks.

    Raised e.g. when the direct LU solver is pointed at a matrix-free
    operator that cannot (or was told not to) materialize itself as a CSR
    matrix.  Pick a matrix-free solver (``power``, ``jacobi``, ``krylov``,
    ``multigrid``) or provide ``to_csr()`` on the operator.
    """


@runtime_checkable
class TransitionOperator(Protocol):
    """Structural protocol for transition-matrix backends (duck-typed)."""

    @property
    def shape(self) -> Tuple[int, int]: ...

    def matvec(self, v: np.ndarray) -> np.ndarray: ...

    def rmatvec(self, x: np.ndarray) -> np.ndarray: ...

    def diagonal(self) -> np.ndarray: ...

    def row_sums(self) -> np.ndarray: ...


class AssembledOperator:
    """The assembled-CSR backend: wraps an explicit sparse TPM.

    The transpose is computed lazily and cached, so a solver that applies
    ``rmatvec`` thousands of times pays the transposition once -- exactly
    what the hand-written solvers did with their local ``PT = P.T.tocsr()``.
    """

    __slots__ = ("P", "_PT", "_structure_token")

    def __init__(self, P: sp.spmatrix, structure_token=None) -> None:
        self.P = P.tocsr()
        if self.P.shape[0] != self.P.shape[1]:
            raise ValueError("transition matrix must be square")
        self._PT: Optional[sp.csr_matrix] = None
        self._structure_token = structure_token

    @property
    def shape(self) -> Tuple[int, int]:
        return self.P.shape

    @property
    def nnz(self) -> int:
        return int(self.P.nnz)

    def _transpose(self) -> sp.csr_matrix:
        if self._PT is None:
            self._PT = self.P.T.tocsr()
        return self._PT

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.P.dot(v)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self._transpose().dot(x)

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """Blocked ``P V`` -- scipy's CSR matmat, one pass for all columns."""
        return self.P.dot(V)

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        """Blocked ``P^T X`` through the cached transpose."""
        return self._transpose().dot(X)

    def diagonal(self) -> np.ndarray:
        return self.P.diagonal()

    def row_sums(self) -> np.ndarray:
        return np.asarray(self.P.sum(axis=1)).ravel()

    def to_csr(self) -> sp.csr_matrix:
        return self.P

    def structure_token(self):
        """Value-free structure identity inherited from the source chain.

        ``None`` for plain matrices; :func:`as_operator` propagates a
        :class:`~repro.markov.chain.MarkovChain`'s builder-set token so
        structural digests agree no matter which wrapper a call site
        hands around.
        """
        return self._structure_token

    def restrict(
        self, partition: Partition, weights: Optional[np.ndarray] = None
    ) -> sp.csr_matrix:
        """Weighted Galerkin coarse operator (see :func:`lumped_tpm`)."""
        return lumped_tpm(self.P, partition, weights=weights)

    def __repr__(self) -> str:
        return f"AssembledOperator(n={self.shape[0]}, nnz={self.nnz})"


def as_operator(obj) -> TransitionOperator:
    """Coerce any supported TPM representation to a :class:`TransitionOperator`.

    Accepts a :class:`~repro.markov.chain.MarkovChain`, a sparse matrix, a
    dense ndarray (all wrapped in :class:`AssembledOperator`), or anything
    already satisfying the protocol (returned unchanged).
    """
    if isinstance(obj, AssembledOperator):
        return obj
    if isinstance(obj, MarkovChain):
        return AssembledOperator(obj.P, structure_token=obj.structure_token())
    if sp.issparse(obj):
        return AssembledOperator(obj.tocsr())
    if isinstance(obj, np.ndarray):
        return AssembledOperator(sp.csr_matrix(np.asarray(obj, dtype=float)))
    if (
        hasattr(obj, "matvec")
        and hasattr(obj, "rmatvec")
        and hasattr(obj, "shape")
    ):
        return obj
    raise TypeError(
        f"cannot interpret {type(obj).__name__!r} as a transition operator; "
        "expected a MarkovChain, a sparse/dense matrix, or an object with "
        "matvec/rmatvec/shape"
    )


def unwrap_operator(op):
    """Strip profiling wrappers, returning the underlying operator.

    :class:`~repro.obs.profile.InstrumentedOperator` forwards only the
    protocol methods, so structural interrogation (coarsening factories,
    structural digests) must reach the real operator underneath.
    """
    while hasattr(op, "inner") and hasattr(op, "role"):
        op = op.inner
    return op


def ensure_csr(obj) -> sp.csr_matrix:
    """Explicit CSR form of any operator, or a clear capability error.

    Solvers that need the assembled sparsity pattern (direct LU,
    triangular-sweep methods, ARPACK, ILU preconditioning) call this; an
    operator without ``to_csr()`` raises :class:`OperatorCapabilityError`
    naming the fix.
    """
    if isinstance(obj, MarkovChain):
        return obj.P
    if sp.issparse(obj):
        return obj.tocsr()
    if isinstance(obj, np.ndarray):
        return sp.csr_matrix(np.asarray(obj, dtype=float))
    to_csr = getattr(obj, "to_csr", None)
    if to_csr is None:
        raise OperatorCapabilityError(
            f"{type(obj).__name__} cannot materialize an explicit CSR matrix; "
            "this solver needs the assembled sparsity pattern -- use a "
            "matrix-free solver (power, jacobi, krylov, multigrid) or an "
            "operator that implements to_csr()"
        )
    return to_csr()


def operator_matmat(op: TransitionOperator, V: np.ndarray) -> np.ndarray:
    """Blocked ``P V``, using the operator's native ``matmat`` when it has one.

    Backends without a blocked apply get a column-at-a-time fallback, so
    solvers can be written against blocks unconditionally.
    """
    matmat = getattr(op, "matmat", None)
    if matmat is not None:
        return matmat(V)
    V = np.asarray(V, dtype=float)
    return np.stack([op.matvec(V[:, j]) for j in range(V.shape[1])], axis=1)


def operator_rmatmat(op: TransitionOperator, X: np.ndarray) -> np.ndarray:
    """Blocked ``P^T X`` with the same native-or-fallback contract."""
    rmatmat = getattr(op, "rmatmat", None)
    if rmatmat is not None:
        return rmatmat(X)
    X = np.asarray(X, dtype=float)
    return np.stack([op.rmatvec(X[:, j]) for j in range(X.shape[1])], axis=1)


def operator_residual(op: TransitionOperator, x: np.ndarray) -> float:
    """1-norm stationary residual ``||x P - x||_1`` through the operator."""
    return float(np.abs(op.rmatvec(x) - x).sum())
