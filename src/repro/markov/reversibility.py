"""Reversibility (detailed balance) diagnostics.

A chain is reversible when ``eta_i P[i, j] == eta_j P[j, i]`` for all
pairs.  Reversible chains have real spectra and symmetrizable dynamics --
many acceleration tricks apply only to them.  The CDR chain is *not*
reversible (the drift breaks detailed balance, making the phase error a
genuinely non-equilibrium process); this module provides the test and the
quantitative violation measure, plus the multiplicative reversibilization
used in mixing analysis.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain
from repro.markov.solvers.direct import solve_direct

__all__ = ["is_reversible", "detailed_balance_violation", "reversibilization"]


def _P_eta(
    chain: Union[MarkovChain, sp.spmatrix],
    stationary: Optional[np.ndarray],
):
    P = chain.P if isinstance(chain, MarkovChain) else chain.tocsr()
    eta = (
        np.asarray(stationary, dtype=float)
        if stationary is not None
        else solve_direct(P).distribution
    )
    return P, eta


def detailed_balance_violation(
    chain: Union[MarkovChain, sp.spmatrix],
    stationary: Optional[np.ndarray] = None,
) -> float:
    """``max_ij |eta_i P_ij - eta_j P_ji|`` -- zero iff reversible."""
    P, eta = _P_eta(chain, stationary)
    F = sp.diags(eta).dot(P)  # stationary flux matrix
    diff = (F - F.T).tocoo()
    return float(np.abs(diff.data).max()) if diff.nnz else 0.0


def is_reversible(
    chain: Union[MarkovChain, sp.spmatrix],
    stationary: Optional[np.ndarray] = None,
    atol: float = 1e-10,
) -> bool:
    """Detailed-balance check against the stationary distribution."""
    return detailed_balance_violation(chain, stationary) <= atol


def reversibilization(
    chain: Union[MarkovChain, sp.spmatrix],
    stationary: Optional[np.ndarray] = None,
) -> MarkovChain:
    """The multiplicative reversibilization ``R = (P + D^-1 P^T D) / 2``
    with ``D = diag(eta)``.

    ``R`` is a reversible chain with the *same* stationary distribution
    (test invariant); its spectral gap lower-bounds the mixing behaviour
    of the original chain in the standard comparison arguments.
    """
    P, eta = _P_eta(chain, stationary)
    if np.any(eta <= 0):
        raise ValueError(
            "reversibilization needs a strictly positive stationary vector "
            "(remove transient states first, e.g. via censored_chain)"
        )
    Dinv = sp.diags(1.0 / eta)
    D = sp.diags(eta)
    R = 0.5 * (P + Dinv.dot(P.T).dot(D))
    return MarkovChain(R.tocsr())
