"""Multi-level aggregation ("multigrid") stationary solver.

This is the paper's dedicated solver: a multi-level generalization of
aggregation/disaggregation due to Horton & Leutenegger ("A multi-level
solution algorithm for steady-state Markov chains"), which the paper
interprets as an algebraic multi-grid method and accelerates with a
*structured* coarsening strategy: "we employed a coarsening strategy which
lumps the two states corresponding to consecutive discretized phase error
values.  In this way, the lumped problems resemble the original problem but
with coarser phase error discretization."

Algorithm (one V-cycle on level ``l``):

1. pre-smooth the iterate with ``nu_pre`` Gauss-Jacobi sweeps;
2. aggregate: build the coarse chain ``C`` weighted by the current iterate
   (the exact Koury-McAllister-Stewart coarse operator);
3. recurse on ``C`` (or solve directly once the chain is small);
4. prolongate multiplicatively (block-wise rescaling);
5. post-smooth with ``nu_post`` sweeps.

V-cycles repeat until the fine-level residual ``||x P - x||_1`` drops below
tolerance.  The coarsening strategy is pluggable: the CDR model supplies
the paper's phase-pairing strategy via state labels; a generic
strongest-coupling pairwise aggregation is provided for arbitrary chains.

The *fine* level is matrix-free capable: any
:class:`~repro.markov.linop.TransitionOperator` works unassembled --
smoothing routes the Jacobi splitting through ``rmatvec``/``diagonal()``,
the fine-level residual uses ``rmatvec``, and the first coarse operator is
built via the operator's Galerkin ``restrict(partition, weights)``.  Coarse
levels are always assembled CSR matrices (they are small), so levels >= 1
run exactly as before.  Note that the *generic* pairwise coarsening
strategy needs the assembled matrix; unassembled operators should supply a
structural strategy (the CDR model's phase pairing) or implement
``to_csr()``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.markov.aggregation import disaggregate
from repro.markov.linop import (
    AssembledOperator,
    OperatorCapabilityError,
    as_operator,
    ensure_csr,
    operator_residual,
)
from repro.markov.lumping import Partition, lumped_tpm
from repro.markov.monitor import NULL_MONITOR, SolverMonitor, instrument
from repro.markov.registry import register_solver
from repro.markov.solvers.direct import solve_direct
from repro.markov.solvers.jacobi import jacobi_split, jacobi_sweeps
from repro.markov.solvers.power import solve_power
from repro.markov.solvers.result import StationaryResult, prepare_initial_guess
from repro.obs.profile import InstrumentedOperator, get_profile_session

__all__ = [
    "MultigridOptions",
    "MultigridSolver",
    "solve_multigrid",
    "pairwise_strength_partition",
    "strength_of_connection_partition",
    "pairing_hierarchy",
    "register_coarsening",
    "get_coarsening",
    "coarsening_names",
    "resolve_strategy",
]

_WEIGHT_FLOOR = 1e-300

# A coarsening strategy maps (level, current TPM) -> Partition or None
# (None meaning "stop coarsening here").
CoarseningStrategy = Callable[[int, sp.csr_matrix], Optional[Partition]]


def _default_strategy(level: int, P) -> Partition:
    """Generic coarsening for arbitrary inputs (assembles operators)."""
    if not sp.issparse(P):
        P = ensure_csr(P)
    return pairwise_strength_partition(P)


def pairwise_strength_partition(P: sp.csr_matrix) -> Partition:
    """Generic algebraic coarsening: greedy pairing by coupling strength.

    Each state is paired with the unpaired neighbour to which the symmetric
    coupling ``P[i, j] + P[j, i]`` is strongest; leftovers stay singletons.
    This is the fallback for chains without exploitable structure and the
    baseline the coarsening ablation compares the paper's structured
    strategy against.
    """
    n = P.shape[0]
    S = (P + P.T).tocsr()
    block_of = np.full(n, -1, dtype=np.int64)
    next_block = 0
    # Visit states in order of decreasing strongest coupling for better
    # pairings; plain order is fine too and much cheaper, so we keep it
    # simple: sequential greedy.
    for i in range(n):
        if block_of[i] != -1:
            continue
        row = S.indices[S.indptr[i]:S.indptr[i + 1]]
        vals = S.data[S.indptr[i]:S.indptr[i + 1]]
        best_j, best_v = -1, 0.0
        for j, v in zip(row, vals):
            if j != i and block_of[j] == -1 and v > best_v:
                best_j, best_v = int(j), float(v)
        block_of[i] = next_block
        if best_j >= 0:
            block_of[best_j] = next_block
        next_block += 1
    return Partition(block_of)


def strength_of_connection_partition(
    P: sp.csr_matrix, theta: float = 0.25, max_aggregate: int = 8
) -> Partition:
    """Algebraic strength-of-connection aggregation (AMG-style).

    For each unaggregated state ``i`` (in index order) a new aggregate is
    seeded from ``i`` plus its *strong* unaggregated neighbours: ``j`` is
    strong for ``i`` when the symmetric coupling ``P[i, j] + P[j, i]`` is
    at least ``theta`` times the strongest off-diagonal coupling of row
    ``i``.  Aggregates are capped at ``max_aggregate`` members (strongest
    first) so the coarse problem keeps enough resolution for the
    Koury-McAllister-Stewart correction to be effective.

    Unlike the paper's phase-pairing this needs no structural knowledge,
    so it applies to arbitrary chains (the bang-bang frequency loop, the
    mesochronous retimer) where the phase-grid lumping does not.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError("theta must be in (0, 1]")
    if max_aggregate < 2:
        raise ValueError("max_aggregate must be at least 2")
    n = P.shape[0]
    S = (P + P.T).tocsr()
    S.setdiag(0.0)
    S.eliminate_zeros()
    indptr, indices, data = S.indptr, S.indices, S.data
    block_of = np.full(n, -1, dtype=np.int64)
    next_block = 0
    for i in range(n):
        if block_of[i] != -1:
            continue
        row = indices[indptr[i]:indptr[i + 1]]
        vals = data[indptr[i]:indptr[i + 1]]
        if vals.size:
            strong = (vals >= theta * vals.max()) & (block_of[row] == -1)
            members = row[strong]
            if members.size > max_aggregate - 1:
                order = np.argsort(vals[strong])[::-1]
                members = members[order[: max_aggregate - 1]]
        else:
            members = row[:0]
        block_of[i] = next_block
        block_of[members] = next_block
        next_block += 1
    return Partition(block_of)


def pairing_hierarchy(
    partitions: Sequence[Partition],
) -> CoarseningStrategy:
    """Wrap a precomputed list of partitions as a coarsening strategy.

    ``partitions[l]`` maps level-``l`` states to level-``l+1`` blocks.
    Model builders (e.g. the CDR model's phase-pairing) precompute these
    from structural knowledge.
    """
    def strategy(level: int, P: sp.csr_matrix) -> Optional[Partition]:
        if level >= len(partitions):
            return None
        part = partitions[level]
        if part.n_states != P.shape[0]:
            raise ValueError(
                f"partition at level {level} has {part.n_states} states, "
                f"matrix has {P.shape[0]}"
            )
        return part
    return strategy


# --------------------------------------------------------------------- #
# coarsening-strategy registry
# --------------------------------------------------------------------- #

# name -> factory(operator) -> CoarseningStrategy.  The factory receives
# the (unwrapped) fine operator so structural strategies can interrogate
# it; purely algebraic strategies ignore it.
_COARSENERS: dict = {}


def register_coarsening(name: str):
    """Decorator registering a coarsening-strategy factory under ``name``."""
    def deco(factory):
        if name in _COARSENERS:
            raise ValueError(f"coarsening strategy {name!r} already registered")
        _COARSENERS[name] = factory
        return factory
    return deco


def get_coarsening(name: str):
    """Factory for a registered coarsening strategy (KeyError lists names)."""
    try:
        return _COARSENERS[name]
    except KeyError:
        raise KeyError(
            f"unknown coarsening strategy {name!r}; "
            f"registered: {', '.join(sorted(_COARSENERS))}"
        ) from None


def coarsening_names() -> tuple:
    return tuple(sorted(_COARSENERS))


def resolve_strategy(strategy, op) -> CoarseningStrategy:
    """Coerce a strategy spec (name / callable / None) to a callable.

    ``op`` is unwrapped from any profiling instrumentation first so
    structural factories (phase-pairing) see the real operator.
    """
    from repro.markov.linop import unwrap_operator

    if strategy is None:
        return _default_strategy
    if callable(strategy):
        return strategy
    return get_coarsening(strategy)(unwrap_operator(op))


@register_coarsening("pairwise")
def _pairwise_factory(op) -> CoarseningStrategy:
    return _default_strategy


@register_coarsening("algebraic")
def _algebraic_factory(op, theta: float = 0.25) -> CoarseningStrategy:
    def strategy(level: int, P) -> Optional[Partition]:
        if not sp.issparse(P):
            P = ensure_csr(P)
        return strength_of_connection_partition(P, theta=theta)
    return strategy


@register_coarsening("phase-pairing")
def _phase_pairing_factory(op) -> CoarseningStrategy:
    builder = getattr(op, "multigrid_strategy", None)
    if builder is None:
        raise OperatorCapabilityError(
            f"{type(op).__name__} has no multigrid_strategy(); the "
            "phase-pairing coarsening needs the CDR phase-grid structure "
            "-- use 'algebraic' or 'pairwise' instead"
        )
    return builder()


@register_coarsening("auto")
def _auto_factory(op) -> CoarseningStrategy:
    # Structured lumping when the operator knows its phase grid (the
    # paper's strategy), algebraic strength-of-connection otherwise.
    if getattr(op, "multigrid_strategy", None) is not None:
        return _phase_pairing_factory(op)
    return _algebraic_factory(op)


@dataclass
class MultigridOptions:
    """Tuning knobs for :class:`MultigridSolver`.

    Attributes
    ----------
    tol:
        Fine-level residual tolerance on ``||x P - x||_1``.
    max_cycles:
        Maximum number of V-cycles.
    nu_pre, nu_post:
        Gauss-Jacobi smoothing sweeps before/after the coarse correction.
    coarsest_size:
        Recursion stops when a level has at most this many states; that
        level is solved directly (sparse LU).
    max_levels:
        Hard cap on the number of levels.
    cycle_type:
        ``"V"`` (one coarse correction per level per cycle) or ``"W"``
        (two: the coarse correction is repeated with re-aggregated
        weights, trading per-cycle cost for fewer cycles on hard
        problems).
    """

    tol: float = 1e-10
    max_cycles: int = 200
    nu_pre: int = 1
    nu_post: int = 1
    coarsest_size: int = 512
    max_levels: int = 25
    cycle_type: str = "V"

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be at least 1")
        if self.nu_pre < 0 or self.nu_post < 0:
            raise ValueError("smoothing sweep counts must be non-negative")
        if self.nu_pre == 0 and self.nu_post == 0:
            raise ValueError(
                "at least one smoothing sweep is required for convergence "
                "of multiplicative multilevel aggregation"
            )
        if self.coarsest_size < 1:
            raise ValueError("coarsest_size must be positive")
        if self.max_levels < 1:
            raise ValueError("max_levels must be at least 1")
        if self.cycle_type not in ("V", "W"):
            raise ValueError("cycle_type must be 'V' or 'W'")


class MultigridSolver:
    """Multi-level aggregation solver with a pluggable coarsening strategy.

    Parameters
    ----------
    strategy:
        Coarsening strategy (callable or registered name); defaults to
        generic pairwise strongest-coupling aggregation at every level.
    options:
        Numerical options (see :class:`MultigridOptions`).
    hierarchy:
        A prebuilt :class:`~repro.markov.context.CoarseningHierarchy`;
        when given its cached partitions *are* the strategy (construction
        is skipped, only the per-solve iterate re-weighting of the coarse
        operators remains -- the construction/use split of the solve
        context layer).  Mutually exclusive with ``strategy``.
    """

    def __init__(
        self,
        strategy: Optional[CoarseningStrategy] = None,
        options: Optional[MultigridOptions] = None,
        hierarchy=None,
    ) -> None:
        if hierarchy is not None:
            if strategy is not None:
                raise ValueError("pass either strategy or hierarchy, not both")
            strategy = hierarchy.as_strategy()
        self._strategy = strategy or _default_strategy
        self.options = options or MultigridOptions()
        self._levels_used = 0
        # Fine-level structures are identical on every V-cycle; cache the
        # Jacobi splitting and the COO/block index arrays used to assemble
        # the level-0 coarse operator.
        self._fine_split = None
        self._fine_agg = None

    @property
    def levels_used(self) -> int:
        """Number of levels in the hierarchy of the most recent solve."""
        return self._levels_used

    # ------------------------------------------------------------------ #

    def solve(
        self,
        P,
        x0: Optional[np.ndarray] = None,
        monitor: Optional[SolverMonitor] = None,
        on_iterate=None,
    ) -> StationaryResult:
        """Run V-cycles until converged; returns a :class:`StationaryResult`.

        When a ``monitor`` is passed it receives one iteration event per
        V-cycle plus one :class:`~repro.markov.monitor.VCycleLevelEvent`
        per level visited in each cycle (size, nnz, aggregate count and
        smoothing timings of that level).  ``on_iterate(cycle, x)`` is
        called with the fine-level iterate after every V-cycle (the
        checkpointing attachment point).
        """
        op = as_operator(P)
        # Assembled inputs keep flowing through the hierarchy as plain CSR
        # matrices; unassembled operators stay unassembled on the fine
        # level and only their Galerkin-restricted coarse images are built.
        fine = op.P if isinstance(op, AssembledOperator) else op
        opt = self.options
        n = op.shape[0]
        self._fine_split = None
        self._fine_agg = None
        x = prepare_initial_guess(n, x0)
        method = "multigrid" if opt.cycle_type == "V" else "multigrid-W"
        recorder, mon = instrument(method, n, opt.tol, monitor)
        start = time.perf_counter()
        converged = False
        for cycle in range(1, opt.max_cycles + 1):
            x = self._vcycle(fine, x, level=0, cycle=cycle, mon=mon)
            if on_iterate is not None:
                on_iterate(cycle, x)
            res = operator_residual(op, x)
            mon.iteration_finished(cycle, res, time.perf_counter() - start)
            if res < opt.tol:
                converged = True
                break
        elapsed = time.perf_counter() - start
        residual = recorder.last_residual()
        if residual is None:
            residual = operator_residual(op, x)
        mon.solve_finished(converged, recorder.n_iterations, residual, elapsed)
        return StationaryResult(
            distribution=x,
            iterations=recorder.n_iterations,
            residual=residual,
            converged=converged,
            method=method,
            residual_history=recorder.residual_history,
            solve_time=elapsed,
        )

    # ------------------------------------------------------------------ #

    def _smooth(self, P, x: np.ndarray, sweeps: int, level: int) -> np.ndarray:
        if level == 0:
            if self._fine_split is None:
                self._fine_split = jacobi_split(P)
            return jacobi_sweeps(P, x, sweeps, split=self._fine_split)
        return jacobi_sweeps(P, x, sweeps)

    def _coarsest_solve(self, P, x: np.ndarray) -> np.ndarray:
        if sp.issparse(P):
            return solve_direct(P).distribution
        if isinstance(P, InstrumentedOperator) and isinstance(
            P.inner, AssembledOperator
        ):
            # Profiling must not change the numerical path: an instrumented
            # assembled fine level still gets the direct coarsest solve.
            return solve_direct(P.inner.P).distribution
        # An unassembled operator small enough to be its own coarsest
        # level: keep the no-materialization guarantee and solve it with
        # matrix-free power iteration seeded from the current iterate.
        return solve_power(P, tol=self.options.tol, x0=x).distribution

    def _coarse_tpm(
        self, P, partition: Partition, w: np.ndarray, level: int
    ) -> sp.csr_matrix:
        if not sp.issparse(P):
            # Matrix-free fine level: delegate the weighted Galerkin
            # aggregation to the operator so the fine TPM never exists.
            restrict = getattr(P, "restrict", None)
            if restrict is None:
                raise OperatorCapabilityError(
                    f"{type(P).__name__} has no restrict(partition, weights); "
                    "matrix-free multigrid needs it to build coarse levels"
                )
            return restrict(partition, w)
        if level != 0:
            return lumped_tpm(P, partition, weights=w)
        if self._fine_agg is None:
            coo = P.tocoo()
            block = partition.block_of
            self._fine_agg = (
                coo.row,
                coo.data,
                block[coo.row],
                block[coo.col],
                partition.n_blocks,
            )
        row, data, brow, bcol, nb = self._fine_agg
        C = sp.coo_matrix((w[row] * data, (brow, bcol)), shape=(nb, nb)).tocsr()
        C.sum_duplicates()
        mass = np.bincount(partition.block_of, weights=w, minlength=nb)
        return sp.diags(1.0 / mass).dot(C).tocsr()

    def _vcycle(
        self,
        P,
        x: np.ndarray,
        level: int,
        cycle: int = 0,
        mon: SolverMonitor = NULL_MONITOR,
    ) -> np.ndarray:
        opt = self.options
        n = P.shape[0]
        nnz = int(P.nnz) if sp.issparse(P) else int(getattr(P, "nnz", 0))
        self._levels_used = max(self._levels_used, level + 1)
        # Per-level stage attribution (smoothing / coarse build / coarsest
        # solve) for the hot-path profile; one contextvar lookup when off.
        session = get_profile_session()
        role = f"multigrid.L{level}"
        if n <= opt.coarsest_size or level + 1 >= opt.max_levels:
            # Coarsest level: solved directly, no aggregation (n_blocks=0).
            mon.vcycle_level(cycle, level, n, nnz, 0, 0.0, 0.0)
            t0 = time.perf_counter()
            x = self._coarsest_solve(P, x)
            if session is not None:
                session.record_stage(
                    role, "coarsest_solve", time.perf_counter() - t0
                )
            return x
        pre_time = 0.0
        if opt.nu_pre:
            t0 = time.perf_counter()
            x = self._smooth(P, x, opt.nu_pre, level)
            pre_time = time.perf_counter() - t0
        partition = self._strategy(level, P)
        if partition is None or partition.n_blocks >= n:
            # Strategy declined to coarsen: fall back to direct solve when
            # affordable, otherwise keep smoothing.
            mon.vcycle_level(cycle, level, n, nnz, 0, pre_time, 0.0)
            if session is not None:
                session.record_stage(role, "smooth.pre", pre_time)
            if n <= 8 * opt.coarsest_size:
                return self._coarsest_solve(P, x)
            return self._smooth(P, x, opt.nu_post or 1, level)
        gamma = 2 if opt.cycle_type == "W" else 1
        post_time = 0.0
        coarse_time = 0.0
        for _ in range(gamma):
            w = np.maximum(x, _WEIGHT_FLOOR)
            t0 = time.perf_counter()
            C = self._coarse_tpm(P, partition, w, level)
            coarse_time += time.perf_counter() - t0
            coarse_x0 = np.bincount(
                partition.block_of, weights=w, minlength=partition.n_blocks
            )
            coarse_x0 = coarse_x0 / coarse_x0.sum()
            coarse_x = self._vcycle(C, coarse_x0, level + 1, cycle, mon)
            x = disaggregate(w, coarse_x, partition)
            if opt.nu_post:
                t1 = time.perf_counter()
                x = self._smooth(P, x, opt.nu_post, level)
                post_time += time.perf_counter() - t1
        mon.vcycle_level(
            cycle, level, n, nnz, partition.n_blocks, pre_time, post_time
        )
        if session is not None:
            session.record_stage(role, "smooth.pre", pre_time)
            session.record_stage(role, "smooth.post", post_time)
            session.record_stage(role, "coarse_build", coarse_time)
        return x


def solve_multigrid(
    P,
    strategy=None,
    tol: float = 1e-10,
    max_cycles: int = 200,
    x0: Optional[np.ndarray] = None,
    nu_pre: int = 1,
    nu_post: int = 1,
    coarsest_size: int = 512,
    cycle_type: str = "V",
    monitor: Optional[SolverMonitor] = None,
    on_iterate=None,
    hierarchy=None,
) -> StationaryResult:
    """Convenience wrapper around :class:`MultigridSolver`.

    ``strategy`` may be a callable, a registered coarsening name
    (see :func:`coarsening_names`), or ``None`` for the generic pairwise
    default; ``hierarchy`` takes a prebuilt
    :class:`~repro.markov.context.CoarseningHierarchy` instead.
    """
    options = MultigridOptions(
        tol=tol,
        max_cycles=max_cycles,
        nu_pre=nu_pre,
        nu_post=nu_post,
        coarsest_size=coarsest_size,
        cycle_type=cycle_type,
    )
    if hierarchy is None and isinstance(strategy, str):
        strategy = resolve_strategy(strategy, as_operator(P))
    return MultigridSolver(
        strategy=strategy, options=options, hierarchy=hierarchy
    ).solve(P, x0=x0, monitor=monitor, on_iterate=on_iterate)


@register_solver(
    "multigrid",
    matrix_free=True,
    description="multi-level aggregation V/W-cycles (the paper's solver)",
    default_max_iter=200,
    fallback_priority=10,
)
def _dispatch_multigrid(P, *, tol=1e-10, max_iter=None, x0=None, monitor=None, **kwargs):
    context = kwargs.pop("context", None)
    hierarchy = kwargs.pop("hierarchy", None)
    if context is not None and hierarchy is None:
        hierarchy = context.hierarchy_for(P)
    return solve_multigrid(
        P,
        strategy=kwargs.pop("strategy", None),
        tol=tol,
        max_cycles=200 if max_iter is None else max_iter,
        x0=x0,
        nu_pre=kwargs.pop("nu_pre", 1),
        nu_post=kwargs.pop("nu_post", 1),
        coarsest_size=kwargs.pop("coarsest_size", 512),
        cycle_type=kwargs.pop("cycle_type", "V"),
        monitor=monitor,
        hierarchy=hierarchy,
        **kwargs,
    )
