"""State lumping (aggregation of Markov chains onto partitions).

Section "Numerical Methods" of the paper builds its multigrid method on the
*lumpability* concepts of Kemeny & Snell: partition the ``N`` states into
``n << N`` blocks and study the induced process on block labels.  The
induced process is Markov for *every* initial distribution only when the
chain is *ordinarily lumpable* (equal block-to-block row sums within each
block); it is Markov for *some* initial distribution when the chain is
*weakly lumpable*.  Even when neither holds, the weighted aggregation of an
approximate stationary vector yields the coarse chains used by
aggregation/disaggregation and multigrid methods.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain

__all__ = [
    "Partition",
    "is_lumpable",
    "lump",
    "lumped_tpm",
    "prepare_block_weights",
    "aggregate_distribution",
]


class Partition:
    """A partition of ``n`` states into ``n_blocks`` disjoint blocks.

    Stored as an assignment vector ``block_of[i] in [0, n_blocks)``.  Blocks
    must be non-empty and contiguous in index (0..n_blocks-1).
    """

    __slots__ = ("_block_of", "_n_blocks")

    def __init__(self, block_of: Union[Sequence[int], np.ndarray]) -> None:
        block_of = np.asarray(block_of, dtype=np.int64)
        if block_of.ndim != 1 or block_of.size == 0:
            raise ValueError("partition assignment must be a non-empty vector")
        if block_of.min() < 0:
            raise ValueError("block indices must be non-negative")
        n_blocks = int(block_of.max()) + 1
        counts = np.bincount(block_of, minlength=n_blocks)
        if np.any(counts == 0):
            raise ValueError("every block index up to the maximum must be used")
        self._block_of = block_of
        self._block_of.setflags(write=False)
        self._n_blocks = n_blocks

    @property
    def block_of(self) -> np.ndarray:
        return self._block_of

    @property
    def n_states(self) -> int:
        return self._block_of.size

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    def members(self, block: int) -> np.ndarray:
        """State indices in ``block``."""
        if not 0 <= block < self._n_blocks:
            raise ValueError("block out of range")
        return np.flatnonzero(self._block_of == block)

    def aggregation_matrix(self) -> sp.csr_matrix:
        """The ``n_states x n_blocks`` 0/1 membership matrix ``V``."""
        n = self.n_states
        data = np.ones(n)
        rows = np.arange(n)
        return sp.csr_matrix(
            (data, (rows, self._block_of)), shape=(n, self._n_blocks)
        )

    @classmethod
    def from_blocks(cls, blocks: Sequence[Sequence[int]], n_states: int) -> "Partition":
        """Build from an explicit list of blocks."""
        assign = np.full(n_states, -1, dtype=np.int64)
        for b, members in enumerate(blocks):
            members = np.asarray(members, dtype=np.int64)
            if np.any(assign[members] != -1):
                raise ValueError("blocks overlap")
            assign[members] = b
        if np.any(assign == -1):
            raise ValueError("blocks do not cover all states")
        return cls(assign)

    @classmethod
    def identity(cls, n_states: int) -> "Partition":
        return cls(np.arange(n_states))

    @classmethod
    def pairs(cls, n_states: int) -> "Partition":
        """Pair consecutive states: ``{0,1}, {2,3}, ...`` (odd tail kept alone)."""
        return cls(np.arange(n_states) // 2)

    def __repr__(self) -> str:
        return f"Partition(n_states={self.n_states}, n_blocks={self.n_blocks})"


def _block_row_sums(P: sp.csr_matrix, partition: Partition) -> np.ndarray:
    """Dense ``n_states x n_blocks`` matrix of row sums into each block."""
    V = partition.aggregation_matrix()
    return np.asarray(P.dot(V).todense())


def is_lumpable(
    chain: MarkovChain, partition: Partition, atol: float = 1e-10
) -> bool:
    """Test ordinary (strong) lumpability of ``chain`` w.r.t. ``partition``.

    The chain is lumpable iff for every pair of blocks ``(I, J)`` the sum
    ``sum_{j in J} P[i, j]`` is the same for every ``i in I`` (Kemeny &
    Snell, Theorem 6.3.2).
    """
    if partition.n_states != chain.n_states:
        raise ValueError("partition size does not match chain size")
    S = _block_row_sums(chain.P, partition)
    for b in range(partition.n_blocks):
        members = partition.members(b)
        block_rows = S[members]
        if not np.allclose(block_rows, block_rows[0], rtol=0.0, atol=atol):
            return False
    return True


def prepare_block_weights(
    partition: Partition, weights: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate aggregation weights and return ``(weights, block masses)``.

    Defaults to uniform weights; blocks whose total weight vanishes fall
    back to uniform intra-block weights so the coarse matrix stays
    stochastic.  Shared by :func:`lumped_tpm` and the matrix-free Galerkin
    ``restrict`` implementations, which must agree exactly.
    """
    n = partition.n_states
    if weights is None:
        w = np.full(n, 1.0)
    else:
        w = np.asarray(weights, dtype=float).copy()
        if w.shape != (n,):
            raise ValueError("weights must have one entry per state")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
    block = partition.block_of
    nb = partition.n_blocks
    block_mass = np.bincount(block, weights=w, minlength=nb)
    empty = block_mass <= 0.0
    if np.any(empty):
        counts = np.bincount(block, minlength=nb)
        w = w + np.where(empty[block], 1.0 / counts[block], 0.0)
        block_mass = np.bincount(block, weights=w, minlength=nb)
    return w, block_mass


def lumped_tpm(
    P: sp.csr_matrix,
    partition: Partition,
    weights: Optional[np.ndarray] = None,
) -> sp.csr_matrix:
    """Weighted aggregation of ``P`` onto the partition.

    ``C[I, J] = sum_{i in I} w_i sum_{j in J} P[i, j] / sum_{i in I} w_i``.

    With ``weights`` equal to the stationary vector this is the *exact*
    lumped chain (its stationary vector is the aggregated stationary
    vector); with an approximate iterate it is the coarse operator used by
    aggregation/disaggregation and multigrid.  ``weights`` defaults to
    uniform.  Blocks whose total weight vanishes fall back to uniform
    intra-block weights so the coarse matrix stays stochastic.
    """
    n = P.shape[0]
    if partition.n_states != n:
        raise ValueError("partition size does not match matrix size")
    w, block_mass = prepare_block_weights(partition, weights)
    block = partition.block_of
    nb = partition.n_blocks
    # C[I, J] = sum_{i in I} w_i P[i, j in J] / mass(I), assembled directly
    # in COO coordinates (much faster than sparse triple products).
    coo = P.tocoo()
    data = w[coo.row] * coo.data
    C = sp.coo_matrix((data, (block[coo.row], block[coo.col])), shape=(nb, nb)).tocsr()
    C.sum_duplicates()
    return sp.diags(1.0 / block_mass).dot(C).tocsr()


def lump(
    chain: MarkovChain,
    partition: Partition,
    weights: Optional[np.ndarray] = None,
    require_lumpable: bool = False,
    atol: float = 1e-10,
) -> MarkovChain:
    """Return the lumped chain on block labels.

    With ``require_lumpable=True`` raises :class:`ValueError` when the chain
    is not ordinarily lumpable with respect to the partition (in which case
    the lumped process is only an approximation whose quality depends on the
    supplied ``weights``).
    """
    if require_lumpable and not is_lumpable(chain, partition, atol=atol):
        raise ValueError("chain is not ordinarily lumpable w.r.t. the partition")
    C = lumped_tpm(chain.P, partition, weights)
    labels = None
    if chain.state_labels is not None:
        labels = [None] * partition.n_blocks
        for b in range(partition.n_blocks):
            members = partition.members(b)
            labels[b] = tuple(chain.state_labels[i] for i in members)
    return MarkovChain(C, state_labels=labels)


def aggregate_distribution(dist: np.ndarray, partition: Partition) -> np.ndarray:
    """Sum a state distribution over the blocks of the partition."""
    dist = np.asarray(dist, dtype=float)
    if dist.shape != (partition.n_states,):
        raise ValueError("distribution size does not match partition")
    return np.bincount(partition.block_of, weights=dist, minlength=partition.n_blocks)
