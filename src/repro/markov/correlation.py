"""Autocorrelation and spectra of functions on Markov-chain states.

The paper notes that "computation of eta is the prerequisite for computing
other performance quantities such as the autocorrelation of a function
defined on the states of the MC" -- e.g. the recovered-clock phase error,
whose autocorrelation/spectrum characterizes recovered clock jitter.

For a stationary chain with distribution ``eta`` and per-state values
``f``, the lag-``k`` autocovariance is::

    R_f(k) = E[f(X_0) f(X_k)] - E[f]^2
           = sum_i eta_i f_i (P^k f)_i - (eta . f)^2

computed iteratively with sparse matvecs (no powers of ``P`` are formed).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.markov.chain import MarkovChain

__all__ = ["autocovariance", "autocorrelation", "power_spectral_density"]


def _as_P(chain: Union[MarkovChain, sp.csr_matrix]) -> sp.csr_matrix:
    return chain.P if isinstance(chain, MarkovChain) else chain.tocsr()


def autocovariance(
    chain: Union[MarkovChain, sp.csr_matrix],
    stationary: np.ndarray,
    fn_values: np.ndarray,
    max_lag: int,
) -> np.ndarray:
    """Autocovariance ``R_f(0..max_lag)`` of ``f(X_k)`` in stationarity."""
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    P = _as_P(chain)
    eta = np.asarray(stationary, dtype=float)
    f = np.asarray(fn_values, dtype=float)
    n = P.shape[0]
    if eta.shape != (n,) or f.shape != (n,):
        raise ValueError("stationary and fn_values must have one entry per state")
    mean = float(np.dot(eta, f))
    weighted = eta * f
    out = np.empty(max_lag + 1)
    pkf = f.copy()
    out[0] = float(np.dot(weighted, pkf)) - mean * mean
    for k in range(1, max_lag + 1):
        pkf = P.dot(pkf)
        out[k] = float(np.dot(weighted, pkf)) - mean * mean
    return out


def autocorrelation(
    chain: Union[MarkovChain, sp.csr_matrix],
    stationary: np.ndarray,
    fn_values: np.ndarray,
    max_lag: int,
) -> np.ndarray:
    """Autocovariance normalized by the variance (``rho(0) = 1``).

    Returns all-zero beyond lag 0 for a deterministic (zero-variance)
    function rather than dividing by zero.
    """
    R = autocovariance(chain, stationary, fn_values, max_lag)
    if R[0] <= 0.0:
        out = np.zeros_like(R)
        out[0] = 1.0
        return out
    return R / R[0]


def power_spectral_density(
    chain: Union[MarkovChain, sp.csr_matrix],
    stationary: np.ndarray,
    fn_values: np.ndarray,
    max_lag: int,
    n_freqs: int = 512,
) -> np.ndarray:
    """One-sided PSD estimate of ``f(X_k)`` via the Wiener-Khinchin theorem.

    The autocovariance out to ``max_lag`` is windowed (Hann) and
    Fourier-transformed; ``max_lag`` must be large enough for the
    autocovariance to have decayed.  Returns an array of ``n_freqs`` values
    over normalized frequency ``[0, 0.5]`` (cycles per symbol).
    """
    R = autocovariance(chain, stationary, fn_values, max_lag)
    window = np.hanning(2 * len(R) - 1)[len(R) - 1:]
    Rw = R * window
    # One-sided PSD: S(f) = R(0) + 2 sum_k R(k) cos(2 pi f k)
    freqs = np.linspace(0.0, 0.5, n_freqs)
    k = np.arange(1, len(R))
    S = Rw[0] + 2.0 * (np.cos(2.0 * np.pi * np.outer(freqs, k)) @ Rw[1:])
    return np.clip(S, 0.0, None)
