"""Censored chains (stochastic complementation).

The exact counterpart of the approximate lumping used by the multigrid
solver: watching an ergodic chain *only while it is inside a subset* ``A``
yields another Markov chain on ``A`` -- the censored chain -- with TPM

    S = P_AA + P_AB (I - P_BB)^{-1} P_BA

(the stochastic complement of ``A``; Meyer 1989).  Its stationary vector
is exactly the conditional stationary distribution ``eta|A``, which makes
censoring the gold-standard reduction for model debugging: e.g. the CDR
phase-error dynamics censored on the locked region, with all excursion
paths folded in exactly.

The complement solve factors ``(I - P_BB)`` once, so the cost is one
sparse LU on the *complement* of the watched set.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.markov.chain import MarkovChain

__all__ = ["censored_chain", "stochastic_complement"]


def stochastic_complement(
    chain: Union[MarkovChain, sp.spmatrix],
    keep: Sequence[int],
) -> sp.csr_matrix:
    """The stochastic complement of the states in ``keep``.

    Requires every excursion out of ``keep`` to return (true for any
    irreducible chain).  Raises :class:`ArithmeticError` when
    ``(I - P_BB)`` is singular, i.e. probability can escape ``keep``
    forever.
    """
    P = chain.P if isinstance(chain, MarkovChain) else chain.tocsr()
    n = P.shape[0]
    keep = np.unique(np.asarray(keep, dtype=int))
    if keep.size == 0:
        raise ValueError("keep set must be non-empty")
    if keep.min() < 0 or keep.max() >= n:
        raise ValueError("keep state out of range")
    mask = np.zeros(n, dtype=bool)
    mask[keep] = True
    other = np.flatnonzero(~mask)
    P_AA = P[keep][:, keep].tocsr()
    if other.size == 0:
        return P_AA
    P_AB = P[keep][:, other].tocsc()
    P_BB = P[other][:, other].tocsc()
    P_BA = P[other][:, keep].tocsc()
    A = (sp.identity(other.size, format="csc") - P_BB)
    try:
        lu = splu(A)
    except RuntimeError as exc:
        raise ArithmeticError(
            "stochastic complement undefined: excursions out of the kept "
            "set can be permanent (is the chain irreducible?)"
        ) from exc
    # (I - P_BB)^{-1} P_BA, column by column through the LU factors.
    G = lu.solve(P_BA.toarray())
    S = P_AA + sp.csr_matrix(P_AB.dot(G))
    # Round-off can leave tiny negatives; clean and renormalize.
    S = S.tocsr()
    S.data = np.clip(S.data, 0.0, None)
    rows = np.asarray(S.sum(axis=1)).ravel()
    if np.any(rows <= 0):
        raise ArithmeticError("stochastic complement produced an empty row")
    return sp.diags(1.0 / rows).dot(S).tocsr()


def censored_chain(
    chain: Union[MarkovChain, sp.spmatrix],
    keep: Sequence[int],
) -> MarkovChain:
    """The chain observed only while inside ``keep``.

    State ``i`` of the result corresponds to ``keep[i]`` (sorted); labels
    are carried over when present.  The result's stationary distribution
    equals the original stationary distribution conditioned on ``keep``
    (exactly -- this is a test invariant).
    """
    S = stochastic_complement(chain, keep)
    labels = None
    if isinstance(chain, MarkovChain) and chain.state_labels is not None:
        keep_sorted = np.unique(np.asarray(keep, dtype=int))
        labels = [chain.state_labels[i] for i in keep_sorted]
    return MarkovChain(S, state_labels=labels)
