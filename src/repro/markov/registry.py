"""Decorator-registered solver and TPM-backend registries.

This replaces the hard-coded ``SOLVER_NAMES`` tuple and the if/elif
dispatch that used to live in :mod:`repro.markov.stationary`: each solver
module registers itself with :func:`register_solver` at import time, and
:func:`repro.markov.stationary.stationary_distribution` looks the method
up here.  The same pattern serves the transition-matrix *backends*
(``assembled`` / ``matrix-free`` / ``kronecker``) that
:mod:`repro.core.analyzer` selects from a spec's ``backend`` field; the
builders live in :mod:`repro.cdr.backends`.

Entries carry a uniform dispatch contract::

    entry.fn(operator, *, tol, max_iter, x0, monitor, **solver_kwargs)

where ``operator`` is anything :func:`repro.markov.linop.as_operator`
accepts.  ``matrix_free`` records whether the solver can run without an
assembled CSR matrix -- the capability matrix the CLI's ``repro solvers``
command prints.  ``fallback_priority`` orders solvers in the default
escalation chain of :class:`repro.resilience.fallback.FallbackPolicy`
(lower tries first; ``None`` keeps a solver out of default chains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "SolverEntry",
    "register_solver",
    "get_solver",
    "solver_names",
    "solver_table",
    "BackendEntry",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_table",
]


# ---------------------------------------------------------------------- #
# stationary solvers
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class SolverEntry:
    """One registered stationary solver.

    ``fn`` follows the uniform dispatch contract
    ``fn(operator, *, tol, max_iter, x0, monitor, **kwargs)`` and returns a
    :class:`~repro.markov.solvers.result.StationaryResult`.
    """

    name: str
    fn: Callable[..., Any]
    matrix_free: bool
    description: str = ""
    default_max_iter: Optional[int] = None
    fallback_priority: Optional[int] = None


_SOLVERS: Dict[str, SolverEntry] = {}


def register_solver(
    name: str,
    *,
    matrix_free: bool,
    description: str = "",
    default_max_iter: Optional[int] = None,
    fallback_priority: Optional[int] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated dispatch function as the solver ``name``."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _SOLVERS:
            raise ValueError(f"solver {name!r} is already registered")
        _SOLVERS[name] = SolverEntry(
            name=name,
            fn=fn,
            matrix_free=matrix_free,
            description=description,
            default_max_iter=default_max_iter,
            fallback_priority=fallback_priority,
        )
        return fn

    return decorate


def get_solver(name: str) -> SolverEntry:
    """Look a solver up by registry key.

    Raises ``ValueError`` (message starts with ``unknown method``, matching
    the historical dispatch error) listing the registered names.
    """
    try:
        return _SOLVERS[name]
    except KeyError:
        choices = ("auto",) + solver_names()
        raise ValueError(
            f"unknown method {name!r}; choose from {choices}"
        ) from None


def solver_names() -> Tuple[str, ...]:
    """Registered solver keys, sorted (excludes the ``auto`` pseudo-method)."""
    return tuple(sorted(_SOLVERS))


def solver_table() -> Tuple[SolverEntry, ...]:
    """All registered solver entries, sorted by name."""
    return tuple(_SOLVERS[name] for name in solver_names())


# ---------------------------------------------------------------------- #
# transition-matrix backends
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class BackendEntry:
    """One registered TPM backend.

    ``build(spec)`` turns a :class:`~repro.core.spec.CDRSpec` into a model
    object the analyzer understands (a
    :class:`~repro.cdr.model.CDRChainModel` or an
    :class:`~repro.cdr.backends.OperatorCDRModel` facade).
    """

    name: str
    build: Callable[..., Any]
    description: str = ""


_BACKENDS: Dict[str, BackendEntry] = {}


def register_backend(
    name: str, *, description: str = ""
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated spec->model builder as the backend ``name``."""

    def decorate(build: Callable[..., Any]) -> Callable[..., Any]:
        if name in _BACKENDS:
            raise ValueError(f"backend {name!r} is already registered")
        _BACKENDS[name] = BackendEntry(
            name=name, build=build, description=description
        )
        return build

    return decorate


def get_backend(name: str) -> BackendEntry:
    """Look a backend up by name, with a choose-from error on misses."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {backend_names()}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def backend_table() -> Tuple[BackendEntry, ...]:
    """All registered backend entries, sorted by name."""
    return tuple(_BACKENDS[name] for name in backend_names())
