"""Discrete-time Markov chains with sparse transition probability matrices.

A Markov chain is "completely characterized by its transition probability
matrix (TPM)" (paper, Section 2).  :class:`MarkovChain` wraps a validated
``scipy.sparse`` row-stochastic matrix together with optional state labels,
and provides the primitive operations every analysis in this package builds
on: distribution propagation, restriction to state subsets, conversion, and
structural queries.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["MarkovChain", "validate_stochastic_matrix", "random_chain"]

_ROW_SUM_ATOL = 1e-8


def validate_stochastic_matrix(
    matrix: Union[np.ndarray, sp.spmatrix],
    atol: float = _ROW_SUM_ATOL,
) -> sp.csr_matrix:
    """Validate and canonicalize a row-stochastic matrix.

    Returns a CSR copy with non-negative entries whose rows sum to one
    exactly (rows are rescaled if they are within ``atol`` of one).  Raises
    :class:`ValueError` otherwise.
    """
    if sp.issparse(matrix):
        P = matrix.tocsr().astype(float, copy=True)
    else:
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2:
            raise ValueError("transition matrix must be two-dimensional")
        P = sp.csr_matrix(arr)
    if P.shape[0] != P.shape[1]:
        raise ValueError(f"transition matrix must be square, got {P.shape}")
    if P.shape[0] == 0:
        raise ValueError("transition matrix must have at least one state")
    P.sum_duplicates()
    if P.nnz and P.data.min() < -atol:
        raise ValueError("transition probabilities must be non-negative")
    P.data = np.clip(P.data, 0.0, None)
    P.eliminate_zeros()
    row_sums = np.asarray(P.sum(axis=1)).ravel()
    if not np.allclose(row_sums, 1.0, rtol=0.0, atol=max(atol, 1e-12)):
        bad = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValueError(
            f"row {bad} of the transition matrix sums to {row_sums[bad]!r}, not 1"
        )
    # Rescale rows to sum to one exactly (guards iterative solvers against
    # slow probability-mass leakage).
    scale = 1.0 / row_sums
    P = sp.diags(scale).dot(P).tocsr()
    return P


class MarkovChain:
    """A finite, discrete-time, time-homogeneous Markov chain.

    Parameters
    ----------
    transition_matrix:
        Row-stochastic matrix ``P`` with ``P[i, j] = P(X_{k+1}=j | X_k=i)``.
        Dense arrays are converted to CSR.
    state_labels:
        Optional sequence of hashable labels, one per state.  Model builders
        attach structured tuples (e.g. ``(data_state, counter, phase_index)``)
        which coarsening strategies and measures can exploit.
    validate:
        Skip validation only when the matrix is known-good (e.g. built by a
        trusted internal builder); default is to validate.
    """

    __slots__ = ("_P", "_labels", "_label_index", "_structure_token")

    def __init__(
        self,
        transition_matrix: Union[np.ndarray, sp.spmatrix],
        state_labels: Optional[Sequence] = None,
        validate: bool = True,
    ) -> None:
        if validate:
            self._P = validate_stochastic_matrix(transition_matrix)
        else:
            self._P = transition_matrix.tocsr() if sp.issparse(transition_matrix) else sp.csr_matrix(
                np.asarray(transition_matrix, dtype=float)
            )
        if state_labels is not None:
            labels = list(state_labels)
            if len(labels) != self._P.shape[0]:
                raise ValueError(
                    f"got {len(labels)} labels for {self._P.shape[0]} states"
                )
            self._labels: Optional[List] = labels
        else:
            self._labels = None
        self._label_index = None
        self._structure_token = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def P(self) -> sp.csr_matrix:
        """The transition probability matrix (CSR)."""
        return self._P

    @property
    def n_states(self) -> int:
        return self._P.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored transitions."""
        return self._P.nnz

    @property
    def state_labels(self) -> Optional[List]:
        return self._labels

    def structure_token(self):
        """Value-free structure identity set by a model builder, or None.

        Trusted builders (e.g. :func:`repro.cdr.model.build_cdr_chain`)
        describe the chain's *structure* -- dimensions, branch layout,
        shift pattern -- with every noise-dependent probability excluded,
        so :func:`repro.markov.context.structural_digest` can key
        hierarchy caches by structure instead of by sparsity pattern
        (which wobbles when near-zero probabilities drop out).
        """
        return self._structure_token

    def set_structure_token(self, token) -> None:
        """Attach a hashable structure identity (builders only)."""
        self._structure_token = token

    def label_of(self, index: int):
        """Label of state ``index`` (the index itself if unlabeled)."""
        if self._labels is None:
            return index
        return self._labels[index]

    def index_of(self, label) -> int:
        """State index of ``label`` (inverse of :meth:`label_of`)."""
        if self._labels is None:
            if not isinstance(label, (int, np.integer)) or not 0 <= label < self.n_states:
                raise KeyError(f"unknown state {label!r}")
            return int(label)
        if self._label_index is None:
            self._label_index = {lab: i for i, lab in enumerate(self._labels)}
        try:
            return self._label_index[label]
        except KeyError:
            raise KeyError(f"unknown state label {label!r}") from None

    def __repr__(self) -> str:
        return f"MarkovChain(n_states={self.n_states}, nnz={self.nnz})"

    # ------------------------------------------------------------------ #
    # basic operations
    # ------------------------------------------------------------------ #

    def step_distribution(self, dist: np.ndarray) -> np.ndarray:
        """One-step evolution of a row distribution: ``dist @ P``."""
        dist = np.asarray(dist, dtype=float)
        if dist.shape != (self.n_states,):
            raise ValueError(
                f"distribution must have shape ({self.n_states},), got {dist.shape}"
            )
        return self._P.T.dot(dist)

    def transition_prob(self, i: int, j: int) -> float:
        """``P(X_{k+1}=j | X_k=i)``."""
        return float(self._P[i, j])

    def uniform_distribution(self) -> np.ndarray:
        return np.full(self.n_states, 1.0 / self.n_states)

    def point_distribution(self, state: int) -> np.ndarray:
        dist = np.zeros(self.n_states)
        dist[state] = 1.0
        return dist

    def row_sums(self) -> np.ndarray:
        return np.asarray(self._P.sum(axis=1)).ravel()

    def is_stochastic(self, atol: float = _ROW_SUM_ATOL) -> bool:
        return bool(
            np.allclose(self.row_sums(), 1.0, rtol=0.0, atol=atol)
            and (self._P.nnz == 0 or self._P.data.min() >= -atol)
        )

    def to_dense(self) -> np.ndarray:
        return self._P.toarray()

    def submatrix(self, states: Sequence[int]) -> sp.csr_matrix:
        """The (generally substochastic) restriction of ``P`` to ``states``."""
        idx = np.asarray(states, dtype=int)
        return self._P[idx][:, idx].tocsr()

    def states_where(self, predicate: Callable) -> np.ndarray:
        """Indices of states whose *label* satisfies ``predicate``."""
        if self._labels is None:
            return np.array(
                [i for i in range(self.n_states) if predicate(i)], dtype=int
            )
        return np.array(
            [i for i, lab in enumerate(self._labels) if predicate(lab)], dtype=int
        )

    def expected_value(self, dist: np.ndarray, fn_values: np.ndarray) -> float:
        """``E[f(X)]`` for ``X ~ dist`` with per-state values ``fn_values``."""
        dist = np.asarray(dist, dtype=float)
        fn_values = np.asarray(fn_values, dtype=float)
        if dist.shape != (self.n_states,) or fn_values.shape != (self.n_states,):
            raise ValueError("dist and fn_values must have one entry per state")
        return float(np.dot(dist, fn_values))

    def simulate(
        self,
        n_steps: int,
        rng: np.random.Generator,
        initial_state: int = 0,
    ) -> np.ndarray:
        """Sample a trajectory of state indices of length ``n_steps + 1``.

        Intended for testing and small Monte-Carlo cross-checks; the whole
        point of the paper is that BER-grade statistics should *not* be
        gathered this way.
        """
        if not 0 <= initial_state < self.n_states:
            raise ValueError("initial_state out of range")
        path = np.empty(n_steps + 1, dtype=np.int64)
        path[0] = initial_state
        indptr, indices, data = self._P.indptr, self._P.indices, self._P.data
        state = initial_state
        us = rng.random(n_steps)
        for k in range(n_steps):
            lo, hi = indptr[state], indptr[state + 1]
            cumulative = np.cumsum(data[lo:hi])
            j = int(np.searchsorted(cumulative, us[k] * cumulative[-1], side="right"))
            state = int(indices[lo + min(j, hi - lo - 1)])
            path[k + 1] = state
        return path


def random_chain(
    n_states: int,
    rng: np.random.Generator,
    density: float = 0.3,
    ensure_irreducible: bool = True,
) -> MarkovChain:
    """Generate a random chain (test helper, also used by property tests).

    Each row gets ``max(1, density * n_states)`` random transitions with
    Dirichlet-distributed probabilities.  With ``ensure_irreducible`` a
    cyclic backbone ``i -> (i+1) % n`` guarantees a single communicating
    class.
    """
    if n_states < 1:
        raise ValueError("n_states must be positive")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    k = max(1, int(round(density * n_states)))
    rows, cols, vals = [], [], []
    for i in range(n_states):
        targets = rng.choice(n_states, size=min(k, n_states), replace=False)
        if ensure_irreducible:
            targets = np.union1d(targets, [(i + 1) % n_states])
        weights = rng.dirichlet(np.ones(targets.size))
        rows.extend([i] * targets.size)
        cols.extend(targets.tolist())
        vals.extend(weights.tolist())
    P = sp.coo_matrix((vals, (rows, cols)), shape=(n_states, n_states))
    return MarkovChain(P)
