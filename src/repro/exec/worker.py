"""Worker-process entry point and wire-integrity helpers.

The protocol between the parent scheduler and a worker is a handful of
tuples over two queues.  Parent -> worker, on the worker's private task
queue (one outstanding task at a time, so the parent always knows exactly
which point a dead worker was holding):

``("task", seq, index, payload)``
    Compute point ``index``.  ``seq`` is a globally unique dispatch
    number; every reply echoes it so late messages from a worker that was
    already declared lost (killed after a timeout, say) can be discarded
    instead of double-recording the point.
``("stop",)``
    Drain and exit cleanly.

Worker -> parent, on the shared result queue:

``("ready", wid, pid)``             -- setup finished, worker wants work;
``("started", wid, seq, index)``    -- point accepted (timeout clock anchor);
``("done", wid, seq, index, record, aux, digest)`` -- point computed;
``("point_error", wid, seq, index, entry)`` -- the *analysis* raised: a
    deterministic point failure (``entry`` from
    :func:`~repro.resilience.errors.failure_entry`), recorded, not retried;
``("heartbeat", wid)``              -- liveness beacon from a daemon
    thread, emitted even while the main thread is deep in a solve, so a
    *hung* worker is distinguishable from a merely busy one;
``("init_error", wid, entry)``      -- ``runner.setup()`` raised;
``("bye", wid)``                    -- clean exit after ``stop``.

``record``/``aux`` are JSON-safe dicts and ``digest`` is their SHA-256
over a canonical JSON encoding: the parent recomputes it on receipt, and
a mismatch means the payload was corrupted in flight (or the worker is
compromised) -- classified as
:class:`~repro.resilience.errors.WorkerLost` with reason
``"corrupt-payload"`` and retried like any infrastructure fault.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
from typing import Any, Dict

__all__ = ["wire_digest", "worker_main"]

#: The digest a chaos-corrupted payload is sent with (never a real SHA-256
#: of the payload, so verification always fails).
_BOGUS_DIGEST = "0" * 64


def wire_digest(record: Dict[str, Any], aux: Dict[str, Any]) -> str:
    """Integrity digest of one point result as sent over the wire."""
    blob = json.dumps(
        {"record": record, "aux": aux}, sort_keys=True, default=str
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def worker_main(wid: int, runner: Any, task_queue, result_queue,
                heartbeat_s: float) -> None:
    """Run one worker: setup once, then serve tasks until ``stop``.

    SIGINT is ignored so a Ctrl-C in the parent's terminal (delivered to
    the whole foreground process group) does not race the parent's
    orderly shutdown; the parent terminates workers explicitly.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread or exotic platform
        pass

    stop_beat = threading.Event()

    def _beat() -> None:
        while not stop_beat.wait(heartbeat_s):
            try:
                result_queue.put(("heartbeat", wid))
            except Exception:  # noqa: BLE001 - queue torn down, parent gone
                return

    beacon = threading.Thread(target=_beat, name=f"heartbeat-{wid}", daemon=True)
    beacon.start()

    from repro.resilience.errors import failure_entry

    try:
        state = runner.setup()
    except Exception as exc:  # noqa: BLE001 - reported, not handled
        result_queue.put(("init_error", wid, failure_entry(exc)))
        stop_beat.set()
        return
    result_queue.put(("ready", wid, os.getpid()))

    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        _, seq, index, payload = message
        result_queue.put(("started", wid, seq, index))
        try:
            record, aux = runner.run(state, index, payload)
        except Exception as exc:  # noqa: BLE001 - per-point isolation
            entry = failure_entry(exc)
            attempts = getattr(exc, "attempts", None)
            if attempts and isinstance(attempts, list):
                entry["attempts"] = attempts
            result_queue.put(("point_error", wid, seq, index, entry))
            continue
        if aux.pop("__corrupt_wire__", None):
            digest = _BOGUS_DIGEST
        else:
            digest = wire_digest(record, aux)
        result_queue.put(("done", wid, seq, index, record, aux, digest))

    stop_beat.set()
    result_queue.put(("bye", wid))
