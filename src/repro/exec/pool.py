"""The elastic process pool: spawn, watch, kill, respawn.

:class:`ElasticPool` owns the worker processes and the plumbing -- one
private task queue per worker plus one shared result queue -- and nothing
else: all scheduling policy (dispatch order, timeouts, retries, requeues)
lives in :mod:`repro.exec.executor`.  The one-queue-per-worker shape is
deliberate: a shared work-stealing queue makes exactly-once requeue
unprovable (a worker can die between dequeue and acknowledgement, and the
parent cannot know whether the point was taken), whereas with
parent-mediated dispatch the parent always knows precisely which point a
dead worker was holding.  Work stealing still happens -- idle workers are
handed whatever eligible point is next -- it is just mediated by the
parent instead of raced through a shared queue.

Start method: ``fork`` when the platform offers it, so workers inherit
the runner (including un-picklable test/chaos closures) and any shared
operators by copy-on-write; otherwise ``spawn``, for which runners carry
a serialized spec and rebuild state in ``setup()``.  A pool that cannot
be brought up raises :class:`~repro.resilience.errors.PoolUnavailable`,
which the executor turns into graceful serial degradation.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
from typing import Any, Dict, List, Optional, Tuple

from repro.exec.retry import Clock
from repro.exec.worker import worker_main
from repro.resilience.errors import PoolUnavailable

__all__ = ["WorkerHandle", "ElasticPool"]


class WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, wid: int, process, task_queue, now: float) -> None:
        self.wid = wid
        self.process = process
        self.task_queue = task_queue
        #: The single outstanding ``(seq, index)`` this worker holds, or None.
        self.task: Optional[Tuple[int, int]] = None
        #: When the outstanding task was dispatched (parent clock).
        self.dispatched_at: Optional[float] = None
        #: Last time any message from this worker was received.
        self.last_seen = now
        #: Setup finished; worker is accepting tasks.
        self.ready = False

    @property
    def idle(self) -> bool:
        return self.ready and self.task is None

    def alive(self) -> bool:
        return self.process.is_alive()


class ElasticPool:
    """Worker processes + message plumbing for the elastic executor."""

    def __init__(
        self,
        runner: Any,
        jobs: int,
        *,
        heartbeat_s: float = 0.5,
        start_method: Optional[str] = None,
        clock: Optional[Clock] = None,
        fail_start: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.runner = runner
        self.jobs = jobs
        self.heartbeat_s = heartbeat_s
        self.clock = clock or Clock()
        self._fail_start = fail_start
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self.start_method = start_method
        self._ctx = None
        self.result_queue = None
        self.workers: Dict[int, WorkerHandle] = {}
        self._next_wid = 0
        #: Total processes ever started (respawns = spawned - jobs).
        self.spawned = 0

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def start(self) -> None:
        """Bring up ``jobs`` workers; :class:`PoolUnavailable` on failure."""
        if self._fail_start:
            raise PoolUnavailable(
                "injected pool-start failure (chaos battery)"
            )
        try:
            self._ctx = mp.get_context(self.start_method)
            self.result_queue = self._ctx.Queue()
            for _ in range(self.jobs):
                self.spawn_worker()
        except PoolUnavailable:
            raise
        except Exception as exc:  # noqa: BLE001 - any bring-up failure degrades
            self.terminate()
            raise PoolUnavailable(
                f"worker pool could not be started ({type(exc).__name__}: {exc})"
            ) from exc

    def spawn_worker(self) -> WorkerHandle:
        """Start one fresh worker with its own (empty) task queue.

        Respawned workers never reuse a dead worker's queue: whatever task
        was in it is requeued by the scheduler from its own records, which
        is what makes the exactly-once argument local and checkable.
        """
        wid = self._next_wid
        self._next_wid += 1
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(wid, self.runner, task_queue, self.result_queue,
                  self.heartbeat_s),
            name=f"repro-exec-{wid}",
            daemon=True,
        )
        process.start()
        handle = WorkerHandle(wid, process, task_queue, self.clock.monotonic())
        self.workers[wid] = handle
        self.spawned += 1
        return handle

    def kill_worker(self, handle: WorkerHandle) -> None:
        """SIGKILL one worker and drop it from the pool."""
        try:
            handle.process.kill()
            handle.process.join(timeout=5.0)
        except Exception:  # noqa: BLE001 - already dead / reaped
            pass
        handle.task_queue.cancel_join_thread()
        self.workers.pop(handle.wid, None)

    def dispatch(
        self, handle: WorkerHandle, seq: int, index: int, payload: Dict[str, Any]
    ) -> None:
        handle.task_queue.put(("task", seq, index, payload))
        handle.task = (seq, index)
        handle.dispatched_at = self.clock.monotonic()

    def poll(self, timeout: float) -> List[Tuple[Any, ...]]:
        """Drain available worker messages, waiting at most ``timeout``."""
        messages: List[Tuple[Any, ...]] = []
        try:
            messages.append(self.result_queue.get(timeout=timeout))
        except _queue.Empty:
            return messages
        while True:
            try:
                messages.append(self.result_queue.get_nowait())
            except _queue.Empty:
                return messages

    def live_workers(self) -> List[WorkerHandle]:
        return list(self.workers.values())

    def stop(self, grace_s: float = 5.0) -> None:
        """Orderly shutdown: stop-message, short join, then SIGKILL."""
        for handle in self.live_workers():
            try:
                handle.task_queue.put(("stop",))
            except Exception:  # noqa: BLE001 - queue torn down
                pass
        for handle in self.live_workers():
            handle.process.join(timeout=grace_s)
        self.terminate()

    def terminate(self) -> None:
        """SIGKILL every remaining worker; never raises."""
        for handle in self.live_workers():
            self.kill_worker(handle)
        if self.result_queue is not None:
            self.result_queue.cancel_join_thread()
