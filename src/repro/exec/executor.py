"""The elastic scheduler: dispatch, timeouts, retries, exactly-once requeue.

:func:`run_points` drives a set of independent (or lineage-chained)
points through an :class:`~repro.exec.pool.ElasticPool`:

* **dispatch-on-idle** -- each ready worker holds at most one point, so
  on worker death the parent knows exactly which point to requeue
  (`exactly-once`: a point re-enters the queue only through the
  scheduler's own record of the assignment, and late replies from a
  worker already declared lost are discarded by dispatch sequence
  number);
* **per-point wall-clock timeouts** -- a worker that holds a point past
  ``timeout_s`` is SIGKILLed and the point requeued as
  :class:`~repro.resilience.errors.PointTimeout`;
* **liveness** -- worker processes are sentinel-checked every tick and
  heartbeat-checked (a daemon thread in the worker beats even while the
  main thread is deep in a solve, so staleness means frozen, not busy);
* **retry with exponential backoff + deterministic jitter** -- only
  *infrastructure* faults retry (:class:`WorkerLost` /
  :class:`PointTimeout` / corrupt payloads); a point whose analysis
  raises fails deterministically and is recorded immediately, exactly
  like the serial drivers;
* **elastic respawn** -- lost workers are replaced (fresh process, fresh
  queue) within ``max_respawns``; when the pool cannot be started or
  sustained the remaining points degrade gracefully to serial in-parent
  execution (no timeout enforcement there -- there is no process
  boundary left to kill across);
* **warm lineages** -- points chained by ``prev`` warm-start from the
  nearest successfully solved ancestor's solution, shipped back in the
  point's ``aux`` payload;
* **typed interruption** -- SIGINT/SIGTERM terminates the workers and
  raises :class:`~repro.resilience.errors.ExecutorInterrupted`; every
  completed point was already flushed through ``on_done`` (the ledger),
  so ``--resume`` continues the campaign.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exec.pool import ElasticPool, WorkerHandle
from repro.exec.retry import Clock, RetryPolicy
from repro.exec.worker import wire_digest
from repro.obs import get_registry
from repro.resilience.errors import (
    ExecutorInterrupted,
    PointTimeout,
    PoolUnavailable,
    WorkerLost,
    failure_entry,
)

__all__ = ["ExecConfig", "ExecStats", "TimeoutTracker", "run_points"]


@dataclass
class ExecConfig:
    """Knobs of one elastic run (CLI: ``--jobs/--point-timeout/--max-retries``)."""

    jobs: int = 1
    #: Per-point wall-clock budget; None disables timeout enforcement.
    timeout_s: Optional[float] = None
    max_retries: int = 2
    retry: Optional[RetryPolicy] = None
    heartbeat_s: float = 0.5
    #: A worker holding a point with no message for this long is frozen.
    stale_after_s: Optional[float] = None
    #: Lost-worker replacement budget; exhausting it degrades to serial.
    max_respawns: Optional[int] = None
    serial_fallback: bool = True
    start_method: Optional[str] = None
    poll_s: float = 0.05
    clock: Clock = field(default_factory=Clock)
    #: Chaos hook: make pool start fail (exercises serial degradation).
    fail_start: bool = False

    def retry_policy(self) -> RetryPolicy:
        if self.retry is not None:
            return self.retry
        return RetryPolicy(max_retries=self.max_retries)

    def stale_budget_s(self) -> float:
        if self.stale_after_s is not None:
            return self.stale_after_s
        return max(5.0, 10.0 * self.heartbeat_s)

    def respawn_budget(self) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        return max(2 * self.jobs, 4)


@dataclass
class ExecStats:
    """What the elastic run did, for manifests and ``repro stats``."""

    jobs: int = 1
    mode: str = "pool"
    completed: int = 0
    failed: int = 0
    retries: int = 0
    requeues: int = 0
    timeouts: int = 0
    workers_lost: int = 0
    respawns: int = 0
    heartbeats: int = 0
    warm_starts: int = 0
    serial_points: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "mode": self.mode,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "requeues": self.requeues,
            "timeouts": self.timeouts,
            "workers_lost": self.workers_lost,
            "respawns": self.respawns,
            "heartbeats": self.heartbeats,
            "warm_starts": self.warm_starts,
            "serial_points": self.serial_points,
        }


class TimeoutTracker:
    """Wall-clock accounting of armed deadlines against an injectable clock.

    Keys are opaque (the executor uses worker ids).  Everything is driven
    by ``clock.monotonic()`` so tests exercise timeout accounting with a
    fake clock instead of sleeping.
    """

    def __init__(self, clock: Clock, timeout_s: Optional[float]) -> None:
        self.clock = clock
        self.timeout_s = timeout_s
        self._armed: Dict[Any, float] = {}

    def arm(self, key: Any) -> None:
        self._armed[key] = self.clock.monotonic()

    def disarm(self, key: Any) -> None:
        self._armed.pop(key, None)

    def elapsed(self, key: Any) -> Optional[float]:
        start = self._armed.get(key)
        return None if start is None else self.clock.monotonic() - start

    def overdue(self) -> List[Any]:
        """Keys whose armed deadline has passed (empty when no timeout)."""
        if self.timeout_s is None:
            return []
        now = self.clock.monotonic()
        return [k for k, t0 in self._armed.items() if now - t0 > self.timeout_s]


# point states
_PENDING = "pending"
_RETRY = "retry-wait"
_INFLIGHT = "in-flight"
_DONE = "done"
_FAILED = "failed"


class _Point:
    __slots__ = (
        "index", "payload", "prev", "state", "seq", "wake_at",
        "infra_failures", "had_x0",
    )

    def __init__(self, index: int, payload: Dict[str, Any], prev: Optional[int]):
        self.index = index
        self.payload = payload
        self.prev = prev
        self.state = _PENDING
        self.seq: Optional[int] = None
        self.wake_at: Optional[float] = None
        self.infra_failures = 0
        self.had_x0 = False


class _DegradeToSerial(Exception):
    """Internal: the pool cannot be sustained; finish remaining serially."""


def run_points(
    runner: Any,
    points: List[Tuple[int, Dict[str, Any]]],
    config: ExecConfig,
    *,
    prev: Optional[Dict[int, Optional[int]]] = None,
    seed_aux: Optional[Dict[int, Dict[str, Any]]] = None,
    on_done: Optional[Callable[[int, Dict[str, Any], Dict[str, Any]], None]] = None,
    on_failed: Optional[Callable[[int, Dict[str, Any]], None]] = None,
    label: str = "exec",
) -> ExecStats:
    """Run every point through the pool; returns the run's :class:`ExecStats`.

    ``points`` are ``(index, payload)`` pairs still to compute; already
    resolved predecessors (checkpoint replays) are passed via ``seed_aux``
    (index -> aux payload, possibly empty) so lineage successors can warm
    from them.  ``prev`` maps an index to its lineage predecessor (absent
    or None = chain head).  ``on_done(index, record, aux)`` /
    ``on_failed(index, entry)`` fire exactly once per point, in completion
    order, as results arrive -- this is where the caller's ledger write
    goes, which is what makes a kill at any instant resumable.
    """
    prev = dict(prev or {})
    clock = config.clock
    policy = config.retry_policy()
    stats = ExecStats(jobs=config.jobs)
    registry = get_registry()
    hb_counter = registry.counter(
        "repro_exec_heartbeats_total", "Worker heartbeats seen by the executor"
    )
    lost_counter = registry.counter(
        "repro_exec_workers_lost_total", "Workers the executor declared lost"
    )
    retry_counter = registry.counter(
        "repro_exec_retries_total", "Point retries after infrastructure faults"
    )
    workers_gauge = registry.gauge(
        "repro_exec_workers_alive", "Live workers of the current elastic run"
    )

    table: Dict[int, _Point] = {
        index: _Point(index, dict(payload), prev.get(index))
        for index, payload in points
    }
    unresolved = set(table)
    # aux payloads of successfully resolved points (this run + replays).
    resolved_aux: Dict[int, Dict[str, Any]] = {
        int(i): dict(aux or {}) for i, aux in (seed_aux or {}).items()
    }

    def _is_resolved(index: Optional[int]) -> bool:
        if index is None:
            return True
        point = table.get(index)
        if point is None:  # not scheduled this run => replayed/absent
            return True
        return point.state in (_DONE, _FAILED)

    def _x0_for(index: int) -> Optional[Dict[str, Any]]:
        """Nearest successfully solved ancestor's solution, if any."""
        ancestor = prev.get(index)
        while ancestor is not None:
            aux = resolved_aux.get(ancestor)
            if aux is not None and "x" in aux:
                return aux["x"]
            ancestor = prev.get(ancestor)
        return None

    def _resolve_success(
        index: int, record: Dict[str, Any], aux: Dict[str, Any]
    ) -> None:
        point = table[index]
        point.state = _DONE
        unresolved.discard(index)
        resolved_aux[index] = aux
        stats.completed += 1
        if point.had_x0:
            stats.warm_starts += 1
        if on_done is not None:
            on_done(index, record, aux)

    def _resolve_failure(index: int, entry: Dict[str, Any]) -> None:
        point = table[index]
        point.state = _FAILED
        unresolved.discard(index)
        stats.failed += 1
        if on_failed is not None:
            on_failed(index, entry)

    def _infra_fault(index: int, exc: Exception) -> None:
        """An infrastructure fault hit an in-flight point: requeue or fail."""
        point = table[index]
        point.seq = None
        point.infra_failures += 1
        stats.requeues += 1
        if policy.should_retry(point.infra_failures):
            point.state = _RETRY
            point.wake_at = clock.monotonic() + policy.delay_s(
                point.infra_failures, token=f"{label}:{index}"
            )
            stats.retries += 1
            retry_counter.inc(error_type=type(exc).__name__)
        else:
            entry = failure_entry(exc)
            entry["exec_attempts"] = point.infra_failures
            _resolve_failure(index, entry)

    # ------------------------------------------------------------------ #
    # serial execution (degradation path and final fallback)
    # ------------------------------------------------------------------ #

    def _run_serial(indices: List[int]) -> None:
        stats.mode = (
            "serial-fallback" if stats.mode == "pool" else stats.mode
        )
        try:
            state = runner.setup()
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 - every point inherits it
            entry = failure_entry(exc)
            for index in sorted(indices):
                if index in unresolved:
                    _resolve_failure(index, dict(entry))
            return
        # chains are contiguous index ranges, so index order respects
        # every lineage dependency.
        for index in sorted(indices):
            if index not in unresolved:
                continue
            point = table[index]
            payload = dict(point.payload)
            x0 = _x0_for(index)
            point.had_x0 = x0 is not None
            if x0 is not None:
                payload["x0"] = x0
            stats.serial_points += 1
            try:
                record, aux = runner.run(state, index, payload)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - per-point isolation
                entry = failure_entry(exc)
                attempts = getattr(exc, "attempts", None)
                if attempts and isinstance(attempts, list):
                    entry["attempts"] = attempts
                _resolve_failure(index, entry)
                continue
            aux.pop("__corrupt_wire__", None)  # no wire to corrupt in-process
            _resolve_success(index, record, aux)

    # ------------------------------------------------------------------ #
    # pool execution
    # ------------------------------------------------------------------ #

    def _run_pool() -> None:
        pool = ElasticPool(
            runner, config.jobs, heartbeat_s=config.heartbeat_s,
            start_method=config.start_method, clock=clock,
            fail_start=config.fail_start,
        )
        pool.start()
        tracker = TimeoutTracker(clock, config.timeout_s)
        stale_budget = config.stale_budget_s()
        respawn_budget = config.respawn_budget()
        next_seq = [0]

        def _clear_task(handle: Optional[WorkerHandle]) -> None:
            if handle is not None:
                handle.task = None
                handle.dispatched_at = None
                tracker.disarm(handle.wid)

        def _maybe_respawn() -> None:
            if not unresolved:
                return
            if stats.respawns < respawn_budget:
                pool.spawn_worker()
                stats.respawns += 1

        def _lose_worker(handle: WorkerHandle, exc_factory) -> None:
            """Declare one worker lost; requeue its point exactly once."""
            task = handle.task
            _clear_task(handle)
            pool.kill_worker(handle)
            stats.workers_lost += 1
            lost_counter.inc()
            if task is not None:
                seq, index = task
                point = table.get(index)
                # the point re-enters the queue only via this record of
                # the assignment (exactly-once requeue)
                if point is not None and point.state == _INFLIGHT and point.seq == seq:
                    _infra_fault(index, exc_factory(index, point))
            _maybe_respawn()

        def _handle_message(message: Tuple[Any, ...]) -> None:
            kind, wid = message[0], message[1]
            handle = pool.workers.get(wid)
            if handle is not None:
                handle.last_seen = clock.monotonic()
            if kind == "heartbeat":
                stats.heartbeats += 1
                hb_counter.inc()
            elif kind == "ready":
                if handle is not None:
                    handle.ready = True
            elif kind == "started":
                pass  # dispatch time anchors the timeout clock
            elif kind == "init_error":
                if handle is not None:
                    entry = message[2]
                    _lose_worker(handle, lambda index, point: WorkerLost(
                        f"worker {wid} failed to initialize: {entry.get('message')}",
                        index=index, worker_id=wid, reason="init-error",
                        attempts=point.infra_failures + 1,
                    ))
            elif kind == "done":
                _, _, seq, index, record, aux, digest = message
                point = table.get(index)
                if point is None or point.state != _INFLIGHT or point.seq != seq:
                    return  # late reply from a superseded attempt
                if wire_digest(record, aux) != digest:
                    # the worker's output cannot be trusted: drop the
                    # worker, requeue the point
                    if handle is not None:
                        _lose_worker(handle, lambda i, p: WorkerLost(
                            f"worker {wid} returned a corrupt payload for point {i}",
                            index=i, worker_id=wid, reason="corrupt-payload",
                            attempts=p.infra_failures + 1,
                        ))
                    else:
                        _infra_fault(index, WorkerLost(
                            f"corrupt payload for point {index}",
                            index=index, worker_id=wid,
                            reason="corrupt-payload",
                            attempts=point.infra_failures + 1,
                        ))
                    return
                _clear_task(handle)
                _resolve_success(index, record, aux)
            elif kind == "point_error":
                _, _, seq, index, entry = message
                point = table.get(index)
                if point is None or point.state != _INFLIGHT or point.seq != seq:
                    return
                _clear_task(handle)
                # deterministic analysis failure: recorded, never retried
                _resolve_failure(index, dict(entry))
            elif kind == "bye":
                pass

        def _check_liveness() -> None:
            now = clock.monotonic()
            for handle in pool.live_workers():
                if not handle.alive():
                    exitcode = handle.process.exitcode
                    _lose_worker(handle, lambda index, point: WorkerLost(
                        f"worker {handle.wid} died (exitcode {exitcode}) "
                        f"holding point {index}",
                        index=index, worker_id=handle.wid, exitcode=exitcode,
                        reason="killed", attempts=point.infra_failures + 1,
                    ))
                    continue
                if (handle.task is not None or not handle.ready) and (
                    now - handle.last_seen > stale_budget
                ):
                    _lose_worker(handle, lambda index, point: WorkerLost(
                        f"worker {handle.wid} heartbeat stale for "
                        f">{stale_budget:.1f}s holding point {index}",
                        index=index, worker_id=handle.wid,
                        reason="stale-heartbeat",
                        attempts=point.infra_failures + 1,
                    ))

        def _check_timeouts() -> None:
            for wid in tracker.overdue():
                handle = pool.workers.get(wid)
                if handle is None or handle.task is None:
                    tracker.disarm(wid)
                    continue
                stats.timeouts += 1
                elapsed = tracker.elapsed(wid)
                _lose_worker(handle, lambda index, point: PointTimeout(
                    f"point {index} exceeded its {config.timeout_s:.1f}s "
                    f"budget (ran {elapsed:.1f}s in worker {wid})",
                    index=index, timeout_s=config.timeout_s,
                    attempts=point.infra_failures + 1,
                ))

        def _dispatch_ready() -> None:
            idle = [h for h in pool.live_workers() if h.idle]
            if not idle:
                return
            now = clock.monotonic()
            for index in sorted(unresolved):
                if not idle:
                    break
                point = table[index]
                if point.state == _RETRY:
                    if point.wake_at is not None and point.wake_at > now:
                        continue
                    point.state = _PENDING
                if point.state != _PENDING or not _is_resolved(point.prev):
                    continue
                payload = dict(point.payload)
                x0 = _x0_for(index)
                point.had_x0 = x0 is not None
                if x0 is not None:
                    payload["x0"] = x0
                seq = next_seq[0]
                next_seq[0] += 1
                point.seq = seq
                point.state = _INFLIGHT
                handle = idle.pop(0)
                pool.dispatch(handle, seq, index, payload)
                tracker.arm(handle.wid)

        interrupted = False
        previous_sigterm = None

        def _sigterm(signum, frame):  # noqa: ARG001 - signal signature
            raise KeyboardInterrupt("SIGTERM")

        try:
            previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
        except (ValueError, OSError):  # non-main thread: SIGINT still works
            previous_sigterm = None
        try:
            while unresolved:
                for message in pool.poll(config.poll_s):
                    _handle_message(message)
                _check_liveness()
                _check_timeouts()
                workers_gauge.set(len(pool.workers))
                if unresolved and not pool.workers:
                    raise _DegradeToSerial()
                _dispatch_ready()
        except KeyboardInterrupt:
            interrupted = True
            raise ExecutorInterrupted(
                f"elastic run interrupted: {stats.completed} completed, "
                f"{stats.failed} failed, {len(unresolved)} pending "
                "(completed points are flushed; rerun with --resume)",
                completed=stats.completed, failed=stats.failed,
                pending=len(unresolved),
            ) from None
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
            if interrupted:
                pool.terminate()
            else:
                pool.stop()
            workers_gauge.set(0)

    try:
        _run_pool()
    except (PoolUnavailable, _DegradeToSerial) as exc:
        if not config.serial_fallback:
            if isinstance(exc, _DegradeToSerial):
                raise PoolUnavailable(
                    "worker pool could not be sustained and serial "
                    "fallback is disabled"
                ) from None
            raise
        try:
            _run_serial(sorted(unresolved))
        except KeyboardInterrupt:
            raise ExecutorInterrupted(
                f"serial-fallback run interrupted: {stats.completed} "
                f"completed, {stats.failed} failed, {len(unresolved)} pending "
                "(completed points are flushed; rerun with --resume)",
                completed=stats.completed, failed=stats.failed,
                pending=len(unresolved),
            ) from None
    return stats
