"""Picklable per-point work descriptions for the elastic executor.

A *runner* is the executor's separation of work description from
execution (the nipype-style split the ROADMAP calls for): a small
picklable dataclass that says how to compute ONE point, shipped to every
worker once.  ``setup()`` runs once per worker process and returns the
shared per-worker state (rebuilt from the serialized spec, so the spawn
start method works identically to fork); ``run(state, index, payload)``
computes one point and returns ``(record, aux)`` where both are JSON-safe
dicts -- ``record`` is exactly what the serial driver would have put in
the ledger, ``aux`` is side-band data that never enters the record digest
(warm-start solution vectors, chaos markers).

Determinism note: exec workers deliberately do NOT share a
:class:`~repro.markov.SolveContext`.  Its hierarchy cache is built from
operator *values*, so which hierarchy a point reuses would depend on
completion order -- unacceptable for bit-identical crash-resume.  Warm
starts are instead explicit: the scheduler threads the predecessor's
solution into ``payload["x0"]`` along deterministic lineage chains.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["WorkerChaos", "SweepPointRunner", "CampaignPointRunner"]


@dataclass
class WorkerChaos:
    """One-shot fault injection inside a worker, for the chaos battery.

    ``kind`` is ``"sigkill"`` (the worker SIGKILLs itself mid-point),
    ``"hang"`` (the point blocks far past any sane timeout) or
    ``"corrupt"`` (the returned payload is marked so the worker sends a
    bogus integrity digest).  The injection fires the first time point
    ``index`` runs and then arms ``flag_path`` on the shared filesystem,
    so the retried attempt -- possibly in a respawned worker -- succeeds.
    """

    kind: str
    index: int
    flag_path: str
    hang_s: float = 3600.0

    def _arm(self) -> bool:
        """Atomically create the flag; True exactly once across processes."""
        try:
            fd = os.open(self.flag_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def before_point(self, index: int) -> None:
        if index != self.index or self.kind not in ("sigkill", "hang"):
            return
        if not self._arm():
            return
        if self.kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(self.hang_s)

    def after_point(self, index: int, aux: Dict[str, Any]) -> None:
        if index != self.index or self.kind != "corrupt":
            return
        if self._arm():
            aux["__corrupt_wire__"] = True


@dataclass
class SweepPointRunner:
    """Compute one sweep point: ``payload = {"value": v, "x0": encoded?}``.

    Produces the exact record :func:`repro.cdr.sweep.sweep_parameter`
    builds serially (plus ``warm_started`` when warm lineages are on);
    with ``warm=True`` the stationary solution rides back in ``aux["x"]``
    (exact-bytes encoding) to seed the successor point's ``x0``.
    """

    spec_dict: Dict[str, Any]
    parameter: str
    solver: str = "multigrid"
    tol: float = 1e-10
    backend: Optional[str] = None
    resilience: Any = None
    warm: bool = False
    analyze_fn: Optional[Callable[..., Any]] = None
    chaos: Optional[WorkerChaos] = None
    extra_kwargs: Dict[str, Any] = field(default_factory=dict)

    def setup(self) -> Dict[str, Any]:
        from repro.core.analyzer import analyze_cdr
        from repro.core.serialize import spec_from_dict

        return {
            "spec": spec_from_dict(self.spec_dict),
            "analyze": analyze_cdr if self.analyze_fn is None else self.analyze_fn,
        }

    def run(
        self, state: Dict[str, Any], index: int, payload: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        import numpy as np

        from repro.cdr.sweep import _record_from_analysis
        from repro.resilience.checkpoint import decode_array, encode_array

        if self.chaos is not None:
            self.chaos.before_point(index)
        value = payload["value"]
        spec = state["spec"].replace(**{self.parameter: value})
        kwargs: Dict[str, Any] = dict(self.extra_kwargs)
        if self.resilience is not None:
            kwargs["resilience"] = self.resilience
        x0_payload = payload.get("x0")
        if x0_payload is not None:
            kwargs["x0"] = decode_array(x0_payload)
        result = state["analyze"](
            spec, solver=self.solver, tol=self.tol, backend=self.backend,
            **kwargs,
        )
        record = _record_from_analysis(self.parameter, value, result)
        if self.warm:
            record["warm_started"] = x0_payload is not None
        resilience_events = getattr(result, "resilience_events", None)
        if resilience_events:
            record["resilience_events"] = resilience_events
        aux: Dict[str, Any] = {}
        if self.warm:
            aux["x"] = encode_array(
                np.asarray(result.solver_result.distribution, dtype=float)
            )
        if self.chaos is not None:
            self.chaos.after_point(index, aux)
        return record, aux


@dataclass
class CampaignPointRunner:
    """Simulate one Monte-Carlo seed: ``payload = {"seed": s}``.

    Seeds are fully independent (the seed determines its RNG stream), so
    campaign points carry no lineage and no warm-start payloads.  The
    simulation inputs (grid, distributions, data source) are held by
    value; under the spawn start method they must pickle, which every
    shipped implementation does.
    """

    grid: Any
    nw: Any
    nr: Any
    counter_length: int
    phase_step_units: int
    data_source: Any
    n_symbols: int
    mode: str = "discretized"
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)
    chaos: Optional[WorkerChaos] = None

    def setup(self) -> Dict[str, Any]:
        from repro.cdr.montecarlo import simulate_cdr

        return {"simulate": simulate_cdr}

    def run(
        self, state: Dict[str, Any], index: int, payload: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        import numpy as np

        if self.chaos is not None:
            self.chaos.before_point(index)
        seed = int(payload["seed"])
        result = state["simulate"](
            self.grid, self.nw, self.nr, self.counter_length,
            self.phase_step_units, self.data_source, self.n_symbols,
            rng=np.random.default_rng(seed), mode=self.mode,
            **self.sim_kwargs,
        )
        record = {
            "seed": seed,
            "n_symbols": result.n_symbols,
            "n_errors": result.n_errors,
            "n_slips": result.n_slips,
            "phase_mean": result.phase_mean,
            "phase_rms": result.phase_rms,
            "sim_time": result.sim_time,
        }
        aux: Dict[str, Any] = {}
        if self.chaos is not None:
            self.chaos.after_point(index, aux)
        return record, aux
