"""Fault-tolerant elastic execution of sweeps and Monte-Carlo campaigns.

The package splits cleanly along the work-description/execution seam:

* :mod:`repro.exec.runners` -- picklable descriptions of one point's work
  (:class:`SweepPointRunner`, :class:`CampaignPointRunner`);
* :mod:`repro.exec.worker` -- the worker-process protocol (task/result
  tuples, heartbeat beacon, wire-integrity digests);
* :mod:`repro.exec.pool` -- :class:`ElasticPool`: process lifecycle,
  per-worker task queues, respawn;
* :mod:`repro.exec.executor` -- the scheduler: dispatch-on-idle,
  per-point timeouts, retry with backoff, exactly-once requeue, warm
  lineages, graceful serial degradation, typed interruption;
* :mod:`repro.exec.retry` -- :class:`RetryPolicy` (deterministic jitter)
  and the injectable :class:`Clock`;
* :mod:`repro.exec.drivers` -- :func:`elastic_sweep` /
  :func:`elastic_campaign`, the ledger-integrated entry points
  :func:`repro.cdr.sweep.sweep_parameter` and
  :func:`repro.cdr.montecarlo.simulate_cdr_campaign` delegate to when
  given ``jobs=``.

Failure modes are typed (:class:`~repro.resilience.errors.PointTimeout`,
:class:`~repro.resilience.errors.WorkerLost`,
:class:`~repro.resilience.errors.PoolUnavailable`,
:class:`~repro.resilience.errors.ExecutorInterrupted`) and join the
PR-4 resilience taxonomy; the worker-chaos battery in
:mod:`repro.resilience.worker_faults` exercises each one.
"""

from repro.exec.drivers import elastic_campaign, elastic_sweep
from repro.exec.executor import ExecConfig, ExecStats, TimeoutTracker, run_points
from repro.exec.pool import ElasticPool, WorkerHandle
from repro.exec.retry import Clock, RetryPolicy
from repro.exec.runners import CampaignPointRunner, SweepPointRunner, WorkerChaos
from repro.exec.worker import wire_digest

__all__ = [
    "Clock",
    "RetryPolicy",
    "ExecConfig",
    "ExecStats",
    "TimeoutTracker",
    "ElasticPool",
    "WorkerHandle",
    "SweepPointRunner",
    "CampaignPointRunner",
    "WorkerChaos",
    "run_points",
    "elastic_sweep",
    "elastic_campaign",
    "wire_digest",
]
