"""Retry schedule and injectable clock for the elastic executor.

Two deliberately boring pieces that everything timing-related in
:mod:`repro.exec` goes through:

* :class:`Clock` -- the executor's only source of time and sleep, so unit
  tests drive timeout accounting and backoff waits with a fake clock
  instead of real wall time;
* :class:`RetryPolicy` -- exponential backoff with *deterministic* jitter:
  the jitter fraction is derived from a hash of ``(token, attempt)``, not
  from an RNG, so the same point retried after the same failures waits the
  same schedule on every run (a requirement of bit-identical crash-resume)
  while distinct points still decorrelate their retries.

Only infrastructure faults are retried (:class:`~repro.resilience.errors.WorkerLost`,
:class:`~repro.resilience.errors.PointTimeout`, corrupt payloads); a point
whose *analysis* raises is a deterministic failure -- rerunning it would
fail identically -- and is recorded without retry, matching the serial
sweep's semantics.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

__all__ = ["Clock", "RetryPolicy"]


class Clock:
    """Monotonic time + sleep, swappable for a fake in tests."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


def _hash_frac(token: str) -> float:
    """Deterministic uniform-ish fraction in [0, 1) from a string token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, hash-seeded jitter.

    The delay before retry attempt ``attempt`` (1-based: 1 = first retry)
    is ``min(base_delay_s * factor**(attempt-1), max_delay_s)`` stretched
    by up to ``jitter_frac`` according to the hash of ``(token, attempt)``.
    ``max_retries`` bounds how many retries a point gets before its typed
    infrastructure error is recorded as the point's failure.
    """

    max_retries: int = 2
    base_delay_s: float = 0.25
    factor: float = 2.0
    max_delay_s: float = 8.0
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be at least 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def should_retry(self, attempt: int) -> bool:
        """Whether retry number ``attempt`` (1-based) is still allowed."""
        return attempt <= self.max_retries

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt`` (1-based), jittered by ``token``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.base_delay_s * self.factor ** (attempt - 1), self.max_delay_s)
        return base * (1.0 + self.jitter_frac * _hash_frac(f"{token}#{attempt}"))
