"""Ledger-integrated elastic drivers for sweeps and MC campaigns.

These are the functions :func:`repro.cdr.sweep.sweep_parameter` and
:func:`repro.cdr.montecarlo.simulate_cdr_campaign` delegate to when given
``jobs=``: they own the job fingerprint, the ``repro.points/1`` ledger
(every resolved point is flushed immediately, so a kill at any instant is
resumable), replay of already completed points, and the warm-lineage
layout; the scheduling itself is :func:`repro.exec.executor.run_points`.

Two fingerprint invariants worth stating:

* with warm starts OFF the sweep job fingerprint is byte-identical to the
  serial driver's, so a checkpoint written serially resumes in parallel
  and vice versa;
* with warm starts ON the fingerprint additionally pins
  ``warm_lineages`` (the number of warm chains).  On resume the lineage
  count is recovered from the existing ledger -- NOT from the current
  ``--jobs`` -- so resuming with a different worker count preserves the
  chain structure and therefore the exact ``x0`` every point sees, which
  is what makes a killed-then-resumed warm sweep bit-identical to an
  uninterrupted one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exec.executor import ExecConfig, ExecStats, run_points
from repro.exec.runners import CampaignPointRunner, SweepPointRunner, WorkerChaos
from repro.obs import get_registry, span
from repro.resilience.checkpoint import PointCheckpointer

__all__ = ["elastic_sweep", "elastic_campaign"]


def _lineage_chains(n: int, lineages: int) -> Dict[int, Optional[int]]:
    """Predecessor map of ``n`` points split into contiguous chains."""
    prev: Dict[int, Optional[int]] = {}
    lineages = max(1, min(lineages, n)) if n else 1
    base, extra = divmod(n, lineages)
    start = 0
    for chain in range(lineages):
        length = base + (1 if chain < extra else 0)
        for offset in range(length):
            index = start + offset
            prev[index] = None if offset == 0 else index - 1
        start += length
    return prev


def elastic_sweep(
    base_spec,
    parameter: str,
    values: Sequence,
    *,
    solver: str = "multigrid",
    tol: float = 1e-10,
    backend: Optional[str] = None,
    resilience=None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    warm_start: Optional[bool] = None,
    analyze_fn=None,
    config: Optional[ExecConfig] = None,
    chaos: Optional[WorkerChaos] = None,
):
    """Parallel :func:`~repro.cdr.sweep.sweep_parameter` over a worker pool.

    Returns the same :class:`~repro.cdr.sweep.SweepResult` the serial
    driver builds (records in sweep order, typed failure entries, replay
    counters), with :attr:`~repro.cdr.sweep.SweepResult.exec_stats`
    attached.  Warm starting is explicit (``warm_start=True``): points
    chain into ``min(jobs, n)`` deterministic lineages and each point
    seeds its solve from its chain predecessor's solution -- exec workers
    never share a :class:`~repro.markov.SolveContext`, whose value-driven
    hierarchy cache would make results depend on completion order.
    """
    from repro.cdr.sweep import SweepResult, _json_safe
    from repro.core.serialize import spec_to_dict

    config = config or ExecConfig()
    values = list(values)
    n = len(values)
    warm = bool(warm_start)
    spec_dict = spec_to_dict(base_spec)
    job: Dict[str, Any] = {
        "kind": "sweep",
        "parameter": parameter,
        "values": [_json_safe(v) for v in values],
        "solver": solver,
        "tol": tol,
        "backend": backend,
        "spec": spec_dict,
    }
    lineages = 0
    if warm:
        lineages = max(1, min(config.jobs, n)) if n else 1
        if resume and checkpoint_path is not None:
            peeked = PointCheckpointer.peek_job(checkpoint_path)
            if peeked is not None and isinstance(
                peeked.get("warm_lineages"), int
            ):
                lineages = peeked["warm_lineages"]
        job["warm_lineages"] = lineages

    records_by_index: Dict[int, Dict[str, Any]] = {}
    failed_by_index: Dict[int, Dict[str, Any]] = {}
    seed_aux: Dict[int, Dict[str, Any]] = {}
    resumed = 0
    checkpointer = None
    if checkpoint_path is not None:
        checkpointer = PointCheckpointer(checkpoint_path, job)
        if resume and checkpointer.resume():
            for key, record in checkpointer.completed.items():
                index = int(key)
                records_by_index[index] = record
                seed_aux[index] = checkpointer.aux_for(index) or {}
                resumed += 1

    prev = _lineage_chains(n, lineages) if warm else {}
    runner = SweepPointRunner(
        spec_dict=spec_dict, parameter=parameter, solver=solver, tol=tol,
        backend=backend, resilience=resilience, warm=warm,
        analyze_fn=analyze_fn, chaos=chaos,
    )
    pending: List[Tuple[int, Dict[str, Any]]] = [
        (index, {"value": values[index]})
        for index in range(n)
        if index not in records_by_index
    ]

    registry = get_registry()
    counter = registry.counter(
        "repro_sweep_points_total", "Design points analyzed by sweeps"
    )
    failure_counter = registry.counter(
        "repro_sweep_point_failures_total", "Sweep points that failed"
    )

    def on_done(index: int, record: Dict[str, Any], aux: Dict[str, Any]) -> None:
        records_by_index[index] = record
        counter.inc()
        if checkpointer is not None:
            checkpointer.record(
                index, record, aux=aux if (warm and aux) else None
            )

    def on_failed(index: int, entry: Dict[str, Any]) -> None:
        full: Dict[str, Any] = {
            "index": index,
            parameter: _json_safe(values[index]),
            "value": _json_safe(values[index]),
        }
        full.update(entry)
        failed_by_index[index] = full
        failure_counter.inc(error_type=full.get("error_type", "unknown"))
        if checkpointer is not None:
            checkpointer.record_failure(index, full)

    with span(
        "cdr.sweep", parameter=parameter, n_values=n, jobs=config.jobs,
        elastic=True,
    ):
        stats = run_points(
            runner, pending, config, prev=prev, seed_aux=seed_aux,
            on_done=on_done, on_failed=on_failed,
            label=f"sweep:{parameter}",
        )

    if warm:
        # derived from the records (replays included) so the counter is
        # identical across kill/resume splits of the same sweep
        stats.warm_starts = sum(
            1 for r in records_by_index.values() if r.get("warm_started")
        )
    result = SweepResult(
        [records_by_index[i] for i in sorted(records_by_index)],
        failed_points=[failed_by_index[i] for i in sorted(failed_by_index)],
        resumed_points=resumed,
        context_stats=None,
    )
    result.exec_stats = stats.to_dict()
    return result


def elastic_campaign(
    grid,
    nw,
    nr,
    counter_length: int,
    phase_step_units: int,
    data_source,
    n_symbols: int,
    seeds: Sequence[int],
    *,
    mode: str = "discretized",
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    sim_kwargs: Optional[Dict[str, Any]] = None,
    config: Optional[ExecConfig] = None,
    chaos: Optional[WorkerChaos] = None,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]], int, ExecStats]:
    """Parallel per-seed Monte-Carlo loop; seeds are fully independent.

    Returns ``(records, failed, resumed, stats)`` for
    :func:`~repro.cdr.montecarlo.simulate_cdr_campaign` to assemble into
    its :class:`~repro.cdr.montecarlo.CampaignResult`.  The job
    fingerprint matches the serial driver's exactly, so serial and
    elastic runs resume each other's ledgers.
    """
    config = config or ExecConfig()
    seeds = [int(s) for s in seeds]
    records_by_index: Dict[int, Dict[str, Any]] = {}
    failed_by_index: Dict[int, Dict[str, Any]] = {}
    resumed = 0
    checkpointer = None
    if checkpoint_path is not None:
        checkpointer = PointCheckpointer(checkpoint_path, {
            "kind": "mc-campaign",
            "n_symbols": int(n_symbols),
            "seeds": seeds,
            "mode": mode,
            "counter_length": int(counter_length),
            "phase_step_units": int(phase_step_units),
            "n_phase_points": int(grid.n_points),
        })
        if resume and checkpointer.resume():
            for key, record in checkpointer.completed.items():
                index = int(key)
                records_by_index[index] = record
                resumed += 1

    runner = CampaignPointRunner(
        grid=grid, nw=nw, nr=nr, counter_length=int(counter_length),
        phase_step_units=int(phase_step_units), data_source=data_source,
        n_symbols=int(n_symbols), mode=mode,
        sim_kwargs=dict(sim_kwargs or {}), chaos=chaos,
    )
    pending = [
        (index, {"seed": seed})
        for index, seed in enumerate(seeds)
        if index not in records_by_index
    ]

    def on_done(index: int, record: Dict[str, Any], aux: Dict[str, Any]) -> None:
        records_by_index[index] = record
        if checkpointer is not None:
            checkpointer.record(index, record)

    def on_failed(index: int, entry: Dict[str, Any]) -> None:
        full: Dict[str, Any] = {"index": index, "seed": seeds[index]}
        full.update(entry)
        failed_by_index[index] = full
        if checkpointer is not None:
            checkpointer.record_failure(index, full)

    with span(
        "cdr.mc_campaign", mode=mode, n_seeds=len(seeds), jobs=config.jobs,
        elastic=True,
    ):
        stats = run_points(
            runner, pending, config, on_done=on_done, on_failed=on_failed,
            label="mc-campaign",
        )

    records = [records_by_index[i] for i in sorted(records_by_index)]
    failed = [failed_by_index[i] for i in sorted(failed_by_index)]
    return records, failed, resumed, stats
