"""Golden verification battery: re-solve every scenario, diff every golden.

``verify_catalog`` is the regression gate the CI ``scenarios`` job runs:
for each registered scenario it loads the checked-in golden, checks the
golden's *internal* integrity (digests), checks it is not *stale* against
the catalog's current parameters, then re-solves the scenario on every
registered backend and diffs the measures against the golden within the
recorded tolerances.  Any failure mode gets a distinct status so the
report says not just "broken" but *how*:

``ok``
    every backend reproduced the golden within tolerance;
``mismatch``
    a backend re-solve disagreed beyond tolerance (the regression case);
``stale-spec``
    the catalog's parameters changed since the golden was generated --
    regenerate rather than compare apples to oranges;
``tampered``
    the golden file's content does not match its own digests;
``missing-golden``
    no golden checked in for this (scenario, size);
``error``
    the re-solve itself raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.scenarios.golden import GoldenResult, load_golden
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import DEFAULT_RUN_TOL, run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.tolerance import MeasureDiff, compare_measures

__all__ = [
    "VERIFY_SCHEMA",
    "BackendCheck",
    "ScenarioVerification",
    "VerificationReport",
    "verify_scenario",
    "verify_catalog",
]

VERIFY_SCHEMA = "repro.scenario-verify/1"


@dataclass(frozen=True)
class BackendCheck:
    """One backend's re-solve diffed against the golden."""

    backend: str
    solver: str
    status: str  # "ok" | "mismatch" | "error"
    detail: str = ""
    diff: Optional[MeasureDiff] = None
    measures: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "solver": self.solver,
            "status": self.status,
            "detail": self.detail,
            "diff": self.diff.to_dict() if self.diff is not None else None,
            "measures": dict(self.measures),
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass(frozen=True)
class ScenarioVerification:
    """All checks for one (scenario, size)."""

    scenario: str
    size: str
    status: str
    detail: str = ""
    golden_path: Optional[str] = None
    checks: Tuple[BackendCheck, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "size": self.size,
            "status": self.status,
            "detail": self.detail,
            "golden": self.golden_path,
            "checks": [c.to_dict() for c in self.checks],
        }

    def describe(self) -> str:
        head = f"{self.scenario}[{self.size}]: {self.status}"
        if self.detail:
            head += f" ({self.detail})"
        lines = [head]
        for check in self.checks:
            line = f"  {check.backend}/{check.solver}: {check.status}"
            if check.detail:
                line += f" -- {check.detail}"
            lines.append(line)
        return "\n".join(lines)


@dataclass(frozen=True)
class VerificationReport:
    """The whole battery's outcome (the CI artifact)."""

    size: str
    results: Tuple[ScenarioVerification, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.results:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": VERIFY_SCHEMA,
            "size": self.size,
            "ok": self.ok,
            "summary": self.counts(),
            "results": [r.to_dict() for r in self.results],
        }

    def describe(self) -> str:
        lines = [r.describe() for r in self.results]
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts().items())
        )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"{verdict}: {len(self.results)} scenario(s) -- {summary}")
        return "\n".join(lines)


def _check_backend(
    scenario_name: str,
    size: str,
    backend: str,
    solver: Optional[str],
    tol: float,
    golden: GoldenResult,
    tolerances,
) -> BackendCheck:
    try:
        run = run_scenario(
            scenario_name, size=size, backend=backend, solver=solver, tol=tol
        )
    except Exception as exc:  # noqa: BLE001 -- every failure becomes a report row
        return BackendCheck(
            backend=backend,
            solver=solver or "?",
            status="error",
            detail=f"{type(exc).__name__}: {exc}",
        )
    diff = compare_measures(golden.measures, run.measures, tolerances)
    return BackendCheck(
        backend=backend,
        solver=run.solver,
        status="ok" if diff.ok else "mismatch",
        detail="" if diff.ok else diff.describe(),
        diff=diff,
        measures=run.measures,
        elapsed_seconds=run.elapsed_seconds,
    )


def verify_scenario(
    name: str,
    size: str = "fast",
    backends: Optional[Sequence[str]] = None,
    solver: Optional[str] = None,
    tol: float = DEFAULT_RUN_TOL,
    directory: Optional[str] = None,
) -> ScenarioVerification:
    """Verify one scenario's golden on each requested backend."""
    scenario = get_scenario(name)
    try:
        golden = load_golden(name, size, directory)
    except FileNotFoundError as exc:
        return ScenarioVerification(
            scenario=name, size=size, status="missing-golden", detail=str(exc)
        )
    except ValueError as exc:
        return ScenarioVerification(
            scenario=name, size=size, status="tampered", detail=str(exc)
        )

    integrity = golden.integrity_errors()
    if integrity:
        return ScenarioVerification(
            scenario=name,
            size=size,
            status="tampered",
            detail="; ".join(integrity),
            golden_path=golden.path,
        )

    current = ScenarioSpec(scenario=name, size=size, params=scenario.params_for(size))
    if current.digest() != golden.spec_digest:
        return ScenarioVerification(
            scenario=name,
            size=size,
            status="stale-spec",
            detail=(
                f"catalog params digest {current.digest()} != golden "
                f"{golden.spec_digest}; regenerate with --update-golden"
            ),
            golden_path=golden.path,
        )

    # The tolerances recorded at generation time are the contract; fall
    # back to the live catalog for goldens written before a measure got
    # its own entry.
    tolerances = dict(scenario.tolerances)
    tolerances.update(golden.tolerances)

    chosen = tuple(backends) if backends else scenario.backends
    unknown = set(chosen) - set(scenario.backends)
    if unknown:
        raise ValueError(
            f"scenario {name!r} supports backends {scenario.backends}, "
            f"not {sorted(unknown)}"
        )
    checks = tuple(
        _check_backend(name, size, backend, solver, tol, golden, tolerances)
        for backend in chosen
    )
    bad = [c for c in checks if c.status != "ok"]
    if not bad:
        status, detail = "ok", ""
    elif any(c.status == "error" for c in bad):
        status = "error"
        detail = f"{len(bad)}/{len(checks)} backend check(s) failed"
    else:
        status = "mismatch"
        detail = f"{len(bad)}/{len(checks)} backend check(s) failed"
    return ScenarioVerification(
        scenario=name,
        size=size,
        status=status,
        detail=detail,
        golden_path=golden.path,
        checks=checks,
    )


def verify_catalog(
    names: Optional[Sequence[str]] = None,
    size: str = "fast",
    backends: Optional[Sequence[str]] = None,
    solver: Optional[str] = None,
    tol: float = DEFAULT_RUN_TOL,
    directory: Optional[str] = None,
) -> VerificationReport:
    """Run the full battery over the catalog (or the named subset)."""
    names = tuple(names) if names else scenario_names()
    results: List[ScenarioVerification] = []
    for name in names:
        results.append(
            verify_scenario(
                name,
                size=size,
                backends=backends,
                solver=solver,
                tol=tol,
                directory=directory,
            )
        )
    return VerificationReport(size=size, results=tuple(results))
