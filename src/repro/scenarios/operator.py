"""A generic matrix-free operator for branch-structured chains.

The CDR chains in this codebase share one shape: every transition is a
*branch* -- "with probability ``w_b(i)``, state ``i`` moves to the single
destination ``dest_b(i)``" -- and the TPM is the superposition

    P = sum_b diag(w_b) S_b,        (S_b)[i, dest_b(i)] = 1.

:class:`repro.cdr.operator.CDRTransitionOperator` hand-optimizes this for
the paper's phase-selection loop; this module provides the general form
so *new* scenario chains (the bang-bang loop with a frequency-error
dimension, and anything later sessions register) get a matrix-free
backend for free: implement the branch enumeration once and both the
``assembled`` realization (:meth:`BranchSumOperator.to_csr`) and the
matrix-free one (``matvec``/``rmatvec`` from the terms alone, ``O(n)``
memory) fall out of the same data -- identical by construction, which is
exactly what cross-backend golden verification wants.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.kernels import BranchPlan, as_apply_block, as_apply_vector, get_kernel
from repro.markov.lumping import Partition, prepare_block_weights

__all__ = ["BranchSumOperator"]


class BranchSumOperator:
    """Transition operator assembled from ``(weights, destinations)`` terms.

    Parameters
    ----------
    n:
        State count.
    terms:
        Sequence of ``(weights, dest)`` pairs; ``weights`` is a float
        array of shape ``(n,)`` (zeros allowed -- the branch simply does
        not fire from those states) and ``dest`` an int array of shape
        ``(n,)`` with entries in ``[0, n)``.  Rows must sum to one across
        terms (checked on construction to ``validate_atol``).
    """

    def __init__(
        self,
        n: int,
        terms: Sequence[Tuple[np.ndarray, np.ndarray]],
        validate_atol: float = 1e-9,
    ) -> None:
        if n < 1:
            raise ValueError("operator needs at least one state")
        if not terms:
            raise ValueError("operator needs at least one branch term")
        self.n = int(n)
        compiled: List[Tuple[np.ndarray, np.ndarray]] = []
        for weights, dest in terms:
            w = np.ascontiguousarray(weights, dtype=float)
            d = np.ascontiguousarray(dest, dtype=np.intp)
            if w.shape != (self.n,) or d.shape != (self.n,):
                raise ValueError(
                    f"each term needs shape ({self.n},) weights and dests"
                )
            if np.any(w < 0.0):
                raise ValueError("branch weights must be non-negative")
            if d.min() < 0 or d.max() >= self.n:
                raise ValueError("branch destination out of range")
            if not np.any(w):
                continue  # an everywhere-dead branch contributes nothing
            compiled.append((w, d))
        if not compiled:
            raise ValueError("all branch terms have zero weight")
        self._terms = compiled
        self._plan = BranchPlan(self.n, compiled)
        self._kernel = get_kernel()
        rows = np.zeros(self.n)
        for w, _ in compiled:
            rows += w
        worst = float(np.abs(rows - 1.0).max())
        if worst > validate_atol:
            raise ValueError(
                f"branch weights are not row-stochastic "
                f"(worst row-sum error {worst:.3e})"
            )
        rows.flags.writeable = False
        self._row_sums = rows
        self._diag: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # TransitionOperator protocol
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    @property
    def n_terms(self) -> int:
        return len(self._terms)

    @property
    def kernel_tier(self) -> str:
        """Name of the kernel tier this operator applies through."""
        return self._kernel.name

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``P v``: each state gathers its branch destinations' values.

        Applied through the compiled branch plan's CSR gather arrays --
        bit-identical to ``to_csr() @ v`` on every kernel tier.
        """
        v = as_apply_vector(v, self.n)
        out = np.zeros(self.n)
        self._kernel.csr_apply(self._plan.gather, v, out)
        return out

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``P^T x``: distribution mass scattered along every branch.

        The scatter runs as a sequential CSR pass over destination-sorted
        entries (bit-identical to ``to_csr().T @ x``) rather than the old
        per-term ``np.add.at``, which paid a Python-level fancy-index
        dispatch on every apply.
        """
        x = as_apply_vector(x, self.n)
        out = np.zeros(self.n)
        self._kernel.csr_apply(self._plan.scatter, x, out)
        return out

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """``P V`` for an ``(n, k)`` block; columns match :meth:`matvec`."""
        V = as_apply_block(V, self.n)
        out = np.zeros_like(V)
        self._kernel.csr_apply(self._plan.gather, V, out)
        return out

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        """``P^T X`` for an ``(n, k)`` block; columns match :meth:`rmatvec`."""
        X = as_apply_block(X, self.n)
        out = np.zeros_like(X)
        self._kernel.csr_apply(self._plan.scatter, X, out)
        return out

    def diagonal(self) -> np.ndarray:
        """``diag(P)``, computed once and cached readonly."""
        if self._diag is None:
            idx = np.arange(self.n)
            diag = np.zeros(self.n)
            for w, d in self._terms:
                stay = d == idx
                diag[stay] += w[stay]
            diag.flags.writeable = False
            self._diag = diag
        return self._diag

    def row_sums(self) -> np.ndarray:
        """Per-state branch-weight totals (cached from construction).

        Validation already summed the terms once in ``__init__``; callers
        get that readonly vector back instead of a fresh O(n_terms * n)
        summation per call.
        """
        return self._row_sums

    def restrict(
        self, partition: Partition, weights: Optional[np.ndarray] = None
    ) -> sp.csr_matrix:
        """Weighted Galerkin coarse operator, built from the branch terms.

        Equivalent to ``lumped_tpm(self.to_csr(), partition, weights)``
        but assembled directly in coarse block coordinates: each branch
        contributes one length-``n`` triplet batch
        ``(block[i], block[dest[i]], w_i * weight_b(i))``, so transient
        memory stays O(n) per term.  This is what lets matrix-free
        multigrid and the AMG preconditioner coarsen scenario chains
        without the fine TPM ever existing.
        """
        if partition.n_states != self.n:
            raise ValueError("partition size does not match operator size")
        w, block_mass = prepare_block_weights(partition, weights)
        block = partition.block_of
        nb = partition.n_blocks
        acc = sp.csr_matrix((nb, nb))
        for bw, d in self._terms:
            chunk = sp.coo_matrix(
                (w * bw, (block, block[d])), shape=(nb, nb)
            ).tocsr()
            acc = acc + chunk
        acc.sum_duplicates()
        return sp.diags(1.0 / block_mass).dot(acc).tocsr()

    def structure_token(self):
        """Hashable structure identity: destinations, not probabilities.

        Branch weights are values (they move under parameter sweeps);
        the destination maps are the chain's topology.  Used by
        :func:`repro.markov.context.structural_digest` to key cached
        coarsening hierarchies.
        """
        h = hashlib.sha256()
        for _, d in self._terms:
            h.update(np.ascontiguousarray(d).tobytes())
        return ("branch-sum", self.n, self.n_terms, h.hexdigest())

    def to_csr(self) -> sp.csr_matrix:
        """Materialize the identical TPM the terms describe.

        Built straight from the branch plan's canonical gather arrays
        (sorted, duplicate-merged), so the assembled matrix and the
        matrix-free kernels agree bit for bit by construction.
        """
        g = self._plan.gather
        return sp.csr_matrix(
            (g.vals.copy(), g.cols.copy(), g.indptr.copy()),
            shape=(self.n, self.n),
        )

    def __repr__(self) -> str:
        return f"BranchSumOperator(n={self.n}, terms={self.n_terms})"
