"""The built-in scenario catalog.

Importing this module registers every built-in scenario (each module's
``@register_scenario`` decorator runs at import time);
``repro.scenarios.registry`` imports it lazily on first lookup, so the
catalog is populated no matter which entry point -- CLI, tests,
conformance fixtures -- touches the registry first.

Built-ins, one per modeled architecture:

==================== ==================================================
``baseline``         the source paper's phase-selection CDR
``alexander-offset`` Alexander PD with sampler offset (arXiv:2001.03553)
``bangbang-freq``    bang-bang CDR w/ frequency error (arXiv:1905.00273)
``mesochronous-settle`` mesochronous retiming settling (arXiv:1604.00230)
==================== ==================================================
"""

from repro.scenarios import alexander, bangbang, baseline, mesochronous

__all__ = ["alexander", "bangbang", "baseline", "mesochronous"]
