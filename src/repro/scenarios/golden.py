"""The checked-in golden-result store for the scenario catalog.

Each golden file (``goldens/<scenario>.<size>.json``, schema
``repro.scenario-golden/1``) pins one scenario workload to its expected
measure values: the full :class:`~repro.scenarios.spec.ScenarioSpec` it
was generated from plus that spec's digest (so verification can detect a
*stale* golden whose catalog parameters have since changed), the measure
values plus their digest (so a hand-edited golden is detected as
*tampered* rather than silently trusted), the per-measure tolerances in
force when it was written, and generation provenance.  The provenance of
the generating run -- solver trace, versions, platform, span tree -- is a
companion ``repro.run-trace/1`` manifest next to the golden
(``<scenario>.<size>.manifest.json``).

Goldens live inside the package so an installed ``repro`` can verify
itself; regeneration (``repro scenarios run --update-golden``) writes to
the same tree and is expected to happen inside a source checkout.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import Tracer, build_run_manifest, use_tracer, write_run_manifest
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import DEFAULT_RUN_TOL, ScenarioRun, run_scenario
from repro.scenarios.spec import ScenarioSpec, canonical_digest
from repro.scenarios.tolerance import Tolerance

__all__ = [
    "GOLDEN_SCHEMA",
    "GoldenResult",
    "golden_dir",
    "golden_path",
    "manifest_path",
    "list_goldens",
    "load_golden",
    "write_golden",
    "generate_golden",
]

GOLDEN_SCHEMA = "repro.scenario-golden/1"


def golden_dir() -> str:
    """The packaged golden directory."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens")


def golden_path(scenario: str, size: str, directory: Optional[str] = None) -> str:
    return os.path.join(directory or golden_dir(), f"{scenario}.{size}.json")


def manifest_path(scenario: str, size: str, directory: Optional[str] = None) -> str:
    return os.path.join(
        directory or golden_dir(), f"{scenario}.{size}.manifest.json"
    )


@dataclass(frozen=True)
class GoldenResult:
    """One loaded golden file."""

    scenario: str
    size: str
    spec: ScenarioSpec
    spec_digest: str
    measures: Dict[str, float]
    measures_digest: str
    tolerances: Dict[str, Tolerance]
    provenance: Dict[str, Any]
    path: str

    def integrity_errors(self) -> List[str]:
        """Digest self-consistency: a tampered golden names its lies."""
        errors = []
        if self.spec.digest() != self.spec_digest:
            errors.append(
                f"spec_digest mismatch: recorded {self.spec_digest}, "
                f"embedded spec hashes to {self.spec.digest()}"
            )
        actual = canonical_digest(
            {k: float(v) for k, v in sorted(self.measures.items())}
        )
        if actual != self.measures_digest:
            errors.append(
                f"measures_digest mismatch: recorded {self.measures_digest}, "
                f"stored measures hash to {actual}"
            )
        return errors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": GOLDEN_SCHEMA,
            "scenario": self.scenario,
            "size": self.size,
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec_digest,
            "measures": dict(self.measures),
            "measures_digest": self.measures_digest,
            "tolerances": {k: t.to_dict() for k, t in self.tolerances.items()},
            "provenance": dict(self.provenance),
        }


def list_goldens(directory: Optional[str] = None) -> List[Tuple[str, str]]:
    """``(scenario, size)`` pairs with a golden on disk, sorted."""
    directory = directory or golden_dir()
    if not os.path.isdir(directory):
        return []
    pairs = []
    for entry in os.listdir(directory):
        if not entry.endswith(".json") or entry.endswith(".manifest.json"):
            continue
        stem = entry[: -len(".json")]
        scenario, sep, size = stem.rpartition(".")
        if sep and scenario:
            pairs.append((scenario, size))
    return sorted(pairs)


def load_golden(
    scenario: str, size: str = "fast", directory: Optional[str] = None
) -> GoldenResult:
    """Load and structurally validate one golden file."""
    path = golden_path(scenario, size, directory)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no golden for scenario {scenario!r} size {size!r} "
            f"(expected {path}); generate one with "
            f"'repro scenarios run {scenario} --size {size} --update-golden'"
        ) from None
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"{path}: unrecognized golden schema {payload.get('schema')!r}; "
            f"expected {GOLDEN_SCHEMA!r}"
        )
    return GoldenResult(
        scenario=payload["scenario"],
        size=payload["size"],
        spec=ScenarioSpec.from_dict(payload["spec"]),
        spec_digest=payload["spec_digest"],
        measures={k: float(v) for k, v in payload["measures"].items()},
        measures_digest=payload["measures_digest"],
        tolerances={
            k: Tolerance.from_dict(v)
            for k, v in payload.get("tolerances", {}).items()
        },
        provenance=payload.get("provenance", {}),
        path=path,
    )


def write_golden(
    run: ScenarioRun,
    directory: Optional[str] = None,
    manifest: Optional[Dict[str, Any]] = None,
) -> str:
    """Persist one run as the golden for its (scenario, size).

    Returns the golden path; when ``manifest`` is given it is written as
    the companion provenance file.
    """
    scenario = get_scenario(run.scenario)
    directory = directory or golden_dir()
    os.makedirs(directory, exist_ok=True)
    path = golden_path(run.scenario, run.size, directory)
    mpath = manifest_path(run.scenario, run.size, directory)
    provenance: Dict[str, Any] = {
        "backend": run.backend,
        "solver": run.solver,
        "tol": run.tol,
        "n_states": run.n_states,
        "generated_unix": time.time(),
        "manifest": os.path.basename(mpath) if manifest is not None else None,
    }
    golden = GoldenResult(
        scenario=run.scenario,
        size=run.size,
        spec=run.spec,
        spec_digest=run.spec.digest(),
        measures=dict(run.measures),
        measures_digest=run.measures_digest(),
        tolerances={
            key: scenario.tolerance_for(key)
            for key in ("default",) + scenario.measures
        },
        provenance=provenance,
        path=path,
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(golden.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    if manifest is not None:
        write_run_manifest(mpath, manifest)
    return path


def generate_golden(
    scenario: str,
    size: str = "fast",
    backend: Optional[str] = None,
    solver: Optional[str] = None,
    tol: float = DEFAULT_RUN_TOL,
    directory: Optional[str] = None,
) -> ScenarioRun:
    """Run a scenario under tracing and write golden + provenance manifest."""
    tracer = Tracer()
    with use_tracer(tracer):
        run = run_scenario(scenario, size=size, backend=backend, solver=solver, tol=tol)
    manifest = build_run_manifest(
        kind="scenario-golden",
        spec=run.spec.to_dict(),
        tracer=tracer,
        results=run.to_dict(),
    )
    write_golden(run, directory=directory, manifest=manifest)
    return run
