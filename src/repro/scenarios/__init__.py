"""Scenario catalog with golden-result verification.

A *scenario* is a reusable, citable workload on the paper's Markov
engine: a parameterized model builder, the headline measures the modeled
architecture is studied for, and a checked-in golden result with content
digests.  ``repro scenarios list|run|verify`` is the CLI surface;
:func:`verify_catalog` is the regression battery that re-solves every
scenario on every registered TPM backend and diffs against the goldens.
"""

from repro.scenarios.golden import (
    GOLDEN_SCHEMA,
    GoldenResult,
    generate_golden,
    golden_dir,
    golden_path,
    list_goldens,
    load_golden,
    write_golden,
)
from repro.scenarios.registry import (
    Scenario,
    ScenarioModel,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_table,
)
from repro.scenarios.runner import DEFAULT_RUN_TOL, ScenarioRun, run_scenario
from repro.scenarios.spec import ScenarioSpec, canonical_digest, canonical_json
from repro.scenarios.tolerance import (
    MeasureDiff,
    MeasureMismatch,
    Tolerance,
    compare_measures,
    values_close,
)
from repro.scenarios.verify import (
    VERIFY_SCHEMA,
    ScenarioVerification,
    VerificationReport,
    verify_catalog,
    verify_scenario,
)

__all__ = [
    "Scenario",
    "ScenarioModel",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_table",
    "ScenarioSpec",
    "canonical_json",
    "canonical_digest",
    "Tolerance",
    "values_close",
    "MeasureMismatch",
    "MeasureDiff",
    "compare_measures",
    "ScenarioRun",
    "run_scenario",
    "DEFAULT_RUN_TOL",
    "GOLDEN_SCHEMA",
    "GoldenResult",
    "golden_dir",
    "golden_path",
    "list_goldens",
    "load_golden",
    "write_golden",
    "generate_golden",
    "VERIFY_SCHEMA",
    "ScenarioVerification",
    "VerificationReport",
    "verify_scenario",
    "verify_catalog",
]
