"""Decorator-registered scenario catalog.

Mirrors the solver/backend registries of :mod:`repro.markov.registry`:
each scenario module registers itself with :func:`register_scenario` at
import time, and the CLI's ``repro scenarios`` command, the golden
verification battery, and the conformance fixtures all look scenarios up
here.

A *scenario* packages one related-work CDR architecture as a reusable
workload: a parameterized model builder (how the Markov chain is
realized, on any registered TPM backend), an evaluator computing the
headline measures the architecture is studied for (stationary BER,
transient settling, first-passage acquisition time, ...), and the golden
tolerances within which re-solves must reproduce the checked-in result.

The registered object is a *definition class* carrying two staticmethods::

    @register_scenario(name="...", title="...", citation="...", ...)
    class MyScenario:
        @staticmethod
        def build(params, backend="assembled"): ...   # -> ScenarioModel
        @staticmethod
        def evaluate(model, params, *, solver, tol): ...  # -> {measure: float}

``build`` must honor every backend listed in the scenario's ``backends``
tuple; the golden verification battery re-solves each scenario on each of
them and diffs the measures against the checked-in golden.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.scenarios.tolerance import Tolerance

__all__ = [
    "Scenario",
    "ScenarioModel",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_table",
]


@dataclass
class ScenarioModel:
    """What a scenario's ``build`` hands to its ``evaluate``.

    ``chain`` is whatever the backend realized -- a
    :class:`~repro.markov.chain.MarkovChain` for ``assembled`` builds, a
    :class:`~repro.markov.linop.TransitionOperator` for matrix-free ones.
    ``extras`` carries scenario-specific structure (the underlying CDR
    model facade, state-space layout, locked-set masks) that the paired
    evaluator knows how to read.
    """

    chain: Any
    backend: str
    n_states: int
    extras: Dict[str, Any] = field(default_factory=dict)


def _freeze(mapping: Mapping) -> Mapping:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class Scenario:
    """One registered scenario.

    Attributes
    ----------
    name:
        Registry key (the CLI's scenario argument).
    title:
        One-line human description.
    citation:
        Where the architecture comes from (the paper, or arXiv id of the
        related work being modeled on the same engine).
    measures:
        Ordered names of the headline measures ``evaluate`` returns --
        golden files store exactly this set.
    sizes:
        ``size name -> params dict``.  ``"fast"`` is the golden /
        CI-verified size; ``"full"`` is the scaled-up variant for slow
        tests and benchmarks.
    backends:
        TPM backends the scenario supports; the verification battery runs
        every one of them.
    default_solver:
        Stationary solver used when the caller does not override
        (``"auto"`` defers to the analyzer policy).
    tolerances:
        ``measure name -> Tolerance`` for golden comparison; the
        ``"default"`` entry applies to measures without their own.
    """

    name: str
    title: str
    citation: str
    measures: Tuple[str, ...]
    build: Callable[..., ScenarioModel]
    evaluate: Callable[..., Dict[str, float]]
    sizes: Mapping[str, Mapping[str, Any]]
    backends: Tuple[str, ...] = ("assembled", "matrix-free")
    default_solver: str = "auto"
    tolerances: Mapping[str, Tolerance] = field(
        default_factory=lambda: _freeze({"default": Tolerance()})
    )

    def params_for(self, size: str) -> Dict[str, Any]:
        """The parameter dict of one registered size (a fresh copy)."""
        try:
            return dict(self.sizes[size])
        except KeyError:
            raise ValueError(
                f"scenario {self.name!r} has no size {size!r}; "
                f"choose from {tuple(sorted(self.sizes))}"
            ) from None

    def tolerance_for(self, measure: str) -> Tolerance:
        """Golden tolerance of one measure (falling back to ``default``)."""
        if measure in self.tolerances:
            return self.tolerances[measure]
        return self.tolerances.get("default", Tolerance())


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(
    name: str,
    *,
    title: str,
    citation: str,
    measures: Tuple[str, ...],
    sizes: Mapping[str, Mapping[str, Any]],
    backends: Tuple[str, ...] = ("assembled", "matrix-free"),
    default_solver: str = "auto",
    tolerances: Mapping[str, Tolerance] = None,
):
    """Register the decorated definition class as the scenario ``name``."""
    if "fast" not in sizes:
        raise ValueError(f"scenario {name!r} must define a 'fast' size")
    if not measures:
        raise ValueError(f"scenario {name!r} must declare its measures")

    def decorate(definition):
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        tol = dict(tolerances) if tolerances else {}
        tol.setdefault("default", Tolerance())
        _SCENARIOS[name] = Scenario(
            name=name,
            title=title,
            citation=citation,
            measures=tuple(measures),
            build=definition.build,
            evaluate=definition.evaluate,
            sizes=_freeze({k: dict(v) for k, v in sizes.items()}),
            backends=tuple(backends),
            default_solver=default_solver,
            tolerances=_freeze(tol),
        )
        return definition

    return decorate


def _ensure_builtin() -> None:
    # Importing the catalog registers the built-in scenarios; the import
    # lives here (not at module top) to avoid a cycle, and is idempotent
    # so `pytest -m scenario` works regardless of what imported first.
    import repro.scenarios.catalog  # noqa: F401


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name, with a choose-from error on misses."""
    _ensure_builtin()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    _ensure_builtin()
    return tuple(sorted(_SCENARIOS))


def scenario_table() -> Tuple[Scenario, ...]:
    """All registered scenarios, sorted by name."""
    _ensure_builtin()
    return tuple(_SCENARIOS[name] for name in scenario_names())
