"""Scenario specs: canonical serialization and content digests.

A :class:`ScenarioSpec` pins down one runnable workload -- scenario name,
size label, and the full parameter dict -- exactly the identity a golden
result is keyed by.  Its canonical JSON form (sorted keys, compact
separators, ``repr``-faithful floats) is stable across Python sessions
and platforms, so the SHA-256 digest doubles as a cache/golden key: if
the digest of the catalog's current parameters stops matching a golden's
recorded ``spec_digest``, the golden is stale and verification says so
instead of comparing apples to oranges.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping

__all__ = ["ScenarioSpec", "canonical_json", "canonical_digest"]

_ALLOWED_SCALARS = (str, int, float, bool, type(None))


def _canonicalize(value: Any):
    """Coerce a params payload to plain JSON types, rejecting the rest."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        # Normalize int-valued floats through json's repr; keep NaN/inf out
        # of specs entirely -- they have no canonical JSON form.
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError("scenario params must be finite")
        return value
    if isinstance(value, Mapping):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise ValueError(f"param keys must be strings, got {key!r}")
            out[key] = _canonicalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    raise ValueError(
        f"scenario params must be JSON scalars/lists/dicts, got "
        f"{type(value).__name__}"
    )


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, no whitespace, repr floats."""
    return json.dumps(
        _canonicalize(payload),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_digest(payload: Any) -> str:
    """``sha256:...`` digest of the canonical JSON form of ``payload``."""
    text = canonical_json(payload)
    return "sha256:" + hashlib.sha256(text.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """The serializable identity of one scenario workload."""

    scenario: str
    size: str
    params: Mapping[str, Any]

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("scenario name must be non-empty")
        if not self.size:
            raise ValueError("size label must be non-empty")
        # Freeze the canonical form up front so a bad payload fails at
        # construction, not at digest time deep inside a verify run.
        object.__setattr__(self, "params", _canonicalize(dict(self.params)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "size": self.size,
            "params": json.loads(canonical_json(self.params)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        payload = dict(payload)
        spec = cls(
            scenario=payload.pop("scenario"),
            size=payload.pop("size"),
            params=payload.pop("params"),
        )
        if payload:
            raise ValueError(f"unknown scenario-spec fields: {sorted(payload)}")
        return spec

    def to_json(self, **json_kwargs) -> str:
        return json.dumps(self.to_dict(), **json_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Content digest of the whole spec (scenario + size + params)."""
        return canonical_digest(self.to_dict())
