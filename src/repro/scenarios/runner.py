"""Running one catalog scenario end to end.

``run_scenario`` is the single execution path everything shares: the CLI's
``repro scenarios run``, golden generation, golden verification, and the
scenario tests all call it, so a golden is -- by construction -- produced
by the same code that later checks it.  Each run is wrapped in an
observability span (``scenario.run`` > build/evaluate children) so
scenario work shows up in run manifests like any other pipeline stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.obs import span
from repro.scenarios.registry import Scenario, get_scenario
from repro.scenarios.spec import ScenarioSpec, canonical_digest

__all__ = ["ScenarioRun", "run_scenario"]

#: Stationary-solve tolerance used for golden generation and verification.
#: Far tighter than any golden tolerance, so the solver's truncation error
#: never eats into the comparison budget.
DEFAULT_RUN_TOL = 1e-12


@dataclass(frozen=True)
class ScenarioRun:
    """One completed scenario evaluation and its identity."""

    scenario: str
    size: str
    backend: str
    solver: str
    tol: float
    spec: ScenarioSpec
    measures: Dict[str, float]
    n_states: int
    elapsed_seconds: float

    def measures_digest(self) -> str:
        """Content digest of the measured values (golden ``measures_digest``)."""
        return canonical_digest(
            {k: float(v) for k, v in sorted(self.measures.items())}
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "size": self.size,
            "backend": self.backend,
            "solver": self.solver,
            "tol": self.tol,
            "spec_digest": self.spec.digest(),
            "measures": dict(self.measures),
            "measures_digest": self.measures_digest(),
            "n_states": self.n_states,
            "elapsed_seconds": self.elapsed_seconds,
        }


def _resolve(scenario_or_name) -> Scenario:
    if isinstance(scenario_or_name, Scenario):
        return scenario_or_name
    return get_scenario(scenario_or_name)


def run_scenario(
    scenario_or_name,
    size: str = "fast",
    backend: Optional[str] = None,
    solver: Optional[str] = None,
    tol: float = DEFAULT_RUN_TOL,
    params_override: Optional[Mapping[str, Any]] = None,
) -> ScenarioRun:
    """Build and evaluate one scenario; returns the measured values.

    ``backend`` defaults to the scenario's first registered backend,
    ``solver`` to its ``default_solver``.  ``params_override`` patches
    individual parameters over the registered size (sweeps, scaled-down
    test variants); the override is part of the run's spec identity, so an
    overridden run never digest-matches a catalog golden.
    """
    scenario = _resolve(scenario_or_name)
    if backend is None:
        backend = scenario.backends[0]
    if backend not in scenario.backends:
        raise ValueError(
            f"scenario {scenario.name!r} supports backends "
            f"{scenario.backends}, not {backend!r}"
        )
    if solver is None:
        solver = scenario.default_solver
    params = scenario.params_for(size)
    if params_override:
        params.update(params_override)
    spec = ScenarioSpec(scenario=scenario.name, size=size, params=params)

    started = time.perf_counter()
    with span(
        "scenario.run", scenario=scenario.name, size=size, backend=backend
    ) as sp:
        with span("scenario.build"):
            model = scenario.build(params, backend=backend)
        with span("scenario.evaluate", solver=solver):
            measures = scenario.evaluate(model, params, solver=solver, tol=tol)
        missing = set(scenario.measures) - set(measures)
        extra = set(measures) - set(scenario.measures)
        if missing or extra:
            raise ValueError(
                f"scenario {scenario.name!r} evaluate returned measures "
                f"{sorted(measures)}; declared {sorted(scenario.measures)}"
            )
        sp.set_attributes(n_states=model.n_states)
    return ScenarioRun(
        scenario=scenario.name,
        size=size,
        backend=backend,
        solver=solver,
        tol=tol,
        spec=spec,
        measures={k: float(measures[k]) for k in scenario.measures},
        n_states=model.n_states,
        elapsed_seconds=time.perf_counter() - started,
    )
