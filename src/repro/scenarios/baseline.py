"""Scenario: the paper's baseline phase-selection CDR loop.

The reference workload every engine change is measured against: the
digital phase-selection loop of Demir & Feldmann (DATE 2000) with
SONET-style run-length-limited data, Gaussian eye-opening jitter and
bounded drift, answering the paper's stationary questions -- BER from
the noisy-phase tails, cycle-slip rate from the wrap flux, and the
stationary phase-error statistics.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.scenarios.cdr_base import (
    analyze_scenario_model,
    build_cdr_scenario_model,
    spec_from_params,
)
from repro.scenarios.registry import ScenarioModel, register_scenario
from repro.scenarios.tolerance import Tolerance

_FAST = {
    "n_phase_points": 64,
    "n_clock_phases": 16,
    "counter_length": 2,
    "transition_density": 0.5,
    "max_run_length": 2,
    "nw_std": 0.08,
    "nw_atoms": 7,
    "nw_span_sigmas": 4.0,
    "nr_max": 0.008,
    "nr_mean": 0.002,
    "nr_skew": 0.25,
}

# The paper's Figure-4 operating point: finer grid, full-length counter.
_FULL = {
    **_FAST,
    "n_phase_points": 256,
    "counter_length": 8,
    "max_run_length": 3,
    "nw_std": 0.02,
    "nw_atoms": 11,
}

MEASURES = (
    "ber",
    "ber_discrete",
    "slip_rate",
    "phase_mean_ui",
    "phase_rms_ui",
)


@register_scenario(
    "baseline",
    title="paper phase-selection CDR: stationary BER / slip rate",
    citation="Demir & Feldmann, DATE 2000 (the source paper)",
    measures=MEASURES,
    sizes={"fast": _FAST, "full": _FULL},
    backends=("assembled", "matrix-free", "kronecker"),
    default_solver="krylov",
    tolerances={
        "default": Tolerance(rtol=1e-5, atol=1e-10),
        # The slip flux sums tiny wrap probabilities; give it headroom
        # over the raw stationary-solve tolerance.
        "slip_rate": Tolerance(rtol=5e-5, atol=1e-12),
    },
)
class BaselineScenario:
    @staticmethod
    def build(params: Mapping[str, Any], backend: str = "assembled") -> ScenarioModel:
        return build_cdr_scenario_model(
            spec_from_params(params, backend=backend), backend
        )

    @staticmethod
    def evaluate(
        model: ScenarioModel,
        params: Mapping[str, Any],
        *,
        solver: str = "krylov",
        tol: float = 1e-12,
    ) -> Dict[str, float]:
        analysis = analyze_scenario_model(model, solver=solver, tol=tol)
        return {
            "ber": analysis.ber,
            "ber_discrete": analysis.ber_discrete,
            "slip_rate": analysis.slip_rate,
            "phase_mean_ui": analysis.phase_stats["mean_ui"],
            "phase_rms_ui": analysis.phase_stats["rms_ui"],
        }
