"""Scenario: Alexander phase detector with sampler offset.

Models the effect studied in arXiv:2001.03553 ("Influence of sampler
offset on Alexander phase detector based CDRs") on the paper's Markov
engine: a DC offset at the edge sampler shifts the bang-bang decision
threshold, so the detector's early/late characteristic becomes
*asymmetric* around zero phase error.  In the chain model the offset
enters exactly where the physics puts it -- through the sign decision
``sgn(phi + n_w + offset)`` -- which the existing builder supports as a
mean-shifted eye-opening noise override (the ``n_w`` atoms carry the
offset; the matrix assembly is otherwise identical).

Headline consequences the measures capture: a static phase error pulled
toward ``-offset`` (the loop servos the *sampled* zero crossing, not the
true one), a degraded BER because the eye is sampled off-center, and an
asymmetric slip rate.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np

from repro.noise.distributions import DiscreteDistribution
from repro.noise.jitter import eye_opening_noise
from repro.scenarios.cdr_base import (
    analyze_scenario_model,
    build_cdr_scenario_model,
    spec_from_params,
)
from repro.scenarios.registry import ScenarioModel, register_scenario
from repro.scenarios.tolerance import Tolerance

_FAST = {
    "n_phase_points": 64,
    "n_clock_phases": 16,
    "counter_length": 2,
    "transition_density": 0.5,
    "max_run_length": 2,
    "nw_std": 0.08,
    "nw_atoms": 7,
    "nw_span_sigmas": 4.0,
    "nr_max": 0.008,
    "nr_mean": 0.002,
    "nr_skew": 0.25,
    "sampler_offset_ui": 0.03,
}

_FULL = {
    **_FAST,
    "n_phase_points": 256,
    "counter_length": 6,
    "nw_std": 0.05,
    "nw_atoms": 11,
    "sampler_offset_ui": 0.05,
}

MEASURES = (
    "ber_discrete",
    "slip_rate",
    "phase_mean_ui",
    "phase_rms_ui",
    "offset_tracking_error_ui",
)


def offset_eye_noise(params: Mapping[str, Any]) -> DiscreteDistribution:
    """The eye-opening noise with the sampler offset folded in.

    The detector decides on ``sgn(phi + n_w + offset)``; shifting every
    ``n_w`` atom by the offset realizes the asymmetric threshold exactly
    (the builder's pre-aggregated sign masses see the shifted atoms).
    """
    base = eye_opening_noise(
        params["nw_std"],
        n_atoms=params["nw_atoms"],
        n_sigmas=params["nw_span_sigmas"],
    )
    offset = float(params["sampler_offset_ui"])
    return DiscreteDistribution(np.asarray(base.values) + offset, base.probs)


@register_scenario(
    "alexander-offset",
    title="Alexander PD with sampler offset: asymmetric threshold",
    citation="arXiv:2001.03553",
    measures=MEASURES,
    sizes={"fast": _FAST, "full": _FULL},
    backends=("assembled", "matrix-free"),
    default_solver="krylov",
    tolerances={
        "default": Tolerance(rtol=1e-5, atol=1e-10),
        "slip_rate": Tolerance(rtol=5e-5, atol=1e-12),
    },
)
class AlexanderOffsetScenario:
    @staticmethod
    def build(params: Mapping[str, Any], backend: str = "assembled") -> ScenarioModel:
        spec = spec_from_params(
            params, backend=backend, nw_override=offset_eye_noise(params)
        )
        return build_cdr_scenario_model(spec, backend)

    @staticmethod
    def evaluate(
        model: ScenarioModel,
        params: Mapping[str, Any],
        *,
        solver: str = "krylov",
        tol: float = 1e-12,
    ) -> Dict[str, float]:
        analysis = analyze_scenario_model(model, solver=solver, tol=tol)
        mean_ui = analysis.phase_stats["mean_ui"]
        offset = float(params["sampler_offset_ui"])
        return {
            # The Gaussian-tail BER is not meaningful under an offset
            # (non-zero-mean) eye; the discretized tail is exact.
            "ber_discrete": analysis.ber_discrete,
            "slip_rate": analysis.slip_rate,
            "phase_mean_ui": mean_ui,
            "phase_rms_ui": analysis.phase_stats["rms_ui"],
            # How far the servo point misses the ideal -offset tracking
            # position (quantization + drift leave a residual).
            "offset_tracking_error_ui": mean_ui + offset,
        }
