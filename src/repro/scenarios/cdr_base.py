"""Shared glue for scenarios whose model is a :class:`CDRSpec` variant.

Three of the built-in scenarios (baseline, Alexander-with-offset,
mesochronous retiming) are parameterizations of the paper's
phase-selection loop; they differ in the spec they compile and the
measures they read off.  This module funnels them all through the *real*
engine path -- the registered TPM backends of :mod:`repro.cdr.backends`
and the analyzer of :mod:`repro.core.analyzer` -- so a scenario run
exercises exactly the code a user's ``repro analyze`` does, spans,
metrics, solver registry and all.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.core.analyzer import CDRAnalysis, analyze_model
from repro.core.spec import CDRSpec
from repro.markov.registry import get_backend
from repro.scenarios.registry import ScenarioModel

__all__ = ["CDR_SPEC_KEYS", "spec_from_params", "build_cdr_scenario_model",
           "analyze_scenario_model"]

#: CDRSpec constructor fields a scenario params dict may carry directly.
CDR_SPEC_KEYS = (
    "n_phase_points",
    "n_clock_phases",
    "counter_length",
    "transition_density",
    "max_run_length",
    "nw_std",
    "nw_atoms",
    "nw_span_sigmas",
    "nr_max",
    "nr_mean",
    "nr_skew",
)


def spec_from_params(
    params: Mapping[str, Any], backend: str = "assembled", **overrides
) -> CDRSpec:
    """A :class:`CDRSpec` from the CDR-shaped subset of a params dict."""
    kwargs: Dict[str, Any] = {
        key: params[key] for key in CDR_SPEC_KEYS if key in params
    }
    kwargs.update(overrides)
    return CDRSpec(backend=backend, **kwargs)


def build_cdr_scenario_model(
    spec: CDRSpec, backend: str, **extras
) -> ScenarioModel:
    """Realize a spec on one registered TPM backend."""
    model = get_backend(backend).build(spec)
    return ScenarioModel(
        chain=model.chain,
        backend=backend,
        n_states=model.n_states,
        extras={"model": model, "spec": spec, **extras},
    )


def analyze_scenario_model(
    scenario_model: ScenarioModel, *, solver: str, tol: float
) -> CDRAnalysis:
    """Run the full analyzer pipeline on a built scenario model."""
    return analyze_model(
        scenario_model.extras["model"],
        spec=scenario_model.extras["spec"],
        solver=solver,
        tol=tol,
    )
