"""Golden-tolerance comparison of scenario measure dictionaries.

Golden verification needs a comparison that is *symmetric* (it must not
matter whether the golden or the re-solve is called "expected" -- the
mismatch set is the same either way, with the sides swapped) and honest
about non-finite values (a golden ``inf`` mean-time-between-slips must
match a recomputed ``inf``, and nothing else).  ``numpy.isclose`` is
asymmetric in its relative term, so the helpers here use the symmetric
form ``|a - b| <= atol + rtol * max(|a|, |b|)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "Tolerance",
    "values_close",
    "MeasureMismatch",
    "MeasureDiff",
    "compare_measures",
]


@dataclass(frozen=True)
class Tolerance:
    """Symmetric absolute + relative tolerance for one measure."""

    rtol: float = 1e-6
    atol: float = 1e-12

    def __post_init__(self) -> None:
        if self.rtol < 0 or self.atol < 0:
            raise ValueError("tolerances must be non-negative")

    def allowed(self, a: float, b: float) -> float:
        """The comparison bound for the pair ``(a, b)`` (symmetric in a, b)."""
        return self.atol + self.rtol * max(abs(a), abs(b))

    def to_dict(self) -> Dict[str, float]:
        return {"rtol": self.rtol, "atol": self.atol}

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "Tolerance":
        return cls(rtol=float(payload["rtol"]), atol=float(payload["atol"]))


def values_close(a: float, b: float, tol: Tolerance) -> bool:
    """Symmetric closeness: ``|a-b| <= atol + rtol * max(|a|,|b|)``.

    Non-finite handling: two NaNs match (a golden NaN documents "this
    measure is undefined here" and must stay undefined), two infinities
    match only with equal sign, and a finite value never matches a
    non-finite one.
    """
    a = float(a)
    b = float(b)
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= tol.allowed(a, b)


@dataclass(frozen=True)
class MeasureMismatch:
    """One measure whose two sides disagree beyond tolerance."""

    name: str
    left: float
    right: float
    allowed: float
    delta: float

    def swapped(self) -> "MeasureMismatch":
        return MeasureMismatch(
            self.name, self.right, self.left, self.allowed, self.delta
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {self.left!r} vs {self.right!r} "
            f"(|delta|={self.delta:.3e}, allowed {self.allowed:.3e})"
        )


@dataclass(frozen=True)
class MeasureDiff:
    """Result of comparing two measure dictionaries.

    ``missing`` are keys present on the left (expected) side only,
    ``extra`` keys present on the right (actual) side only.  Swapping the
    inputs swaps the two tuples and each mismatch's sides -- nothing else
    changes (the symmetry the property tests pin down).
    """

    mismatches: Tuple[MeasureMismatch, ...] = ()
    missing: Tuple[str, ...] = ()
    extra: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not (self.mismatches or self.missing or self.extra)

    def swapped(self) -> "MeasureDiff":
        return MeasureDiff(
            mismatches=tuple(m.swapped() for m in self.mismatches),
            missing=self.extra,
            extra=self.missing,
        )

    def describe(self) -> str:
        if self.ok:
            return "all measures within tolerance"
        lines = [m.describe() for m in self.mismatches]
        if self.missing:
            lines.append(f"missing measures: {', '.join(self.missing)}")
        if self.extra:
            lines.append(f"unexpected measures: {', '.join(self.extra)}")
        return "; ".join(lines)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "mismatches": [
                {
                    "measure": m.name,
                    "expected": _jsonable(m.left),
                    "actual": _jsonable(m.right),
                    "allowed": m.allowed,
                    "delta": _jsonable(m.delta),
                }
                for m in self.mismatches
            ],
            "missing": list(self.missing),
            "extra": list(self.extra),
        }


def _jsonable(x: float):
    return x if math.isfinite(x) else repr(x)


def compare_measures(
    expected: Mapping[str, float],
    actual: Mapping[str, float],
    tolerances: Optional[Mapping[str, Tolerance]] = None,
) -> MeasureDiff:
    """Diff two measure dicts under per-measure tolerances.

    ``tolerances`` maps measure names to :class:`Tolerance`; the
    ``"default"`` entry (or a zero-slack default) covers the rest.  The
    comparison itself is symmetric: ``compare_measures(a, b, t)`` equals
    ``compare_measures(b, a, t).swapped()``.
    """
    tolerances = tolerances or {}
    fallback = tolerances.get("default", Tolerance())
    mismatches = []
    for name in sorted(set(expected) & set(actual)):
        tol = tolerances.get(name, fallback)
        a, b = float(expected[name]), float(actual[name])
        if not values_close(a, b, tol):
            if math.isfinite(a) and math.isfinite(b):
                delta = abs(a - b)
                allowed = tol.allowed(a, b)
            else:
                # A finite/non-finite (or nan/inf) clash is categorical:
                # no finite bound describes it, and ``max`` over a NaN is
                # order-dependent, which would break swap symmetry.
                delta = math.inf
                allowed = math.inf
            mismatches.append(MeasureMismatch(name, a, b, allowed, delta))
    missing = tuple(sorted(set(expected) - set(actual)))
    extra = tuple(sorted(set(actual) - set(expected)))
    return MeasureDiff(tuple(mismatches), missing, extra)
