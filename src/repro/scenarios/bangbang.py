"""Scenario: bang-bang CDR with a frequency-error state dimension.

The jitter-analysis line of arXiv:1905.00273 ("Jitter analysis of
bang-bang CDRs") treats the loop's *frequency* error as a first-class
state alongside the phase -- the regime where acquisition, not tracking,
dominates.  This scenario extends the paper's product-chain method with
that extra dimension: the state is ``(f, m)`` where ``f`` is the
quantized frequency error (grid steps of drift per symbol) and ``m`` the
phase-error grid index.

Per symbol the phase moves by the deterministic frequency drift ``f``
steps, a ±1-step jitter kick, and -- when the data has a transition --
the bang-bang correction from the noisy sign decision
``sgn(phi + n_w)``.  Whenever the phase wraps a UI boundary (a cycle
slip) the frequency detector observes the slip direction and, with
probability ``fd_gain``, steps ``f`` one notch against it.  States with
``|f| >= 2`` are transient (the FD reels the frequency in), which is
exactly what makes the headline *acquisition* measure a first-passage
question: starting from the worst corner (maximum frequency error,
farthest phase), how many symbols until the loop is frequency- and
phase-locked?

The transition structure is pure branch superposition, so one
enumeration feeds both backends: :class:`BranchSumOperator` directly for
``matrix-free``, and its ``to_csr`` realization wrapped in a
:class:`MarkovChain` for ``assembled`` -- identical by construction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from repro.cdr.phase_error import PhaseGrid
from repro.markov.chain import MarkovChain
from repro.markov.stationary import stationary_distribution
from repro.noise.jitter import eye_opening_noise
from repro.scenarios.measures import first_passage_survival
from repro.scenarios.operator import BranchSumOperator
from repro.scenarios.registry import ScenarioModel, register_scenario
from repro.scenarios.tolerance import Tolerance

__all__ = ["BangBangScenario", "build_bangbang_operator", "locked_mask"]

_FAST = {
    "n_phase_points": 64,
    "phase_step_units": 2,
    "freq_max": 2,
    "freq_step_units": 1,
    "jitter_prob": 0.1,
    "transition_density": 0.5,
    "fd_gain": 0.7,
    "nw_std": 0.04,
    "nw_atoms": 5,
    "nw_span_sigmas": 3.0,
    "locked_threshold_ui": 0.125,
}

_FULL = {
    **_FAST,
    "n_phase_points": 128,
    "freq_max": 3,
    "nw_atoms": 7,
}

MEASURES = (
    "p_freq_locked",
    "phase_rms_ui",
    "acq_mean_symbols",
    "acq_p99_symbols",
)


def _sign_masses(grid: PhaseGrid, params: Mapping[str, Any]) -> np.ndarray:
    """``P(sgn(phi_m + n_w) = -1 / 0 / +1)`` per phase index, shape (M, 3)."""
    nw = eye_opening_noise(
        params["nw_std"],
        n_atoms=params["nw_atoms"],
        n_sigmas=params["nw_span_sigmas"],
    )
    shifted = grid.values[:, None] + np.asarray(nw.values)[None, :]
    probs = np.asarray(nw.probs)
    masses = np.stack(
        [
            (probs * (shifted < 0.0)).sum(axis=1),
            (probs * (shifted == 0.0)).sum(axis=1),
            (probs * (shifted > 0.0)).sum(axis=1),
        ],
        axis=1,
    )
    return masses


def build_bangbang_operator(params: Mapping[str, Any]) -> BranchSumOperator:
    """Enumerate the ``(f, m)`` branch terms into a BranchSumOperator.

    Layout: global index ``i = (f + F) * M + m``.
    """
    M = int(params["n_phase_points"])
    F = int(params["freq_max"])
    step = int(params["phase_step_units"])
    f_step = int(params["freq_step_units"])
    pj = float(params["jitter_prob"])
    pt = float(params["transition_density"])
    g = float(params["fd_gain"])
    if not 0.0 <= pj <= 0.5:
        raise ValueError("jitter_prob must lie in [0, 1/2]")
    if not 0.0 <= g <= 1.0:
        raise ValueError("fd_gain must lie in [0, 1]")

    grid = PhaseGrid(M)
    masses = _sign_masses(grid, params)
    n_freq = 2 * F + 1
    n = n_freq * M

    f_of_state = np.repeat(np.arange(n_freq) - F, M)
    m_of_state = np.tile(np.arange(M), n_freq)

    # Bang-bang correction: a late decision (positive sampled sign) steps
    # the phase back; an early one steps it forward.  No transition, or a
    # dead-zone zero sign, holds.
    p_minus = pt * np.tile(masses[:, 2], n_freq)
    p_zero = (1.0 - pt) + pt * np.tile(masses[:, 1], n_freq)
    p_plus = pt * np.tile(masses[:, 0], n_freq)
    corrections = ((-step, p_minus), (0, p_zero), (step, p_plus))
    jitters = ((-1, pj), (0, 1.0 - 2.0 * pj), (1, pj))

    terms: List[Tuple[np.ndarray, np.ndarray]] = []
    for corr, p_corr in corrections:
        for jit, p_jit in jitters:
            weight = p_corr * p_jit
            if not np.any(weight):
                continue
            steps = f_of_state * f_step + corr + jit
            new_m, wraps = grid.shift_indices(m_of_state, steps)
            slipped = wraps != 0
            # FD holds: frequency state unchanged (certain when no slip).
            w_hold = weight * np.where(slipped, 1.0 - g, 1.0)
            dest_hold = (f_of_state + F) * M + new_m
            terms.append((w_hold, dest_hold))
            # FD fires: one frequency notch against the slip direction.
            w_fire = weight * g * slipped
            if np.any(w_fire):
                f_corrected = np.clip(f_of_state - np.sign(wraps), -F, F)
                dest_fire = (f_corrected + F) * M + new_m
                terms.append((w_fire, dest_fire))
    return BranchSumOperator(n, terms)


def locked_mask(params: Mapping[str, Any]) -> np.ndarray:
    """States counting as locked: zero frequency error, phase in-band."""
    M = int(params["n_phase_points"])
    F = int(params["freq_max"])
    grid = PhaseGrid(M)
    in_band = np.abs(grid.values) <= float(params["locked_threshold_ui"])
    mask = np.zeros((2 * F + 1) * M, dtype=bool)
    mask[F * M : (F + 1) * M] = in_band
    return mask


@register_scenario(
    "bangbang-freq",
    title="bang-bang CDR with frequency error: acquisition first passage",
    citation="arXiv:1905.00273",
    measures=MEASURES,
    sizes={"fast": _FAST, "full": _FULL},
    backends=("assembled", "matrix-free"),
    default_solver="krylov",
    tolerances={
        "default": Tolerance(rtol=1e-5, atol=1e-10),
        # Survival iteration runs thousands of identical steps on both
        # backends; only summation order differs.
        "acq_mean_symbols": Tolerance(rtol=1e-8, atol=1e-9),
        # Integer step count; absorb a threshold-crossing flip of one.
        "acq_p99_symbols": Tolerance(rtol=0.0, atol=1.0),
    },
)
class BangBangScenario:
    @staticmethod
    def build(params: Mapping[str, Any], backend: str = "assembled") -> ScenarioModel:
        op = build_bangbang_operator(params)
        if backend == "assembled":
            chain: Any = MarkovChain(op.to_csr())
        elif backend == "matrix-free":
            chain = op
        else:
            raise ValueError(
                f"bangbang-freq supports backends ('assembled', 'matrix-free'),"
                f" not {backend!r}"
            )
        return ScenarioModel(
            chain=chain,
            backend=backend,
            n_states=op.n,
            extras={"params": dict(params)},
        )

    @staticmethod
    def evaluate(
        model: ScenarioModel,
        params: Mapping[str, Any],
        *,
        solver: str = "krylov",
        tol: float = 1e-12,
    ) -> Dict[str, float]:
        M = int(params["n_phase_points"])
        F = int(params["freq_max"])
        grid = PhaseGrid(M)
        n = model.n_states

        result = stationary_distribution(model.chain, method=solver, tol=tol)
        pi = result.distribution
        freq_locked = float(pi[F * M : (F + 1) * M].sum())
        phi = np.tile(grid.values, 2 * F + 1)
        phase_rms = float(np.sqrt(np.dot(pi, phi**2)))

        # Acquisition: worst corner -- maximum positive frequency error,
        # phase at the far edge of the UI.
        start = np.zeros(n)
        start[2 * F * M] = 1.0
        passage = first_passage_survival(
            model.chain, start, locked_mask(params), quantile=0.99
        )
        return {
            "p_freq_locked": freq_locked,
            "phase_rms_ui": phase_rms,
            "acq_mean_symbols": passage.mean_symbols,
            "acq_p99_symbols": passage.quantile_symbols,
        }
