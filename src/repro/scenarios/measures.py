"""Backend-agnostic measure kernels for scenario evaluation.

The scenario battery's whole point is that every measure is computed the
same way on every TPM backend, so these helpers speak only the
:class:`~repro.markov.linop.TransitionOperator` protocol (``rmatvec`` for
distribution propagation) -- never the explicit matrix.  First-passage
moments, which :mod:`repro.markov.passage` solves with sparse LU on the
assembled matrix, are recomputed here by *survival iteration*: absorb the
target set, propagate the start distribution, and accumulate the
survival series

    E[T] = sum_{k>=0} P(T > k),

with a geometric tail estimate closing the truncated remainder.  On an
assembled chain both routes agree (a test invariant); on a matrix-free
chain only this one exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.linop import TransitionOperator, as_operator
from repro.obs.profile import instrument_operator

__all__ = [
    "FirstPassageSummary",
    "first_passage_survival",
    "tv_settling_time",
    "expected_value_trajectory",
]


@dataclass(frozen=True)
class FirstPassageSummary:
    """First-passage-time statistics from one start distribution.

    ``mean_symbols`` includes a geometric tail correction for the mass
    still unabsorbed at the horizon; ``p_unabsorbed`` reports that mass so
    callers can see how much of the mean is extrapolated.
    """

    mean_symbols: float
    quantile_symbols: float
    quantile: float
    p_unabsorbed: float
    steps_run: int


def first_passage_survival(
    op,
    start: np.ndarray,
    target_mask: np.ndarray,
    quantile: float = 0.99,
    survival_tol: float = 1e-12,
    max_steps: int = 200_000,
) -> FirstPassageSummary:
    """First-passage time to ``target_mask`` by survival iteration.

    Propagates the start distribution through the target-absorbed chain:
    after each step, mass on target states is removed, so the remaining
    total is exactly ``P(T > k)``.  Stops once survival falls below
    ``survival_tol`` (the geometric tail then closes the mean) or after
    ``max_steps`` (the mean is then a lower bound; ``p_unabsorbed`` says
    by how much).
    """
    operator: TransitionOperator = instrument_operator(
        as_operator(op), role="measure.first_passage"
    )
    n = operator.shape[0]
    mask = np.asarray(target_mask, dtype=bool)
    if mask.shape != (n,):
        raise ValueError("target mask has wrong size")
    if not mask.any():
        raise ValueError("target set must be non-empty")
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    x = np.asarray(start, dtype=float).copy()
    if x.shape != (n,):
        raise ValueError("start distribution has wrong size")

    x[mask] = 0.0
    survival = float(x.sum())     # P(T > 0)
    mean = survival               # accumulates sum_k P(T > k)
    quantile_at = 0 if survival <= 1.0 - quantile else None
    prev = survival
    steps = 0
    while survival > survival_tol and steps < max_steps:
        x = operator.rmatvec(x)
        x[mask] = 0.0
        prev, survival = survival, float(x.sum())
        steps += 1
        mean += survival
        if quantile_at is None and survival <= 1.0 - quantile:
            quantile_at = steps
    if survival > 0.0 and prev > survival:
        # Below the stopping tolerance the series is in its asymptotic
        # geometric regime; sum the remaining tail analytically.
        ratio = survival / prev
        if ratio < 1.0:
            mean += survival * ratio / (1.0 - ratio)
    return FirstPassageSummary(
        mean_symbols=float(mean),
        quantile_symbols=float(quantile_at if quantile_at is not None else np.inf),
        quantile=quantile,
        p_unabsorbed=survival,
        steps_run=steps,
    )


def tv_settling_time(
    op,
    start: np.ndarray,
    stationary: np.ndarray,
    epsilon: float,
    max_steps: int,
) -> int:
    """Symbols until total variation to ``stationary`` first drops below
    ``epsilon``; ``max_steps`` when the horizon is hit first (a lower
    bound, matching :func:`repro.markov.transient.mixing_time`)."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    operator: TransitionOperator = instrument_operator(
        as_operator(op), role="measure.tv_settling"
    )
    x = np.asarray(start, dtype=float).copy()
    pi = np.asarray(stationary, dtype=float)
    for k in range(max_steps + 1):
        if 0.5 * float(np.abs(x - pi).sum()) < epsilon:
            return k
        x = operator.rmatvec(x)
    return max_steps


def expected_value_trajectory(
    op,
    start: np.ndarray,
    per_state_values: np.ndarray,
    n_steps: int,
) -> np.ndarray:
    """``E[f(X_k)]`` for ``k = 0..n_steps`` through the operator protocol."""
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    operator: TransitionOperator = instrument_operator(
        as_operator(op), role="measure.expected_value"
    )
    x = np.asarray(start, dtype=float).copy()
    f = np.asarray(per_state_values, dtype=float)
    out = np.empty(n_steps + 1)
    out[0] = float(np.dot(x, f))
    for k in range(1, n_steps + 1):
        x = operator.rmatvec(x)
        out[k] = float(np.dot(x, f))
    return out
