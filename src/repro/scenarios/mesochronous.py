"""Scenario: mesochronous retiming settling under jitter.

In a mesochronous link (arXiv:1604.00230, all-digital resynchronization
for NoC links) the retiming clock has the *same frequency* as the data
but an arbitrary, unknown phase: there is no frequency drift to track,
only an initial phase offset to pull in and jitter to average.  On the
paper's engine that is the phase-selection loop with zero-mean drift
noise (``nr_mean = 0``), and the headline question is *transient*: from
the worst-case initial offset (half a UI, phase at the edge of the
grid), how many symbols until the loop's state distribution settles onto
the stationary one?

Measures: the total-variation settling time to within ``settle_eps`` of
stationary, the integrated excess absolute phase error accumulated while
settling (symbols x UI -- the area between the transient and stationary
error curves), the stationary probability of a large residual error, and
the stationary RMS phase error.  All are computed through the
distribution-propagation protocol (``rmatvec``) so assembled and
matrix-free backends run the identical recursion.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np

from repro.markov.stationary import stationary_distribution
from repro.scenarios.cdr_base import build_cdr_scenario_model, spec_from_params
from repro.scenarios.measures import expected_value_trajectory, tv_settling_time
from repro.scenarios.registry import ScenarioModel, register_scenario
from repro.scenarios.tolerance import Tolerance

__all__ = ["MesochronousScenario", "worst_case_start"]

_FAST = {
    "n_phase_points": 64,
    "n_clock_phases": 16,
    "counter_length": 2,
    "transition_density": 0.5,
    "max_run_length": 2,
    "nw_std": 0.06,
    "nw_atoms": 7,
    "nw_span_sigmas": 4.0,
    # Mesochronous: same frequency, so the drift is zero-mean jitter only
    # (skew keeps its variance role; the mean is pinned to zero).
    "nr_max": 0.006,
    "nr_mean": 0.0,
    "nr_skew": 0.25,
    "settle_eps": 0.05,
    "settle_horizon": 4000,
    "error_threshold_ui": 0.25,
}

_FULL = {
    **_FAST,
    "n_phase_points": 128,
    "counter_length": 4,
    "nw_std": 0.04,
    "settle_horizon": 20000,
}

MEASURES = (
    "settle_symbols",
    "excess_error_sum",
    "stationary_error_rate",
    "phase_rms_ui",
)


def worst_case_start(model) -> np.ndarray:
    """Worst-case initial distribution: phase at the grid edge (~ -1/2 UI),
    data/counter coordinates uniform.

    Both backends lay the product space out as ``((d * C) + c) * M + m``,
    so the half-UI-offset slab is exactly the indices with ``i % M == 0``.
    """
    n = model.n_states
    M = model.n_phase_points
    start = np.zeros(n)
    start[0::M] = 1.0 / (n // M)
    return start


@register_scenario(
    "mesochronous-settle",
    title="mesochronous retiming: settling from a half-UI offset",
    citation="arXiv:1604.00230",
    measures=MEASURES,
    sizes={"fast": _FAST, "full": _FULL},
    backends=("assembled", "matrix-free"),
    default_solver="krylov",
    tolerances={
        "default": Tolerance(rtol=1e-5, atol=1e-10),
        # Integer symbol count; absorb a threshold-crossing flip of one.
        "settle_symbols": Tolerance(rtol=0.0, atol=1.0),
        # A sum over the whole horizon of per-step solver-tolerance-sized
        # differences.
        "excess_error_sum": Tolerance(rtol=1e-4, atol=1e-8),
    },
)
class MesochronousScenario:
    @staticmethod
    def build(params: Mapping[str, Any], backend: str = "assembled") -> ScenarioModel:
        spec = spec_from_params(params, backend=backend)
        return build_cdr_scenario_model(spec, backend)

    @staticmethod
    def evaluate(
        model: ScenarioModel,
        params: Mapping[str, Any],
        *,
        solver: str = "krylov",
        tol: float = 1e-12,
    ) -> Dict[str, float]:
        cdr_model = model.extras["model"]
        horizon = int(params["settle_horizon"])
        eps = float(params["settle_eps"])
        threshold = float(params["error_threshold_ui"])

        result = stationary_distribution(model.chain, method=solver, tol=tol)
        pi = result.distribution
        abs_phi = np.abs(cdr_model.phase_values_per_state())
        stationary_abs_error = float(np.dot(pi, abs_phi))
        phase_pi = cdr_model.phase_marginal(pi)
        values = cdr_model.grid.values
        phase_rms = float(np.sqrt(np.dot(phase_pi, values**2)))
        error_rate = float(phase_pi[np.abs(values) > threshold].sum())

        start = worst_case_start(cdr_model)
        settle = tv_settling_time(model.chain, start, pi, eps, horizon)
        trajectory = expected_value_trajectory(model.chain, start, abs_phi, horizon)
        excess = float(np.sum(trajectory - stationary_abs_error))

        return {
            "settle_symbols": float(settle),
            "excess_error_sum": excess,
            "stationary_error_rate": error_rate,
            "phase_rms_ui": phase_rms,
        }
