"""The CDR loop as a generic FSM network (paper Figure 2, literally).

This builds the same model as :func:`repro.cdr.model.build_cdr_chain` but
through the generic composition engine of :mod:`repro.fsm.network`: a data
source, the ``n_w`` and ``n_r`` noise sources, the bang-bang phase
detector, the up/down counter, and the phase-error accumulator, wired
exactly as in the paper's Figure 2.  It is dramatically slower to compile
(per-state Python exploration vs. vectorized assembly) and is used to
cross-validate the vectorized builder on small configurations -- the two
must produce identical stationary phase-error distributions.
"""

from __future__ import annotations

from typing import Optional

from repro.cdr.data_source import transition_run_length_source
from repro.cdr.loop_filter import updown_counter
from repro.cdr.phase_detector import bang_bang_phase_detector
from repro.cdr.phase_error import PhaseGrid, phase_accumulator_fsm
from repro.fsm.network import FSMNetwork, NetworkChain
from repro.fsm.stochastic import IIDSource, MarkovSource
from repro.noise.distributions import DiscreteDistribution

__all__ = ["build_cdr_network", "compile_cdr_network"]


def build_cdr_network(
    grid: PhaseGrid,
    nw: DiscreteDistribution,
    nr: DiscreteDistribution,
    counter_length: int,
    phase_step_units: int,
    data_source: Optional[MarkovSource] = None,
    transition_density: float = 0.5,
    max_run_length: int = 3,
) -> FSMNetwork:
    """Wire the Figure-2 network; see
    :func:`repro.cdr.model.build_cdr_chain` for the parameter meanings.

    The phase accumulator is a Moore machine, so its current value is
    pre-published each step and the detector/counter/accumulator feedback
    loop closes without a combinational cycle.

    Registers two events:

    * ``"slip"`` -- the phase accumulator wraps across the UI boundary;
    * ``"decision-error"`` -- the noisy sampling phase ``Phi + n_w`` falls
      outside half a symbol period (the paper's bit-error condition).
    """
    if data_source is None:
        data_source = transition_run_length_source(
            "data", transition_density, max_run_length
        )
    nr_steps = grid.quantize_to_steps(nr)

    net = FSMNetwork("cdr")
    net.add_source(data_source)
    net.add_source(IIDSource("nw", nw))
    net.add_source(IIDSource("nr", nr_steps))

    pd = bang_bang_phase_detector("pd")
    counter = updown_counter("counter", counter_length)
    phase = phase_accumulator_fsm("phase", grid, phase_step_units)

    net.add_machine(pd, lambda env: (env["data"], env["phase"] + env["nw"]))
    net.add_machine(counter, lambda env: env["pd"])
    net.add_machine(phase, lambda env: (env["counter"], int(env["nr"])))

    g = int(phase_step_units)
    n_points = grid.n_points

    def slipped(env) -> bool:
        m = grid.index_of(env["phase"])
        raw = m - g * int(env["counter"]) + int(env["nr"])
        return raw < 0 or raw >= n_points

    net.record_event("slip", slipped)
    net.record_event(
        "decision-error",
        lambda env: abs(env["phase"] + env["nw"]) > 0.5,
    )
    return net


def compile_cdr_network(*args, max_states: int = 500_000, **kwargs) -> NetworkChain:
    """Build and compile the Figure-2 network in one call."""
    return build_cdr_network(*args, **kwargs).compile(max_states=max_states)
