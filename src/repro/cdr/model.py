"""Vectorized construction of the CDR Markov chain.

This builds the paper's "very large but highly structured" transition
probability matrix for the digital phase-selection loop directly on the
product state space

    (data-source hidden state d)  x  (counter state c)  x  (phase index m)

with global index ``((d * C) + c) * M + m``.  The construction loops only
over the small discrete alphabet (data states, phase-detector decisions,
counter states, ``n_r`` atoms) and is fully vectorized along the phase
axis, so million-state models assemble in seconds.

Key exactness property: the eye-opening noise ``n_w`` influences the chain
*only* through the phase detector's three-valued decision, so its atoms are
pre-aggregated into three per-phase-index probability masses
``P(sgn(phi_m + n_w) = -1 / 0 / +1)``.  This keeps the assembled matrix
mathematically identical to enumerating every ``n_w`` atom while removing a
factor of ``n_atoms(n_w)`` from both time and nonzeros.

A parallel sparse *slip-flux matrix* records the probability of every
transition that wraps the phase error across the ``+-1/2`` UI boundary --
the cycle-slip events whose mean spacing the paper computes "between
certain sets of MC states".
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.cdr.data_source import transition_run_length_source
from repro.cdr.loop_filter import counter_state_count
from repro.cdr.phase_error import PhaseGrid
from repro.fsm.stochastic import MarkovSource
from repro.markov.chain import MarkovChain
from repro.markov.lumping import Partition
from repro.markov.multigrid import CoarseningStrategy, pairing_hierarchy
from repro.noise.distributions import DiscreteDistribution
from repro.obs import get_registry, span

__all__ = ["CDRChainModel", "build_cdr_chain", "phase_pairing_partitions"]


def phase_pairing_partitions(
    n_blocks: int, n_phase_points: int, coarsest_phase_points: int = 8
) -> List[Partition]:
    """The paper's coarsening hierarchy for a ``(d, c) x phase`` state space.

    Level ``l`` maps a state space with ``M_l`` phase points onto
    ``ceil(M_l / 2)`` points by lumping consecutive phase grid values,
    preserving the ``n_blocks = D * C`` non-phase coordinates.  Shared by
    the assembled :class:`CDRChainModel` and the matrix-free
    :class:`~repro.cdr.operator.CDRTransitionOperator` so both backends
    coarsen identically.
    """
    if coarsest_phase_points < 2:
        raise ValueError("coarsest_phase_points must be at least 2")
    partitions = []
    M = n_phase_points
    while M > coarsest_phase_points:
        Mc = (M + 1) // 2
        i = np.arange(n_blocks * M)
        assign = (i // M) * Mc + (i % M) // 2
        partitions.append(Partition(assign))
        M = Mc
    return partitions


@dataclass
class CDRChainModel:
    """A compiled CDR Markov-chain model and its structural metadata.

    Attributes
    ----------
    chain:
        The product Markov chain (unlabeled; use the layout helpers).
    slip_matrix:
        Sparse matrix ``E <= P`` of transition probabilities that wrap the
        phase across the UI boundary (cycle slips).
    grid:
        The phase-error grid.
    nw:
        The eye-opening noise distribution (UI) used for the detector
        decision masses and later for BER tail integration.
    nr_steps:
        The drift noise, quantized to whole grid steps.
    data_source:
        The data-statistics Markov source.
    counter_length:
        Loop-filter counter length ``N``.
    phase_step_units:
        The loop correction step ``G`` in grid units.
    form_time:
        Wall-clock seconds spent assembling the matrix (the paper's
        "Matrixformtime").
    """

    chain: MarkovChain
    slip_matrix: sp.csr_matrix
    grid: PhaseGrid
    nw: DiscreteDistribution
    nr_steps: DiscreteDistribution
    data_source: MarkovSource
    counter_length: int
    phase_step_units: int
    form_time: float
    sign_masses: Dict[int, np.ndarray] = field(repr=False, default_factory=dict)

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    @property
    def n_data_states(self) -> int:
        return self.data_source.n_states

    @property
    def n_counter_states(self) -> int:
        return counter_state_count(self.counter_length)

    @property
    def n_phase_points(self) -> int:
        return self.grid.n_points

    @property
    def n_states(self) -> int:
        return self.chain.n_states

    def state_index(self, data_state: int, counter_value: int, phase_index: int) -> int:
        """Global index of ``(d, counter value, m)``.

        ``counter_value`` is the signed count in ``[-(N-1), N-1]``.
        """
        N = self.counter_length
        c = counter_value + (N - 1)
        D, C, M = self.n_data_states, self.n_counter_states, self.n_phase_points
        if not (0 <= data_state < D and 0 <= c < C and 0 <= phase_index < M):
            raise ValueError("state coordinates out of range")
        return (data_state * C + c) * M + phase_index

    def state_of_index(self, index: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`state_index`: ``(d, counter value, m)``."""
        C, M = self.n_counter_states, self.n_phase_points
        if not 0 <= index < self.n_states:
            raise ValueError("index out of range")
        m = index % M
        dc = index // M
        return dc // C, (dc % C) - (self.counter_length - 1), m

    # ------------------------------------------------------------------ #
    # marginals
    # ------------------------------------------------------------------ #

    def phase_marginal(self, distribution: np.ndarray) -> np.ndarray:
        """Marginal distribution of the phase index under ``distribution``."""
        distribution = np.asarray(distribution, dtype=float)
        if distribution.shape != (self.n_states,):
            raise ValueError("distribution has wrong size")
        return distribution.reshape(-1, self.n_phase_points).sum(axis=0)

    def counter_marginal(self, distribution: np.ndarray) -> np.ndarray:
        """Marginal distribution over counter values ``-(N-1) .. N-1``."""
        distribution = np.asarray(distribution, dtype=float)
        D, C, M = self.n_data_states, self.n_counter_states, self.n_phase_points
        return distribution.reshape(D, C, M).sum(axis=(0, 2))

    def data_marginal(self, distribution: np.ndarray) -> np.ndarray:
        """Marginal distribution over data-source hidden states."""
        distribution = np.asarray(distribution, dtype=float)
        D = self.n_data_states
        return distribution.reshape(D, -1).sum(axis=1)

    def mean_phase(self, distribution: np.ndarray) -> float:
        """Mean phase error (UI) under ``distribution``."""
        return float(np.dot(self.phase_marginal(distribution), self.grid.values))

    def phase_values_per_state(self) -> np.ndarray:
        """Phase value (UI) of every global state (for autocorrelation)."""
        D, C = self.n_data_states, self.n_counter_states
        return np.tile(self.grid.values, D * C)

    # ------------------------------------------------------------------ #
    # multigrid support
    # ------------------------------------------------------------------ #

    def phase_pairing_partitions(self, coarsest_phase_points: int = 8) -> List[Partition]:
        """The paper's coarsening: lump consecutive phase-error grid values.

        Returns one partition per level; level ``l`` maps a state space
        with ``M_l`` phase points onto ``ceil(M_l / 2)`` points, preserving
        the data and counter coordinates, "so the lumped problems resemble
        the original problem but with coarser phase error discretization".
        """
        return phase_pairing_partitions(
            self.n_data_states * self.n_counter_states,
            self.n_phase_points,
            coarsest_phase_points,
        )

    def multigrid_strategy(self, coarsest_phase_points: int = 8) -> CoarseningStrategy:
        """A ready-to-use coarsening strategy for the multigrid solver."""
        return pairing_hierarchy(self.phase_pairing_partitions(coarsest_phase_points))

    # ------------------------------------------------------------------ #
    # structure report (Figure 3)
    # ------------------------------------------------------------------ #

    def structure_report(self) -> Dict[str, float]:
        """Summary statistics of the TPM's nonzero pattern (paper Fig. 3).

        The pattern is compositional: the data FSM *always* moves (run
        counters never self-loop), the counter coordinate is preserved on
        NULL decisions, and the phase coordinate moves by at most
        ``G + max|n_r|`` grid steps (banded sub-blocks, modulo the wrap).
        """
        P = self.chain.P
        coo = P.tocoo()
        M = self.n_phase_points
        C = self.n_counter_states
        counter_row = (coo.row // M) % C
        counter_col = (coo.col // M) % C
        same_counter = float(np.mean(counter_row == counter_col)) if coo.nnz else 0.0
        dphi = np.abs((coo.col % M).astype(np.int64) - (coo.row % M))
        dphi = np.minimum(dphi, M - dphi)  # wrap-aware phase distance
        max_phase_move = int(dphi.max()) if coo.nnz else 0
        return {
            "n_states": float(self.n_states),
            "nnz": float(P.nnz),
            "nnz_per_row": float(P.nnz) / self.n_states,
            "density": float(P.nnz) / self.n_states ** 2,
            "fraction_counter_preserving": same_counter,
            "max_phase_move_steps": float(max_phase_move),
            "form_time_s": self.form_time,
        }

    def __repr__(self) -> str:
        return (
            f"CDRChainModel(states={self.n_states}, "
            f"D={self.n_data_states}, C={self.n_counter_states}, "
            f"M={self.n_phase_points}, nnz={self.chain.nnz})"
        )


def _sign_masses(
    grid: PhaseGrid, nw: DiscreteDistribution
) -> Dict[int, np.ndarray]:
    """Per-phase-index probability that ``sgn(phi_m + n_w)`` is -1 / 0 / +1."""
    phi = grid.values[None, :]  # (1, M)
    w = nw.values[:, None]      # (K, 1)
    q = nw.probs[:, None]
    noisy = phi + w
    plus = (noisy > 0.0)
    minus = (noisy < 0.0)
    zero = ~plus & ~minus
    return {
        1: (q * plus).sum(axis=0),
        0: (q * zero).sum(axis=0),
        -1: (q * minus).sum(axis=0),
    }


def build_cdr_chain(
    grid: PhaseGrid,
    nw: DiscreteDistribution,
    nr: DiscreteDistribution,
    counter_length: int,
    phase_step_units: int,
    data_source: Optional[MarkovSource] = None,
    transition_density: float = 0.5,
    max_run_length: int = 3,
) -> CDRChainModel:
    """Assemble the CDR phase-selection-loop Markov chain.

    Parameters
    ----------
    grid:
        Phase-error discretization (``M`` points over one UI).
    nw:
        Eye-opening jitter distribution (UI); enters only through the
        phase-detector decision.
    nr:
        Drift noise distribution (UI per symbol); quantized to whole grid
        steps with mean-preserving splitting.
    counter_length:
        Loop-filter up/down counter length ``N`` (the paper's "COUNTER").
    phase_step_units:
        Loop correction step ``G`` in grid units; ``G * grid.step`` is the
        phase-select increment in UI (one VCO phase tap).
    data_source:
        Transition-indicator Markov source; when omitted, a run-length-
        limited source with the given ``transition_density`` and
        ``max_run_length`` is used.
    """
    if counter_length < 1:
        raise ValueError("counter_length must be at least 1")
    if phase_step_units < 1:
        raise ValueError("phase_step_units must be at least 1")
    if data_source is None:
        data_source = transition_run_length_source(
            "data", transition_density, max_run_length
        )
    for i in range(data_source.n_states):
        if data_source.symbol(i) not in (0, 1):
            raise ValueError(
                "data_source must emit transition indicators (0 or 1); "
                f"hidden state {i} emits {data_source.symbol(i)!r}"
            )

    with span("cdr.build_tpm") as build_span:
        return _assemble(
            grid, nw, nr, counter_length, phase_step_units, data_source,
            build_span,
        )


def _assemble(
    grid: PhaseGrid,
    nw: DiscreteDistribution,
    nr: DiscreteDistribution,
    counter_length: int,
    phase_step_units: int,
    data_source: MarkovSource,
    build_span,
) -> CDRChainModel:
    start = time.perf_counter()
    M = grid.n_points
    N = int(counter_length)
    C = counter_state_count(N)
    D = data_source.n_states
    g = int(phase_step_units)

    nr_steps = grid.quantize_to_steps(nr)
    max_move = g + int(np.max(np.abs(nr_steps.values)))
    if max_move >= M:
        raise ValueError(
            f"phase moves of up to {max_move} grid steps exceed the grid "
            f"size {M}; refine the grid or reduce the step/drift"
        )
    # If every possible phase move (the correction step G and all n_r
    # atoms) shares a common factor with the grid size, the phase lattice
    # decomposes into non-communicating residue classes and the stationary
    # distribution is not unique.  Flag it early.
    move_gcd = g
    for r in nr_steps.values.astype(int):
        if r != 0:
            move_gcd = math.gcd(move_gcd, abs(r))
    if move_gcd > 1 and math.gcd(move_gcd, M) > 1:
        warnings.warn(
            f"all phase moves are multiples of {move_gcd}: the phase grid "
            f"decomposes into {math.gcd(move_gcd, M)} non-communicating "
            "residue classes; choose a grid size or n_r discretization "
            "that breaks the common factor",
            RuntimeWarning,
            stacklevel=2,
        )

    masses = _sign_masses(grid, nw)
    ones = np.ones(M)
    m_idx = np.arange(M)

    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    s_rows: List[np.ndarray] = []
    s_cols: List[np.ndarray] = []
    s_vals: List[np.ndarray] = []

    for d in range(D):
        t = data_source.symbol(d)
        branches = data_source.branches(d)
        decisions = (
            [(1, masses[1]), (0, masses[0]), (-1, masses[-1])]
            if t == 1
            else [(0, ones)]
        )
        for c in range(C):
            c_val = c - (N - 1)
            for o, q_o in decisions:
                v = c_val + o
                if v >= N:
                    direction, c_next_val = 1, 0
                elif v <= -N:
                    direction, c_next_val = -1, 0
                else:
                    direction, c_next_val = 0, v
                c_next = c_next_val + (N - 1)
                for r_steps, q_r in zip(nr_steps.values, nr_steps.probs):
                    shift = -g * direction + int(r_steps)
                    m_next, wraps = grid.shift_indices(m_idx, shift)
                    slipped = wraps != 0
                    for d_next, p_d in branches:
                        prob = q_o * (q_r * p_d)
                        nz = prob > 0.0
                        if not np.any(nz):
                            continue
                        row = (d * C + c) * M + m_idx[nz]
                        col = (d_next * C + c_next) * M + m_next[nz]
                        rows.append(row)
                        cols.append(col)
                        vals.append(prob[nz] if prob.ndim else np.full(nz.sum(), prob))
                        slip_nz = nz & slipped
                        if np.any(slip_nz):
                            s_rows.append((d * C + c) * M + m_idx[slip_nz])
                            s_cols.append((d_next * C + c_next) * M + m_next[slip_nz])
                            s_vals.append(
                                prob[slip_nz]
                                if prob.ndim
                                else np.full(slip_nz.sum(), prob)
                            )

    n = D * C * M
    P = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsr()
    P.sum_duplicates()
    if s_vals:
        E = sp.coo_matrix(
            (np.concatenate(s_vals), (np.concatenate(s_rows), np.concatenate(s_cols))),
            shape=(n, n),
        ).tocsr()
        E.sum_duplicates()
    else:
        E = sp.csr_matrix((n, n))
    chain = MarkovChain(P)
    # Structure identity for hierarchy caching (repro.markov.context):
    # dimensions, counter/step layout, the n_r shift pattern and the data
    # source's transition structure -- every noise probability excluded,
    # so sweep points differing only in noise rates share one digest even
    # though near-zero probabilities shift the CSR sparsity pattern.
    ds_P = data_source.chain.P.tocsr()
    chain.set_structure_token((
        "cdr-assembled", D, C, M, N, g,
        tuple(int(v) for v in nr_steps.values),
        tuple(int(data_source.symbol(s)) for s in range(D)),
        ds_P.indptr.tobytes(), ds_P.indices.tobytes(),
    ))
    form_time = time.perf_counter() - start
    memory_bytes = int(
        P.data.nbytes + P.indices.nbytes + P.indptr.nbytes
        + E.data.nbytes + E.indices.nbytes + E.indptr.nbytes
    )
    build_span.set_attributes(
        n_states=n,
        nnz=int(P.nnz),
        memory_bytes=memory_bytes,
        n_data_states=D,
        n_counter_states=C,
        n_phase_points=M,
    )
    registry = get_registry()
    registry.counter(
        "repro_tpm_builds_total", "CDR transition matrices assembled"
    ).inc()
    registry.histogram(
        "repro_tpm_build_seconds", "Wall time of CDR TPM assembly"
    ).observe(form_time)
    registry.gauge(
        "repro_tpm_nnz", "Nonzeros of the last assembled CDR TPM"
    ).set(int(P.nnz))
    return CDRChainModel(
        chain=chain,
        slip_matrix=E,
        grid=grid,
        nw=nw,
        nr_steps=nr_steps,
        data_source=data_source,
        counter_length=N,
        phase_step_units=g,
        form_time=form_time,
        sign_masses=masses,
    )
