"""Data-statistics sources for CDR analysis.

"The first FSM models the data statistics taken from SONET system
specifications" (paper, Examples).  "The input data stream is usually
specified in terms of the longest possible bit sequence with no transitions
and a maximal drift in frequency" (paper, Section 2).

The bang-bang phase detector only acts on *data transitions*, so the
canonical source emits a transition indicator per symbol:
:func:`transition_run_length_source` is a run-length-limited Markov source
whose hidden state counts symbols since the last transition and forces a
transition once the specified longest run is reached (as SONET scramblers
statistically guarantee).  :func:`nrz_bit_source` is the bit-level variant
(emits the actual bit) for phase detectors that keep previous-data state.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.stochastic import IIDSource, MarkovSource
from repro.markov.chain import MarkovChain
from repro.noise.distributions import DiscreteDistribution

__all__ = [
    "transition_run_length_source",
    "bernoulli_transition_source",
    "nrz_bit_source",
    "stationary_transition_density",
]


def transition_run_length_source(
    name: str,
    transition_density: float,
    max_run_length: int,
) -> MarkovSource:
    """Run-length-limited transition-indicator source.

    Hidden state ``r`` counts symbols since the last transition (``r = 0``
    means a transition happens in the current symbol).  From state ``r``
    the next symbol is a transition with probability ``transition_density``
    except at ``r = max_run_length - 1``, where a transition is forced.
    Emits 1 on transition symbols and 0 otherwise.

    Parameters
    ----------
    transition_density:
        Per-symbol transition probability of the (scrambled) data, in
        ``(0, 1]``.  Random NRZ data has density 0.5.
    max_run_length:
        The "longest possible bit sequence with no transitions" from the
        system spec; state count equals this value.
    """
    if not 0.0 < transition_density <= 1.0:
        raise ValueError("transition_density must be in (0, 1]")
    if max_run_length < 1:
        raise ValueError("max_run_length must be at least 1")
    L = int(max_run_length)
    P = np.zeros((L, L))
    for r in range(L):
        p_t = 1.0 if r == L - 1 else transition_density
        P[r, 0] = p_t
        if r < L - 1:
            P[r, r + 1] = 1.0 - p_t
    chain = MarkovChain(P)
    return MarkovSource(
        name, chain, emit=[1 if r == 0 else 0 for r in range(L)], initial_state=0
    )


def bernoulli_transition_source(name: str, transition_density: float) -> IIDSource:
    """Memoryless transition source (no run-length limit)."""
    if not 0.0 < transition_density <= 1.0:
        raise ValueError("transition_density must be in (0, 1]")
    return IIDSource(
        name,
        DiscreteDistribution([0.0, 1.0], [1.0 - transition_density, transition_density]),
    )


def nrz_bit_source(
    name: str,
    transition_density: float,
    max_run_length: int,
) -> MarkovSource:
    """Bit-level run-length-limited source (emits the bit, not the indicator).

    Hidden state ``(bit, r)``; used with phase detectors that carry
    previous-data state (the paper's Figure 2 shows "Prev Data" as a phase
    detector input).
    """
    if not 0.0 < transition_density <= 1.0:
        raise ValueError("transition_density must be in (0, 1]")
    if max_run_length < 1:
        raise ValueError("max_run_length must be at least 1")
    L = int(max_run_length)
    n = 2 * L  # state (bit, r) -> index bit * L + r
    P = np.zeros((n, n))
    for bit in range(2):
        for r in range(L):
            i = bit * L + r
            p_t = 1.0 if r == L - 1 else transition_density
            P[i, (1 - bit) * L + 0] = p_t
            if r < L - 1:
                P[i, bit * L + (r + 1)] = 1.0 - p_t
    chain = MarkovChain(P)
    return MarkovSource(
        name,
        chain,
        emit=[i // L for i in range(n)],
        initial_state=0,
    )


def stationary_transition_density(source: MarkovSource) -> float:
    """Exact stationary probability that a symbol is a transition.

    For transition-indicator sources this is the stationary mass of the
    emitting states; a useful closed-loop check against the requested
    density (they differ when the run-length limit binds).
    """
    from repro.markov.solvers.direct import solve_direct

    eta = solve_direct(source.chain.P).distribution
    return float(
        sum(eta[i] for i in range(source.n_states) if source.symbol(i) == 1)
    )
