"""Phase detector models.

"The phase detector is simply modeled as a memoryless nonlinear function
which produces the signum of its input at the output" (paper, Eq. (1)),
refined in the compositional model (Figure 2) to an FSM with present data,
previous data, and the eye-opening noise ``n_w`` as inputs, producing a
three-valued output: LAG, LEAD and NULL.

Output convention (matching Eq. (1)'s negative feedback
``Phi_{k+1} = Phi_k - G sgn(Phi_k + n_w) + n_r``):

* ``+1`` (LAG): the recovered clock samples *late* (``Phi + n_w > 0``);
  the loop should step the phase select *down* (earlier phase).
* ``-1`` (LEAD): the clock samples early; step *up*.
* ``0`` (NULL): no data transition, or the noisy phase error is exactly
  zero -- no information.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.fsm.machine import FSM

__all__ = [
    "PD_LAG",
    "PD_LEAD",
    "PD_NULL",
    "PD_LABELS",
    "bang_bang_decision",
    "bang_bang_phase_detector",
    "alexander_phase_detector",
]

PD_LAG = 1
PD_NULL = 0
PD_LEAD = -1

PD_LABELS = {PD_LAG: "LAG", PD_NULL: "NULL", PD_LEAD: "LEAD"}


def bang_bang_decision(transition: int, noisy_phase_ui: float) -> int:
    """The memoryless decision: ``sgn(Phi + n_w)`` gated by a transition."""
    if not transition:
        return PD_NULL
    if noisy_phase_ui > 0.0:
        return PD_LAG
    if noisy_phase_ui < 0.0:
        return PD_LEAD
    return PD_NULL


def bang_bang_phase_detector(name: str = "pd") -> FSM:
    """Memoryless bang-bang phase detector as a single-state Mealy FSM.

    Input: ``(transition, noisy_phase_ui)`` where ``transition`` is the
    data-transition indicator and ``noisy_phase_ui`` is ``Phi + n_w``.
    Output: +1 / 0 / -1 (see module docstring).
    """
    def output(_state, inp: Tuple[int, float]) -> int:
        transition, noisy_phase = inp
        return bang_bang_decision(int(transition), float(noisy_phase))

    return FSM(
        name,
        states=[0],
        initial_state=0,
        transition_fn=lambda state, inp: 0,
        output_fn=output,
    )


def alexander_phase_detector(name: str = "pd") -> FSM:
    """Bang-bang detector with previous-data state (paper Figure 2 style).

    Input: ``(bit, noisy_phase_ui)``.  The machine stores the previous
    bit; a transition is declared when the current bit differs.  State
    advances to the current bit each symbol.
    """
    def output(prev_bit, inp: Tuple[int, float]) -> int:
        bit, noisy_phase = inp
        transition = int(bit) != int(prev_bit)
        return bang_bang_decision(int(transition), float(noisy_phase))

    def transition_fn(prev_bit, inp: Tuple[int, float]) -> int:
        bit, _ = inp
        if int(bit) not in (0, 1):
            raise ValueError(f"{name}: data bit must be 0 or 1, got {bit!r}")
        return int(bit)

    return FSM(
        name,
        states=[0, 1],
        initial_state=0,
        transition_fn=transition_fn,
        output_fn=output,
    )
