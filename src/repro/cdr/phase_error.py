"""Discretized phase error: the grid and the phase-accumulator FSM.

"One way to analyze the system ... is using the machinery of discrete-time
Markov chains, which requires that we discretize the phase error and also
the noise sources to obtain a discrete state-space.  The granularity of the
discretization ... is dictated by the number of clock phases and the
magnitude of the noise source n_r" (paper, Section 2).

:class:`PhaseGrid` discretizes one unit interval (UI, one symbol period)
into ``n_points`` equal cells with cell-center values in ``[-1/2, 1/2)``;
phase arithmetic wraps modulo one UI and reports wrap events, which the
model interprets as cycle slips.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.fsm.machine import FSM
from repro.noise.distributions import DiscreteDistribution

__all__ = ["PhaseGrid", "phase_accumulator_fsm"]


class PhaseGrid:
    """A uniform grid over one unit interval of phase error.

    Grid point ``m`` carries the value ``-1/2 + (m + 1/2) * step`` with
    ``step = 1 / n_points`` -- cell centers, symmetric about zero, with no
    atom exactly at the wrap boundary ``+-1/2``.
    """

    __slots__ = ("_n", "_step", "_values")

    def __init__(self, n_points: int) -> None:
        if n_points < 2:
            raise ValueError("phase grid needs at least 2 points")
        self._n = int(n_points)
        self._step = 1.0 / self._n
        self._values = -0.5 + (np.arange(self._n) + 0.5) * self._step
        self._values.setflags(write=False)

    @property
    def n_points(self) -> int:
        return self._n

    @property
    def step(self) -> float:
        """Grid resolution in UI."""
        return self._step

    @property
    def values(self) -> np.ndarray:
        """Phase value of every grid index (read-only)."""
        return self._values

    def value_of(self, index: int) -> float:
        return float(self._values[index])

    def index_of(self, phase_ui: float) -> int:
        """Grid index whose cell contains ``phase_ui`` (after wrapping)."""
        wrapped = self.wrap_value(phase_ui)
        idx = int(np.floor((wrapped + 0.5) / self._step))
        return min(max(idx, 0), self._n - 1)

    def steps_of(self, offset_ui: float) -> int:
        """Nearest whole number of grid steps for a UI offset."""
        return int(round(offset_ui / self._step))

    @staticmethod
    def wrap_value(phase_ui: float) -> float:
        """Wrap a phase value into ``[-1/2, 1/2)``."""
        return (phase_ui + 0.5) % 1.0 - 0.5

    def shift_index(self, index: int, steps: int) -> Tuple[int, int]:
        """Shift a grid index, wrapping modulo the grid.

        Returns ``(new_index, wrap_count)`` where ``wrap_count`` is the
        (signed) number of UI boundaries crossed -- each one a cycle slip.
        """
        raw = index + steps
        # Python floor division gives the signed number of boundary
        # crossings for negative raw indices as well.
        return raw % self._n, raw // self._n

    def shift_indices(self, indices: np.ndarray, steps: int) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`shift_index` over an index array."""
        raw = np.asarray(indices) + steps
        return raw % self._n, np.floor_divide(raw, self._n)

    def quantize_to_steps(self, dist: DiscreteDistribution) -> DiscreteDistribution:
        """Quantize a UI-valued distribution to whole grid steps.

        Returns a distribution whose atom *values are step counts*
        (integers stored as floats).  Uses mean-preserving ``"split"``
        quantization so small drifts below one grid step survive as
        fractional probabilities instead of vanishing -- this is what makes
        the coarse discretization "fine enough to accurately capture the
        small jumps in phase error due to n_r".
        """
        q = dist.quantize(self._step, mode="split")
        return DiscreteDistribution(np.round(q.values / self._step), q.probs)

    def __repr__(self) -> str:
        return f"PhaseGrid(n_points={self._n}, step={self._step:g} UI)"


def phase_accumulator_fsm(
    name: str,
    grid: PhaseGrid,
    phase_step_units: int,
    initial_index: int = None,
) -> FSM:
    """The phase-error accumulator as an FSM for network composition.

    State: the grid index of the current phase error.  Input: a tuple
    ``(direction, drift_steps)`` where ``direction`` in {-1, 0, +1} is the
    loop-filter correction (scaled by ``phase_step_units``, the paper's
    ``G``, "the smallest phase increment available from the internal
    clock") and ``drift_steps`` is the ``n_r`` drift in grid steps.  Moore
    output: the phase value in UI.
    """
    if phase_step_units < 1:
        raise ValueError("phase_step_units must be at least 1")
    if initial_index is None:
        initial_index = grid.n_points // 2
    m0 = int(initial_index)

    def transition(state, inp):
        direction, drift = inp
        new_index, _wraps = grid.shift_index(
            state, -phase_step_units * int(direction) + int(drift)
        )
        return new_index

    return FSM.moore(
        name,
        states=list(range(grid.n_points)),
        initial_state=m0,
        transition_fn=transition,
        state_output_fn=lambda m: grid.value_of(m),
    )
