"""Matrix-free application of the CDR transition operator.

Explicit sparse storage is the paper's admitted bottleneck: "For now, we
use explicit sparse storage ... which allows solving models of practical
clock recovery circuits with [~1e5] states.  For solving more complex
models, we are looking into using hierarchical generalized
Kronecker-algebra ... representations."

:class:`CDRTransitionOperator` is that direction realized for this model
class: it applies ``x -> P^T x`` (and ``v -> P v``) directly from the
model's *structure* -- the small (data-state, decision, counter, drift)
alphabet and circular phase shifts -- without ever materializing the
matrix.  Memory is ``O(n)`` for a handful of work vectors instead of
``O(nnz)``; per-application cost is the same ``O(nnz)`` arithmetic, done
as vectorized block-roll operations.

Combined with the matrix-free power iteration this pushes the feasible
model size to tens of millions of states on a laptop (the assembled
matrix for 1e7 states at ~9 nnz/row would already need multiple GB).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.cdr.data_source import transition_run_length_source
from repro.cdr.loop_filter import counter_state_count
from repro.cdr.model import _sign_masses
from repro.cdr.phase_error import PhaseGrid
from repro.fsm.stochastic import MarkovSource
from repro.markov.solvers.result import StationaryResult, prepare_initial_guess
from repro.noise.distributions import DiscreteDistribution
from repro.obs import get_registry, span

__all__ = ["CDRTransitionOperator"]


class CDRTransitionOperator:
    """The CDR chain's transition operator, applied without assembly.

    Parameters are identical to :func:`repro.cdr.model.build_cdr_chain`;
    the operator is mathematically the same matrix (a test invariant).
    """

    def __init__(
        self,
        grid: PhaseGrid,
        nw: DiscreteDistribution,
        nr: DiscreteDistribution,
        counter_length: int,
        phase_step_units: int,
        data_source: Optional[MarkovSource] = None,
        transition_density: float = 0.5,
        max_run_length: int = 3,
    ) -> None:
        if counter_length < 1:
            raise ValueError("counter_length must be at least 1")
        if phase_step_units < 1:
            raise ValueError("phase_step_units must be at least 1")
        if data_source is None:
            data_source = transition_run_length_source(
                "data", transition_density, max_run_length
            )
        self.grid = grid
        self.nw = nw
        self.data_source = data_source
        self.counter_length = int(counter_length)
        self.phase_step_units = int(phase_step_units)
        self.nr_steps = grid.quantize_to_steps(nr)
        if self.phase_step_units + int(np.max(np.abs(self.nr_steps.values))) >= grid.n_points:
            raise ValueError("phase moves exceed the grid size")
        self._masses = _sign_masses(grid, nw)
        with span("cdr.compile_operator") as op_span:
            self._terms = self._compile_terms()
            op_span.set_attributes(n_states=self.n, n_terms=len(self._terms))
        get_registry().counter(
            "repro_operator_compiles_total",
            "Matrix-free CDR operators compiled",
        ).inc()

    # ------------------------------------------------------------------ #

    @property
    def M(self) -> int:
        return self.grid.n_points

    @property
    def C(self) -> int:
        return counter_state_count(self.counter_length)

    @property
    def D(self) -> int:
        return self.data_source.n_states

    @property
    def n(self) -> int:
        """Global state count."""
        return self.D * self.C * self.M

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    def _compile_terms(self) -> List[Tuple[int, int, int, int, Optional[np.ndarray], float]]:
        """Flatten the transition structure into per-block roll terms.

        Each term is ``(src_block, dst_block, shift, q_vec, scalar)``:
        probability-weighted mass moves from phase-vector block
        ``(d, c)`` to block ``(d', c')`` with a circular shift, where
        ``q_vec`` is the per-phase decision mass (or None for 1) and
        ``scalar`` collects the data/drift probabilities.  Blocks are
        indexed ``d * C + c``.
        """
        N = self.counter_length
        C = self.C
        g = self.phase_step_units
        terms = []
        ones = None
        for d in range(self.D):
            t = self.data_source.symbol(d)
            branches = self.data_source.branches(d)
            decisions = (
                [(1, self._masses[1]), (0, self._masses[0]), (-1, self._masses[-1])]
                if t == 1
                else [(0, ones)]
            )
            for c in range(C):
                c_val = c - (N - 1)
                for o, q_vec in decisions:
                    v = c_val + o
                    if v >= N:
                        direction, c_next_val = 1, 0
                    elif v <= -N:
                        direction, c_next_val = -1, 0
                    else:
                        direction, c_next_val = 0, v
                    c_next = c_next_val + (N - 1)
                    for r_steps, q_r in zip(
                        self.nr_steps.values, self.nr_steps.probs
                    ):
                        shift = -g * direction + int(r_steps)
                        for d_next, p_d in branches:
                            terms.append(
                                (
                                    d * C + c,
                                    d_next * C + c_next,
                                    shift,
                                    q_vec,
                                    float(q_r * p_d),
                                )
                            )
        return terms

    # ------------------------------------------------------------------ #
    # operator applications
    # ------------------------------------------------------------------ #

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``P^T x``: propagate a (row) distribution one symbol forward.

        Mass in source block ``b`` at phase ``m`` lands in destination
        block ``b'`` at phase ``(m + shift) mod M`` -- a circular roll.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(f"vector must have shape ({self.n},)")
        M = self.M
        xb = x.reshape(-1, M)
        out = np.zeros_like(xb)
        for src, dst, shift, q_vec, scalar in self._terms:
            contrib = xb[src] if q_vec is None else xb[src] * q_vec
            out[dst] += scalar * np.roll(contrib, shift)
        return out.ravel()

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``P v`` (adjoint of :meth:`rmatvec`)."""
        v = np.asarray(v, dtype=float)
        if v.shape != (self.n,):
            raise ValueError(f"vector must have shape ({self.n},)")
        M = self.M
        vb = v.reshape(-1, M)
        out = np.zeros_like(vb)
        for src, dst, shift, q_vec, scalar in self._terms:
            pulled = scalar * np.roll(vb[dst], -shift)
            out[src] += pulled if q_vec is None else pulled * q_vec
        return out.ravel()

    def as_linear_operator(self):
        """scipy ``LinearOperator`` view (for Krylov methods)."""
        from scipy.sparse.linalg import LinearOperator

        return LinearOperator(
            self.shape, matvec=self.matvec, rmatvec=self.rmatvec, dtype=float
        )

    # ------------------------------------------------------------------ #
    # matrix-free stationary solve
    # ------------------------------------------------------------------ #

    def stationary_power(
        self,
        tol: float = 1e-10,
        max_iter: int = 100_000,
        x0: Optional[np.ndarray] = None,
        damping: float = 1.0,
    ) -> StationaryResult:
        """Matrix-free power iteration for the stationary distribution."""
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        x = prepare_initial_guess(self.n, x0)
        start = time.perf_counter()
        history = []
        converged = False
        it = 0
        with span("cdr.operator.stationary_power", n_states=self.n) as mf_span:
            for it in range(1, max_iter + 1):
                y = self.rmatvec(x)
                if damping != 1.0:
                    y = damping * y + (1.0 - damping) * x
                y /= y.sum()
                res = float(np.abs(self.rmatvec(y) - y).sum())
                history.append(res)
                x = y
                if res < tol:
                    converged = True
                    break
            mf_span.set_attributes(
                iterations=it,
                residual=history[-1] if history else float("nan"),
                converged=converged,
            )
        elapsed = time.perf_counter() - start
        return StationaryResult(
            distribution=x,
            iterations=it,
            residual=history[-1] if history else float("nan"),
            converged=converged,
            method="matrix-free-power",
            residual_history=history,
            solve_time=elapsed,
        )

    def phase_marginal(self, distribution: np.ndarray) -> np.ndarray:
        """Marginal over the phase axis (matches the assembled model's)."""
        distribution = np.asarray(distribution, dtype=float)
        return distribution.reshape(-1, self.M).sum(axis=0)

    def __repr__(self) -> str:
        return (
            f"CDRTransitionOperator(n={self.n}, D={self.D}, C={self.C}, "
            f"M={self.M}, terms={len(self._terms)})"
        )
