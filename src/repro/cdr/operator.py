"""Matrix-free application of the CDR transition operator.

Explicit sparse storage is the paper's admitted bottleneck: "For now, we
use explicit sparse storage ... which allows solving models of practical
clock recovery circuits with [~1e5] states.  For solving more complex
models, we are looking into using hierarchical generalized
Kronecker-algebra ... representations."

:class:`CDRTransitionOperator` is that direction realized for this model
class: it applies ``x -> P^T x`` (and ``v -> P v``) directly from the
model's *structure* -- the small (data-state, decision, counter, drift)
alphabet and circular phase shifts -- without ever materializing the
matrix.  Memory is ``O(n)`` for a handful of work vectors instead of
``O(nnz)``; per-application cost is the same ``O(nnz)`` arithmetic, done
as vectorized block-roll operations.

Combined with the matrix-free power iteration this pushes the feasible
model size to tens of millions of states on a laptop (the assembled
matrix for 1e7 states at ~9 nnz/row would already need multiple GB).
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.cdr.data_source import transition_run_length_source
from repro.cdr.loop_filter import counter_state_count
from repro.cdr.model import _sign_masses
from repro.cdr.phase_error import PhaseGrid
from repro.fsm.stochastic import MarkovSource
from repro.kernels import RollPlan, as_apply_block, as_apply_vector, get_kernel
from repro.markov.lumping import Partition, prepare_block_weights
from repro.markov.multigrid import CoarseningStrategy, pairing_hierarchy
from repro.markov.solvers.result import StationaryResult
from repro.noise.distributions import DiscreteDistribution
from repro.obs import get_registry, span

__all__ = ["CDRTransitionOperator"]

#: Terms per chunk when aggregating the Galerkin coarse operator; bounds
#: the transient COO triplet storage at ~_RESTRICT_CHUNK * M entries.
_RESTRICT_CHUNK = 128


class CDRTransitionOperator:
    """The CDR chain's transition operator, applied without assembly.

    Parameters are identical to :func:`repro.cdr.model.build_cdr_chain`;
    the operator is mathematically the same matrix (a test invariant).
    """

    def __init__(
        self,
        grid: PhaseGrid,
        nw: DiscreteDistribution,
        nr: DiscreteDistribution,
        counter_length: int,
        phase_step_units: int,
        data_source: Optional[MarkovSource] = None,
        transition_density: float = 0.5,
        max_run_length: int = 3,
    ) -> None:
        if counter_length < 1:
            raise ValueError("counter_length must be at least 1")
        if phase_step_units < 1:
            raise ValueError("phase_step_units must be at least 1")
        if data_source is None:
            data_source = transition_run_length_source(
                "data", transition_density, max_run_length
            )
        self.grid = grid
        self.nw = nw
        self.data_source = data_source
        self.counter_length = int(counter_length)
        self.phase_step_units = int(phase_step_units)
        self.nr_steps = grid.quantize_to_steps(nr)
        if self.phase_step_units + int(np.max(np.abs(self.nr_steps.values))) >= grid.n_points:
            raise ValueError("phase moves exceed the grid size")
        self._masses = _sign_masses(grid, nw)
        with span("cdr.compile_operator") as op_span:
            self._terms = self._compile_terms()
            self._plan = RollPlan(self._terms, self.D * self.C, self.M)
            self._kernel = get_kernel()
            op_span.set_attributes(
                n_states=self.n,
                n_terms=len(self._terms),
                n_roll_terms=self._plan.n_terms,
                kernel_tier=self._kernel.name,
            )
        self._diag: Optional[np.ndarray] = None
        self._ones: Optional[np.ndarray] = None
        get_registry().counter(
            "repro_operator_compiles_total",
            "Matrix-free CDR operators compiled",
        ).inc()

    # ------------------------------------------------------------------ #

    @property
    def M(self) -> int:
        return self.grid.n_points

    @property
    def C(self) -> int:
        return counter_state_count(self.counter_length)

    @property
    def D(self) -> int:
        return self.data_source.n_states

    @property
    def n(self) -> int:
        """Global state count."""
        return self.D * self.C * self.M

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    def _compile_terms(self) -> List[Tuple[int, int, int, int, Optional[np.ndarray], float]]:
        """Flatten the transition structure into per-block roll terms.

        Each term is ``(src_block, dst_block, shift, q_vec, scalar)``:
        probability-weighted mass moves from phase-vector block
        ``(d, c)`` to block ``(d', c')`` with a circular shift, where
        ``q_vec`` is the per-phase decision mass (or None for 1) and
        ``scalar`` collects the data/drift probabilities.  Blocks are
        indexed ``d * C + c``.
        """
        N = self.counter_length
        C = self.C
        g = self.phase_step_units
        terms = []
        ones = None
        for d in range(self.D):
            t = self.data_source.symbol(d)
            branches = self.data_source.branches(d)
            decisions = (
                [(1, self._masses[1]), (0, self._masses[0]), (-1, self._masses[-1])]
                if t == 1
                else [(0, ones)]
            )
            for c in range(C):
                c_val = c - (N - 1)
                for o, q_vec in decisions:
                    v = c_val + o
                    if v >= N:
                        direction, c_next_val = 1, 0
                    elif v <= -N:
                        direction, c_next_val = -1, 0
                    else:
                        direction, c_next_val = 0, v
                    c_next = c_next_val + (N - 1)
                    for r_steps, q_r in zip(
                        self.nr_steps.values, self.nr_steps.probs
                    ):
                        shift = -g * direction + int(r_steps)
                        for d_next, p_d in branches:
                            terms.append(
                                (
                                    d * C + c,
                                    d_next * C + c_next,
                                    shift,
                                    q_vec,
                                    float(q_r * p_d),
                                )
                            )
        return terms

    # ------------------------------------------------------------------ #
    # operator applications
    # ------------------------------------------------------------------ #

    @property
    def kernel_tier(self) -> str:
        """Name of the kernel tier this operator applies through."""
        return self._kernel.name

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``P^T x``: propagate a (row) distribution one symbol forward.

        Mass in source block ``b`` at phase ``m`` lands in destination
        block ``b'`` at phase ``(m + shift) mod M`` -- a circular roll,
        executed as contiguous-slice segments by the active kernel tier
        (bit-identical to applying ``to_csr().T``).  A C-contiguous
        float64 ``x`` is consumed without copying.
        """
        x = as_apply_vector(x, self.n)
        out = np.zeros(self.n)
        self._kernel.roll_apply(self._plan.q, self._plan.scatter, x, out)
        return out

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``P v`` (adjoint of :meth:`rmatvec`)."""
        v = as_apply_vector(v, self.n)
        out = np.zeros(self.n)
        self._kernel.roll_apply(self._plan.q, self._plan.gather, v, out)
        return out

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        """``P^T X`` for an ``(n, k)`` block of vectors in one pass.

        The blocked kernels stream the weight table once per segment for
        all ``k`` columns, amortizing the weight/index traffic that a
        column-at-a-time loop would re-read ``k`` times; column ``j`` of
        the result is bit-identical to ``rmatvec(X[:, j])``.
        """
        X = as_apply_block(X, self.n)
        out = np.zeros_like(X)
        self._kernel.roll_apply(self._plan.q, self._plan.scatter, X, out)
        return out

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """``P V`` for an ``(n, k)`` block (adjoint of :meth:`rmatmat`)."""
        V = as_apply_block(V, self.n)
        out = np.zeros_like(V)
        self._kernel.roll_apply(self._plan.q, self._plan.gather, V, out)
        return out

    def as_linear_operator(self):
        """scipy ``LinearOperator`` view (for Krylov methods)."""
        from scipy.sparse.linalg import LinearOperator

        return LinearOperator(
            self.shape, matvec=self.matvec, rmatvec=self.rmatvec,
            matmat=self.matmat, rmatmat=self.rmatmat, dtype=float,
        )

    # ------------------------------------------------------------------ #
    # structural queries (TransitionOperator protocol)
    # ------------------------------------------------------------------ #

    def diagonal(self) -> np.ndarray:
        """``diag(P)`` from the term structure (for Jacobi splittings).

        Computed once from the terms and cached readonly: Jacobi/multigrid
        smoothers call this every sweep, and rebuilding the block scratch
        array per call was pure waste (ROADMAP item 1 bugfix sweep).
        """
        if self._diag is None:
            M = self.M
            diag = np.zeros((self.D * self.C, M))
            for src, dst, shift, q_vec, scalar in self._terms:
                if src == dst and shift % M == 0:
                    diag[src] += scalar * (q_vec if q_vec is not None else 1.0)
            diag = diag.ravel()
            diag.flags.writeable = False
            self._diag = diag
        return self._diag

    def row_sums(self) -> np.ndarray:
        """``P 1`` -- all ones for this stochastic-by-construction chain.

        The chain is row-stochastic by construction (decision masses and
        branch/drift probabilities each sum to one), so this returns a
        cached readonly ones vector instead of running a full
        ``matvec(ones)`` on every call -- solver preambles and residual
        checks call it per solve, which made it a measurable hot-path tax.
        Use :meth:`stochasticity_defect` to *verify* ``P 1 = 1``
        numerically (the test suite does).
        """
        if self._ones is None:
            ones = np.ones(self.n)
            ones.flags.writeable = False
            self._ones = ones
        return self._ones

    def stochasticity_defect(self) -> float:
        """``max |P 1 - 1|`` computed by an actual matvec (guard check).

        :meth:`row_sums` answers from structure; this is the numerical
        verification that the compiled plan really is row-stochastic.
        """
        return float(np.abs(self.matvec(np.ones(self.n)) - 1.0).max())

    def to_csr(self) -> sp.csr_matrix:
        """Materialize the explicit CSR matrix (identical to the builder's).

        Only needed by solvers that require the assembled sparsity pattern;
        costs the O(nnz) memory the operator otherwise avoids.  Built from
        the coalesced plan so the matrix and the kernels agree bit for bit
        (same merged values, same per-row column order).
        """
        return self._plan.to_csr()

    def restrict(
        self, partition: Partition, weights: Optional[np.ndarray] = None
    ) -> sp.csr_matrix:
        """Weighted Galerkin coarse operator, built without assembling ``P``.

        Numerically equivalent (up to summation order) to
        ``lumped_tpm(self.to_csr(), partition, weights)`` -- the multigrid
        coarse-level construction -- but the fine matrix never exists: each
        roll term contributes its ``M`` COO triplets directly in coarse
        block coordinates, aggregated in chunks of :data:`_RESTRICT_CHUNK`
        terms so transient memory stays O(chunk * M), not O(nnz).
        """
        if partition.n_states != self.n:
            raise ValueError("partition size does not match operator size")
        w, block_mass = prepare_block_weights(partition, weights)
        block = partition.block_of
        nb = partition.n_blocks
        M = self.M
        m_idx = np.arange(M)
        acc = sp.csr_matrix((nb, nb))
        rows_c: List[np.ndarray] = []
        cols_c: List[np.ndarray] = []
        vals_c: List[np.ndarray] = []

        def flush() -> sp.csr_matrix:
            chunk = sp.coo_matrix(
                (
                    np.concatenate(vals_c),
                    (np.concatenate(rows_c), np.concatenate(cols_c)),
                ),
                shape=(nb, nb),
            ).tocsr()
            rows_c.clear()
            cols_c.clear()
            vals_c.clear()
            return chunk

        for src, dst, shift, q_vec, scalar in self._terms:
            rows = src * M + m_idx
            cols = dst * M + (m_idx + shift) % M
            vals = (np.full(M, scalar) if q_vec is None else scalar * q_vec)
            rows_c.append(block[rows])
            cols_c.append(block[cols])
            vals_c.append(vals * w[rows])
            if len(rows_c) >= _RESTRICT_CHUNK:
                acc = acc + flush()
        if rows_c:
            acc = acc + flush()
        acc.sum_duplicates()
        return sp.diags(1.0 / block_mass).dot(acc).tocsr()

    def structure_token(self):
        """Hashable structure identity (noise probabilities excluded).

        Two operators with equal tokens have identical state layouts and
        branch/shift structure, so a coarsening hierarchy or warm-start
        vector built for one is valid for the other -- this is what lets
        sweep points differing only in ``nw_std``/``nr`` rates share one
        cached hierarchy (see :func:`repro.markov.context.structural_digest`).
        The decision masses ``q_vec`` and the drift/data ``scalar``
        weights are *values*, not structure, and are deliberately left
        out; what remains is the (src, dst, shift) roll topology.
        """
        return (
            "cdr",
            self.D,
            self.C,
            self.M,
            self.counter_length,
            self.phase_step_units,
            tuple(
                (src, dst, shift % self.M, q_vec is None)
                for src, dst, shift, q_vec, _ in self._terms
            ),
        )

    def slip_row_sums(self) -> np.ndarray:
        """Per-state probability of a phase-wrap (cycle-slip) transition.

        Matches ``slip_matrix.sum(axis=1)`` of the assembled model: a term
        with circular shift ``s > 0`` wraps exactly for source phases
        ``m >= M - s`` and ``s < 0`` for ``m < -s`` (same convention as
        ``PhaseGrid.shift_indices``).  This is all
        :func:`~repro.markov.passage.stationary_event_rate` needs, so slip
        rate and MTBF work without the slip matrix ever existing.
        """
        M = self.M
        out = np.zeros((self.D * self.C, M))
        m_idx = np.arange(M)
        for src, dst, shift, q_vec, scalar in self._terms:
            if shift == 0:
                continue
            wrapped = (m_idx >= M - shift) if shift > 0 else (m_idx < -shift)
            if not np.any(wrapped):
                continue
            if q_vec is None:
                out[src, wrapped] += scalar
            else:
                out[src, wrapped] += scalar * q_vec[wrapped]
        return out.ravel()

    def to_kronecker(self):
        """Kronecker/SAN descriptor of the same matrix over ``[D, C, M]``.

        One descriptor term per (data state, decision, drift atom): a
        ``D x D`` data-branch factor, a single-entry counter factor and a
        shifted-diagonal phase factor, with the drift probability as the
        coefficient.  The sum of terms reproduces the chain exactly (a
        test invariant), which is what makes the ``kronecker`` backend a
        drop-in for the matrix-free one.
        """
        from repro.fsm.kronecker import KroneckerDescriptor

        N = self.counter_length
        C, D, M = self.C, self.D, self.M
        g = self.phase_step_units
        desc = KroneckerDescriptor([D, C, M])
        m_idx = np.arange(M)
        for d in range(D):
            t = self.data_source.symbol(d)
            branches = self.data_source.branches(d)
            d_next_idx = np.array([b[0] for b in branches])
            d_probs = np.array([b[1] for b in branches], dtype=float)
            data_factor = sp.csr_matrix(
                (d_probs, (np.full(len(branches), d), d_next_idx)),
                shape=(D, D),
            )
            decisions = (
                [(1, self._masses[1]), (0, self._masses[0]), (-1, self._masses[-1])]
                if t == 1
                else [(0, None)]
            )
            for c in range(C):
                c_val = c - (N - 1)
                for o, q_vec in decisions:
                    v = c_val + o
                    if v >= N:
                        direction, c_next_val = 1, 0
                    elif v <= -N:
                        direction, c_next_val = -1, 0
                    else:
                        direction, c_next_val = 0, v
                    c_next = c_next_val + (N - 1)
                    counter_factor = sp.csr_matrix(
                        ([1.0], ([c], [c_next])), shape=(C, C)
                    )
                    for r_steps, q_r in zip(
                        self.nr_steps.values, self.nr_steps.probs
                    ):
                        shift = -g * direction + int(r_steps)
                        phase_vals = (
                            np.full(M, 1.0) if q_vec is None else q_vec
                        )
                        phase_factor = sp.csr_matrix(
                            (phase_vals, (m_idx, (m_idx + shift) % M)),
                            shape=(M, M),
                        )
                        desc.add_term(
                            [data_factor, counter_factor, phase_factor],
                            coefficient=float(q_r),
                        )
        return desc

    # ------------------------------------------------------------------ #
    # multigrid coarsening (the paper's phase-pairing strategy)
    # ------------------------------------------------------------------ #

    def phase_pairing_partitions(
        self, coarsest_phase_points: int = 8
    ) -> List[Partition]:
        """The paper's coarsening: lump consecutive phase grid values.

        Identical to
        :meth:`repro.cdr.model.CDRChainModel.phase_pairing_partitions`, so
        matrix-free multigrid coarsens exactly like the assembled solve.
        """
        from repro.cdr.model import phase_pairing_partitions

        return phase_pairing_partitions(
            self.D * self.C, self.M, coarsest_phase_points
        )

    def multigrid_strategy(
        self, coarsest_phase_points: int = 8
    ) -> CoarseningStrategy:
        """A ready-to-use coarsening strategy for the multigrid solver."""
        return pairing_hierarchy(
            self.phase_pairing_partitions(coarsest_phase_points)
        )

    # ------------------------------------------------------------------ #
    # matrix-free stationary solve (deprecated shim)
    # ------------------------------------------------------------------ #

    def stationary_power(
        self,
        tol: float = 1e-10,
        max_iter: int = 100_000,
        x0: Optional[np.ndarray] = None,
        damping: float = 1.0,
    ) -> StationaryResult:
        """Deprecated: use ``stationary_distribution(op, method="power")``.

        The private power loop is gone; this shim delegates to the solver
        registry so matrix-free solves emit the same
        ``repro.solver-trace/1`` telemetry as assembled ones.  The result's
        ``method`` is now ``"power"`` (previously ``"matrix-free-power"``).
        """
        warnings.warn(
            "CDRTransitionOperator.stationary_power is deprecated; use "
            "repro.markov.stationary_distribution(operator, method='power') "
            "(same matrix-free solve, uniform solver telemetry)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.markov.stationary import stationary_distribution

        return stationary_distribution(
            self,
            method="power",
            tol=tol,
            max_iter=max_iter,
            x0=x0,
            damping=damping,
        )

    def phase_marginal(self, distribution: np.ndarray) -> np.ndarray:
        """Marginal over the phase axis (matches the assembled model's)."""
        distribution = np.asarray(distribution, dtype=float)
        return distribution.reshape(-1, self.M).sum(axis=0)

    def __repr__(self) -> str:
        return (
            f"CDRTransitionOperator(n={self.n}, D={self.D}, C={self.C}, "
            f"M={self.M}, terms={len(self._terms)})"
        )
