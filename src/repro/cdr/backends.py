"""Pluggable TPM backends: how a :class:`~repro.core.spec.CDRSpec` becomes
a solvable model.

The paper's pipeline always *assembled* the transition matrix ("For now,
we use explicit sparse storage ...").  This module registers three ways of
realizing the same operator, selected by the spec's ``backend`` field (or
the analyzer/CLI override):

``assembled``
    The vectorized sparse builder (:func:`repro.cdr.model.build_cdr_chain`);
    memory ``O(nnz)``, every solver available.
``matrix-free``
    A compiled :class:`~repro.cdr.operator.CDRTransitionOperator` applied
    structurally; memory ``O(n)``, iterative solvers only (``direct`` /
    ``arnoldi`` raise :class:`~repro.markov.linop.OperatorCapabilityError`
    unless the operator is asked to materialize).
``kronecker``
    The stochastic-automata-network descriptor
    (:meth:`~repro.cdr.operator.CDRTransitionOperator.to_kronecker`):
    matvecs run factor-by-factor via the shuffle algorithm; structural
    queries (diagonal, row sums, Galerkin restriction, slip flux) delegate
    to the compiled operator, which shares the exact term structure.

All three produce objects the analyzer treats uniformly: the assembled
backend returns the classic :class:`~repro.cdr.model.CDRChainModel`; the
matrix-free ones return an :class:`OperatorCDRModel` facade with the same
measure-facing surface (``phase_marginal``, ``slip_row_sums``,
``multigrid_strategy``, grid/noise metadata) but whose ``chain`` is a
:class:`~repro.markov.linop.TransitionOperator`, never a matrix.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.cdr.operator import CDRTransitionOperator
from repro.markov.lumping import Partition
from repro.markov.multigrid import CoarseningStrategy
from repro.markov.registry import register_backend
from repro.obs import span

__all__ = ["OperatorCDRModel", "KroneckerCDROperator"]


class KroneckerCDROperator:
    """Kronecker-descriptor view of the CDR chain, protocol-complete.

    Matrix applications go through the
    :class:`~repro.fsm.kronecker.KroneckerDescriptor` (shuffle algorithm);
    structural queries that the descriptor cannot answer cheaply
    (``restrict``, ``slip_row_sums``, the coarsening hierarchy) fall back
    to the structural operator the descriptor was compiled from -- both
    represent the identical matrix (a test invariant).
    """

    def __init__(self, structural: CDRTransitionOperator) -> None:
        self._structural = structural
        self.descriptor = structural.to_kronecker()
        self._diag: Optional[np.ndarray] = None
        self._row_sums: Optional[np.ndarray] = None

    @property
    def shape(self) -> Tuple[int, int]:
        return self.descriptor.shape

    @property
    def n(self) -> int:
        return self.descriptor.n

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self.descriptor.matvec(v)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self.descriptor.rmatvec(x)

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """Blocked ``P V``: one shuffle pass per term for all columns."""
        return self.descriptor.matmat(V)

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        """Blocked ``P^T X`` through the descriptor's cached transposes."""
        return self.descriptor.rmatmat(X)

    def diagonal(self) -> np.ndarray:
        """``diag(P)``, computed once per backend instance (readonly).

        Smoothers call this every sweep; the descriptor recomputes the
        factor-diagonal Kronecker products per call, so cache here.
        """
        if self._diag is None:
            diag = self.descriptor.diagonal()
            diag.flags.writeable = False
            self._diag = diag
        return self._diag

    def row_sums(self) -> np.ndarray:
        """``P 1``, computed once per backend instance (readonly)."""
        if self._row_sums is None:
            rows = self.descriptor.row_sums()
            rows.flags.writeable = False
            self._row_sums = rows
        return self._row_sums

    def to_csr(self) -> sp.csr_matrix:
        # The descriptor's materialization keeps the Kronecker size guard
        # (OperatorCapabilityError above 1e5 states).
        return self.descriptor.to_csr()

    def restrict(
        self, partition: Partition, weights: Optional[np.ndarray] = None
    ) -> sp.csr_matrix:
        return self._structural.restrict(partition, weights)

    def slip_row_sums(self) -> np.ndarray:
        return self._structural.slip_row_sums()

    def phase_marginal(self, distribution: np.ndarray) -> np.ndarray:
        return self._structural.phase_marginal(distribution)

    def phase_pairing_partitions(
        self, coarsest_phase_points: int = 8
    ) -> List[Partition]:
        return self._structural.phase_pairing_partitions(coarsest_phase_points)

    def multigrid_strategy(
        self, coarsest_phase_points: int = 8
    ) -> CoarseningStrategy:
        return self._structural.multigrid_strategy(coarsest_phase_points)

    def __repr__(self) -> str:
        return (
            f"KroneckerCDROperator(n={self.n}, "
            f"terms={self.descriptor.n_terms})"
        )


class OperatorCDRModel:
    """Analyzer-facing facade over a matrix-free CDR operator.

    Mirrors the measure-facing surface of
    :class:`~repro.cdr.model.CDRChainModel` -- grid/noise metadata,
    ``phase_marginal``, slip flux, the multigrid coarsening -- but its
    ``chain`` attribute is the transition *operator*: anything downstream
    that needs the explicit matrix must go through the operator's
    ``to_csr`` capability (and pays the memory the backend exists to
    avoid).  ``slip_matrix`` is always ``None``; slip measures use
    :meth:`slip_row_sums`.
    """

    #: Matrix-free backends never build the sparse slip-flux matrix.
    slip_matrix = None

    def __init__(
        self,
        operator,
        *,
        backend: str,
        form_time: float,
        grid,
        nw,
        nr_steps,
        data_source,
        counter_length: int,
        phase_step_units: int,
    ) -> None:
        self.chain = operator
        self.operator = operator
        self.backend = backend
        self.form_time = float(form_time)
        self.grid = grid
        self.nw = nw
        self.nr_steps = nr_steps
        self.data_source = data_source
        self.counter_length = int(counter_length)
        self.phase_step_units = int(phase_step_units)

    # ------------------------------------------------------------------ #
    # layout / marginals (what repro.core.measures touches)
    # ------------------------------------------------------------------ #

    @property
    def n_states(self) -> int:
        return self.operator.shape[0]

    @property
    def n_phase_points(self) -> int:
        return self.grid.n_points

    def phase_marginal(self, distribution: np.ndarray) -> np.ndarray:
        distribution = np.asarray(distribution, dtype=float)
        if distribution.shape != (self.n_states,):
            raise ValueError("distribution has wrong size")
        return self.operator.phase_marginal(distribution)

    def phase_values_per_state(self) -> np.ndarray:
        blocks = self.n_states // self.grid.n_points
        return np.tile(self.grid.values, blocks)

    def slip_row_sums(self) -> np.ndarray:
        """Per-state cycle-slip flux (replaces ``slip_matrix.sum(axis=1)``)."""
        return self.operator.slip_row_sums()

    # ------------------------------------------------------------------ #
    # multigrid support
    # ------------------------------------------------------------------ #

    def phase_pairing_partitions(
        self, coarsest_phase_points: int = 8
    ) -> List[Partition]:
        return self.operator.phase_pairing_partitions(coarsest_phase_points)

    def multigrid_strategy(
        self, coarsest_phase_points: int = 8
    ) -> CoarseningStrategy:
        return self.operator.multigrid_strategy(coarsest_phase_points)

    def __repr__(self) -> str:
        return (
            f"OperatorCDRModel(backend={self.backend!r}, "
            f"states={self.n_states})"
        )


# ---------------------------------------------------------------------- #
# registered builders (spec -> model)
# ---------------------------------------------------------------------- #

def _structural_operator(spec) -> CDRTransitionOperator:
    return CDRTransitionOperator(
        grid=spec.grid,
        nw=spec.nw_distribution(),
        nr=spec.nr_distribution(),
        counter_length=spec.counter_length,
        phase_step_units=spec.phase_step_units,
        data_source=spec.data_source(),
    )


@register_backend(
    "assembled",
    description="explicit sparse TPM (vectorized builder); every solver",
)
def _build_assembled(spec):
    return spec.build_model()


@register_backend(
    "matrix-free",
    description="structural operator, O(n) memory; iterative solvers only",
)
def _build_matrix_free(spec) -> OperatorCDRModel:
    start = time.perf_counter()
    with span("cdr.build_tpm", backend="matrix-free") as build_span:
        op = _structural_operator(spec)
        build_span.set_attributes(
            n_states=op.n, n_terms=len(op._terms), kernel_tier=op.kernel_tier
        )
    return OperatorCDRModel(
        op,
        backend="matrix-free",
        form_time=time.perf_counter() - start,
        grid=op.grid,
        nw=op.nw,
        nr_steps=op.nr_steps,
        data_source=op.data_source,
        counter_length=op.counter_length,
        phase_step_units=op.phase_step_units,
    )


@register_backend(
    "kronecker",
    description="SAN/Kronecker descriptor matvecs; iterative solvers only",
)
def _build_kronecker(spec) -> OperatorCDRModel:
    start = time.perf_counter()
    with span("cdr.build_tpm", backend="kronecker") as build_span:
        structural = _structural_operator(spec)
        op = KroneckerCDROperator(structural)
        build_span.set_attributes(
            n_states=op.n, n_terms=op.descriptor.n_terms
        )
    return OperatorCDRModel(
        op,
        backend="kronecker",
        form_time=time.perf_counter() - start,
        grid=structural.grid,
        nw=structural.nw,
        nr_steps=structural.nr_steps,
        data_source=structural.data_source,
        counter_length=structural.counter_length,
        phase_step_units=structural.phase_step_units,
    )
