"""Parameter-sweep utilities for CDR design studies.

The paper's Figure 5 is a counter-length sweep ("there is an optimal
counter length for given levels of noise, the computation of which is
enabled by the accurate and efficient analysis method described in the
paper").  These helpers run such sweeps through the high-level analyzer
and return tidy records ready for tabulation.

Sweeps are resilient by construction: a point that fails (solver
diagnosis, worker death) is recorded in :attr:`SweepResult.failed_points`
and the sweep continues -- a 40-point study no longer dies at point 37
with nothing to show.  With ``checkpoint_path`` every completed point is
persisted immediately (schema ``repro.points/1``) and ``resume=True``
skips already-completed points, replaying their saved records
bit-identically.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.analyzer import analyze_cdr
from repro.core.spec import CDRSpec
from repro.obs import get_registry, span

__all__ = [
    "SweepResult",
    "sweep_parameter",
    "sweep_counter_length",
    "optimal_counter_length",
]


class SweepResult(List[Dict[str, Any]]):
    """Sweep records (a plain list) plus the per-point failure summary.

    Behaves exactly like the list of record dicts older callers iterate
    and index; :attr:`failed_points` carries one entry per failed point
    (``index``, swept ``value``, ``error_type``, ``message``) and
    :attr:`resumed_points` counts records replayed from a checkpoint.
    """

    def __init__(
        self,
        records: Iterable[Dict[str, Any]] = (),
        failed_points: Optional[List[Dict[str, Any]]] = None,
        resumed_points: int = 0,
        context_stats: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(records)
        self.failed_points: List[Dict[str, Any]] = failed_points or []
        self.resumed_points = resumed_points
        #: Hierarchy-cache / warm-start counters of the sweep's
        #: :class:`~repro.markov.SolveContext`; ``None`` for cold sweeps.
        self.context_stats: Optional[Dict[str, Any]] = context_stats
        #: :class:`~repro.exec.ExecStats` dict of the elastic executor
        #: (jobs, retries, timeouts, respawns, ...); ``None`` for serial
        #: sweeps.
        self.exec_stats: Optional[Dict[str, Any]] = None

    @property
    def n_failed(self) -> int:
        return len(self.failed_points)

    def summary(self) -> str:
        parts = [f"{len(self)} points completed"]
        if self.resumed_points:
            parts.append(f"{self.resumed_points} replayed from checkpoint")
        if self.exec_stats:
            es = self.exec_stats
            exec_part = f"{es['jobs']} jobs ({es['mode']})"
            extras = [
                f"{es[k]} {label}"
                for k, label in (
                    ("retries", "retries"), ("timeouts", "timeouts"),
                    ("workers_lost", "workers lost"),
                    ("respawns", "respawns"), ("warm_starts", "warm starts"),
                )
                if es.get(k)
            ]
            if extras:
                exec_part += ": " + ", ".join(extras)
            parts.append(exec_part)
        if self.context_stats:
            cs = self.context_stats
            parts.append(
                f"hierarchy cache {cs['hierarchy_hits']} hits / "
                f"{cs['hierarchy_misses']} misses, "
                f"{cs['warm_starts']} warm starts"
            )
        if self.failed_points:
            kinds = ", ".join(
                f"point {e['index']} ({e['error_type']})"
                for e in self.failed_points
            )
            parts.append(f"{self.n_failed} FAILED: {kinds}")
        return "; ".join(parts)


def _json_safe(value: Any) -> Any:
    """Checkpoint records must round-trip through JSON unchanged."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def _record_from_analysis(parameter: str, value, result) -> Dict[str, Any]:
    return {
        parameter: value,
        "backend": result.backend,
        "ber": result.ber,
        "ber_discrete": result.ber_discrete,
        "slip_rate": result.slip_rate,
        "mean_symbols_between_slips": result.mean_symbols_between_slips,
        "phase_rms": result.phase_rms,
        "n_states": result.n_states,
        "iterations": result.solver_result.iterations,
        "form_time_s": result.build_seconds,
        "solve_time_s": result.solve_seconds,
    }


def sweep_parameter(
    base_spec: CDRSpec,
    parameter: str,
    values: Sequence,
    solver: str = "multigrid",
    tol: float = 1e-10,
    backend: Optional[str] = None,
    resilience=None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    analyze_fn: Optional[Callable[..., Any]] = None,
    solve_context=None,
    warm_start: Optional[bool] = None,
    jobs: Optional[int] = None,
    point_timeout_s: Optional[float] = None,
    max_retries: int = 2,
    exec_config=None,
) -> SweepResult:
    """Analyze ``base_spec`` with ``parameter`` swept over ``values``.

    Returns a :class:`SweepResult` -- a list with one record per
    *successful* value carrying the headline measures and solver
    statistics (the fields of the paper's per-plot annotation lines).
    Each design point runs under a ``cdr.sweep.point`` span (nested in a
    ``cdr.sweep`` root) so a traced sweep shows where the time went.
    ``backend`` overrides the spec's TPM backend for every point.

    A failing point no longer aborts the sweep: its typed error is
    appended to :attr:`SweepResult.failed_points` (and persisted in the
    checkpoint when one is active) and the remaining points still run.
    Only ``KeyboardInterrupt``/``SystemExit`` propagate.

    Parameters
    ----------
    resilience:
        Forwarded to :func:`~repro.core.analyzer.analyze_cdr` -- ``True``
        or a :class:`~repro.resilience.FallbackPolicy` gives every point
        guarded solves with fallback escalation.
    checkpoint_path:
        Per-point progress ledger (``repro.points/1``): every completed
        point is written immediately, so a killed sweep loses at most the
        in-flight point.
    resume:
        Load ``checkpoint_path`` first and skip points already completed
        there (their saved records are returned in place, bit-identically).
        A checkpoint written by a different sweep raises
        :class:`~repro.resilience.CheckpointMismatch`.
    analyze_fn:
        The per-point analysis callable, defaulting to
        :func:`~repro.core.analyzer.analyze_cdr`.  Injection point for the
        fault harness (and for tests that stub the analyzer).
    solve_context:
        A :class:`~repro.markov.SolveContext` shared by every point: one
        coarsening hierarchy per chain *structure* (sweep points that
        differ only in noise parameters share one) and warm starts from
        the nearest solved neighbor (the previously completed point of
        the same structure).  The context's cache statistics land on
        :attr:`SweepResult.context_stats`.
    warm_start:
        ``True`` builds an internal context when none was passed (so
        adjacent points warm-start each other); ``False`` disables warm
        starting on the context for the duration of the sweep (hierarchy
        reuse stays on).  The default, ``None``, enables warm starts
        exactly when a ``solve_context`` is provided -- cold sweeps stay
        bit-identical to earlier releases, which checkpoint replay
        depends on.
    jobs:
        Route the sweep through the elastic process-pool executor
        (:func:`repro.exec.elastic_sweep`) with this many workers.
        ``None`` (the default) keeps the in-process serial loop.  The
        elastic path adds per-point wall-clock timeouts
        (``point_timeout_s``), retry of infrastructure faults with
        exponential backoff (``max_retries``), automatic respawn of
        killed/hung workers with exactly-once requeue of their in-flight
        points, and graceful degradation to serial execution when the
        pool cannot be sustained.  ``solve_context`` cannot be combined
        with ``jobs``: the context's value-driven hierarchy cache would
        make results depend on worker completion order; pass
        ``warm_start=True`` instead to get deterministic warm-start
        lineages across workers.
    point_timeout_s / max_retries / exec_config:
        Elastic-executor knobs (ignored without ``jobs``).
        ``exec_config`` (a :class:`repro.exec.ExecConfig`) overrides
        everything for full control, e.g. heartbeat cadence or the
        retry schedule.
    """
    if jobs is not None or exec_config is not None:
        if solve_context is not None:
            raise ValueError(
                "solve_context cannot be shared across executor workers "
                "(its hierarchy cache is completion-order dependent); use "
                "warm_start=True for deterministic cross-worker warm starts"
            )
        from repro.exec import ExecConfig, elastic_sweep

        if exec_config is None:
            exec_config = ExecConfig(
                jobs=int(jobs), timeout_s=point_timeout_s,
                max_retries=max_retries,
            )
        return elastic_sweep(
            base_spec, parameter, list(values), solver=solver, tol=tol,
            backend=backend, resilience=resilience,
            checkpoint_path=checkpoint_path, resume=resume,
            warm_start=warm_start, analyze_fn=analyze_fn,
            config=exec_config,
        )
    analyze = analyze_cdr if analyze_fn is None else analyze_fn
    if solve_context is None and warm_start:
        from repro.markov.context import SolveContext

        solve_context = SolveContext()
    restore_warm: Optional[bool] = None
    if solve_context is not None and warm_start is False:
        restore_warm = solve_context.warm_start
        solve_context.warm_start = False
    registry = get_registry()
    counter = registry.counter(
        "repro_sweep_points_total", "Design points analyzed by sweeps"
    )
    failure_counter = registry.counter(
        "repro_sweep_point_failures_total", "Sweep points that failed"
    )

    checkpointer = None
    resumed = 0
    if checkpoint_path is not None:
        from repro.core.serialize import spec_to_dict
        from repro.resilience.checkpoint import PointCheckpointer

        job = {
            "kind": "sweep",
            "parameter": parameter,
            "values": [_json_safe(v) for v in values],
            "solver": solver,
            "tol": tol,
            "backend": backend,
            "spec": spec_to_dict(base_spec),
        }
        checkpointer = PointCheckpointer(checkpoint_path, job)
        if resume:
            checkpointer.resume()

    extra_kwargs: Dict[str, Any] = {}
    if resilience is not None:
        extra_kwargs["resilience"] = resilience
    if solve_context is not None:
        extra_kwargs["solve_context"] = solve_context

    records: List[Dict[str, Any]] = []
    failed: List[Dict[str, Any]] = []
    try:
        with span("cdr.sweep", parameter=parameter, n_values=len(values)):
            for index, value in enumerate(values):
                if checkpointer is not None and checkpointer.is_done(index):
                    records.append(checkpointer.completed_record(index))
                    resumed += 1
                    continue
                spec = base_spec.replace(**{parameter: value})
                with span(
                    "cdr.sweep.point", parameter=parameter, value=value
                ) as point_span:
                    try:
                        result = analyze(
                            spec, solver=solver, tol=tol, backend=backend,
                            **extra_kwargs,
                        )
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:  # noqa: BLE001 - per-point isolation
                        from repro.resilience.errors import failure_entry

                        entry = {
                            "index": index,
                            parameter: _json_safe(value),
                            "value": _json_safe(value),
                            **failure_entry(exc),
                        }
                        events = getattr(exc, "attempts", None)
                        if events:
                            entry["attempts"] = events
                        failed.append(entry)
                        failure_counter.inc(error_type=type(exc).__name__)
                        point_span.set_attributes(
                            failed=True, error_type=type(exc).__name__
                        )
                        if checkpointer is not None:
                            checkpointer.record_failure(index, entry)
                        continue
                counter.inc()
                record = _record_from_analysis(parameter, value, result)
                if solve_context is not None:
                    record["warm_started"] = bool(
                        getattr(result.solver_result, "warm_started", False)
                    )
                resilience_events = getattr(result, "resilience_events", None)
                if resilience_events:
                    record["resilience_events"] = resilience_events
                records.append(record)
                if checkpointer is not None:
                    checkpointer.record(index, record)
    finally:
        if restore_warm is not None:
            solve_context.warm_start = restore_warm
    return SweepResult(
        records,
        failed_points=failed,
        resumed_points=resumed,
        context_stats=solve_context.stats() if solve_context is not None else None,
    )


def sweep_counter_length(
    base_spec: CDRSpec,
    counter_lengths: Iterable[int],
    solver: str = "multigrid",
    tol: float = 1e-10,
) -> SweepResult:
    """The Figure-5 experiment: BER as a function of counter length."""
    return sweep_parameter(
        base_spec, "counter_length", list(counter_lengths), solver=solver, tol=tol
    )


def optimal_counter_length(
    base_spec: CDRSpec,
    counter_lengths: Iterable[int],
    solver: str = "multigrid",
    tol: float = 1e-10,
    key: Optional[Callable[[Dict], float]] = None,
) -> Dict:
    """Pick the swept counter length minimizing BER (or a custom key)."""
    records = sweep_counter_length(base_spec, counter_lengths, solver=solver, tol=tol)
    if not records:
        raise ValueError("counter_lengths is empty")
    key = key or (lambda rec: rec["ber"])
    return min(records, key=key)
