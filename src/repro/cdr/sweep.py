"""Parameter-sweep utilities for CDR design studies.

The paper's Figure 5 is a counter-length sweep ("there is an optimal
counter length for given levels of noise, the computation of which is
enabled by the accurate and efficient analysis method described in the
paper").  These helpers run such sweeps through the high-level analyzer
and return tidy records ready for tabulation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.analyzer import analyze_cdr
from repro.core.spec import CDRSpec
from repro.obs import get_registry, span

__all__ = ["sweep_parameter", "sweep_counter_length", "optimal_counter_length"]


def sweep_parameter(
    base_spec: CDRSpec,
    parameter: str,
    values: Sequence,
    solver: str = "multigrid",
    tol: float = 1e-10,
    backend: Optional[str] = None,
) -> List[Dict]:
    """Analyze ``base_spec`` with ``parameter`` swept over ``values``.

    Returns one record per value with the headline measures and solver
    statistics (the fields of the paper's per-plot annotation lines).
    Each design point runs under a ``cdr.sweep.point`` span (nested in a
    ``cdr.sweep`` root) so a traced sweep shows where the time went.
    ``backend`` overrides the spec's TPM backend for every point.
    """
    records = []
    counter = get_registry().counter(
        "repro_sweep_points_total", "Design points analyzed by sweeps"
    )
    with span("cdr.sweep", parameter=parameter, n_values=len(values)):
        for value in values:
            spec = base_spec.replace(**{parameter: value})
            with span("cdr.sweep.point", parameter=parameter, value=value):
                result = analyze_cdr(spec, solver=solver, tol=tol, backend=backend)
            counter.inc()
            records.append(
                {
                    parameter: value,
                    "backend": result.backend,
                    "ber": result.ber,
                    "ber_discrete": result.ber_discrete,
                    "slip_rate": result.slip_rate,
                    "mean_symbols_between_slips": result.mean_symbols_between_slips,
                    "phase_rms": result.phase_rms,
                    "n_states": result.n_states,
                    "iterations": result.solver_result.iterations,
                    "form_time_s": result.build_seconds,
                    "solve_time_s": result.solve_seconds,
                }
            )
    return records


def sweep_counter_length(
    base_spec: CDRSpec,
    counter_lengths: Iterable[int],
    solver: str = "multigrid",
    tol: float = 1e-10,
) -> List[Dict]:
    """The Figure-5 experiment: BER as a function of counter length."""
    return sweep_parameter(
        base_spec, "counter_length", list(counter_lengths), solver=solver, tol=tol
    )


def optimal_counter_length(
    base_spec: CDRSpec,
    counter_lengths: Iterable[int],
    solver: str = "multigrid",
    tol: float = 1e-10,
    key: Optional[Callable[[Dict], float]] = None,
) -> Dict:
    """Pick the swept counter length minimizing BER (or a custom key)."""
    records = sweep_counter_length(base_spec, counter_lengths, solver=solver, tol=tol)
    if not records:
        raise ValueError("counter_lengths is empty")
    key = key or (lambda rec: rec["ber"])
    return min(records, key=key)
