"""Digital loop filters for the phase-selection loop.

"[The phase detector's] output is the input to an up-down counter FSM that
models the loop filter.  The counter produces an UP-DOWN signal when it
overflows" (paper, Examples).  The counter length is *the* loop-bandwidth
knob the paper's Figure 5 sweeps: a short counter follows the eye-opening
noise ``n_w`` (too much bandwidth), a long one cannot track the ``n_r``
drift (too little).
"""

from __future__ import annotations

from repro.fsm.machine import FSM

__all__ = ["updown_counter", "passthrough_filter", "counter_state_count"]


def counter_state_count(counter_length: int) -> int:
    """Number of states of an up/down counter of the given length."""
    if counter_length < 1:
        raise ValueError("counter_length must be at least 1")
    return 2 * counter_length - 1


def updown_counter(name: str, counter_length: int) -> FSM:
    """Saturating up/down counter with overflow outputs.

    States are integer counts in ``[-(N-1), N-1]`` for ``N =
    counter_length``.  Input: the phase-detector output in {-1, 0, +1}.
    When the running count would reach ``+N`` the counter emits ``+1``
    (step the phase select by one increment) and resets to zero;
    symmetrically ``-N`` emits ``-1``.  Otherwise it emits ``0``.

    ``counter_length = 1`` degenerates to a pass-through: every non-null
    phase-detector decision immediately steps the phase.
    """
    N = int(counter_length)
    if N < 1:
        raise ValueError("counter_length must be at least 1")

    def bump(state: int, inp) -> int:
        o = int(inp)
        if o not in (-1, 0, 1):
            raise ValueError(f"{name}: filter input must be -1, 0 or +1, got {inp!r}")
        return state + o

    def transition_fn(state: int, inp) -> int:
        v = bump(state, inp)
        return 0 if abs(v) >= N else v

    def output_fn(state: int, inp) -> int:
        v = bump(state, inp)
        if v >= N:
            return 1
        if v <= -N:
            return -1
        return 0

    return FSM(
        name,
        states=list(range(-(N - 1), N)),
        initial_state=0,
        transition_fn=transition_fn,
        output_fn=output_fn,
    )


def passthrough_filter(name: str = "filter") -> FSM:
    """No filtering: the phase-detector output directly steps the phase."""
    return FSM(
        name,
        states=[0],
        initial_state=0,
        transition_fn=lambda state, inp: 0,
        output_fn=lambda state, inp: int(inp),
    )
