"""Clock-and-data-recovery circuit models.

The building blocks of the paper's industrial example (Figure 2): data
statistics (:mod:`repro.cdr.data_source`), bang-bang phase detectors
(:mod:`repro.cdr.phase_detector`), up/down counter loop filters
(:mod:`repro.cdr.loop_filter`), the discretized phase error
(:mod:`repro.cdr.phase_error`) -- plus the vectorized Markov-chain builder
(:mod:`repro.cdr.model`), the literal Figure-2 FSM-network model
(:mod:`repro.cdr.network`), the Monte-Carlo baseline
(:mod:`repro.cdr.montecarlo`), and design-sweep helpers
(:mod:`repro.cdr.sweep`, imported lazily to avoid a circular import with
:mod:`repro.core`).
"""

from repro.cdr.data_source import (
    bernoulli_transition_source,
    nrz_bit_source,
    stationary_transition_density,
    transition_run_length_source,
)
from repro.cdr.loop_filter import counter_state_count, passthrough_filter, updown_counter
from repro.cdr.model import CDRChainModel, build_cdr_chain
from repro.cdr.modulated import (
    ModulatedCDRModel,
    build_modulated_cdr_chain,
    bursty_drift_source,
    sinusoidal_drift_source,
)
from repro.cdr.montecarlo import (
    MonteCarloResult,
    required_symbols_for_ber,
    simulate_cdr,
)
from repro.cdr.network import build_cdr_network, compile_cdr_network
from repro.cdr.operator import CDRTransitionOperator
from repro.cdr.backends import KroneckerCDROperator, OperatorCDRModel
from repro.cdr.phase_detector import (
    PD_LABELS,
    PD_LAG,
    PD_LEAD,
    PD_NULL,
    alexander_phase_detector,
    bang_bang_decision,
    bang_bang_phase_detector,
)
from repro.cdr.phase_error import PhaseGrid, phase_accumulator_fsm

__all__ = [
    "PhaseGrid",
    "phase_accumulator_fsm",
    "transition_run_length_source",
    "bernoulli_transition_source",
    "nrz_bit_source",
    "stationary_transition_density",
    "bang_bang_decision",
    "bang_bang_phase_detector",
    "alexander_phase_detector",
    "PD_LAG",
    "PD_LEAD",
    "PD_NULL",
    "PD_LABELS",
    "updown_counter",
    "passthrough_filter",
    "counter_state_count",
    "CDRChainModel",
    "build_cdr_chain",
    "ModulatedCDRModel",
    "build_modulated_cdr_chain",
    "sinusoidal_drift_source",
    "bursty_drift_source",
    "build_cdr_network",
    "compile_cdr_network",
    "CDRTransitionOperator",
    "OperatorCDRModel",
    "KroneckerCDROperator",
    "MonteCarloResult",
    "simulate_cdr",
    "required_symbols_for_ber",
]
