"""Jitter-tolerance search: the largest jitter a design still survives.

Link specifications are phrased as tolerance masks: "the receiver must
meet BER <= 1e-12 with X UI of sinusoidal jitter plus Y UI rms of random
jitter".  With the paper's analysis each candidate point costs one
stationary solve, so the tolerance boundary can be located by bisection --
the design-space exploration the paper's introduction promises
("evaluation of a number of alternative algorithms ... in a short time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.analyzer import analyze_cdr
from repro.core.spec import CDRSpec
from repro.noise.jitter import sinusoidal_jitter

__all__ = ["ToleranceResult", "bisect_tolerance", "random_jitter_tolerance",
           "sinusoidal_jitter_tolerance"]


@dataclass
class ToleranceResult:
    """Outcome of a tolerance bisection."""

    parameter: str
    tolerance: float
    ber_at_tolerance: float
    ber_target: float
    n_evaluations: int
    bracket: tuple

    def summary(self) -> str:
        return (
            f"{self.parameter} tolerance at BER <= {self.ber_target:g}: "
            f"{self.tolerance:.5f} (BER there {self.ber_at_tolerance:.2e}, "
            f"{self.n_evaluations} analyses)"
        )


def bisect_tolerance(
    evaluate_ber: Callable[[float], float],
    ber_target: float,
    lo: float,
    hi: float,
    rel_tol: float = 0.02,
    max_evaluations: int = 40,
    parameter: str = "jitter",
) -> ToleranceResult:
    """Largest ``x`` in ``[lo, hi]`` with ``evaluate_ber(x) <= ber_target``.

    ``evaluate_ber`` must be (weakly) increasing in ``x`` -- true for any
    additive jitter magnitude.  Requires ``evaluate_ber(lo) <= target``
    (otherwise the design fails even at the bracket floor and a
    :class:`ValueError` is raised).  If even ``hi`` passes, ``hi`` is
    returned as the (bracket-limited) tolerance.
    """
    if not 0.0 < ber_target < 1.0:
        raise ValueError("ber_target must be in (0, 1)")
    if not lo < hi:
        raise ValueError("need lo < hi")
    evals = 0

    def ber(x: float) -> float:
        nonlocal evals
        evals += 1
        return evaluate_ber(x)

    ber_lo = ber(lo)
    if ber_lo > ber_target:
        raise ValueError(
            f"design misses the BER target even at {parameter}={lo!r} "
            f"(BER {ber_lo:.2e} > {ber_target:g})"
        )
    ber_hi = ber(hi)
    if ber_hi <= ber_target:
        return ToleranceResult(
            parameter=parameter,
            tolerance=hi,
            ber_at_tolerance=ber_hi,
            ber_target=ber_target,
            n_evaluations=evals,
            bracket=(lo, hi),
        )
    good, bad = lo, hi
    ber_good = ber_lo
    while evals < max_evaluations and (bad - good) > rel_tol * max(abs(good), 1e-12):
        mid = 0.5 * (good + bad)
        b = ber(mid)
        if b <= ber_target:
            good, ber_good = mid, b
        else:
            bad = mid
    return ToleranceResult(
        parameter=parameter,
        tolerance=good,
        ber_at_tolerance=ber_good,
        ber_target=ber_target,
        n_evaluations=evals,
        bracket=(lo, hi),
    )


def random_jitter_tolerance(
    spec: CDRSpec,
    ber_target: float = 1e-12,
    lo: float = 1e-3,
    hi: float = 0.3,
    solver: str = "auto",
    rel_tol: float = 0.02,
) -> ToleranceResult:
    """Largest Gaussian eye-jitter ``STDnw`` (UI rms) meeting the BER target."""

    def evaluate(std: float) -> float:
        return analyze_cdr(spec.replace(nw_std=std), solver=solver).ber

    return bisect_tolerance(
        evaluate, ber_target, lo, hi, rel_tol=rel_tol, parameter="STDnw"
    )


def sinusoidal_jitter_tolerance(
    spec: CDRSpec,
    ber_target: float = 1e-12,
    lo: float = 1e-3,
    hi: float = 0.4,
    n_atoms: int = 16,
    solver: str = "auto",
    rel_tol: float = 0.02,
) -> ToleranceResult:
    """Largest sinusoidal-jitter amplitude (UI) meeting the BER target.

    The sinusoid's arcsine amplitude law is convolved with the spec's
    Gaussian ``n_w`` ("one can even mimic deterministic sinusoidally
    varying jitter by assigning the amplitude distribution ...
    appropriately" -- paper, Section 2); this is the high-frequency-SJ
    point of a jitter-tolerance mask, where the loop cannot track the
    sinusoid and sees it as uncorrelated eye closure.
    """
    base_nw = spec.nw_distribution()

    def evaluate(amplitude: float) -> float:
        sj = sinusoidal_jitter(amplitude, n_atoms=n_atoms)
        candidate = spec.replace(nw_override=base_nw.convolve(sj))
        return analyze_cdr(candidate, solver=solver).ber

    return bisect_tolerance(
        evaluate, ber_target, lo, hi, rel_tol=rel_tol, parameter="SJ amplitude"
    )
