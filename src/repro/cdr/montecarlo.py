"""Monte-Carlo simulation of the CDR difference equations.

The paper's whole point is that BER-grade statistics *cannot* be obtained
this way ("It is not feasible to predict such error rates with
straightforward, simulation based, approaches") -- but a trustworthy
simulator is the indispensable baseline: it validates the Markov-chain
analysis at high error rates and quantifies, in the benchmark harness, how
the simulation cost explodes as the target BER drops.

Two modes:

* ``discretized`` -- simulates exactly the discretized system the chain
  models (phase on the grid, noises drawn from the discretized atoms), so
  estimates must converge to the chain's predictions;
* ``continuous`` -- simulates the underlying continuous-phase system
  (Gaussian ``n_w``, un-quantized ``n_r``), quantifying the discretization
  error of the modeling step itself.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cdr.phase_error import PhaseGrid
from repro.fsm.stochastic import MarkovSource
from repro.noise.distributions import DiscreteDistribution
from repro.obs import get_registry, span

__all__ = [
    "MonteCarloResult",
    "CampaignResult",
    "simulate_cdr",
    "simulate_cdr_campaign",
    "required_symbols_for_ber",
]


@dataclass
class MonteCarloResult:
    """Outcome of a Monte-Carlo CDR run."""

    n_symbols: int
    n_errors: int
    n_slips: int
    sim_time: float
    mode: str
    phase_mean: float
    phase_rms: float

    @property
    def ber(self) -> float:
        """Point estimate of the bit-error rate."""
        return self.n_errors / self.n_symbols

    @property
    def slip_rate(self) -> float:
        return self.n_slips / self.n_symbols

    def ber_confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the BER at confidence ``z`` sigmas."""
        n, k = self.n_symbols, self.n_errors
        if n == 0:
            return (0.0, 1.0)
        p = k / n
        denom = 1.0 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
        return (max(0.0, center - half), min(1.0, center + half))

    def summary(self) -> str:
        lo, hi = self.ber_confidence_interval()
        return (
            f"MC[{self.mode}]: {self.n_symbols} symbols, "
            f"BER {self.ber:.3e} (95% CI [{lo:.3e}, {hi:.3e}]), "
            f"{self.n_slips} slips, {self.sim_time:.2f}s"
        )


def required_symbols_for_ber(
    target_ber: float, relative_ci_halfwidth: float = 0.1, z: float = 1.96
) -> float:
    """Symbols needed to estimate ``target_ber`` to the given relative CI.

    The binomial variance argument behind the paper's motivation: at
    BER = 1e-10 with a +-10% confidence requirement this exceeds 1e13
    symbols -- "practically impossible to verify through straightforward
    simulation".
    """
    if not 0.0 < target_ber < 1.0:
        raise ValueError("target_ber must be in (0, 1)")
    if relative_ci_halfwidth <= 0:
        raise ValueError("relative_ci_halfwidth must be positive")
    return (z / relative_ci_halfwidth) ** 2 * (1.0 - target_ber) / target_ber


def simulate_cdr(
    grid: PhaseGrid,
    nw: DiscreteDistribution,
    nr: DiscreteDistribution,
    counter_length: int,
    phase_step_units: int,
    data_source: MarkovSource,
    n_symbols: int,
    rng: np.random.Generator,
    mode: str = "discretized",
    nw_std_continuous: Optional[float] = None,
    initial_phase_index: Optional[int] = None,
    warmup_symbols: int = 0,
) -> MonteCarloResult:
    """Simulate the phase-selection loop symbol by symbol.

    Parameters mirror :func:`repro.cdr.model.build_cdr_chain`; additional:

    n_symbols:
        Measured symbols (after warm-up).
    mode:
        ``"discretized"`` or ``"continuous"`` (see module docstring).
    nw_std_continuous:
        Gaussian sigma for continuous mode; defaults to ``nw.std()``.
    warmup_symbols:
        Symbols discarded before statistics are gathered (lock
        acquisition transient).
    """
    if mode not in ("discretized", "continuous"):
        raise ValueError(f"unknown mode {mode!r}")
    if n_symbols < 1:
        raise ValueError("n_symbols must be positive")
    N = int(counter_length)
    if N < 1:
        raise ValueError("counter_length must be at least 1")
    g_units = int(phase_step_units)
    step = grid.step
    M = grid.n_points
    total = warmup_symbols + n_symbols

    with span("cdr.montecarlo", mode=mode, n_symbols=n_symbols) as mc_span:
        start = time.perf_counter()

        # Pre-draw all randomness (vectorized); the loop itself is the
        # irreducible sequential part of the feedback system.
        data_states = data_source.chain.simulate(
            total, rng, data_source.initial_state
        )
        transitions = np.array(
            [data_source.symbol(int(s)) for s in range(data_source.n_states)]
        )[data_states[:total]]

        if mode == "discretized":
            w_samples = nw.sample(rng, size=total)
            nr_steps = grid.quantize_to_steps(nr)
            r_samples = nr_steps.sample(rng, size=total).astype(np.int64)
        else:
            sigma = nw.std() if nw_std_continuous is None else float(nw_std_continuous)
            w_samples = rng.normal(0.0, sigma, size=total)
            r_samples = nr.sample(rng, size=total)

        if initial_phase_index is None:
            initial_phase_index = M // 2

        n_errors = 0
        n_slips = 0
        phase_sum = 0.0
        phase_sq_sum = 0.0

        if mode == "discretized":
            m = int(initial_phase_index)
            c = 0
            for k in range(total):
                phi = -0.5 + (m + 0.5) * step
                noisy = phi + w_samples[k]
                measuring = k >= warmup_symbols
                if measuring:
                    phase_sum += phi
                    phase_sq_sum += phi * phi
                    if abs(noisy) > 0.5:
                        n_errors += 1
                o = 0
                if transitions[k]:
                    o = 1 if noisy > 0.0 else (-1 if noisy < 0.0 else 0)
                v = c + o
                direction = 0
                if v >= N:
                    direction, c = 1, 0
                elif v <= -N:
                    direction, c = -1, 0
                else:
                    c = v
                raw = m - g_units * direction + int(r_samples[k])
                if measuring and (raw < 0 or raw >= M):
                    n_slips += 1
                m = raw % M
        else:
            phi = -0.5 + (initial_phase_index + 0.5) * step
            g_ui = g_units * step
            c = 0
            for k in range(total):
                noisy = phi + w_samples[k]
                measuring = k >= warmup_symbols
                if measuring:
                    phase_sum += phi
                    phase_sq_sum += phi * phi
                    if abs(noisy) > 0.5:
                        n_errors += 1
                o = 0
                if transitions[k]:
                    o = 1 if noisy > 0.0 else (-1 if noisy < 0.0 else 0)
                v = c + o
                direction = 0
                if v >= N:
                    direction, c = 1, 0
                elif v <= -N:
                    direction, c = -1, 0
                else:
                    c = v
                raw = phi - g_ui * direction + r_samples[k]
                if measuring and not (-0.5 <= raw < 0.5):
                    n_slips += 1
                phi = PhaseGrid.wrap_value(raw)

        elapsed = time.perf_counter() - start
        throughput = total / elapsed if elapsed > 0 else float("inf")
        mc_span.set_attributes(
            symbols_per_second=throughput, n_errors=n_errors, n_slips=n_slips
        )
        registry = get_registry()
        registry.counter(
            "repro_mc_symbols_total", "Symbols simulated by the MC baseline"
        ).inc(total, mode=mode)
        registry.gauge(
            "repro_mc_symbols_per_second",
            "Throughput of the last Monte-Carlo run",
        ).set(throughput, mode=mode)
        mean = phase_sum / n_symbols
        var = max(phase_sq_sum / n_symbols - mean * mean, 0.0)
        return MonteCarloResult(
            n_symbols=n_symbols,
            n_errors=n_errors,
            n_slips=n_slips,
            sim_time=elapsed,
            mode=mode,
            phase_mean=mean,
            phase_rms=math.sqrt(var + mean * mean),
        )


@dataclass
class CampaignResult:
    """Outcome of a multi-seed Monte-Carlo campaign.

    ``records`` holds one dict per completed seed (the checkpointed unit);
    ``failed_seeds`` the per-seed error entries of seeds that died.  A
    resumed campaign replays completed seeds from the checkpoint ledger,
    so the pooled statistics are bit-identical to an uninterrupted run.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    failed_seeds: List[Dict[str, Any]] = field(default_factory=list)
    resumed_seeds: int = 0
    mode: str = "discretized"
    #: Markov-chain predictions for the same design point (present when
    #: the campaign was given a ``reference_spec``): the analytic BER /
    #: slip rate the pooled estimates must converge to.
    reference: Optional[Dict[str, Any]] = None
    #: Hierarchy-cache statistics of the campaign's solve context (see
    #: :class:`~repro.markov.SolveContext`); ``None`` without a reference.
    context_stats: Optional[Dict[str, Any]] = None
    #: :class:`~repro.exec.ExecStats` dict of the elastic executor;
    #: ``None`` for serial campaigns.
    exec_stats: Optional[Dict[str, Any]] = None

    @property
    def n_symbols(self) -> int:
        return sum(r["n_symbols"] for r in self.records)

    @property
    def n_errors(self) -> int:
        return sum(r["n_errors"] for r in self.records)

    @property
    def n_slips(self) -> int:
        return sum(r["n_slips"] for r in self.records)

    @property
    def ber(self) -> float:
        n = self.n_symbols
        return self.n_errors / n if n else float("nan")

    @property
    def slip_rate(self) -> float:
        n = self.n_symbols
        return self.n_slips / n if n else float("nan")

    def summary(self) -> str:
        parts = [
            f"MC campaign[{self.mode}]: {len(self.records)} seeds, "
            f"{self.n_symbols} symbols, BER {self.ber:.3e}, "
            f"{self.n_slips} slips"
        ]
        if self.resumed_seeds:
            parts.append(f"{self.resumed_seeds} seeds replayed from checkpoint")
        if self.failed_seeds:
            parts.append(f"{len(self.failed_seeds)} seeds FAILED")
        if self.reference:
            parts.append(f"chain predicts BER {self.reference['ber']:.3e}")
        return "; ".join(parts)


def simulate_cdr_campaign(
    grid: PhaseGrid,
    nw: DiscreteDistribution,
    nr: DiscreteDistribution,
    counter_length: int,
    phase_step_units: int,
    data_source: MarkovSource,
    n_symbols: int,
    seeds: Sequence[int],
    mode: str = "discretized",
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    reference_spec=None,
    solve_context=None,
    jobs: Optional[int] = None,
    point_timeout_s: Optional[float] = None,
    max_retries: int = 2,
    exec_config=None,
    **sim_kwargs,
) -> CampaignResult:
    """Run :func:`simulate_cdr` once per seed, with per-seed checkpoints.

    The seed is the unit of work: each completes independently (a dying
    seed is recorded in :attr:`CampaignResult.failed_seeds` and the rest
    still run) and, with ``checkpoint_path``, each completed seed's
    statistics persist immediately (schema ``repro.points/1``).
    ``resume=True`` replays completed seeds from the ledger -- because a
    seed fully determines its RNG stream, the pooled campaign statistics
    after a mid-campaign kill and resume are bit-identical to an
    uninterrupted campaign.

    ``reference_spec`` (a :class:`~repro.core.spec.CDRSpec`) additionally
    solves the Markov chain of the same design point **once per
    campaign** -- through the shared ``solve_context`` when one is passed
    (so a surrounding sweep's cached hierarchy and warm-start vectors are
    reused), through a fresh :class:`~repro.markov.SolveContext`
    otherwise -- and attaches the analytic predictions as
    :attr:`CampaignResult.reference`.

    ``jobs`` routes the per-seed loop through the elastic process-pool
    executor (:func:`repro.exec.elastic_campaign`): per-seed wall-clock
    timeouts (``point_timeout_s``), retry of infrastructure faults
    (``max_retries``), worker respawn with exactly-once requeue, and
    serial degradation when the pool cannot be sustained.  The reference
    solve (when requested) always runs in-parent, once, before the pool
    comes up.
    """
    reference = None
    context_stats = None
    if reference_spec is not None:
        from repro.core.analyzer import analyze_cdr
        from repro.markov.context import SolveContext

        if solve_context is None:
            solve_context = SolveContext()
        analysis = analyze_cdr(reference_spec, solve_context=solve_context)
        reference = {
            "ber": analysis.ber,
            "ber_discrete": analysis.ber_discrete,
            "slip_rate": analysis.slip_rate,
            "phase_rms": analysis.phase_rms,
            "n_states": analysis.n_states,
            "iterations": analysis.solver_result.iterations,
            "warm_started": bool(
                getattr(analysis.solver_result, "warm_started", False)
            ),
        }
        context_stats = solve_context.stats()

    if jobs is not None or exec_config is not None:
        from repro.exec import ExecConfig, elastic_campaign

        if exec_config is None:
            exec_config = ExecConfig(
                jobs=int(jobs), timeout_s=point_timeout_s,
                max_retries=max_retries,
            )
        records, failed, resumed, stats = elastic_campaign(
            grid, nw, nr, counter_length, phase_step_units, data_source,
            n_symbols, seeds, mode=mode, checkpoint_path=checkpoint_path,
            resume=resume, sim_kwargs=sim_kwargs, config=exec_config,
        )
        return CampaignResult(
            records=records, failed_seeds=failed, resumed_seeds=resumed,
            mode=mode, reference=reference, context_stats=context_stats,
            exec_stats=stats.to_dict(),
        )

    checkpointer = None
    resumed = 0
    if checkpoint_path is not None:
        from repro.resilience.checkpoint import PointCheckpointer

        checkpointer = PointCheckpointer(checkpoint_path, {
            "kind": "mc-campaign",
            "n_symbols": int(n_symbols),
            "seeds": [int(s) for s in seeds],
            "mode": mode,
            "counter_length": int(counter_length),
            "phase_step_units": int(phase_step_units),
            "n_phase_points": int(grid.n_points),
        })
        if resume:
            checkpointer.resume()

    records: List[Dict[str, Any]] = []
    failed: List[Dict[str, Any]] = []
    with span("cdr.mc_campaign", mode=mode, n_seeds=len(seeds)):
        for index, seed in enumerate(seeds):
            if checkpointer is not None and checkpointer.is_done(index):
                records.append(checkpointer.completed_record(index))
                resumed += 1
                continue
            try:
                result = simulate_cdr(
                    grid, nw, nr, counter_length, phase_step_units,
                    data_source, n_symbols,
                    rng=np.random.default_rng(int(seed)), mode=mode,
                    **sim_kwargs,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - per-seed isolation
                from repro.resilience.errors import failure_entry

                entry = {
                    "index": index,
                    "seed": int(seed),
                    **failure_entry(exc),
                }
                failed.append(entry)
                if checkpointer is not None:
                    checkpointer.record_failure(index, entry)
                continue
            record = {
                "seed": int(seed),
                "n_symbols": result.n_symbols,
                "n_errors": result.n_errors,
                "n_slips": result.n_slips,
                "phase_mean": result.phase_mean,
                "phase_rms": result.phase_rms,
                "sim_time": result.sim_time,
            }
            records.append(record)
            if checkpointer is not None:
                checkpointer.record(index, record)
    return CampaignResult(
        records=records, failed_seeds=failed, resumed_seeds=resumed, mode=mode,
        reference=reference, context_stats=context_stats,
    )
