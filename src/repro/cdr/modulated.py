"""Markov-modulated drift: correlated and sinusoidal jitter.

The base model treats ``n_r`` as white.  The paper notes that real
specifications also include *correlated* jitter, and that "one can even
mimic deterministic sinusoidally varying jitter by assigning the amplitude
distribution of n_r appropriately".  The amplitude-distribution trick is
exact only when the loop cannot track the sinusoid; this module implements
the general mechanism instead: the drift is emitted by a *hidden Markov
state* (a function on a Markov chain state-space, exactly the paper's
modeling primitive), so the loop's tracking of slow modulation is captured
faithfully.

The flagship source is :func:`sinusoidal_drift_source`: a hidden ring of
``period_symbols`` states rotating (almost) deterministically, each
emitting the per-symbol phase increment of a sinusoid of the given
amplitude.  Slow rings (long periods) produce jitter the loop tracks --
little BER penalty; fast rings defeat the loop -- the classic
jitter-tolerance-vs-frequency corner, which the extension benchmark
regenerates.

State layout: global index ``(((d * H) + h) * C + c) * M + m`` with ``h``
the hidden drift state.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.cdr.data_source import transition_run_length_source
from repro.cdr.loop_filter import counter_state_count
from repro.cdr.model import _sign_masses
from repro.cdr.phase_error import PhaseGrid
from repro.fsm.stochastic import MarkovSource
from repro.markov.chain import MarkovChain
from repro.obs import get_registry, span
from repro.markov.lumping import Partition
from repro.markov.multigrid import CoarseningStrategy, pairing_hierarchy
from repro.noise.distributions import DiscreteDistribution

__all__ = [
    "ModulatedCDRModel",
    "build_modulated_cdr_chain",
    "sinusoidal_drift_source",
    "bursty_drift_source",
]


def sinusoidal_drift_source(
    name: str,
    amplitude_ui: float,
    period_symbols: int,
    dwell_jitter: float = 0.02,
) -> MarkovSource:
    """Sinusoidal jitter as a rotating hidden state.

    Hidden state ``h`` advances ``h -> h+1 (mod period)`` each symbol
    (with probability ``1 - dwell_jitter``; the small dwell probability
    models the sinusoid's frequency not being locked to the symbol rate
    and usefully breaks the exact periodicity of the product chain).
    State ``h`` emits the phase increment
    ``A sin(2 pi (h+1)/T) - A sin(2 pi h/T)`` so the accumulated emission
    traces the sinusoid of amplitude ``A``.
    """
    if amplitude_ui < 0:
        raise ValueError("amplitude_ui must be non-negative")
    if period_symbols < 2:
        raise ValueError("period_symbols must be at least 2")
    if not 0.0 <= dwell_jitter < 1.0:
        raise ValueError("dwell_jitter must be in [0, 1)")
    T = int(period_symbols)
    P = np.zeros((T, T))
    for h in range(T):
        P[h, (h + 1) % T] = 1.0 - dwell_jitter
        P[h, h] = dwell_jitter
    phases = 2.0 * math.pi * np.arange(T + 1) / T
    wave = amplitude_ui * np.sin(phases)
    increments = np.diff(wave)
    return MarkovSource(name, MarkovChain(P), emit=[float(v) for v in increments])


def bursty_drift_source(
    name: str,
    quiet_drift_ui: float,
    burst_drift_ui: float,
    p_enter_burst: float,
    p_exit_burst: float,
) -> MarkovSource:
    """Two-state (Gilbert-style) drift: quiet vs. burst drift rates.

    Models interference that comes and goes -- e.g. an aggressor block on
    the same die powering up, the scenario of the paper's motivating
    multiplexer-chip anecdote.
    """
    for p in (p_enter_burst, p_exit_burst):
        if not 0.0 < p < 1.0:
            raise ValueError("transition probabilities must be in (0, 1)")
    P = np.array(
        [
            [1.0 - p_enter_burst, p_enter_burst],
            [p_exit_burst, 1.0 - p_exit_burst],
        ]
    )
    return MarkovSource(
        name, MarkovChain(P), emit=[float(quiet_drift_ui), float(burst_drift_ui)]
    )


@dataclass
class ModulatedCDRModel:
    """Compiled CDR chain with a hidden drift-modulation state."""

    chain: MarkovChain
    slip_matrix: sp.csr_matrix
    grid: PhaseGrid
    nw: DiscreteDistribution
    nr_steps: DiscreteDistribution
    data_source: MarkovSource
    drift_source: MarkovSource
    counter_length: int
    phase_step_units: int
    form_time: float
    sign_masses: Dict[int, np.ndarray] = field(repr=False, default_factory=dict)

    @property
    def n_data_states(self) -> int:
        return self.data_source.n_states

    @property
    def n_drift_states(self) -> int:
        return self.drift_source.n_states

    @property
    def n_counter_states(self) -> int:
        return counter_state_count(self.counter_length)

    @property
    def n_phase_points(self) -> int:
        return self.grid.n_points

    @property
    def n_states(self) -> int:
        return self.chain.n_states

    def state_index(
        self, data_state: int, drift_state: int, counter_value: int, phase_index: int
    ) -> int:
        D, H, C, M = (
            self.n_data_states,
            self.n_drift_states,
            self.n_counter_states,
            self.n_phase_points,
        )
        c = counter_value + (self.counter_length - 1)
        if not (
            0 <= data_state < D
            and 0 <= drift_state < H
            and 0 <= c < C
            and 0 <= phase_index < M
        ):
            raise ValueError("state coordinates out of range")
        return ((data_state * H + drift_state) * C + c) * M + phase_index

    def phase_marginal(self, distribution: np.ndarray) -> np.ndarray:
        distribution = np.asarray(distribution, dtype=float)
        if distribution.shape != (self.n_states,):
            raise ValueError("distribution has wrong size")
        return distribution.reshape(-1, self.n_phase_points).sum(axis=0)

    def drift_marginal(self, distribution: np.ndarray) -> np.ndarray:
        D, H = self.n_data_states, self.n_drift_states
        CM = self.n_counter_states * self.n_phase_points
        return (
            np.asarray(distribution, dtype=float)
            .reshape(D, H, CM)
            .sum(axis=(0, 2))
        )

    def phase_values_per_state(self) -> np.ndarray:
        blocks = self.n_data_states * self.n_drift_states * self.n_counter_states
        return np.tile(self.grid.values, blocks)

    def phase_pairing_partitions(self, coarsest_phase_points: int = 8) -> List[Partition]:
        """The paper's phase-pairing coarsening, preserving (d, h, c)."""
        if coarsest_phase_points < 2:
            raise ValueError("coarsest_phase_points must be at least 2")
        partitions = []
        blocks = self.n_data_states * self.n_drift_states * self.n_counter_states
        M = self.n_phase_points
        while M > coarsest_phase_points:
            Mc = (M + 1) // 2
            i = np.arange(blocks * M)
            partitions.append(Partition((i // M) * Mc + (i % M) // 2))
            M = Mc
        return partitions

    def multigrid_strategy(self, coarsest_phase_points: int = 8) -> CoarseningStrategy:
        return pairing_hierarchy(self.phase_pairing_partitions(coarsest_phase_points))

    def transition_operator(self):
        """The chain as a :class:`~repro.markov.linop.TransitionOperator`.

        The modulated builder always assembles, so this is the
        :class:`~repro.markov.linop.AssembledOperator` adapter -- it makes
        modulated models first-class citizens of the registry dispatch
        (``stationary_distribution(model.transition_operator(), ...)``).
        """
        from repro.markov.linop import as_operator

        return as_operator(self.chain)

    def slip_row_sums(self) -> np.ndarray:
        """Per-state cycle-slip flux (matches ``slip_matrix.sum(axis=1)``)."""
        return np.asarray(self.slip_matrix.sum(axis=1)).ravel()

    def __repr__(self) -> str:
        return (
            f"ModulatedCDRModel(states={self.n_states}, D={self.n_data_states}, "
            f"H={self.n_drift_states}, C={self.n_counter_states}, "
            f"M={self.n_phase_points})"
        )


def build_modulated_cdr_chain(
    grid: PhaseGrid,
    nw: DiscreteDistribution,
    drift_source: MarkovSource,
    counter_length: int,
    phase_step_units: int,
    nr: Optional[DiscreteDistribution] = None,
    data_source: Optional[MarkovSource] = None,
    transition_density: float = 0.5,
    max_run_length: int = 3,
) -> ModulatedCDRModel:
    """Assemble the CDR chain with Markov-modulated drift.

    The total per-symbol drift is ``emission(h) + n_r`` where ``h`` is the
    hidden drift state and ``n_r`` an optional residual white component.
    Hidden-state emissions are quantized to grid steps with
    mean-preserving splitting (a deterministic emission becomes at most
    two probabilistic step counts, so sub-grid-step modulation is
    represented exactly in the mean).

    Other parameters as in :func:`repro.cdr.model.build_cdr_chain`.
    """
    if counter_length < 1:
        raise ValueError("counter_length must be at least 1")
    if phase_step_units < 1:
        raise ValueError("phase_step_units must be at least 1")
    if nr is None:
        nr = DiscreteDistribution.delta(0.0)
    if data_source is None:
        data_source = transition_run_length_source(
            "data", transition_density, max_run_length
        )
    for i in range(data_source.n_states):
        if data_source.symbol(i) not in (0, 1):
            raise ValueError("data_source must emit transition indicators (0 or 1)")

    with span("cdr.build_tpm", modulated=True) as build_span:
        return _assemble_modulated(
            grid, nw, drift_source, counter_length, phase_step_units, nr,
            data_source, build_span,
        )


def _assemble_modulated(
    grid: PhaseGrid,
    nw: DiscreteDistribution,
    drift_source: MarkovSource,
    counter_length: int,
    phase_step_units: int,
    nr: DiscreteDistribution,
    data_source: MarkovSource,
    build_span,
) -> ModulatedCDRModel:
    start = time.perf_counter()
    M = grid.n_points
    N = int(counter_length)
    C = counter_state_count(N)
    D = data_source.n_states
    H = drift_source.n_states
    g = int(phase_step_units)

    nr_steps = grid.quantize_to_steps(nr)
    emission_atoms = []
    max_emit = 0
    for h in range(H):
        atoms = grid.quantize_to_steps(
            DiscreteDistribution.delta(float(drift_source.symbol(h)))
        )
        emission_atoms.append(list(zip(atoms.values.astype(int), atoms.probs)))
        max_emit = max(max_emit, int(np.max(np.abs(atoms.values))))
    max_move = g + int(np.max(np.abs(nr_steps.values))) + max_emit
    if max_move >= M:
        raise ValueError(
            f"phase moves of up to {max_move} grid steps exceed the grid size {M}"
        )

    masses = _sign_masses(grid, nw)
    ones = np.ones(M)
    m_idx = np.arange(M)

    rows, cols, vals = [], [], []
    s_rows, s_cols, s_vals = [], [], []

    for d in range(D):
        t = data_source.symbol(d)
        d_branches = data_source.branches(d)
        decisions = (
            [(1, masses[1]), (0, masses[0]), (-1, masses[-1])]
            if t == 1
            else [(0, ones)]
        )
        for h in range(H):
            h_branches = drift_source.branches(h)
            e_atoms = emission_atoms[h]
            for c in range(C):
                c_val = c - (N - 1)
                for o, q_o in decisions:
                    v = c_val + o
                    if v >= N:
                        direction, c_next_val = 1, 0
                    elif v <= -N:
                        direction, c_next_val = -1, 0
                    else:
                        direction, c_next_val = 0, v
                    c_next = c_next_val + (N - 1)
                    for e_steps, q_e in e_atoms:
                        for r_steps, q_r in zip(nr_steps.values, nr_steps.probs):
                            shift = -g * direction + int(r_steps) + int(e_steps)
                            m_next, wraps = grid.shift_indices(m_idx, shift)
                            slipped = wraps != 0
                            base_prob = q_o * (q_e * q_r)
                            for h_next, p_h in h_branches:
                                for d_next, p_d in d_branches:
                                    prob = base_prob * (p_h * p_d)
                                    nz = prob > 0.0
                                    if not np.any(nz):
                                        continue
                                    row = ((d * H + h) * C + c) * M + m_idx[nz]
                                    col = (
                                        (d_next * H + h_next) * C + c_next
                                    ) * M + m_next[nz]
                                    rows.append(row)
                                    cols.append(col)
                                    vals.append(prob[nz])
                                    slip_nz = nz & slipped
                                    if np.any(slip_nz):
                                        s_rows.append(
                                            ((d * H + h) * C + c) * M + m_idx[slip_nz]
                                        )
                                        s_cols.append(
                                            ((d_next * H + h_next) * C + c_next) * M
                                            + m_next[slip_nz]
                                        )
                                        s_vals.append(prob[slip_nz])

    n = D * H * C * M
    P = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsr()
    P.sum_duplicates()
    if s_vals:
        E = sp.coo_matrix(
            (np.concatenate(s_vals), (np.concatenate(s_rows), np.concatenate(s_cols))),
            shape=(n, n),
        ).tocsr()
        E.sum_duplicates()
    else:
        E = sp.csr_matrix((n, n))
    form_time = time.perf_counter() - start
    build_span.set_attributes(n_states=n, nnz=int(P.nnz), n_drift_states=H)
    registry = get_registry()
    registry.counter(
        "repro_tpm_builds_total", "CDR transition matrices assembled"
    ).inc()
    registry.histogram(
        "repro_tpm_build_seconds", "Wall time of CDR TPM assembly"
    ).observe(form_time)
    return ModulatedCDRModel(
        chain=MarkovChain(P),
        slip_matrix=E,
        grid=grid,
        nw=nw,
        nr_steps=nr_steps,
        data_source=data_source,
        drift_source=drift_source,
        counter_length=N,
        phase_step_units=g,
        form_time=form_time,
        sign_masses=masses,
    )
