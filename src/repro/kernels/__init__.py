"""Kernel tiers for the structural matrix-free operators.

ROADMAP item 1's answer to the matrix-free matvec gap: the structural
operators (:class:`~repro.cdr.operator.CDRTransitionOperator`,
:class:`~repro.scenarios.operator.BranchSumOperator`) compile their term
structure once into a :mod:`~repro.kernels.plan` and apply it through
one of three interchangeable *kernel tiers*:

``numpy``
    Pure NumPy (always available): vectorized contiguous-slice segment
    loops and sorted ``bincount`` scatters.  The reference tier.
``cext``
    A ~60-line C kernel compiled on first use with whatever C compiler
    is on ``PATH`` and loaded via ctypes (no build step, no wheel).
    Available on any machine with ``cc``/``gcc``/``clang``.
``numba``
    ``@njit`` loops, available when the environment provides numba (this
    repository never installs it).

Selection is by the ``REPRO_KERNELS`` environment variable: ``numpy`` /
``cext`` / ``numba`` force a tier (erroring loudly if it is
unavailable -- a forced tier silently falling back would defeat the CI
equivalence legs), ``auto`` (the default) picks the first available of
numba, cext, numpy.

Every tier is **bit-identical** to the others and to applying the
operator's assembled CSR matrix (``to_csr()`` / its transpose): the
plans fix one accumulation order -- ascending source column per output
element, CSR's own order -- and every tier executes exactly that
multiply/add sequence, with FMA contraction explicitly disabled in the
compiled tiers.  The equivalence battery in ``tests/kernels`` and the CI
``kernels`` job enforce this invariant across tiers, blocked vs looped
applies, and all registered scenarios.

This module also hosts the zero-copy apply-argument helpers
(:func:`as_apply_vector`, :func:`as_apply_block`): float64 contiguous
caller buffers pass through untouched (``np.shares_memory`` with the
input -- a test invariant), anything else is converted once at the apply
boundary instead of silently copying inside solver loops.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels.plan import BranchPlan, CSRArrays, RollPlan, SegmentSet

__all__ = [
    "KERNEL_ENV",
    "KERNEL_TIERS",
    "RollPlan",
    "BranchPlan",
    "CSRArrays",
    "SegmentSet",
    "available_tiers",
    "tier_availability",
    "get_kernel",
    "active_tier",
    "use_tier",
    "as_apply_vector",
    "as_apply_block",
]

#: Environment variable selecting the kernel tier.
KERNEL_ENV = "REPRO_KERNELS"

#: All tier names, in ``auto`` preference order.
KERNEL_TIERS = ("numba", "cext", "numpy")

_lock = threading.Lock()
_probed: Dict[str, Optional[object]] = {}
_override: List[object] = []


def _probe(tier: str):
    """The tier's kernel module, or None when unavailable (cached)."""
    if tier not in _probed:
        with _lock:
            if tier not in _probed:
                if tier == "numpy":
                    from repro.kernels import numpy_tier

                    _probed[tier] = numpy_tier
                elif tier == "cext":
                    from repro.kernels import cext_tier

                    _probed[tier] = cext_tier.load_tier()
                elif tier == "numba":
                    from repro.kernels import numba_tier

                    _probed[tier] = numba_tier.load_tier()
                else:
                    _probed[tier] = None
    return _probed[tier]


def available_tiers() -> Tuple[str, ...]:
    """Names of the tiers usable in this environment (numpy always is)."""
    return tuple(t for t in KERNEL_TIERS if _probe(t) is not None)


def tier_availability() -> Dict[str, Optional[str]]:
    """Per-tier availability: ``{name: None if available else reason}``."""
    out: Dict[str, Optional[str]] = {}
    for tier in KERNEL_TIERS:
        if _probe(tier) is not None:
            out[tier] = None
        elif tier == "cext":
            from repro.kernels import cext_tier

            out[tier] = cext_tier.build_error or "unavailable"
        elif tier == "numba":
            from repro.kernels import numba_tier

            out[tier] = numba_tier.import_error or "numba not importable"
        else:
            out[tier] = "unavailable"
    return out


def get_kernel(tier: Optional[str] = None):
    """Resolve the kernel module for ``tier`` (default: env / auto).

    Forcing an unavailable tier raises ``RuntimeError`` naming the
    reason; ``auto`` falls through the preference order and always
    terminates at ``numpy``.
    """
    if _override and tier is None:
        return _override[-1]
    requested = tier or os.environ.get(KERNEL_ENV, "auto").strip().lower() or "auto"
    if requested == "auto":
        for candidate in KERNEL_TIERS:
            kernel = _probe(candidate)
            if kernel is not None:
                return kernel
        raise RuntimeError("no kernel tier available (numpy tier missing?)")
    if requested not in KERNEL_TIERS:
        raise RuntimeError(
            f"unknown kernel tier {requested!r} (from ${KERNEL_ENV}); "
            f"expected one of {('auto',) + KERNEL_TIERS}"
        )
    kernel = _probe(requested)
    if kernel is None:
        reason = tier_availability().get(requested) or "unavailable"
        raise RuntimeError(
            f"kernel tier {requested!r} was requested "
            f"(${KERNEL_ENV} or explicit) but is unavailable: {reason}"
        )
    return kernel


def active_tier() -> str:
    """Name of the tier :func:`get_kernel` resolves to right now.

    This is what benchmark fingerprints, profile snapshots and run
    manifests record, so two artifacts are only compared knowing which
    kernels produced them.
    """
    return get_kernel().name


@contextmanager
def use_tier(tier: str):
    """Force a tier for the enclosed block (tests and benchmarks).

    Operators bind their kernel at construction, so the override applies
    to operators *built* inside the block.
    """
    kernel = get_kernel(tier)
    _override.append(kernel)
    try:
        yield kernel
    finally:
        _override.pop()


# ---------------------------------------------------------------------- #
# zero-copy apply-argument validation (the hot-path boundary)
# ---------------------------------------------------------------------- #

def as_apply_vector(x, n: int) -> np.ndarray:
    """Validate an apply argument as a length-``n`` float64 vector.

    A C-contiguous float64 ndarray passes through *without copying*
    (``np.asarray(..., dtype=float)`` on every apply used to copy or
    upcast caller buffers inside solver loops); anything else -- lists,
    float32, Fortran-strided views -- is converted exactly once, here.
    """
    if not (
        isinstance(x, np.ndarray)
        and x.dtype == np.float64
        and x.flags.c_contiguous
    ):
        x = np.ascontiguousarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ValueError(f"vector must have shape ({n},)")
    return x


def as_apply_block(X, n: int) -> np.ndarray:
    """Validate a blocked apply argument as ``(n, k)`` float64 C-order."""
    if not (
        isinstance(X, np.ndarray)
        and X.dtype == np.float64
        and X.flags.c_contiguous
    ):
        X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != n:
        raise ValueError(f"block must have shape ({n}, k)")
    return X
