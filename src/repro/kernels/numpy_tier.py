"""The always-available pure-NumPy kernel tier.

Reference implementation of the two kernel primitives over the plans of
:mod:`repro.kernels.plan`.  Every other tier must be bit-identical to
this one (and all tiers bit-identical to applying the assembled CSR
matrix) -- the equivalence battery in ``tests/kernels`` enforces it.

The roll kernel is a Python loop over plan segments, but each iteration
is three vectorized slice operations on contiguous ranges -- no
``np.roll`` (which allocates and concatenates) and no modular indexing.
The branch kernel uses ``np.bincount`` over pre-sorted entries, whose C
loop accumulates sequentially in element order -- the same order (and
therefore the same floating-point result) as a CSR row sum -- instead of
the far slower ``np.add.at``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roll_apply", "csr_apply"]

name = "numpy"


def roll_apply(q: np.ndarray, segs, x: np.ndarray, out: np.ndarray) -> None:
    """Accumulate one roll-plan application into ``out`` (zero-initialized).

    ``x`` and ``out`` are ``(n,)`` vectors or C-contiguous ``(n, k)``
    multi-vector blocks; ``q`` is the plan's ``(n_rows, M)`` weight table.
    """
    M = q.shape[1]
    if x.ndim == 1:
        xb = x.reshape(-1, M)
        ob = out.reshape(-1, M)
        for orow, irow, qrow, scale, a, b, xoff, woff in segs.rows():
            w = q[qrow, a + woff: b + woff] * scale
            w *= xb[irow, a + xoff: b + xoff]
            ob[orow, a:b] += w
    else:
        k = x.shape[1]
        xb = x.reshape(-1, M, k)
        ob = out.reshape(-1, M, k)
        for orow, irow, qrow, scale, a, b, xoff, woff in segs.rows():
            w = q[qrow, a + woff: b + woff] * scale
            ob[orow, a:b, :] += w[:, None] * xb[irow, a + xoff: b + xoff, :]


def csr_apply(cs, x: np.ndarray, out: np.ndarray) -> None:
    """One branch-plan (CSR-form) application into ``out`` (zeroed).

    ``np.bincount`` adds the sorted entries sequentially into each bin,
    which is exactly the accumulation order of a CSR row sum.
    """
    if x.ndim == 1:
        out[:] = np.bincount(
            cs.rows, weights=cs.vals * x[cs.cols], minlength=cs.n_rows
        )
    else:
        for j in range(x.shape[1]):
            out[:, j] = np.bincount(
                cs.rows, weights=cs.vals * x[cs.cols, j], minlength=cs.n_rows
            )
