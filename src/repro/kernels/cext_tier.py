"""The compiled-C kernel tier (ctypes, built on first use).

A ~60-line C translation of the NumPy tier's two primitives, compiled
once per machine with whatever C compiler is on ``PATH`` and loaded via
:mod:`ctypes`.  No build-time dependency, no wheel: the shared object is
cached under ``$REPRO_KERNELS_CACHE`` (default ``~/.cache/repro-kernels``)
keyed by a hash of the source and compiler, so every later import is a
single ``dlopen``.

Bit-compatibility contract: the kernels perform exactly the multiply and
add sequence of the NumPy tier (and of scipy's CSR matvec), and the
build passes ``-ffp-contract=off`` so the compiler cannot fuse the
multiply-add pairs into FMAs -- fusion changes the rounding and would
break the cross-tier bit-identity invariant.  No ``-ffast-math``, no
``-march=native`` (reassociation and machine-specific contraction are
exactly the transformations we must forbid).

When no compiler is available or the probe compile fails, the tier
simply reports itself unavailable and selection falls through to NumPy.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = ["load_tier", "build_error"]

name = "cext"

_SOURCE = r"""
#include <stdint.h>

/* One coalesced roll-plan application (see repro/kernels/plan.py).
   Segment k accumulates, for m in [a[k], b[k]):
     out[(orow*M + m)*nvec + j] +=
         (scale[k] * q[qrow*M + m + woff[k]]) * x[(irow*M + m + xoff[k])*nvec + j]
   The multiply-then-add sequence must stay unfused (-ffp-contract=off)
   to remain bit-identical to the NumPy tier and to CSR application. */
void repro_roll_apply(const double *x, double *out, const double *q,
                      const double *scale,
                      const int64_t *orow, const int64_t *irow,
                      const int64_t *qrow, const int64_t *a,
                      const int64_t *b, const int64_t *xoff,
                      const int64_t *woff,
                      int64_t nseg, int64_t m_pts, int64_t nvec)
{
    for (int64_t k = 0; k < nseg; ++k) {
        const double s = scale[k];
        const double *ws = q + qrow[k] * m_pts + a[k] + woff[k];
        const double *xs = x + (irow[k] * m_pts + a[k] + xoff[k]) * nvec;
        double *o = out + (orow[k] * m_pts + a[k]) * nvec;
        const int64_t len = b[k] - a[k];
        if (nvec == 1) {
            for (int64_t m = 0; m < len; ++m)
                o[m] += (s * ws[m]) * xs[m];
        } else {
            for (int64_t m = 0; m < len; ++m) {
                const double wm = s * ws[m];
                const double *xr = xs + m * nvec;
                double *orr = o + m * nvec;
                for (int64_t j = 0; j < nvec; ++j)
                    orr[j] += wm * xr[j];
            }
        }
    }
}

/* CSR application for branch plans: out must be zero-initialized for
   nvec > 1; for nvec == 1 rows are assigned (scipy csr_matvec's local
   accumulator, bit for bit). */
void repro_csr_apply(const double *x, double *out, const double *vals,
                     const int64_t *cols, const int64_t *indptr,
                     int64_t nrows, int64_t nvec)
{
    if (nvec == 1) {
        for (int64_t i = 0; i < nrows; ++i) {
            double acc = 0.0;
            for (int64_t jj = indptr[i]; jj < indptr[i + 1]; ++jj)
                acc += vals[jj] * x[cols[jj]];
            out[i] = acc;
        }
    } else {
        for (int64_t i = 0; i < nrows; ++i) {
            double *o = out + i * nvec;
            for (int64_t jj = indptr[i]; jj < indptr[i + 1]; ++jj) {
                const double v = vals[jj];
                const double *xr = x + cols[jj] * nvec;
                for (int64_t j = 0; j < nvec; ++j)
                    o[j] += v * xr[j];
            }
        }
    }
}
"""

_CFLAGS = ["-O3", "-fPIC", "-shared", "-ffp-contract=off"]

_lib = None
_load_attempted = False
#: Human-readable reason the tier is unavailable (None when loaded/untried).
build_error: Optional[str] = None


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNELS_CACHE")
    if configured:
        return configured
    return os.path.join(
        os.environ.get("XDG_CACHE_HOME")
        or os.path.join(os.path.expanduser("~"), ".cache"),
        "repro-kernels",
    )


def _compiler() -> Optional[str]:
    configured = os.environ.get("CC")
    if configured:
        return shutil.which(configured)
    for cc in ("cc", "gcc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    return None


def _build() -> ctypes.CDLL:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    digest = hashlib.sha256(
        (_SOURCE + "\0" + " ".join(_CFLAGS) + "\0" + cc).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro-kernels-{digest}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            src = os.path.join(tmp, "kernels.c")
            with open(src, "w", encoding="utf-8") as fh:
                fh.write(_SOURCE)
            tmp_so = os.path.join(tmp, "kernels.so")
            proc = subprocess.run(
                [cc, *_CFLAGS, "-o", tmp_so, src],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{cc} failed ({proc.returncode}): {proc.stderr.strip()[:500]}"
                )
            # Atomic publish: concurrent builders (pool workers) race
            # benignly -- last rename wins, every file is complete.
            os.replace(tmp_so, so_path)
    lib = ctypes.CDLL(so_path)
    i64p = ctypes.POINTER(ctypes.c_int64)
    f64p = ctypes.POINTER(ctypes.c_double)
    lib.repro_roll_apply.restype = None
    lib.repro_roll_apply.argtypes = [f64p, f64p, f64p, f64p] + [i64p] * 7 + [
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64
    ]
    lib.repro_csr_apply.restype = None
    lib.repro_csr_apply.argtypes = [
        f64p, f64p, f64p, i64p, i64p, ctypes.c_int64, ctypes.c_int64
    ]
    return lib


def load_tier():
    """This module as a kernel tier, or None when it cannot be built."""
    global _lib, _load_attempted, build_error
    if not _load_attempted:
        _load_attempted = True
        try:
            _lib = _build()
        except Exception as exc:  # unavailable, never fatal
            build_error = str(exc)
            _lib = None
    if _lib is None:
        return None
    import sys

    return sys.modules[__name__]


def _f64(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _i64(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def roll_apply(q: np.ndarray, segs, x: np.ndarray, out: np.ndarray) -> None:
    nvec = 1 if x.ndim == 1 else x.shape[1]
    _lib.repro_roll_apply(
        _f64(x), _f64(out), _f64(q), _f64(segs.scale),
        _i64(segs.orow), _i64(segs.irow), _i64(segs.qrow),
        _i64(segs.a), _i64(segs.b), _i64(segs.xoff), _i64(segs.woff),
        segs.n_segments, q.shape[1], nvec,
    )


def csr_apply(cs, x: np.ndarray, out: np.ndarray) -> None:
    nvec = 1 if x.ndim == 1 else x.shape[1]
    _lib.repro_csr_apply(
        _f64(x), _f64(out), _f64(cs.vals), _i64(cs.cols), _i64(cs.indptr),
        cs.n_rows, nvec,
    )
