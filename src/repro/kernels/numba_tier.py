"""The optional numba kernel tier (available when numba is importable).

Same two primitives as the other tiers, expressed as ``@njit`` loops.
``fastmath`` stays off (the default): fast-math licenses reassociation
and FMA contraction, either of which would change the rounding sequence
and break the bit-identity invariant against the NumPy tier and the
assembled CSR matrix.  ``cache=True`` persists the compiled machine code
next to this module, so the JIT cost is paid once per environment.

The repository never installs numba itself -- this tier activates only
when the surrounding environment provides it (the CI ``kernels`` job
runs the equivalence battery both with and without it).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["load_tier", "import_error"]

name = "numba"

_compiled = None
_load_attempted = False
#: Why the tier is unavailable (None when loaded or untried).
import_error: Optional[str] = None


def _compile():
    import numba

    @numba.njit(cache=True, fastmath=False)
    def roll_apply_kernel(q, scale, orow, irow, qrow, a, b, xoff, woff,
                          x, out, m_pts, nvec):  # pragma: no cover - jitted
        nseg = orow.shape[0]
        for k in range(nseg):
            s = scale[k]
            wbase = qrow[k] * m_pts + a[k] + woff[k]
            xbase = (irow[k] * m_pts + a[k] + xoff[k]) * nvec
            obase = (orow[k] * m_pts + a[k]) * nvec
            length = b[k] - a[k]
            if nvec == 1:
                for m in range(length):
                    out[obase + m] += (s * q[wbase + m]) * x[xbase + m]
            else:
                for m in range(length):
                    wm = s * q[wbase + m]
                    xr = xbase + m * nvec
                    orr = obase + m * nvec
                    for j in range(nvec):
                        out[orr + j] += wm * x[xr + j]

    @numba.njit(cache=True, fastmath=False)
    def csr_apply_kernel(vals, cols, indptr, x, out, nvec):  # pragma: no cover - jitted
        nrows = indptr.shape[0] - 1
        if nvec == 1:
            for i in range(nrows):
                acc = 0.0
                for jj in range(indptr[i], indptr[i + 1]):
                    acc += vals[jj] * x[cols[jj]]
                out[i] = acc
        else:
            for i in range(nrows):
                obase = i * nvec
                for jj in range(indptr[i], indptr[i + 1]):
                    v = vals[jj]
                    xbase = cols[jj] * nvec
                    for j in range(nvec):
                        out[obase + j] += v * x[xbase + j]

    return roll_apply_kernel, csr_apply_kernel


def load_tier():
    """This module as a kernel tier, or None when numba is missing."""
    global _compiled, _load_attempted, import_error
    if not _load_attempted:
        _load_attempted = True
        try:
            _compiled = _compile()
        except Exception as exc:  # ImportError or jit failure
            import_error = str(exc)
            _compiled = None
    if _compiled is None:
        return None
    import sys

    return sys.modules[__name__]


def roll_apply(q: np.ndarray, segs, x: np.ndarray, out: np.ndarray) -> None:
    nvec = 1 if x.ndim == 1 else x.shape[1]
    _compiled[0](
        q.ravel(), segs.scale, segs.orow, segs.irow, segs.qrow,
        segs.a, segs.b, segs.xoff, segs.woff,
        x.ravel(), out.reshape(-1), q.shape[1], nvec,
    )


def csr_apply(cs, x: np.ndarray, out: np.ndarray) -> None:
    nvec = 1 if x.ndim == 1 else x.shape[1]
    _compiled[1](cs.vals, cs.cols, cs.indptr, x.ravel(), out.reshape(-1), nvec)
