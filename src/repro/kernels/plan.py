"""Coalesced kernel plans for the structural operators.

The matrix-free hot path used to be a Python loop over the raw output of
``CDRTransitionOperator._compile_terms()`` -- one ``np.roll`` (a full
allocate-and-concatenate) plus a multiply and an add per term, with the
same ``(src, dst, shift)`` triple visited once per (decision, drift,
branch) combination that produced it.  A :class:`RollPlan` compiles those
terms once, at operator construction, into the form the kernel tiers
(:mod:`repro.kernels`) consume:

* **Coalescing** -- terms sharing ``(src_block, dst_block, shift mod M)``
  are merged.  Same decision-mass vector: the scalars are summed.
  Different mass vectors (possible for saturating counters, where two
  decisions can reach the same destination with the same net shift): the
  weighted sum is materialized as one dense weight row.  Either way each
  surviving term is a single ``(q_row, scale)`` pair, so the kernel does
  one multiply-accumulate pass per term.
* **Factored weights** -- per-phase weights are stored as ``scale *
  Q[q_row]`` against a tiny shared table ``Q`` (the three decision-mass
  vectors, a ones row, plus any merged rows).  Memory stays ``O(M + K)``,
  not ``O(nnz)``: the plan does not re-materialize the matrix it exists
  to avoid, and the weight table fits in L1/L2 cache, so a kernel apply
  streams only the input and output vectors.
* **Segments** -- each circular roll is split into at most two contiguous
  slices (the wrapped and non-wrapped ranges), trimmed to the weight
  row's nonzero support, so the kernels run plain strided loops with no
  modular indexing.
* **CSR accumulation order** -- segments are sorted so that every output
  element receives its contributions in ascending source-column order,
  which is exactly the order ``scipy`` CSR matvec sums a row in.  That is
  what makes every kernel tier *bit-identical* to applying
  ``to_csr()`` / its transpose (a test invariant), not merely close.

:class:`BranchPlan` does the analogous compilation for
:class:`~repro.scenarios.operator.BranchSumOperator`: the per-branch
``(weights, dest)`` arrays are flattened, zero-weight entries dropped,
duplicates merged, and the result sorted into explicit CSR index arrays
for the gather (``P v``) and scatter (``P^T x``) directions -- replacing
the ``np.add.at`` scatter (notoriously slow: one Python-level fancy-index
dispatch per apply) with a sequential CSR pass that is bit-identical to
the assembled backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["SegmentSet", "RollPlan", "CSRArrays", "BranchPlan"]


class SegmentSet:
    """One apply direction's segment table, in CSR accumulation order.

    A segment applies, for ``m`` in ``[a, b)``::

        out[orow * M + m] += (scale * Q[qrow, m + woff]) * x[irow * M + m + xoff]

    All arrays are parallel, C-contiguous and int64/float64 so the
    compiled tiers can consume their raw buffers directly.
    """

    __slots__ = (
        "orow", "irow", "qrow", "scale", "a", "b", "xoff", "woff",
        "n_segments", "_rows",
    )

    def __init__(self, rows: Sequence[Tuple[int, int, int, float, int, int, int, int]]) -> None:
        cols = list(zip(*rows)) if rows else [[]] * 8
        self.orow = np.ascontiguousarray(cols[0], dtype=np.int64)
        self.irow = np.ascontiguousarray(cols[1], dtype=np.int64)
        self.qrow = np.ascontiguousarray(cols[2], dtype=np.int64)
        self.scale = np.ascontiguousarray(cols[3], dtype=np.float64)
        self.a = np.ascontiguousarray(cols[4], dtype=np.int64)
        self.b = np.ascontiguousarray(cols[5], dtype=np.int64)
        self.xoff = np.ascontiguousarray(cols[6], dtype=np.int64)
        self.woff = np.ascontiguousarray(cols[7], dtype=np.int64)
        self.n_segments = len(rows)
        self._rows: Optional[List[Tuple]] = None

    def rows(self) -> List[Tuple]:
        """Plain-Python tuples for the NumPy tier's segment loop (cached)."""
        if self._rows is None:
            self._rows = list(
                zip(
                    self.orow.tolist(), self.irow.tolist(), self.qrow.tolist(),
                    self.scale.tolist(), self.a.tolist(), self.b.tolist(),
                    self.xoff.tolist(), self.woff.tolist(),
                )
            )
        return self._rows


class RollPlan:
    """Coalesced block-roll terms plus per-direction segment tables.

    Built once per operator from the raw ``_compile_terms()`` output;
    ``scatter`` drives ``rmatvec``/``rmatmat`` (out-block = destination),
    ``gather`` drives ``matvec``/``matmat`` (out-block = source).
    """

    __slots__ = (
        "M", "n_blocks", "n", "q", "src", "dst", "shift", "qrow", "scale",
        "n_terms", "n_input_terms", "scatter", "gather",
    )

    def __init__(self, terms, n_blocks: int, M: int) -> None:
        self.M = int(M)
        self.n_blocks = int(n_blocks)
        self.n = self.n_blocks * self.M
        self.n_input_terms = len(terms)
        q_rows: List[np.ndarray] = [np.ones(M)]
        q_index: Dict[int, int] = {}

        def row_of(q_vec) -> int:
            if q_vec is None:
                return 0
            key = id(q_vec)
            row = q_index.get(key)
            if row is None:
                row = q_index[key] = len(q_rows)
                q_rows.append(np.ascontiguousarray(q_vec, dtype=np.float64))
            return row

        # Group the raw terms by (src, dst, shift mod M), preserving
        # emission order inside each group so merged values accumulate in
        # a deterministic order.
        groups: Dict[Tuple[int, int, int], List[Tuple[int, float]]] = {}
        for src, dst, shift, q_vec, scalar in terms:
            groups.setdefault((src, dst, shift % M), []).append(
                (row_of(q_vec), float(scalar))
            )

        src_l: List[int] = []
        dst_l: List[int] = []
        shift_l: List[int] = []
        qrow_l: List[int] = []
        scale_l: List[float] = []
        for (src, dst, s), parts in groups.items():
            # Same mass vector: sum the scalars (CSR would sum the
            # duplicate entries; to_csr() below builds from these merged
            # values, so plan and matrix stay bit-consistent).
            combined: List[Tuple[int, float]] = []
            for qrow, scalar in parts:
                for i, (qr, sc) in enumerate(combined):
                    if qr == qrow:
                        combined[i] = (qr, sc + scalar)
                        break
                else:
                    combined.append((qrow, scalar))
            if len(combined) == 1:
                qrow, scalar = combined[0]
                if scalar == 0.0:
                    continue
            else:
                # Distinct mass vectors collapsing onto one (src, dst,
                # shift): materialize the merged weight row so the kernel
                # still does a single multiply-accumulate for this term.
                merged = np.zeros(M)
                for qr, sc in combined:
                    merged += sc * q_rows[qr]
                if not np.any(merged):
                    continue
                qrow, scalar = len(q_rows), 1.0
                q_rows.append(merged)
            src_l.append(src)
            dst_l.append(dst)
            shift_l.append(s)
            qrow_l.append(qrow)
            scale_l.append(scalar)

        self.q = np.ascontiguousarray(np.stack(q_rows), dtype=np.float64)
        self.src = np.asarray(src_l, dtype=np.int64)
        self.dst = np.asarray(dst_l, dtype=np.int64)
        self.shift = np.asarray(shift_l, dtype=np.int64)
        self.qrow = np.asarray(qrow_l, dtype=np.int64)
        self.scale = np.asarray(scale_l, dtype=np.float64)
        self.n_terms = len(src_l)

        # Nonzero support [lo, hi) of each weight row.  Segments are
        # trimmed to it, so the explicit zeros CSR eliminates are (for
        # the contiguous supports the decision masses actually have)
        # never touched by the kernels either.
        lo = np.zeros(len(q_rows), dtype=np.int64)
        hi = np.zeros(len(q_rows), dtype=np.int64)
        for i, row in enumerate(q_rows):
            nz = np.flatnonzero(row)
            if nz.size:
                lo[i], hi[i] = int(nz[0]), int(nz[-1]) + 1
        self.scatter = self._build_segments(lo, hi, transpose=True)
        self.gather = self._build_segments(lo, hi, transpose=False)

    def _build_segments(self, lo, hi, transpose: bool) -> SegmentSet:
        M = self.M
        rows: List[Tuple[int, int, int, float, int, int, int, int]] = []
        for k in range(self.n_terms):
            src = int(self.src[k])
            dst = int(self.dst[k])
            s = int(self.shift[k])
            qrow = int(self.qrow[k])
            scale = float(self.scale[k])
            l, h = int(lo[qrow]), int(hi[qrow])
            if l >= h:
                continue
            if transpose:
                # out[dst, m] += w[m + d] * x[src, m + d]; weight index
                # equals the source phase, so the support trim shifts by d.
                pieces = [(s, M, -s), (0, s, M - s)] if s else [(0, M, 0)]
                for a, b, d in pieces:
                    aa, bb = max(a, l - d), min(b, h - d)
                    if aa < bb:
                        rows.append((dst, src, qrow, scale, aa, bb, d, d))
            else:
                # out[src, m] += w[m] * v[dst, m + d]; weight indexed by
                # the output phase directly.
                pieces = [(0, M - s, s), (M - s, M, s - M)] if s else [(0, M, 0)]
                for a, b, d in pieces:
                    aa, bb = max(a, l), min(b, h)
                    if aa < bb:
                        rows.append((src, dst, qrow, scale, aa, bb, d, 0))
        # CSR accumulation order: for any fixed output element, ascending
        # source column is (input block, then column offset d) -- exactly
        # the order a canonical CSR row is summed in.
        rows.sort(key=lambda r: (r[0], r[1], r[6]))
        return SegmentSet(rows)

    def to_csr(self) -> sp.csr_matrix:
        """The explicit matrix the plan describes (O(nnz) memory).

        Values are the plan's merged ``scale * Q[qrow]`` weights, so the
        kernels' accumulation reproduces this matrix's application
        bit-for-bit (given the CSR-order segment sort above).
        """
        M, n = self.M, self.n
        m_idx = np.arange(M)
        rows, cols, vals = [], [], []
        for k in range(self.n_terms):
            rows.append(self.src[k] * M + m_idx)
            cols.append(self.dst[k] * M + (m_idx + self.shift[k]) % M)
            vals.append(self.scale[k] * self.q[self.qrow[k]])
        P = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        ).tocsr()
        P.sum_duplicates()
        P.eliminate_zeros()
        return P

    @property
    def n_segments(self) -> int:
        return self.scatter.n_segments + self.gather.n_segments

    def __repr__(self) -> str:
        return (
            f"RollPlan(n={self.n}, terms={self.n_terms} of "
            f"{self.n_input_terms} raw, q_rows={self.q.shape[0]}, "
            f"segments={self.n_segments})"
        )


class CSRArrays:
    """Explicit CSR index arrays for one branch-apply direction.

    ``rows`` repeats the row index per stored entry (what the NumPy
    tier's ``np.bincount`` accumulation consumes); the compiled tiers use
    ``indptr`` directly.
    """

    __slots__ = ("indptr", "cols", "vals", "rows", "n_rows")

    def __init__(self, major: np.ndarray, minor: np.ndarray, vals: np.ndarray, n: int) -> None:
        order = np.lexsort((minor, major))
        maj = major[order]
        mino = minor[order]
        v = vals[order]
        if maj.size:
            dup = (np.diff(maj) == 0) & (np.diff(mino) == 0)
            if np.any(dup):
                starts = np.flatnonzero(np.concatenate(([True], ~dup)))
                lengths = np.diff(np.append(starts, maj.size))
                merged = v[starts].copy()
                # Sum duplicate runs left to right (plain sequential
                # adds, matching scipy's sum_duplicates) -- runs are rare
                # and short, so a Python loop is fine here, at build time.
                for i in np.flatnonzero(lengths > 1):
                    acc = 0.0
                    for x in v[starts[i]: starts[i] + lengths[i]]:
                        acc += float(x)
                    merged[i] = acc
                maj, mino, v = maj[starts], mino[starts], merged
        self.rows = np.ascontiguousarray(maj, dtype=np.int64)
        self.cols = np.ascontiguousarray(mino, dtype=np.int64)
        self.vals = np.ascontiguousarray(v, dtype=np.float64)
        self.indptr = np.searchsorted(self.rows, np.arange(n + 1)).astype(np.int64)
        self.n_rows = int(n)

    @property
    def nnz(self) -> int:
        return int(self.vals.size)


class BranchPlan:
    """Sorted CSR-form index arrays for a branch-sum operator.

    ``gather`` applies ``P v`` (row = source state), ``scatter`` applies
    ``P^T x`` (row = destination state).  Memory is O(nnz) -- the same
    order as the branch terms themselves, so nothing is lost relative to
    the operator's own storage.
    """

    __slots__ = ("n", "gather", "scatter")

    def __init__(self, n: int, terms) -> None:
        self.n = int(n)
        idx = np.arange(n, dtype=np.int64)
        rows = np.concatenate([idx] * len(terms))
        cols = np.concatenate([np.asarray(d, dtype=np.int64) for _, d in terms])
        vals = np.concatenate([np.asarray(w, dtype=np.float64) for w, _ in terms])
        live = vals != 0.0
        rows, cols, vals = rows[live], cols[live], vals[live]
        self.gather = CSRArrays(rows, cols, vals, n)
        self.scatter = CSRArrays(cols, rows, vals, n)

    @property
    def nnz(self) -> int:
        return self.gather.nnz

    def __repr__(self) -> str:
        return f"BranchPlan(n={self.n}, nnz={self.nnz})"
