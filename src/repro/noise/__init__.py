"""Discretized stochastic input models (jitter, noise, drift).

The paper models all random inputs of the clock-data-recovery loop --
incoming-data jitter, eye opening, frequency drift -- as *discretized white
noise sources*: random variables with finite support whose atoms live on the
phase-error grid.  This subpackage provides the distribution toolkit
(:mod:`repro.noise.distributions`) and ready-made jitter models matching the
specifications discussed in the paper (:mod:`repro.noise.jitter`).
"""

from repro.noise.distributions import DiscreteDistribution
from repro.noise.jitter import (
    dual_dirac_jitter,
    eye_opening_noise,
    sinusoidal_jitter,
    sonet_drift_noise,
)
from repro.noise.budget import (
    JitterBudget,
    q_factor,
    rj_budget_from_tj,
    total_jitter,
)

__all__ = [
    "DiscreteDistribution",
    "eye_opening_noise",
    "sonet_drift_noise",
    "sinusoidal_jitter",
    "dual_dirac_jitter",
    "JitterBudget",
    "q_factor",
    "total_jitter",
    "rj_budget_from_tj",
]
