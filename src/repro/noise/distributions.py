"""Finite discrete distributions used as stochastic FSM inputs.

The analysis method of the paper requires every random input of the system
(data jitter ``n_w``, drift noise ``n_r``, ...) to be *discretized*: a random
variable with a finite number of atoms, so that the combined system state
space is a finite Markov chain.  :class:`DiscreteDistribution` is the common
currency: an immutable, validated list of ``(value, probability)`` atoms with
the algebra needed by the model builders (convolution, shifting, scaling,
quantization onto the phase grid) and by the performance measures (tail
probabilities, moments).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["DiscreteDistribution"]

_ATOL = 1e-10

ArrayLike = Union[Sequence[float], np.ndarray]


def _normalize_atoms(
    values: np.ndarray, probs: np.ndarray, merge_tol: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort atoms by value, merge near-duplicates, drop zero-probability atoms."""
    order = np.argsort(values, kind="stable")
    values = values[order]
    probs = probs[order]

    keep_values = []
    keep_probs = []
    for v, p in zip(values, probs):
        if keep_values and abs(v - keep_values[-1]) <= merge_tol:
            keep_probs[-1] += p
        else:
            keep_values.append(v)
            keep_probs.append(p)
    values = np.asarray(keep_values, dtype=float)
    probs = np.asarray(keep_probs, dtype=float)

    mask = probs > 0.0
    return values[mask], probs[mask]


class DiscreteDistribution:
    """An immutable finite discrete probability distribution on the real line.

    Parameters
    ----------
    values:
        Atom locations.  Need not be sorted; duplicates are merged.
    probs:
        Atom probabilities.  Must be non-negative and sum to one (within
        tolerance); they are renormalized to sum to exactly one.
    merge_tol:
        Atoms closer than this are merged into one (probability summed).
    """

    __slots__ = ("_values", "_probs")

    def __init__(
        self,
        values: ArrayLike,
        probs: ArrayLike,
        merge_tol: float = 0.0,
    ) -> None:
        values = np.atleast_1d(np.asarray(values, dtype=float))
        probs = np.atleast_1d(np.asarray(probs, dtype=float))
        if values.ndim != 1 or probs.ndim != 1:
            raise ValueError("values and probs must be one-dimensional")
        if values.shape != probs.shape:
            raise ValueError(
                f"values and probs must have the same length, got "
                f"{values.shape[0]} and {probs.shape[0]}"
            )
        if values.size == 0:
            raise ValueError("a distribution needs at least one atom")
        if not np.all(np.isfinite(values)):
            raise ValueError("atom values must be finite")
        if np.any(probs < -_ATOL):
            raise ValueError("probabilities must be non-negative")
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"probabilities must sum to 1, got {total!r}")
        probs = probs / total
        values, probs = _normalize_atoms(values, probs, merge_tol)
        self._values = values
        self._probs = probs
        self._values.setflags(write=False)
        self._probs.setflags(write=False)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def values(self) -> np.ndarray:
        """Atom locations, sorted ascending (read-only view)."""
        return self._values

    @property
    def probs(self) -> np.ndarray:
        """Atom probabilities, aligned with :attr:`values` (read-only view)."""
        return self._probs

    @property
    def n_atoms(self) -> int:
        return self._values.size

    @property
    def support(self) -> Tuple[float, float]:
        """``(min, max)`` of the atom locations."""
        return float(self._values[0]), float(self._values[-1])

    def __len__(self) -> int:
        return self.n_atoms

    def __iter__(self):
        return iter(zip(self._values, self._probs))

    def __repr__(self) -> str:
        lo, hi = self.support
        return (
            f"DiscreteDistribution(n_atoms={self.n_atoms}, "
            f"support=[{lo:g}, {hi:g}], mean={self.mean():.4g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return (
            self.n_atoms == other.n_atoms
            and np.allclose(self._values, other._values, atol=_ATOL)
            and np.allclose(self._probs, other._probs, atol=_ATOL)
        )

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("DiscreteDistribution is not hashable")

    # ------------------------------------------------------------------ #
    # moments and probabilities
    # ------------------------------------------------------------------ #

    def mean(self) -> float:
        return float(np.dot(self._values, self._probs))

    def var(self) -> float:
        m = self.mean()
        return float(np.dot((self._values - m) ** 2, self._probs))

    def std(self) -> float:
        return math.sqrt(max(self.var(), 0.0))

    def moment(self, k: int, central: bool = False) -> float:
        """Return the ``k``-th (optionally central) moment."""
        shift = self.mean() if central else 0.0
        return float(np.dot((self._values - shift) ** k, self._probs))

    def pmf(self, value: float, tol: float = _ATOL) -> float:
        """Probability of the atom at ``value`` (0 if no atom there)."""
        idx = np.searchsorted(self._values, value)
        for i in (idx - 1, idx):
            if 0 <= i < self.n_atoms and abs(self._values[i] - value) <= tol:
                return float(self._probs[i])
        return 0.0

    def cdf(self, x: float) -> float:
        """``P(X <= x)``."""
        idx = np.searchsorted(self._values, x, side="right")
        return float(self._probs[:idx].sum())

    def tail_prob(self, threshold: float, two_sided: bool = False) -> float:
        """``P(X > threshold)``, or ``P(|X| > threshold)`` if ``two_sided``."""
        if two_sided:
            mask = np.abs(self._values) > threshold
        else:
            mask = self._values > threshold
        return float(self._probs[mask].sum())

    def expectation(self, fn: Callable[[np.ndarray], np.ndarray]) -> float:
        """Expectation of ``fn(X)`` where ``fn`` is vectorized over atoms."""
        return float(np.dot(np.asarray(fn(self._values), dtype=float), self._probs))

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def shift(self, offset: float) -> "DiscreteDistribution":
        """Distribution of ``X + offset``."""
        return DiscreteDistribution(self._values + offset, self._probs)

    def scale(self, factor: float) -> "DiscreteDistribution":
        """Distribution of ``factor * X``."""
        if factor == 0.0:
            return DiscreteDistribution.delta(0.0)
        return DiscreteDistribution(self._values * factor, self._probs)

    def negate(self) -> "DiscreteDistribution":
        """Distribution of ``-X``."""
        return self.scale(-1.0)

    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Distribution of ``X + Y`` for independent ``X ~ self``, ``Y ~ other``."""
        if not isinstance(other, DiscreteDistribution):
            raise TypeError("can only convolve with another DiscreteDistribution")
        vv = np.add.outer(self._values, other._values).ravel()
        pp = np.multiply.outer(self._probs, other._probs).ravel()
        return DiscreteDistribution(vv, pp, merge_tol=_ATOL)

    def __add__(self, other):
        if isinstance(other, DiscreteDistribution):
            return self.convolve(other)
        if isinstance(other, (int, float)):
            return self.shift(float(other))
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, factor):
        if isinstance(factor, (int, float)):
            return self.scale(float(factor))
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self):
        return self.negate()

    def mixture(
        self, other: "DiscreteDistribution", weight: float
    ) -> "DiscreteDistribution":
        """Mixture ``weight * self + (1 - weight) * other`` (of *laws*)."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError("mixture weight must be in [0, 1]")
        vv = np.concatenate([self._values, other._values])
        pp = np.concatenate([weight * self._probs, (1.0 - weight) * other._probs])
        return DiscreteDistribution(vv, pp, merge_tol=_ATOL)

    def quantize(self, step: float, mode: str = "nearest") -> "DiscreteDistribution":
        """Snap every atom to the lattice ``step * Z``.

        This is how continuous jitter specifications are mapped onto the
        discretized phase-error grid of the Markov model.  ``mode`` is one of
        ``"nearest"``, ``"floor"``, ``"ceil"``, or ``"split"``.  ``"split"``
        distributes each atom's probability between the two neighbouring grid
        points proportionally to proximity, which preserves the mean exactly.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        if mode == "nearest":
            vv = np.round(self._values / step) * step
            return DiscreteDistribution(vv, self._probs, merge_tol=step * 1e-9)
        if mode == "floor":
            vv = np.floor(self._values / step) * step
            return DiscreteDistribution(vv, self._probs, merge_tol=step * 1e-9)
        if mode == "ceil":
            vv = np.ceil(self._values / step) * step
            return DiscreteDistribution(vv, self._probs, merge_tol=step * 1e-9)
        if mode == "split":
            lo = np.floor(self._values / step)
            frac = self._values / step - lo
            vv = np.concatenate([lo * step, (lo + 1.0) * step])
            pp = np.concatenate([self._probs * (1.0 - frac), self._probs * frac])
            return DiscreteDistribution(vv, pp, merge_tol=step * 1e-9)
        raise ValueError(f"unknown quantization mode {mode!r}")

    def truncate(self, lo: float, hi: float) -> "DiscreteDistribution":
        """Condition the distribution on ``lo <= X <= hi`` (renormalized)."""
        mask = (self._values >= lo) & (self._values <= hi)
        if not np.any(mask):
            raise ValueError("truncation removes all probability mass")
        return DiscreteDistribution(self._values[mask], self._probs[mask] / self._probs[mask].sum())

    # ------------------------------------------------------------------ #
    # sampling (for the Monte-Carlo baseline)
    # ------------------------------------------------------------------ #

    def sample(
        self, rng: np.random.Generator, size: Optional[int] = None
    ) -> Union[float, np.ndarray]:
        """Draw i.i.d. samples using ``rng``."""
        out = rng.choice(self._values, size=size, p=self._probs)
        return out

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def delta(cls, value: float = 0.0) -> "DiscreteDistribution":
        """A point mass at ``value``."""
        return cls([value], [1.0])

    @classmethod
    def uniform(cls, values: ArrayLike) -> "DiscreteDistribution":
        """Uniform distribution over the given atom locations."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("uniform needs at least one value")
        return cls(values, np.full(values.size, 1.0 / values.size))

    @classmethod
    def bernoulli(cls, p: float, lo: float = 0.0, hi: float = 1.0) -> "DiscreteDistribution":
        """Two-point distribution: ``hi`` with probability ``p``, else ``lo``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        return cls([lo, hi], [1.0 - p, p])

    @classmethod
    def from_samples(
        cls, samples: ArrayLike, bins: int = 64
    ) -> "DiscreteDistribution":
        """Empirical distribution from samples, histogrammed into ``bins`` atoms."""
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise ValueError("need at least one sample")
        counts, edges = np.histogram(samples, bins=bins)
        centers = 0.5 * (edges[:-1] + edges[1:])
        mask = counts > 0
        return cls(centers[mask], counts[mask] / counts.sum())

    @classmethod
    def gaussian(
        cls,
        std: float,
        mean: float = 0.0,
        n_atoms: int = 11,
        n_sigmas: float = 4.0,
    ) -> "DiscreteDistribution":
        """Discretized Gaussian on an equispaced grid of ``n_atoms`` points.

        The grid spans ``mean ± n_sigmas * std``; each atom receives the
        probability mass of its grid cell (difference of the normal CDF at
        the cell edges), so the tails out to ``n_sigmas`` are represented
        exactly and the result always sums to one.
        """
        if std < 0:
            raise ValueError("std must be non-negative")
        if n_atoms < 1:
            raise ValueError("n_atoms must be at least 1")
        if std == 0 or n_atoms == 1:
            return cls.delta(mean)
        centers = np.linspace(mean - n_sigmas * std, mean + n_sigmas * std, n_atoms)
        edges = np.concatenate([[-np.inf], 0.5 * (centers[1:] + centers[:-1]), [np.inf]])
        # CDF differences between consecutive edges; outermost cells absorb
        # the tails so probabilities sum exactly to one.
        z = (edges - mean) / (std * math.sqrt(2.0))
        cdf = 0.5 * (1.0 + np.array(
            [math.erf(v) if np.isfinite(v) else math.copysign(1.0, v) for v in z]
        ))
        return cls(centers, np.diff(cdf))

    @classmethod
    def table(
        cls, atoms: Iterable[Tuple[float, float]]
    ) -> "DiscreteDistribution":
        """Build from an iterable of ``(value, probability)`` pairs."""
        pairs = list(atoms)
        if not pairs:
            raise ValueError("need at least one atom")
        values = [v for v, _ in pairs]
        probs = [p for _, p in pairs]
        return cls(values, probs)
