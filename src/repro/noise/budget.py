"""Total-jitter budgeting helpers.

Link specs combine bounded deterministic jitter (DJ) and unbounded random
jitter (RJ) through the dual-Dirac convention: at a target BER, the total
jitter is ``TJ = DJ(peak-peak) + 2 Q_ber * RJ(rms)`` where ``Q_ber`` is
the two-sided Gaussian quantile (~7.03 at 1e-12, hence the folklore
"TJ = DJ + 14 sigma").  These helpers convert between the spec-sheet
quantities and the model inputs of this library (``nw_std``, dual-Dirac
amplitudes), with the exact quantile rather than the folklore constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import erfcinv

__all__ = ["q_factor", "total_jitter", "JitterBudget", "rj_budget_from_tj"]


def q_factor(ber: float) -> float:
    """Two-sided Gaussian quantile: ``P(|X| > Q sigma) = 2 * ber``.

    The per-edge convention used by dual-Dirac budgets: an eye sampled at
    a point ``Q sigma`` from the Gaussian-jittered crossing sees BER
    ``ber`` from that crossing.
    """
    if not 0.0 < ber < 0.5:
        raise ValueError("ber must be in (0, 0.5)")
    return math.sqrt(2.0) * float(erfcinv(2.0 * ber))


def total_jitter(dj_pp_ui: float, rj_rms_ui: float, ber: float = 1e-12) -> float:
    """Dual-Dirac total jitter (peak-to-peak, UI) at the target BER."""
    if dj_pp_ui < 0 or rj_rms_ui < 0:
        raise ValueError("jitter magnitudes must be non-negative")
    return dj_pp_ui + 2.0 * q_factor(ber) * rj_rms_ui


def rj_budget_from_tj(
    tj_pp_ui: float, dj_pp_ui: float, ber: float = 1e-12
) -> float:
    """The RJ rms implied by a TJ spec after subtracting the DJ part."""
    remainder = tj_pp_ui - dj_pp_ui
    if remainder < 0:
        raise ValueError("DJ alone exceeds the total-jitter budget")
    return remainder / (2.0 * q_factor(ber))


@dataclass(frozen=True)
class JitterBudget:
    """A link jitter budget and its translation to model inputs."""

    dj_pp_ui: float
    rj_rms_ui: float
    ber: float = 1e-12

    def __post_init__(self) -> None:
        if self.dj_pp_ui < 0 or self.rj_rms_ui < 0:
            raise ValueError("jitter magnitudes must be non-negative")
        if not 0.0 < self.ber < 0.5:
            raise ValueError("ber must be in (0, 0.5)")

    @property
    def tj_pp_ui(self) -> float:
        return total_jitter(self.dj_pp_ui, self.rj_rms_ui, self.ber)

    @property
    def eye_opening_ui(self) -> float:
        """The eye left open by the budget at the target BER (can go
        negative: a closed eye)."""
        return 1.0 - self.tj_pp_ui

    def nw_distribution(self, n_atoms: int = 11, n_sigmas: float = 4.0):
        """The composite ``n_w`` model: dual-Dirac DJ convolved with the
        discretized Gaussian RJ -- ready for the chain builders."""
        from repro.noise.distributions import DiscreteDistribution
        from repro.noise.jitter import dual_dirac_jitter

        rj = DiscreteDistribution.gaussian(
            std=self.rj_rms_ui, n_atoms=n_atoms, n_sigmas=n_sigmas
        )
        dj = dual_dirac_jitter(self.dj_pp_ui)
        return rj.convolve(dj)

    def describe(self) -> str:
        return (
            f"DJ {self.dj_pp_ui:g} UIpp + RJ {self.rj_rms_ui:g} UIrms "
            f"-> TJ {self.tj_pp_ui:.4f} UIpp at BER {self.ber:g} "
            f"(eye {self.eye_opening_ui:+.4f} UI)"
        )
