"""Ready-made jitter and drift models for CDR analysis.

The paper distinguishes two white stochastic inputs to the phase-selection
loop (Equation (1)):

``n_w``
    Zero-mean white noise modeling the *eye opening* of the incoming data:
    uncorrelated bit-to-bit timing jitter, "usually Gaussian".  It enters the
    phase detector's decision (``sgn(phi + n_w)``) but does not accumulate.

``n_r``
    A usually *non-zero-mean* white noise with a cumulative (random-walk)
    effect on the phase error.  Its mean models deterministic frequency
    drift between the data rate and the local clock; its random part models
    cumulative jitter.  The paper takes a "non-zero mean, non-Gaussian
    distribution ... chosen to reflect SONET system specifications".

This module also provides the two standard deterministic-jitter shapes used
in link budgets: sinusoidal jitter (arcsine amplitude law) and dual-Dirac
jitter, both mentioned in the paper as representable "by assigning the
amplitude distribution of ``n_r`` appropriately".

All values are expressed in unit intervals (UI): 1.0 is one symbol period.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.noise.distributions import DiscreteDistribution

__all__ = [
    "eye_opening_noise",
    "sonet_drift_noise",
    "sinusoidal_jitter",
    "dual_dirac_jitter",
    "random_walk_increment",
]


def eye_opening_noise(
    std_ui: float, n_atoms: int = 11, n_sigmas: float = 4.0
) -> DiscreteDistribution:
    """Zero-mean Gaussian eye-opening jitter ``n_w``, discretized.

    Parameters
    ----------
    std_ui:
        RMS jitter in unit intervals.  SONET-style specs quote a peak-to-peak
        eye closure; an RMS of ``pp / 14`` is the usual conversion at 1e-12.
    n_atoms:
        Number of discrete atoms used to represent the Gaussian.
    n_sigmas:
        Span of the discretization grid.
    """
    return DiscreteDistribution.gaussian(std=std_ui, mean=0.0, n_atoms=n_atoms, n_sigmas=n_sigmas)


def sonet_drift_noise(
    max_ui: float,
    mean_ui: float,
    grid_step: Optional[float] = None,
    skew: float = 0.25,
) -> DiscreteDistribution:
    """Bounded, non-zero-mean, non-Gaussian drift noise ``n_r``.

    A three-atom table distribution with support ``{-max_ui, 0, +max_ui}``
    whose probabilities are chosen so that the mean equals ``mean_ui``.
    This mirrors the paper's "stationary white noise ... with a non-zero
    mean, non-Gaussian distribution with probability density function
    chosen to reflect SONET system specifications": per-symbol phase drift
    is bounded by ``MAXnr`` and biased in one direction by the fractional
    frequency offset between transmitter and receiver clocks.

    Parameters
    ----------
    max_ui:
        Bound on the per-symbol drift (the paper's ``MAXnr``).
    mean_ui:
        Desired mean drift per symbol (frequency offset in UI/symbol).
        Must satisfy ``|mean_ui| <= max_ui``.
    grid_step:
        Optional: snap the bound to a non-zero multiple of this step so
        the atoms land exactly on a phase grid.  Leave ``None`` (default)
        when feeding a Markov-chain builder -- its mean-preserving split
        quantization then spreads a non-multiple bound over two adjacent
        step counts, which keeps the phase lattice connected (a bound
        snapped to a multiple of the phase-select step would otherwise
        decompose the grid into non-communicating residue classes).
    skew:
        Baseline probability of each non-zero atom before the mean
        constraint is applied; controls the variance of the random part.
    """
    if max_ui <= 0:
        raise ValueError("max_ui must be positive")
    if grid_step is None:
        step = max_ui
    elif grid_step <= 0:
        raise ValueError("grid_step must be positive")
    else:
        step = max(1, round(max_ui / grid_step)) * grid_step
    if abs(mean_ui) > step:
        raise ValueError("mean_ui must not exceed the (grid-rounded) max_ui")
    if not 0.0 < skew < 0.5:
        raise ValueError("skew must be in (0, 0.5)")
    # p_plus - p_minus = mean/step, p_plus + p_minus = 2*skew (variance knob)
    bias = mean_ui / step
    p_plus = skew + 0.5 * bias
    p_minus = skew - 0.5 * bias
    if min(p_plus, p_minus) < 0.0 or max(p_plus, p_minus) > 1.0:
        # Fall back to the largest symmetric part compatible with the mean.
        p_plus = max(bias, 0.0)
        p_minus = max(-bias, 0.0)
    p_zero = 1.0 - p_plus - p_minus
    return DiscreteDistribution([-step, 0.0, step], [p_minus, p_zero, p_plus])


def sinusoidal_jitter(amplitude_ui: float, n_atoms: int = 16) -> DiscreteDistribution:
    """Amplitude law of sinusoidal jitter: the arcsine distribution.

    A sinusoid sampled at a random phase has density
    ``p(v) = 1 / (pi * sqrt(A^2 - v^2))`` on ``(-A, A)``.  The paper notes
    that deterministic sinusoidally-varying jitter can be mimicked by
    "assigning the amplitude distribution of n_r appropriately"; this is
    that distribution, discretized by exact CDF differences so the result
    sums to one.
    """
    if amplitude_ui < 0:
        raise ValueError("amplitude_ui must be non-negative")
    if n_atoms < 1:
        raise ValueError("n_atoms must be at least 1")
    if amplitude_ui == 0 or n_atoms == 1:
        return DiscreteDistribution.delta(0.0)
    edges = np.linspace(-amplitude_ui, amplitude_ui, n_atoms + 1)
    # CDF of arcsine law on (-A, A): F(v) = 1/2 + asin(v/A)/pi
    cdf = 0.5 + np.arcsin(np.clip(edges / amplitude_ui, -1.0, 1.0)) / math.pi
    probs = np.diff(cdf)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return DiscreteDistribution(centers, probs)


def dual_dirac_jitter(dj_pp_ui: float, p: float = 0.5) -> DiscreteDistribution:
    """Dual-Dirac deterministic jitter: two atoms separated by ``dj_pp_ui``.

    The standard model for bounded deterministic jitter (e.g. duty-cycle
    distortion, inter-symbol interference) used in link budgets.
    """
    if dj_pp_ui < 0:
        raise ValueError("dj_pp_ui must be non-negative")
    half = 0.5 * dj_pp_ui
    if half == 0.0:
        return DiscreteDistribution.delta(0.0)
    return DiscreteDistribution([-half, half], [1.0 - p, p])


def random_walk_increment(
    step_ui: float, p_step: float, drift_ui: float = 0.0
) -> DiscreteDistribution:
    """Increment law for cumulative (random-walk) jitter.

    With probability ``p_step / 2`` the phase moves by ``+step_ui``, with
    ``p_step / 2`` by ``-step_ui``, otherwise it stays.  An optional
    deterministic drift is added to every atom; feeding this into ``n_r``
    produces exactly the "random walk with drift" the paper describes.
    """
    if step_ui < 0:
        raise ValueError("step_ui must be non-negative")
    if not 0.0 <= p_step <= 1.0:
        raise ValueError("p_step must be in [0, 1]")
    dist = DiscreteDistribution(
        [-step_ui, 0.0, step_ui],
        [0.5 * p_step, 1.0 - p_step, 0.5 * p_step],
    )
    if drift_ui:
        dist = dist.shift(drift_ui)
    return dist
