"""repro -- stochastic modeling and performance evaluation of digital CDR circuits.

A from-scratch reproduction of A. Demir & P. Feldmann, "Stochastic Modeling
and Performance Evaluation for Digital Clock and Data Recovery Circuits"
(DATE 2000): non-Monte-Carlo BER and cycle-slip analysis of the digital
phase-selection loop of clock-data-recovery circuits, via finite-state
machines with Markov-chain stochastic inputs and a multi-level aggregation
(multigrid) stationary solver.

Quickstart::

    from repro import CDRSpec, analyze_cdr

    spec = CDRSpec(counter_length=8, nw_std=0.02, nr_max=0.008)
    analysis = analyze_cdr(spec)
    print(analysis.report())
    print(f"BER = {analysis.ber:.3e}")

Subpackages
-----------
``repro.noise``
    Discretized jitter / drift distributions.
``repro.markov``
    Markov-chain engine: sparse TPMs, classification, stationary solvers
    (power / Jacobi / Gauss-Seidel / Krylov / direct / multigrid),
    lumping, first-passage, transient and correlation analysis.
``repro.fsm``
    FSMs, stochastic sources, synchronous network composition, Kronecker
    descriptors.
``repro.cdr``
    The CDR circuit model, Monte-Carlo baseline, sweeps.
``repro.core``
    The end-to-end analyzer and performance measures.
"""

from repro.core import (
    AcquisitionAnalysis,
    CDRAnalysis,
    CDRSpec,
    analyze_acquisition,
    analyze_cdr,
    analyze_model,
    lock_probability_curve,
)
from repro.cdr.sweep import (
    optimal_counter_length,
    sweep_counter_length,
    sweep_parameter,
)
from repro.cdr.tolerance import (
    ToleranceResult,
    bisect_tolerance,
    random_jitter_tolerance,
    sinusoidal_jitter_tolerance,
)

__version__ = "1.0.0"

__all__ = [
    "CDRSpec",
    "CDRAnalysis",
    "analyze_cdr",
    "analyze_model",
    "AcquisitionAnalysis",
    "analyze_acquisition",
    "lock_probability_curve",
    "sweep_parameter",
    "sweep_counter_length",
    "optimal_counter_length",
    "ToleranceResult",
    "bisect_tolerance",
    "random_jitter_tolerance",
    "sinusoidal_jitter_tolerance",
    "__version__",
]
