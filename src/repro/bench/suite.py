"""Running benchmark suites into versioned ``repro.bench/1`` reports.

A report is the repo's checked-in performance trajectory (the
``BENCH_*.json`` files ROADMAP cites): min-of-N wall timings per
registered benchmark plus an *environment fingerprint* (interpreter,
numpy/scipy/repro versions, platform, CPU count) so a later
``repro bench compare`` can tell a real regression from a machine change.

Min-of-N is the right statistic for regression tracking: the minimum of
repeated runs estimates the noise-free cost (scheduler preemption and
cache pollution only ever add time), so two reports from the same machine
are comparable at thresholds far below the mean's variance.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.bench.registry import BenchmarkEntry, suite_benchmarks

__all__ = [
    "BENCH_SCHEMA",
    "environment_fingerprint",
    "run_benchmark",
    "run_suite",
    "default_output_path",
    "write_report",
    "load_report",
]

#: Schema tag of a benchmark report.
BENCH_SCHEMA = "repro.bench/1"


def environment_fingerprint() -> Dict[str, Any]:
    """The environment identity a report was produced under.

    Stable across repeated calls in one environment; any field changing
    between a baseline and a comparison run means the timings are not
    machine-comparable (``repro bench compare`` warns but still compares).
    """
    import os
    import platform
    import sys

    import numpy
    import scipy

    import repro
    from repro.kernels import active_tier

    return {
        "python": sys.version.split()[0],
        "python_implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "repro": repro.__version__,
        "system": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        # Active matvec kernel tier: a baseline timed under cext/numba is
        # not comparable to a run forced onto the numpy tier.
        "kernels": active_tier(),
    }


def run_benchmark(
    entry: BenchmarkEntry,
    rounds: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one benchmark: setup via the factory, then timed rounds.

    Returns the report row: name, suites, all round timings, ``min_s`` /
    ``mean_s``, and whatever dict the workload returned as ``meta``.

    A benchmark whose ``min_cpus`` exceeds this machine's ``os.cpu_count()``
    is not run at all: oversubscribed parallel timings are noise, not data.
    It returns an explicit *skip row* instead (``skipped`` reason plus the
    cpu requirement), so the checked-in artifact records that the benchmark
    was consciously not measured rather than silently absent.
    """
    import os

    cpu_count = os.cpu_count() or 1
    if cpu_count < entry.min_cpus:
        return {
            "name": entry.name,
            "suites": list(entry.suites),
            "description": entry.description,
            "skipped": "insufficient cpus",
            "required_cpus": entry.min_cpus,
            "cpu_count": cpu_count,
        }
    rounds = entry.rounds if rounds is None else rounds
    warmup = entry.warmup if warmup is None else warmup
    workload = entry.factory()
    meta: Dict[str, Any] = {}
    for _ in range(warmup):
        out = workload()
        if isinstance(out, dict):
            meta = out
    times: List[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = workload()
        times.append(time.perf_counter() - t0)
        if isinstance(out, dict):
            meta = out
    return {
        "name": entry.name,
        "suites": list(entry.suites),
        "description": entry.description,
        "rounds": rounds,
        "warmup": warmup,
        "times_s": times,
        "min_s": min(times),
        "mean_s": sum(times) / len(times),
        "meta": meta,
    }


def run_suite(
    suite: Optional[str] = None,
    names: Optional[List[str]] = None,
    rounds: Optional[int] = None,
    warmup: Optional[int] = None,
    progress=None,
) -> Dict[str, Any]:
    """Run a whole suite (or an explicit name list) into a report dict.

    ``progress(entry, row)`` is called after each benchmark completes
    (the CLI prints a line per benchmark through it).
    """
    if names:
        from repro.bench.registry import get_benchmark

        entries = tuple(get_benchmark(n) for n in names)
    else:
        entries = suite_benchmarks(suite)
    results = []
    for entry in entries:
        row = run_benchmark(entry, rounds=rounds, warmup=warmup)
        results.append(row)
        if progress is not None:
            progress(entry, row)
    fingerprint = environment_fingerprint()
    skipped = [r["name"] for r in results if r.get("skipped")]
    if skipped:
        fingerprint["note"] = (
            f"{len(skipped)} benchmark(s) skipped on this "
            f"{fingerprint['cpu_count']}-cpu machine "
            f"(insufficient cpus): {', '.join(skipped)}"
        )
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite or "all",
        "created_unix": time.time(),
        "fingerprint": fingerprint,
        "results": results,
    }


def default_output_path(suite: Optional[str]) -> str:
    """The checked-in artifact name for a suite (``BENCH_<suite>.json``)."""
    slug = (suite or "all").replace("-", "_")
    return f"BENCH_{slug}.json"


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Write a report as JSON, validating its schema tag."""
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError("not a benchmark report (missing/wrong schema tag)")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Read a report back, validating its schema tag."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unrecognized benchmark report schema {report.get('schema')!r}; "
            f"expected {BENCH_SCHEMA!r}"
        )
    return report
