"""The built-in benchmark battery.

Four suites, registered at import time (see :mod:`repro.bench.registry`):

``smoke``
    The CI gate: all four catalog scenarios on both common backends
    (assembled and matrix-free) at their ``fast`` sizes, operator-apply
    micro-benchmarks on all three backends, and one small end-to-end
    analyze.  Everything here finishes in seconds.
``ext-op``
    ROADMAP item 1's matrix-free vs assembled trajectory: per-apply
    micro-cost at M=1024 and M=4096 (122880 states -- past the paper's
    ~1e5 practical limit), blocked rmatmat at M=1024, and end-to-end
    multigrid solves at M=128/512 on both backends (the
    ``BENCH_ext_op.json`` artifact).  Every row records the kernel tier
    it ran under.
``parallel``
    ROADMAP item 2's sweep-parallelism trajectory: one small nw_std sweep
    run serially and fanned out over 2 and 4 workers of the elastic
    executor (:mod:`repro.exec`; the ``BENCH_parallel.json`` artifact).
    Pool startup and per-worker imports are *inside* the timing on
    purpose -- that is the cost a user actually pays for a parallel
    sweep.  The multi-worker entries declare ``min_cpus`` and are
    recorded as explicit skip rows on machines too small to time them
    honestly.
``scenarios``
    The scenario grid alone (a superset marker on the same benchmarks the
    smoke suite uses), for benchmarking catalog changes in isolation.
``hierarchy``
    The solve-context trajectory: hierarchy construction cost vs cached
    reuse, and dense parameter sweeps cold vs through a
    :class:`~repro.markov.SolveContext` (shared hierarchy + warm starts)
    at two model sizes (the ``BENCH_hierarchy.json`` artifact).  The
    headline number is ``warm_vs_cold_tail_ratio`` on the M=512 chain
    (15360 states): per-point cost excluding the first (cold) point.
"""

from __future__ import annotations

import numpy as np

from repro.bench.registry import register_benchmark

#: rmatvec applications per timed workload call (micro-benchmarks).
_APPLIES = 50


def _small_spec():
    from repro.core.spec import CDRSpec

    return CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=2,
        nw_std=0.08,
        nw_atoms=7,
    )


def _ext_op_spec(M: int):
    # The historical EXT-OP configuration (benchmarks/bench_ext_matrix_free).
    from repro.core.spec import CDRSpec

    return CDRSpec(
        n_phase_points=M,
        n_clock_phases=16,
        counter_length=8,
        max_run_length=2,
        nw_std=0.1,
        nw_atoms=9,
    )


# ---------------------------------------------------------------------- #
# operator-apply micro-benchmarks (one per backend)
# ---------------------------------------------------------------------- #

def _register_matvec_benchmarks() -> None:
    for backend in ("assembled", "matrix-free", "kronecker"):

        @register_benchmark(
            f"operator/rmatvec-{backend}",
            suites=("smoke",),
            rounds=5,
            warmup=1,
            description=f"{_APPLIES}x rmatvec through the {backend} backend "
            "at M=512",
        )
        def _factory(backend=backend):
            from repro.markov.linop import as_operator
            from repro.markov.registry import get_backend

            model = get_backend(backend).build(_ext_op_spec(512))
            op = as_operator(model.chain)
            x = np.full(op.shape[0], 1.0 / op.shape[0])

            def workload():
                y = x
                for _ in range(_APPLIES):
                    y = op.rmatvec(x)
                return {
                    "backend": backend,
                    "n_states": op.shape[0],
                    "applies": _APPLIES,
                    "checksum": float(y.sum()),
                }

            return workload


_register_matvec_benchmarks()


# ---------------------------------------------------------------------- #
# scenario x backend grid (the correctness battery as a perf battery)
# ---------------------------------------------------------------------- #

_SCENARIO_BACKENDS = ("assembled", "matrix-free")


def _register_scenario_benchmarks() -> None:
    from repro.scenarios.registry import scenario_names

    for name in scenario_names():
        for backend in _SCENARIO_BACKENDS:

            @register_benchmark(
                f"scenario/{name}@{backend}",
                suites=("smoke", "scenarios"),
                rounds=3,
                warmup=1,
                description=f"scenario {name!r} end to end on the "
                f"{backend} backend (fast size)",
            )
            def _factory(name=name, backend=backend):
                from repro.scenarios.runner import run_scenario

                def workload():
                    run = run_scenario(name, size="fast", backend=backend)
                    return {
                        "scenario": name,
                        "backend": backend,
                        "n_states": run.n_states,
                        "solver": run.solver,
                    }

                return workload


_register_scenario_benchmarks()


# ---------------------------------------------------------------------- #
# end-to-end analyze (the paper's headline pipeline)
# ---------------------------------------------------------------------- #

@register_benchmark(
    "analyze/default-small",
    suites=("smoke",),
    rounds=3,
    warmup=1,
    description="analyze_cdr on a small default-style spec (auto solver)",
)
def _bench_analyze_small():
    from repro.core.analyzer import analyze_cdr

    spec = _small_spec()

    def workload():
        res = analyze_cdr(spec, solver="auto")
        return {
            "n_states": res.n_states,
            "solver": res.solver_result.method,
            "iterations": res.solver_result.iterations,
        }

    return workload


# ---------------------------------------------------------------------- #
# EXT-OP: matrix-free vs assembled, micro and end to end
# ---------------------------------------------------------------------- #

#: Columns per blocked-apply workload call (ext-op rmatmat rows).
_BLOCK_COLUMNS = 8


def _register_ext_op_benchmarks() -> None:
    for backend in ("assembled", "matrix-free"):
        # M=1024 is the historical headline row; M=4096 (122880 states)
        # is the >=1e5-state point where matrix-free must now *beat*
        # assembled per apply (the bench-ext-op CI gate asserts it).
        for M in (1024, 4096):

            @register_benchmark(
                f"ext-op/rmatvec-{backend}-M{M}",
                suites=("ext-op",),
                rounds=5,
                warmup=1,
                description=f"{_APPLIES}x rmatvec, {backend} backend, M={M} "
                "(ROADMAP item 1's per-apply gap)",
            )
            def _micro_factory(backend=backend, M=M):
                from repro.kernels import active_tier
                from repro.markov.linop import as_operator
                from repro.markov.registry import get_backend

                model = get_backend(backend).build(_ext_op_spec(M))
                op = as_operator(model.chain)
                x = np.full(op.shape[0], 1.0 / op.shape[0])

                def workload():
                    for _ in range(_APPLIES):
                        op.rmatvec(x)
                    return {
                        "backend": backend,
                        "n_states": op.shape[0],
                        "applies": _APPLIES,
                        "kernel_tier": active_tier(),
                    }

                return workload

        @register_benchmark(
            f"ext-op/rmatmat-{backend}-M1024",
            suites=("ext-op",),
            rounds=5,
            warmup=1,
            description=f"{_APPLIES}x blocked rmatmat ({_BLOCK_COLUMNS} "
            f"columns), {backend} backend, M=1024",
        )
        def _block_factory(backend=backend):
            from repro.kernels import active_tier
            from repro.markov.linop import as_operator, operator_rmatmat
            from repro.markov.registry import get_backend

            model = get_backend(backend).build(_ext_op_spec(1024))
            op = as_operator(model.chain)
            n = op.shape[0]
            X = np.full((n, _BLOCK_COLUMNS), 1.0 / n)

            def workload():
                for _ in range(_APPLIES):
                    operator_rmatmat(op, X)
                return {
                    "backend": backend,
                    "n_states": n,
                    "applies": _APPLIES,
                    "columns": _BLOCK_COLUMNS,
                    "kernel_tier": active_tier(),
                }

            return workload

        for M in (128, 512):

            @register_benchmark(
                f"ext-op/solve-{backend}-M{M}",
                suites=("ext-op",),
                rounds=3,
                warmup=1,
                description=f"end-to-end multigrid analyze, {backend} "
                f"backend, M={M}",
            )
            def _e2e_factory(backend=backend, M=M):
                from repro.core.analyzer import analyze_cdr

                spec = _ext_op_spec(M)

                def workload():
                    res = analyze_cdr(
                        spec, backend=backend, solver="multigrid", tol=1e-10
                    )
                    return {
                        "backend": backend,
                        "M": M,
                        "n_states": res.n_states,
                        "iterations": res.solver_result.iterations,
                        "converged": bool(res.solver_result.converged),
                        "ber": float(res.ber),
                    }

                return workload


_register_ext_op_benchmarks()


# ---------------------------------------------------------------------- #
# parallel sweeps (through the elastic executor, repro.exec)
# ---------------------------------------------------------------------- #

#: The swept parameter values of the parallel benchmark's workload.
_SWEEP_VALUES = (0.06, 0.07, 0.08, 0.09, 0.10, 0.11)


def _parallel_sweep(jobs):
    """One nw_std sweep through :func:`sweep_parameter` (jobs=None: serial)."""
    from repro.cdr.sweep import sweep_parameter

    result = sweep_parameter(
        _small_spec(), "nw_std", list(_SWEEP_VALUES),
        solver="auto", jobs=jobs,
    )
    meta = {
        "jobs": jobs or 1,
        "points": len(result),
        "failed": len(result.failed_points),
        "ber_sum": float(sum(r["ber"] for r in result)),
    }
    if result.exec_stats:
        meta["mode"] = result.exec_stats["mode"]
        meta["workers_lost"] = result.exec_stats["workers_lost"]
    return meta


@register_benchmark(
    "parallel/sweep-serial",
    suites=("parallel",),
    rounds=3,
    warmup=1,
    description=f"{len(_SWEEP_VALUES)}-point nw_std sweep, serial "
    "sweep_parameter loop (the parallel baselines' denominator)",
)
def _bench_sweep_serial():
    def workload():
        return _parallel_sweep(None)

    return workload


def _register_parallel_benchmarks() -> None:
    for jobs in (2, 4):

        @register_benchmark(
            f"parallel/sweep-{jobs}jobs",
            suites=("parallel",),
            rounds=3,
            warmup=1,
            min_cpus=jobs,
            description=f"{len(_SWEEP_VALUES)}-point nw_std sweep through "
            f"the elastic executor over {jobs} worker processes "
            "(pool startup included)",
        )
        def _factory(jobs=jobs):
            def workload():
                return _parallel_sweep(jobs)

            return workload


_register_parallel_benchmarks()

# ---------------------------------------------------------------------- #
# solve contexts: hierarchy reuse and warm-started sweeps
# ---------------------------------------------------------------------- #

#: Dense nw_std grid of the hierarchy sweeps -- adjacent points differ by
#: 1e-4 in noise std, the regime of a publication-grade BER-vs-noise
#: curve, where warm starts pay the most.
_DENSE_SWEEP_VALUES = (0.1, 0.1001, 0.1002, 0.1003)


def _dense_sweep(M: int, solve_context=None):
    from repro.cdr.sweep import sweep_parameter

    return sweep_parameter(
        _ext_op_spec(M),
        "nw_std",
        list(_DENSE_SWEEP_VALUES),
        solver="multigrid",
        tol=1e-10,
        solve_context=solve_context,
    )


def _per_point_seconds(records) -> list:
    return [float(r["form_time_s"] + r["solve_time_s"]) for r in records]


def _tail_mean(xs) -> float:
    tail = xs[1:]
    return float(sum(tail) / len(tail))


def _register_hierarchy_benchmarks() -> None:
    @register_benchmark(
        "hierarchy/build-cold-M512",
        suites=("hierarchy",),
        rounds=3,
        warmup=1,
        description="build_hierarchy from scratch on the 15360-state "
        "assembled chain (what every cold multigrid solve pays)",
    )
    def _bench_build_cold():
        from repro.markov import build_hierarchy
        from repro.markov.registry import get_backend

        model = get_backend("assembled").build(_ext_op_spec(512))

        def workload():
            hierarchy = build_hierarchy(
                model.chain, strategy=model.multigrid_strategy()
            )
            return {
                "n_states": hierarchy.n_states,
                "levels": hierarchy.n_levels,
                "coarsest": hierarchy.level_sizes[-1],
            }

        return workload

    @register_benchmark(
        "hierarchy/reuse-cached-M512",
        suites=("hierarchy",),
        rounds=3,
        warmup=1,
        description="1000x SolveContext.hierarchy_for on a primed cache "
        "(the digest-lookup cost a reused hierarchy pays instead)",
    )
    def _bench_reuse_cached():
        from repro.markov import SolveContext
        from repro.markov.registry import get_backend

        model = get_backend("assembled").build(_ext_op_spec(512))
        ctx = SolveContext()
        ctx.hierarchy_for(model.chain, strategy=model.multigrid_strategy())

        def workload():
            for _ in range(1000):
                hierarchy = ctx.hierarchy_for(model.chain)
            return {
                "lookups": 1000,
                "hits": ctx.hits,
                "levels": hierarchy.n_levels,
            }

        return workload

    for M in (128, 512):

        @register_benchmark(
            f"hierarchy/sweep-cold-M{M}",
            suites=("hierarchy",),
            rounds=1,
            warmup=0,
            description=f"{len(_DENSE_SWEEP_VALUES)}-point dense nw_std "
            f"sweep at M={M}, no solve context (hierarchy rebuilt and "
            "iteration count paid in full at every point)",
        )
        def _cold_factory(M=M):
            def workload():
                records = _dense_sweep(M)
                per_point = _per_point_seconds(records)
                return {
                    "M": M,
                    "n_states": records[0]["n_states"],
                    "points": len(records),
                    "iterations": [r["iterations"] for r in records],
                    "per_point_tail_s": _tail_mean(per_point),
                }

            return workload

        @register_benchmark(
            f"hierarchy/sweep-warm-M{M}",
            suites=("hierarchy",),
            rounds=1,
            warmup=0,
            description=f"the same dense sweep at M={M} through a fresh "
            "SolveContext: one hierarchy build, every later point "
            "warm-started from its neighbor",
        )
        def _warm_factory(M=M):
            from repro.markov import SolveContext

            def workload():
                ctx = SolveContext()
                records = _dense_sweep(M, solve_context=ctx)
                per_point = _per_point_seconds(records)
                return {
                    "M": M,
                    "n_states": records[0]["n_states"],
                    "points": len(records),
                    "iterations": [r["iterations"] for r in records],
                    "warm_started": [r["warm_started"] for r in records],
                    "per_point_tail_s": _tail_mean(per_point),
                    "context": ctx.stats(),
                }

            return workload

    @register_benchmark(
        "hierarchy/speedup-M512",
        suites=("hierarchy",),
        rounds=1,
        warmup=0,
        description="cold and warm dense sweeps back to back at M=512; "
        "meta.warm_vs_cold_tail_ratio is the acceptance headline "
        "(>= 2x per point excluding the first)",
    )
    def _bench_speedup():
        from repro.markov import SolveContext

        def workload():
            cold = _per_point_seconds(_dense_sweep(512))
            ctx = SolveContext()
            warm_records = _dense_sweep(512, solve_context=ctx)
            warm = _per_point_seconds(warm_records)
            return {
                "n_states": warm_records[0]["n_states"],
                "cold_per_point_tail_s": _tail_mean(cold),
                "warm_per_point_tail_s": _tail_mean(warm),
                "warm_vs_cold_tail_ratio": _tail_mean(cold) / _tail_mean(warm),
                "warm_iterations": [r["iterations"] for r in warm_records],
                "context": ctx.stats(),
            }

        return workload


_register_hierarchy_benchmarks()
