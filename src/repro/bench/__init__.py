"""Registered benchmark suites and perf-regression tracking.

The performance counterpart of the scenario catalog: benchmarks register
themselves with :func:`~repro.bench.registry.register_benchmark`, suites
run into versioned ``repro.bench/1`` JSON reports with an environment
fingerprint (:mod:`repro.bench.suite`), and two reports diff through the
noise-aware regression gate in :mod:`repro.bench.compare`.  The CLI front
end is ``repro bench list|run|compare|report``; the checked-in
``BENCH_*.json`` artifacts are produced by ``repro bench run --suite
<name>``.
"""

from repro.bench.registry import (
    BenchmarkEntry,
    benchmark_names,
    benchmark_table,
    get_benchmark,
    register_benchmark,
    suite_benchmarks,
    suite_names,
)
from repro.bench.suite import (
    BENCH_SCHEMA,
    default_output_path,
    environment_fingerprint,
    load_report,
    run_benchmark,
    run_suite,
    write_report,
)
from repro.bench.compare import (
    DEFAULT_MIN_DELTA_S,
    DEFAULT_THRESHOLD,
    Comparison,
    ComparisonRow,
    compare_reports,
    format_comparison,
)

__all__ = [
    "BenchmarkEntry",
    "register_benchmark",
    "get_benchmark",
    "benchmark_names",
    "benchmark_table",
    "suite_names",
    "suite_benchmarks",
    "BENCH_SCHEMA",
    "environment_fingerprint",
    "run_benchmark",
    "run_suite",
    "default_output_path",
    "write_report",
    "load_report",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_DELTA_S",
    "Comparison",
    "ComparisonRow",
    "compare_reports",
    "format_comparison",
]
