"""Noise-aware comparison of two ``repro.bench/1`` reports.

``repro bench compare BASELINE CURRENT`` is the perf-regression gate: it
exits nonzero when any benchmark present in both reports slowed down
*meaningfully* -- by more than ``threshold`` relatively AND more than
``min_delta_s`` absolutely.  The double condition is what makes the gate
noise-aware: a 3x blowup of a 40 microsecond micro-benchmark is scheduler
jitter, not a regression, and a 2 millisecond drift of a 10 second run is
real work but far below any threshold worth failing CI over.

Comparisons are on ``min_s`` (see :mod:`repro.bench.suite` for why the
minimum is the stable statistic).  Benchmarks only present on one side are
reported as added/removed but never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_DELTA_S",
    "MATERIAL_FINGERPRINT_KEYS",
    "ComparisonRow",
    "Comparison",
    "compare_reports",
    "format_comparison",
]

#: Default relative slowdown tolerated before a benchmark counts as
#: regressed (0.5 = +50%; a 2x slowdown always trips it).
DEFAULT_THRESHOLD = 0.5

#: Absolute floor: slowdowns smaller than this many seconds never regress,
#: whatever the ratio (micro-benchmark jitter protection).
DEFAULT_MIN_DELTA_S = 0.005

#: Fingerprint keys whose change *materially* affects timings: different
#: hardware, interpreter, numeric stack or matvec kernel tier.  A changed
#: ``repro`` version, by contrast, is the expected state of every PR that
#: touches performance and never deserves a prominent warning.
MATERIAL_FINGERPRINT_KEYS = frozenset(
    {
        "python",
        "python_implementation",
        "numpy",
        "scipy",
        "system",
        "machine",
        "cpu_count",
        "kernels",
    }
)


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    status: str  # "ok" | "regressed" | "improved" | "added" | "removed" | "skipped"
    base_min_s: float = float("nan")
    cur_min_s: float = float("nan")
    ratio: float = float("nan")


@dataclass
class Comparison:
    """The full comparison: per-benchmark rows plus gate parameters."""

    rows: List[ComparisonRow]
    threshold: float
    min_delta_s: float
    fingerprint_changes: Dict[str, Any] = field(default_factory=dict)

    def by_status(self, status: str) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == status]

    @property
    def regressions(self) -> List[ComparisonRow]:
        return self.by_status("regressed")

    @property
    def material_fingerprint_changes(self) -> Dict[str, Any]:
        """The fingerprint changes that make timings non-comparable.

        Subset of :attr:`fingerprint_changes` restricted to
        :data:`MATERIAL_FINGERPRINT_KEYS`; this is what the formatter
        warns prominently about.  The gate itself never fails on
        fingerprint drift -- only on timing regressions.
        """
        return {
            k: v
            for k, v in self.fingerprint_changes.items()
            if k in MATERIAL_FINGERPRINT_KEYS
        }

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.bench-compare/1",
            "threshold": self.threshold,
            "min_delta_s": self.min_delta_s,
            "fingerprint_changes": dict(self.fingerprint_changes),
            "material_fingerprint_changes": dict(
                self.material_fingerprint_changes
            ),
            "regressed": len(self.regressions),
            "rows": [
                {
                    "name": r.name,
                    "status": r.status,
                    "base_min_s": r.base_min_s,
                    "cur_min_s": r.cur_min_s,
                    "ratio": r.ratio,
                }
                for r in self.rows
            ],
        }


def _fingerprint_diff(
    base: Dict[str, Any], cur: Dict[str, Any]
) -> Dict[str, Any]:
    changes = {}
    for key in sorted(set(base) | set(cur)):
        if base.get(key) != cur.get(key):
            changes[key] = {"baseline": base.get(key), "current": cur.get(key)}
    return changes


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> Comparison:
    """Diff two reports; see the module docstring for the gate semantics."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if min_delta_s < 0:
        raise ValueError("min_delta_s must be non-negative")
    base_rows = {r["name"]: r for r in baseline.get("results", [])}
    cur_rows = {r["name"]: r for r in current.get("results", [])}
    rows: List[ComparisonRow] = []
    for name in sorted(set(base_rows) | set(cur_rows)):
        # A row without ``min_s`` is a skip row (e.g. "insufficient cpus"):
        # there is no timing on that side, so the benchmark can neither
        # regress nor improve -- report it as skipped, never gate on it.
        if "min_s" not in cur_rows.get(name, {}) or "min_s" not in base_rows.get(name, {}):
            if name in base_rows and name in cur_rows:
                rows.append(
                    ComparisonRow(
                        name,
                        "skipped",
                        base_min_s=float(base_rows[name].get("min_s", float("nan"))),
                        cur_min_s=float(cur_rows[name].get("min_s", float("nan"))),
                    )
                )
                continue
        if name not in cur_rows:
            base_min = base_rows[name].get("min_s", float("nan"))
            rows.append(ComparisonRow(name, "removed", base_min_s=float(base_min)))
            continue
        if name not in base_rows:
            cur_min = cur_rows[name].get("min_s", float("nan"))
            rows.append(ComparisonRow(name, "added", cur_min_s=float(cur_min)))
            continue
        base_min = float(base_rows[name]["min_s"])
        cur_min = float(cur_rows[name]["min_s"])
        ratio = cur_min / base_min if base_min > 0 else float("inf")
        delta = cur_min - base_min
        if delta > min_delta_s and ratio > 1.0 + threshold:
            status = "regressed"
        elif -delta > min_delta_s and ratio < 1.0 / (1.0 + threshold):
            status = "improved"
        else:
            status = "ok"
        rows.append(ComparisonRow(name, status, base_min, cur_min, ratio))
    return Comparison(
        rows=rows,
        threshold=threshold,
        min_delta_s=min_delta_s,
        fingerprint_changes=_fingerprint_diff(
            baseline.get("fingerprint", {}), current.get("fingerprint", {})
        ),
    )


def format_comparison(comparison: Comparison) -> str:
    """Human-readable rendering (the ``repro bench compare`` output)."""
    lines = [
        f"{'benchmark':<42} {'baseline':>10} {'current':>10} {'ratio':>7}  status"
    ]
    for row in comparison.rows:
        base = f"{row.base_min_s:.4f}s" if row.base_min_s == row.base_min_s else "-"
        cur = f"{row.cur_min_s:.4f}s" if row.cur_min_s == row.cur_min_s else "-"
        ratio = f"{row.ratio:.2f}x" if row.ratio == row.ratio else "-"
        lines.append(f"{row.name:<42} {base:>10} {cur:>10} {ratio:>7}  {row.status}")
    material = comparison.material_fingerprint_changes
    if material:
        details = "; ".join(
            f"{k}: {v['baseline']!r} -> {v['current']!r}"
            for k, v in sorted(material.items())
        )
        lines.append(
            f"WARNING: environment fingerprint changed materially ({details}); "
            "timings may not be machine-comparable"
        )
    else:
        incidental = set(comparison.fingerprint_changes) - set(material)
        if incidental:
            lines.append(
                "note: fingerprint drift in "
                f"{', '.join(sorted(incidental))} (not timing-material)"
            )
    n_reg = len(comparison.regressions)
    lines.append(
        f"{n_reg} regression(s) at threshold +{comparison.threshold:.0%} "
        f"(min delta {comparison.min_delta_s * 1e3:.0f} ms)"
    )
    return "\n".join(lines)
