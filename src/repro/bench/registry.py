"""Decorator-registered benchmark catalog.

Exactly the pattern of the solver registry (:mod:`repro.markov.registry`)
and the scenario catalog (:mod:`repro.scenarios.registry`): each benchmark
registers itself at import time with :func:`register_benchmark` and the
CLI (``repro bench``) looks it up here.  A benchmark is a *factory*
returning a zero-argument workload callable::

    @register_benchmark(
        "operator/matvec-assembled",
        suites=("smoke",),
        rounds=5,
        description="assembled-CSR rmatvec on the baseline chain",
    )
    def _bench():                     # the factory: setup, NOT timed
        op = build_operator(...)
        x = initial_vector(...)
        def workload():               # the workload: timed min-of-rounds
            for _ in range(100):
                x2 = op.rmatvec(x)
            return {"n_states": op.shape[0]}   # optional meta dict
        return workload

Setup cost (model assembly, imports) stays outside the timing loop; the
workload's return value, when a dict, is recorded as the result's ``meta``.
Benchmarks belong to one or more named *suites* (``smoke``, ``ext-op``,
``parallel``, ...) which is what ``repro bench run --suite`` selects on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "BenchmarkEntry",
    "register_benchmark",
    "get_benchmark",
    "benchmark_names",
    "benchmark_table",
    "suite_names",
    "suite_benchmarks",
]


@dataclass(frozen=True)
class BenchmarkEntry:
    """One registered benchmark.

    ``factory()`` performs un-timed setup and returns the workload
    callable that ``repro bench run`` times min-of-``rounds`` after
    ``warmup`` discarded calls.
    """

    name: str
    factory: Callable[[], Callable[[], Any]]
    suites: Tuple[str, ...]
    rounds: int
    warmup: int
    description: str = ""
    #: Minimum ``os.cpu_count()`` for the timing to be meaningful.  On a
    #: smaller machine the runner emits an explicit ``skipped`` row instead
    #: of a misleading oversubscribed timing.
    min_cpus: int = 1


_BENCHMARKS: Dict[str, BenchmarkEntry] = {}


def register_benchmark(
    name: str,
    *,
    suites: Tuple[str, ...],
    rounds: int = 5,
    warmup: int = 1,
    description: str = "",
    min_cpus: int = 1,
) -> Callable[[Callable[[], Callable[[], Any]]], Callable[[], Callable[[], Any]]]:
    """Register the decorated factory as the benchmark ``name``."""
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    if not suites:
        raise ValueError("a benchmark must belong to at least one suite")
    if min_cpus < 1:
        raise ValueError("min_cpus must be at least 1")

    def decorate(factory):
        if name in _BENCHMARKS:
            raise ValueError(f"benchmark {name!r} is already registered")
        _BENCHMARKS[name] = BenchmarkEntry(
            name=name,
            factory=factory,
            suites=tuple(suites),
            rounds=rounds,
            warmup=warmup,
            description=description,
            min_cpus=min_cpus,
        )
        return factory

    return decorate


def _ensure_builtin() -> None:
    """Populate the registry with the built-in workload battery."""
    import repro.bench.workloads  # noqa: F401  (registers on import)


def get_benchmark(name: str) -> BenchmarkEntry:
    """Look a benchmark up by name, with a choose-from error on misses."""
    _ensure_builtin()
    try:
        return _BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {benchmark_names()}"
        ) from None


def benchmark_names() -> Tuple[str, ...]:
    """All registered benchmark names, sorted."""
    _ensure_builtin()
    return tuple(sorted(_BENCHMARKS))


def benchmark_table() -> Tuple[BenchmarkEntry, ...]:
    """All registered entries, sorted by name."""
    _ensure_builtin()
    return tuple(_BENCHMARKS[n] for n in benchmark_names())


def suite_names() -> Tuple[str, ...]:
    """Every suite any registered benchmark belongs to, sorted."""
    _ensure_builtin()
    suites = set()
    for entry in _BENCHMARKS.values():
        suites.update(entry.suites)
    return tuple(sorted(suites))


def suite_benchmarks(suite: Optional[str]) -> Tuple[BenchmarkEntry, ...]:
    """The entries of one suite (all benchmarks when ``suite`` is None)."""
    _ensure_builtin()
    if suite is None:
        return benchmark_table()
    entries = tuple(e for e in benchmark_table() if suite in e.suites)
    if not entries:
        raise ValueError(
            f"unknown suite {suite!r}; choose from {suite_names()}"
        )
    return entries
