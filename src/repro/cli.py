"""Command-line interface: ``python -m repro <command> ...``.

The commands mirror the library's main entry points:

``analyze``
    One design point: build, solve, print the paper-style report plus the
    performance measures (optionally the ASCII phase-error density).
``sweep``
    Sweep one :class:`~repro.core.spec.CDRSpec` field over a list of
    values and print the results table (the Figure-5 workflow).
``acquire``
    Lock-acquisition figures: worst-case / mean lock times and the
    lock-probability curve checkpoints.
``stats``
    Pretty-print a run manifest written by ``--metrics``.
``bench``
    The performance observatory: list the registered benchmarks, run a
    suite into a versioned ``repro.bench/1`` report (the ``BENCH_*.json``
    trajectory), diff two reports with the noise-aware regression gate,
    or pretty-print a report.
``solvers``
    List the registered stationary solvers (with their matrix-free
    capability) and TPM backends -- the ``--solver`` / ``--backend``
    choices.
``kernels``
    Show the matvec kernel tiers (numpy / cext / numba): which are
    available in this environment, why the others are not, and which one
    ``$REPRO_KERNELS`` currently selects.
``faults``
    Run the deterministic fault-injection battery
    (:mod:`repro.resilience.faults`) and report whether every injected
    fault produced its expected typed diagnosis.

``analyze`` and ``sweep`` also take the resilience flags: ``--resilient``
runs guarded solves with declarative fallback escalation,
``--checkpoint PATH`` persists progress (solver snapshots for
``analyze``, per-point ledgers for ``sweep``), and ``--resume`` continues
a previous run from that checkpoint.

``analyze``, ``sweep`` and ``acquire`` all accept ``--metrics PATH``: the
run executes under a :mod:`repro.obs` tracer and writes a
``repro.run-trace/1`` manifest (spans, stage timings, versions, peak RSS,
result digests, the embedded solver trace, and a Prometheus-renderable
metrics snapshot) to PATH.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import List, Optional

from repro import (
    CDRSpec,
    analyze_acquisition,
    analyze_cdr,
    lock_probability_curve,
    sweep_parameter,
)
from repro.core import format_pdf_ascii, format_table
from repro import obs

__all__ = ["main", "build_parser"]

_SPEC_FIELDS = {
    "n_phase_points": int,
    "n_clock_phases": int,
    "counter_length": int,
    "transition_density": float,
    "max_run_length": int,
    "nw_std": float,
    "nw_atoms": int,
    "nr_max": float,
    "nr_mean": float,
    "backend": str,
}


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = CDRSpec()
    for field, ftype in _SPEC_FIELDS.items():
        parser.add_argument(
            f"--{field.replace('_', '-')}",
            dest=field,
            type=ftype,
            default=getattr(defaults, field),
            help=f"CDRSpec.{field} (default: %(default)s)",
        )


def _spec_from_args(args: argparse.Namespace) -> CDRSpec:
    return CDRSpec(**{field: getattr(args, field) for field in _SPEC_FIELDS})


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="trace the run and write a repro.run-trace/1 manifest "
             "(spans, metrics, versions, digests) to PATH; inspect it "
             "with `repro stats PATH`")


def _add_resilience_arguments(
    parser: argparse.ArgumentParser, *, interval: bool
) -> None:
    parser.add_argument(
        "--resilient", action="store_true",
        help="run guarded solves with fallback escalation (numerical "
             "guards, typed diagnoses, solver-chain retries)")
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="persist progress to PATH so an interrupted run can be "
             "continued with --resume")
    if interval:
        parser.add_argument(
            "--checkpoint-interval", type=int, default=25, metavar="N",
            help="snapshot the solver every N iterations "
                 "(default: %(default)s)")
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the --checkpoint file instead of starting over")


class _RunObservation(contextlib.AbstractContextManager):
    """Optional per-run tracing and profiling.

    ``--metrics`` activates the tracer plus an operator-profile session
    (so the manifest's ``profile`` section carries per-operator
    matvec/rmatvec counts, bytes and wall time); ``--profile-stacks`` /
    ``--profile-speedscope`` additionally run the deterministic stack
    profiler and export the capture on exit.
    """

    def __init__(
        self,
        metrics_path: Optional[str],
        stacks_path: Optional[str] = None,
        speedscope_path: Optional[str] = None,
    ) -> None:
        self.path = metrics_path
        self.stacks_path = stacks_path
        self.speedscope_path = speedscope_path
        self.tracer = obs.Tracer() if metrics_path else None
        self.session = None
        self._cm = None
        self._profile_cm = None
        want_stacks = bool(stacks_path or speedscope_path)
        if metrics_path or want_stacks:
            self._profile_cm = obs.profiled(stacks=want_stacks)

    def __enter__(self) -> "_RunObservation":
        if self.tracer is not None:
            self._cm = obs.use_tracer(self.tracer)
            self._cm.__enter__()
        if self._profile_cm is not None:
            self.session = self._profile_cm.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        if self._profile_cm is not None:
            # Stops the stack profiler, so the capture is complete before
            # the flamegraph exports below.
            self._profile_cm.__exit__(*exc)
            if self.stacks_path:
                self.session.write_collapsed(self.stacks_path)
                print(f"collapsed stacks written to {self.stacks_path}",
                      file=sys.stderr)
            if self.speedscope_path:
                self.session.write_speedscope(self.speedscope_path)
                print(f"speedscope profile written to {self.speedscope_path}",
                      file=sys.stderr)
        if self._cm is not None:
            self._cm.__exit__(*exc)
        return False

    def write(self, kind: str, spec=None, analysis=None, results=None) -> None:
        if self.tracer is None:
            return
        manifest = obs.build_run_manifest(
            kind=kind, spec=spec, analysis=analysis, tracer=self.tracer,
            results=results,
        )
        obs.write_run_manifest(self.path, manifest)
        print(f"run manifest written to {self.path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Stochastic BER / cycle-slip analysis of digital CDR circuits "
            "(Demir & Feldmann, DATE 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="analyze one design point")
    _add_spec_arguments(p_an)
    p_an.add_argument("--solver", default="auto",
                      help="stationary solver (default: %(default)s)")
    p_an.add_argument("--tol", type=float, default=1e-10)
    p_an.add_argument("--plot", action="store_true",
                      help="print the ASCII phase-error density")
    p_an.add_argument("--json", action="store_true",
                      help="emit the analysis as JSON instead of the report")
    p_an.add_argument("--trace", metavar="PATH", default=None,
                      help="record per-iteration solver telemetry and write "
                           "it as a JSON trace to PATH")
    p_an.add_argument("--profile-stacks", metavar="PATH", default=None,
                      help="capture a deterministic profile of the run and "
                           "write collapsed stacks (flamegraph.pl / "
                           "speedscope input) to PATH")
    p_an.add_argument("--profile-speedscope", metavar="PATH", default=None,
                      help="capture a deterministic profile and write a "
                           "speedscope JSON document to PATH")
    _add_resilience_arguments(p_an, interval=True)
    _add_metrics_argument(p_an)

    p_sw = sub.add_parser("sweep", help="sweep one spec field")
    _add_spec_arguments(p_sw)
    p_sw.add_argument("--parameter", required=True, choices=sorted(_SPEC_FIELDS),
                      help="spec field to sweep")
    p_sw.add_argument("--values", required=True,
                      help="comma-separated values, e.g. 1,2,4,8")
    p_sw.add_argument("--solver", default="auto")
    p_sw.add_argument("--tol", type=float, default=1e-10)
    p_sw.add_argument("--warm-start", action="store_true",
                      help="share one solve context across the sweep: "
                           "coarsening hierarchies are built once per chain "
                           "structure and each point warm-starts from the "
                           "previous solution (off by default so checkpoint "
                           "replay stays bit-identical); with --jobs, warm "
                           "starts run along deterministic per-worker "
                           "lineages instead of a shared context")
    p_sw.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="run the sweep on an elastic pool of N worker "
                           "processes: killed/hung workers are respawned and "
                           "their points requeued exactly once; falls back "
                           "to serial execution if the pool cannot be "
                           "sustained (default: in-process serial sweep)")
    p_sw.add_argument("--point-timeout", type=float, default=None,
                      metavar="SECONDS", dest="point_timeout",
                      help="per-point wall-clock budget under --jobs; a "
                           "point running longer is killed and retried "
                           "(PointTimeout)")
    p_sw.add_argument("--max-retries", type=int, default=2, metavar="N",
                      help="retries per point for infrastructure faults "
                           "(worker lost, timeout, corrupt payload) under "
                           "--jobs, with exponential backoff "
                           "(default: %(default)s)")
    _add_resilience_arguments(p_sw, interval=False)
    _add_metrics_argument(p_sw)

    p_aq = sub.add_parser("acquire", help="lock-acquisition analysis")
    _add_spec_arguments(p_aq)
    p_aq.add_argument("--lock-threshold", type=float, default=0.1,
                      help="half-width of the lock window in UI")
    p_aq.add_argument("--curve-symbols", type=int, default=0,
                      help="also print the lock-probability curve out to "
                           "this many symbols")
    _add_metrics_argument(p_aq)

    p_st = sub.add_parser(
        "stats", help="pretty-print a run manifest written by --metrics")
    p_st.add_argument("manifest", metavar="PATH",
                      help="path of a repro.run-trace/1 JSON manifest")
    p_st.add_argument("--prometheus", action="store_true",
                      help="dump the embedded Prometheus metrics snapshot "
                           "instead of the summary")

    sub.add_parser(
        "solvers",
        help="list registered stationary solvers and TPM backends")

    sub.add_parser(
        "kernels",
        help="show matvec kernel tiers (availability and active selection)")

    p_fl = sub.add_parser(
        "faults",
        help="run the deterministic fault-injection battery")
    p_fl.add_argument("--profile", choices=("quick", "full"), default="full",
                      help="scenario subset to run (default: %(default)s)")
    p_fl.add_argument("--only", metavar="NAME", action="append", default=None,
                      help="run only the named scenario (repeatable)")
    p_fl.add_argument("--suite", choices=("core", "workers", "all"),
                      default="core",
                      help="battery to run: 'core' injects numerical faults "
                           "into solves, 'workers' injects process faults "
                           "(SIGKILL, hangs, corrupt payloads, pool-start "
                           "failure) into the elastic executor "
                           "(default: %(default)s)")

    p_sc = sub.add_parser(
        "scenarios",
        help="scenario catalog: list, run, verify against goldens")
    sc_sub = p_sc.add_subparsers(dest="scenarios_command", required=True)

    sc_sub.add_parser("list", help="list the registered scenarios")

    p_run = sc_sub.add_parser("run", help="run one scenario and print its "
                                          "measures")
    p_run.add_argument("scenario", help="registered scenario name")
    p_run.add_argument("--size", default="fast",
                       help="registered size label (default: %(default)s)")
    p_run.add_argument("--backend", default=None,
                       help="TPM backend (default: the scenario's first)")
    p_run.add_argument("--solver", default=None,
                       help="stationary solver (default: the scenario's)")
    p_run.add_argument("--tol", type=float, default=None,
                       help="stationary solve tolerance "
                            "(default: the golden-generation tolerance)")
    p_run.add_argument("--json", action="store_true",
                       help="emit the run as JSON instead of the report")
    p_run.add_argument("--update-golden", action="store_true",
                       help="write the result as the checked-in golden "
                            "(with a provenance run manifest)")
    p_run.add_argument("--golden-dir", metavar="DIR", default=None,
                       help="golden directory (default: the packaged one)")

    p_vf = sc_sub.add_parser(
        "verify",
        help="re-solve scenarios on every backend and diff against goldens")
    p_vf.add_argument("scenario", nargs="*", metavar="NAME",
                      help="scenarios to verify (default: the whole catalog)")
    p_vf.add_argument("--size", default="fast",
                      help="size label to verify (default: %(default)s)")
    p_vf.add_argument("--backend", action="append", default=None,
                      metavar="NAME",
                      help="restrict to this backend (repeatable; default: "
                           "every backend each scenario registers)")
    p_vf.add_argument("--solver", default=None,
                      help="override the scenarios' default solver")
    p_vf.add_argument("--golden-dir", metavar="DIR", default=None,
                      help="golden directory (default: the packaged one)")
    p_vf.add_argument("--report", metavar="PATH", default=None,
                      help="write the verification report as JSON to PATH")

    p_be = sub.add_parser(
        "bench",
        help="registered benchmark suites and perf-regression tracking")
    be_sub = p_be.add_subparsers(dest="bench_command", required=True)

    be_sub.add_parser("list", help="list the registered benchmarks")

    p_br = be_sub.add_parser(
        "run", help="run a suite into a repro.bench/1 report")
    p_br.add_argument("--suite", default="smoke",
                      help="registered suite name (default: %(default)s); "
                           "'all' runs every benchmark")
    p_br.add_argument("--name", action="append", default=None,
                      metavar="BENCH",
                      help="run only the named benchmark (repeatable; "
                           "overrides --suite)")
    p_br.add_argument("--rounds", type=int, default=None, metavar="N",
                      help="override every benchmark's registered rounds")
    p_br.add_argument("--warmup", type=int, default=None, metavar="N",
                      help="override every benchmark's registered warmup")
    p_br.add_argument("--output", metavar="PATH", default=None,
                      help="report path (default: BENCH_<suite>.json)")

    p_bc = be_sub.add_parser(
        "compare",
        help="diff two reports; exits nonzero on a regression")
    p_bc.add_argument("baseline", metavar="BASELINE",
                      help="baseline repro.bench/1 report")
    p_bc.add_argument("current", metavar="CURRENT",
                      help="current repro.bench/1 report")
    p_bc.add_argument("--threshold", type=float, default=None,
                      metavar="FRAC",
                      help="relative slowdown tolerated before a benchmark "
                           "regresses (default: 0.5 = +50%%)")
    p_bc.add_argument("--min-delta-ms", type=float, default=None,
                      metavar="MS",
                      help="absolute slowdown floor in milliseconds "
                           "(default: 5)")
    p_bc.add_argument("--report", metavar="PATH", default=None,
                      help="write the comparison as JSON to PATH")

    p_bp = be_sub.add_parser(
        "report", help="pretty-print a repro.bench/1 report")
    p_bp.add_argument("report", metavar="PATH",
                      help="path of a repro.bench/1 JSON report")
    return parser


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    """Map the CLI resilience flags onto ``analyze_cdr``/``sweep`` kwargs.

    ``--checkpoint`` / ``--resume`` imply ``--resilient``: checkpoints are
    written by the resilient solve loop.
    """
    resilient = args.resilient or args.checkpoint or args.resume
    if args.resume and not args.checkpoint:
        raise ValueError("--resume requires --checkpoint PATH")
    kwargs = {}
    if resilient:
        kwargs["resilience"] = True
    if args.checkpoint:
        kwargs["checkpoint_path"] = args.checkpoint
        kwargs["resume"] = args.resume
        if getattr(args, "checkpoint_interval", None) is not None:
            kwargs["checkpoint_interval"] = args.checkpoint_interval
    return kwargs


def _print_resilience_events(events) -> None:
    if not events:
        return
    from repro.obs.manifest import _format_resilience_event

    print("resilience trail:", file=sys.stderr)
    for ev in events:
        print(f"  {_format_resilience_event(ev)}", file=sys.stderr)


def _cmd_analyze(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    solver_kwargs = _resilience_kwargs(args)
    with _RunObservation(
        args.metrics,
        stacks_path=args.profile_stacks,
        speedscope_path=args.profile_speedscope,
    ) as obs_run:
        analysis = analyze_cdr(
            spec, solver=args.solver, tol=args.tol, **solver_kwargs
        )
        obs_run.write(
            kind="analysis",
            spec=spec,
            analysis=analysis,
            results={
                "ber": analysis.ber,
                "ber_discrete": analysis.ber_discrete,
                "slip_rate": analysis.slip_rate,
                "mean_symbols_between_slips": analysis.mean_symbols_between_slips,
            },
        )
    _print_resilience_events(getattr(analysis, "resilience_events", None))
    if args.trace:
        # The analyzer always records the solve (the winning attempt, on
        # a resilient run) -- export that recording.
        analysis.solver_recording.write_trace(args.trace)
        print(f"solver trace written to {args.trace}", file=sys.stderr)
    if args.json:
        from repro.core import analysis_to_json

        print(analysis_to_json(analysis, include_pdf=args.plot, indent=2))
        return 0
    print(spec.describe())
    if args.plot:
        values, probs = analysis.phase_error_pdf()
        print(format_pdf_ascii(values, probs, title="phase error PDF"))
    print(analysis.report())
    print(f"BER (Gaussian tail)        : {analysis.ber:.3e}")
    print(f"BER (discretized tail)     : {analysis.ber_discrete:.3e}")
    print(f"cycle-slip rate            : {analysis.slip_rate:.3e} /symbol")
    print(f"mean symbols between slips : {analysis.mean_symbols_between_slips:.3e}")
    print(f"phase mean / rms (UI)      : "
          f"{analysis.phase_stats['mean_ui']:+.4f} / {analysis.phase_stats['rms_ui']:.4f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    caster = _SPEC_FIELDS[args.parameter]
    try:
        values = [caster(v) for v in args.values.split(",") if v.strip()]
    except ValueError as exc:
        print(f"error: bad --values: {exc}", file=sys.stderr)
        return 2
    if not values:
        print("error: --values is empty", file=sys.stderr)
        return 2
    kwargs = _resilience_kwargs(args)
    if args.warm_start:
        kwargs["warm_start"] = True
    if args.jobs is not None:
        if args.jobs < 1:
            print("error: --jobs must be at least 1", file=sys.stderr)
            return 2
        kwargs["jobs"] = args.jobs
        kwargs["point_timeout_s"] = args.point_timeout
        kwargs["max_retries"] = args.max_retries
    elif args.point_timeout is not None:
        print("error: --point-timeout requires --jobs (timeouts are "
              "enforced across a process boundary)", file=sys.stderr)
        return 2
    with _RunObservation(args.metrics) as obs_run:
        records = sweep_parameter(
            spec, args.parameter, values, solver=args.solver, tol=args.tol,
            **kwargs,
        )
        obs_run.write(
            kind="sweep",
            spec=spec,
            results={
                "parameter": args.parameter,
                "records": list(records),
                "failed_points": records.failed_points,
                "resumed_points": records.resumed_points,
                "context_stats": records.context_stats,
                "exec_stats": records.exec_stats,
            },
        )
    print(format_table(
        records,
        columns=[args.parameter, "ber", "slip_rate", "phase_rms",
                 "n_states", "solve_time_s"],
    ))
    if (records.resumed_points or records.failed_points
            or records.context_stats or records.exec_stats):
        print(records.summary(), file=sys.stderr)
    return 1 if records.failed_points and not records else 0


def _cmd_acquire(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    print(spec.describe())
    with _RunObservation(args.metrics) as obs_run:
        model = spec.build_model()
        acq = analyze_acquisition(model, locked_threshold_ui=args.lock_threshold)
        curve = None
        if args.curve_symbols > 0:
            curve = lock_probability_curve(
                model, args.curve_symbols,
                locked_threshold_ui=args.lock_threshold,
            )
        obs_run.write(
            kind="acquire",
            spec=spec,
            results={
                "mean_from_uniform": acq.mean_from_uniform,
                "worst_case_symbols": acq.worst_case_symbols,
                "worst_case_phase_ui": acq.worst_case_phase_ui,
                "lock_threshold_ui": args.lock_threshold,
            },
        )
    print(acq.summary())
    if curve is not None:
        checkpoints = sorted(
            {0, args.curve_symbols}
            | {args.curve_symbols * k // 8 for k in range(1, 8)}
        )
        for k in checkpoints:
            print(f"  P(locked at symbol {k:>6}) = {curve[k]:.4f}")
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    from repro.markov.registry import backend_table, solver_table

    print("stationary solvers (--solver):")
    for entry in solver_table():
        mf = "matrix-free" if entry.matrix_free else "needs-csr  "
        print(f"  {entry.name:<13} {mf}  {entry.description}")
    print("TPM backends (--backend):")
    for backend in backend_table():
        print(f"  {backend.name:<13} {backend.description}")
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    import os

    from repro.kernels import (
        KERNEL_ENV,
        active_tier,
        tier_availability,
    )

    selection = os.environ.get(KERNEL_ENV, "auto") or "auto"
    try:
        active = active_tier()
    except RuntimeError as exc:
        # A forced tier that cannot load: show the listing anyway, with
        # the failure as the headline, and exit nonzero.
        print(f"error: {exc}", file=sys.stderr)
        active = None
    print(f"matvec kernel tiers (${KERNEL_ENV}={selection}):")
    for tier, reason in tier_availability().items():
        if tier == active:
            status = "active"
        elif reason is None:
            status = "available"
        else:
            status = f"unavailable: {reason}"
        print(f"  {tier:<7} {status}")
    return 0 if active is not None else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.resilience.faults import format_fault_report, run_fault_suite

    outcomes = run_fault_suite(
        profile=args.profile, names=args.only, suite=args.suite
    )
    print(format_fault_report(outcomes))
    missed = [o for o in outcomes if not o.caught]
    return 1 if missed else 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        DEFAULT_RUN_TOL,
        generate_golden,
        run_scenario,
        scenario_table,
        verify_catalog,
    )

    if args.scenarios_command == "list":
        for scenario in scenario_table():
            print(f"{scenario.name:<22} {scenario.title}")
            print(f"{'':<22} measures: {', '.join(scenario.measures)}")
            print(f"{'':<22} backends: {', '.join(scenario.backends)}; "
                  f"sizes: {', '.join(sorted(scenario.sizes))}; "
                  f"cite: {scenario.citation}")
        return 0

    if args.scenarios_command == "run":
        tol = DEFAULT_RUN_TOL if args.tol is None else args.tol
        if args.update_golden:
            run = generate_golden(
                args.scenario, size=args.size, backend=args.backend,
                solver=args.solver, tol=tol, directory=args.golden_dir,
            )
            print(f"golden updated for {run.scenario}[{run.size}] "
                  f"(backend {run.backend}, solver {run.solver})",
                  file=sys.stderr)
        else:
            run = run_scenario(
                args.scenario, size=args.size, backend=args.backend,
                solver=args.solver, tol=tol,
            )
        if args.json:
            print(json.dumps(run.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"scenario {run.scenario} size={run.size} "
                  f"backend={run.backend} solver={run.solver} "
                  f"n_states={run.n_states} "
                  f"({run.elapsed_seconds:.2f} s)")
            for name in sorted(run.measures):
                print(f"  {name:<26} {run.measures[name]:.6e}")
        return 0

    # verify
    report = verify_catalog(
        names=args.scenario or None,
        size=args.size,
        backends=args.backend,
        solver=args.solver,
        directory=args.golden_dir,
    )
    print(report.describe())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"verification report written to {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    manifest = obs.load_run_manifest(args.manifest)
    if args.prometheus:
        metrics = manifest.get("metrics") or {}
        text = metrics.get("prometheus", "")
        if not text and metrics.get("snapshot"):
            # Manifests carrying only the JSON snapshot (older schema
            # versions, size-stripped artifacts) are re-rendered with full
            # # HELP / # TYPE headers and escaped label values.
            from repro.obs.metrics import render_snapshot_prometheus

            text = render_snapshot_prometheus(metrics["snapshot"])
        print(text, end="" if text.endswith("\n") else "\n")
        return 0
    print(obs.format_run_manifest(manifest))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.bench_command == "list":
        for entry in bench.benchmark_table():
            suites = ",".join(entry.suites)
            print(f"{entry.name:<42} [{suites}] rounds={entry.rounds} "
                  f"{entry.description}")
        return 0

    if args.bench_command == "run":
        suite = None if args.suite == "all" else args.suite

        def progress(entry, row):
            if row.get("skipped"):
                print(f"  {entry.name:<42} skipped: {row['skipped']}",
                      file=sys.stderr)
                return
            print(f"  {entry.name:<42} min {row['min_s']:9.4f} s  "
                  f"mean {row['mean_s']:9.4f} s  ({row['rounds']} rounds)",
                  file=sys.stderr)

        report = bench.run_suite(
            suite=suite, names=args.name, rounds=args.rounds,
            warmup=args.warmup, progress=progress,
        )
        output = args.output or bench.default_output_path(report["suite"])
        bench.write_report(output, report)
        print(f"benchmark report ({len(report['results'])} benchmarks) "
              f"written to {output}", file=sys.stderr)
        return 0

    if args.bench_command == "compare":
        kwargs = {}
        if args.threshold is not None:
            kwargs["threshold"] = args.threshold
        if args.min_delta_ms is not None:
            kwargs["min_delta_s"] = args.min_delta_ms / 1e3
        comparison = bench.compare_reports(
            bench.load_report(args.baseline),
            bench.load_report(args.current),
            **kwargs,
        )
        print(bench.format_comparison(comparison))
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(comparison.to_dict(), fh, indent=2)
                fh.write("\n")
            print(f"comparison written to {args.report}", file=sys.stderr)
        return comparison.exit_code

    # report
    report = bench.load_report(args.report)
    fp = report.get("fingerprint", {})
    print(f"{report['schema']} suite={report['suite']} "
          f"({len(report['results'])} benchmarks)")
    print("fingerprint: " + "  ".join(f"{k}={v}" for k, v in sorted(fp.items())))
    for row in report["results"]:
        if row.get("skipped"):
            print(f"  {row['name']:<42} skipped: {row['skipped']}")
            continue
        print(f"  {row['name']:<42} min {row['min_s']:9.4f} s  "
              f"mean {row['mean_s']:9.4f} s  ({row['rounds']} rounds)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Every diagnosable failure -- bad arguments, capability mismatches,
    and the whole typed resilience taxonomy (solver divergence,
    exhausted fallback chains, corrupted checkpoints, budget breaches)
    -- is reported as a one-line ``error:`` message with a nonzero exit
    code, never a raw traceback.
    """
    from repro.markov import OperatorCapabilityError
    from repro.resilience import ResilienceError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "solvers":
            return _cmd_solvers(args)
        if args.command == "kernels":
            return _cmd_kernels(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "bench":
            return _cmd_bench(args)
        return _cmd_acquire(args)
    except (
        ValueError, OSError, ArithmeticError,
        OperatorCapabilityError, ResilienceError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
