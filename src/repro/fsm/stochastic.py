"""Stochastic inputs: random processes as functions on Markov-chain states.

The paper's key modeling move: "The random inputs are modeled as functions
on the state-space of Markov chains."  A :class:`MarkovSource` owns a small
Markov chain on hidden states and emits, at every step, a deterministic
symbol of its *current* hidden state; the branching randomness lives
entirely in the hidden-state transition.  White (i.i.d.) noise is the
special case where the hidden state *is* the last emitted symbol and every
row of the transition matrix equals the marginal law
(:class:`IIDSource`).
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Sequence, Tuple, Union

import numpy as np

from repro.markov.chain import MarkovChain
from repro.noise.distributions import DiscreteDistribution

__all__ = ["MarkovSource", "IIDSource", "source_from_distribution"]

Symbol = Hashable


class MarkovSource:
    """A symbol source driven by a hidden Markov chain.

    Parameters
    ----------
    name:
        Identifier used for wiring inside an FSM network.
    chain:
        The hidden-state Markov chain.
    emit:
        Either a sequence of symbols (indexed by hidden-state index) or a
        callable mapping the hidden-state index to a symbol.
    initial_state:
        Hidden-state index to start exploration from.
    """

    def __init__(
        self,
        name: str,
        chain: MarkovChain,
        emit: Union[Sequence[Symbol], Callable[[int], Symbol]],
        initial_state: int = 0,
    ) -> None:
        if not name:
            raise ValueError("source needs a non-empty name")
        self.name = name
        self.chain = chain
        if callable(emit):
            self._emit = [emit(i) for i in range(chain.n_states)]
        else:
            self._emit = list(emit)
            if len(self._emit) != chain.n_states:
                raise ValueError(
                    f"{name}: got {len(self._emit)} symbols for "
                    f"{chain.n_states} hidden states"
                )
        if not 0 <= initial_state < chain.n_states:
            raise ValueError("initial_state out of range")
        self.initial_state = initial_state

    @property
    def n_states(self) -> int:
        return self.chain.n_states

    def symbol(self, hidden_state: int) -> Symbol:
        """The symbol emitted while in ``hidden_state``."""
        return self._emit[hidden_state]

    @property
    def symbols(self) -> List[Symbol]:
        return list(self._emit)

    def branches(self, hidden_state: int) -> List[Tuple[int, float]]:
        """``(next_hidden_state, probability)`` pairs from ``hidden_state``."""
        P = self.chain.P
        lo, hi = P.indptr[hidden_state], P.indptr[hidden_state + 1]
        return [
            (int(j), float(p)) for j, p in zip(P.indices[lo:hi], P.data[lo:hi])
        ]

    def sample_path(
        self, n_steps: int, rng: np.random.Generator
    ) -> List[Symbol]:
        """Sample a symbol path of length ``n_steps`` (Monte-Carlo baseline)."""
        states = self.chain.simulate(n_steps - 1, rng, self.initial_state)
        return [self._emit[int(s)] for s in states]

    def __repr__(self) -> str:
        return f"MarkovSource({self.name!r}, n_states={self.n_states})"


class IIDSource(MarkovSource):
    """White (i.i.d.) symbol source defined by a marginal distribution.

    Hidden states are the atoms; every row of the hidden TPM equals the
    atom probabilities, so consecutive symbols are independent -- exactly
    the "white, i.e. uncorrelated in time" noise sources of the paper.
    """

    def __init__(self, name: str, distribution: DiscreteDistribution) -> None:
        n = distribution.n_atoms
        P = np.tile(distribution.probs, (n, 1))
        chain = MarkovChain(P)
        super().__init__(
            name,
            chain,
            emit=[float(v) for v in distribution.values],
            initial_state=int(np.argmax(distribution.probs)),
        )
        self.distribution = distribution


def source_from_distribution(
    name: str, distribution: DiscreteDistribution
) -> IIDSource:
    """Convenience alias for building a white source from a distribution."""
    return IIDSource(name, distribution)
