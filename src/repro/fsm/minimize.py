"""FSM state minimization (Moore's partition-refinement algorithm).

"The hardware implementation of the phase detector has to operate at the
full data speed, hence it needs to be implemented by a relatively simple
state machine" -- and every redundant FSM state multiplies the size of the
composed Markov chain.  Minimizing component machines *before*
composition is therefore a direct state-space reduction: two FSM states
that are output- and transition-equivalent generate identical rows in the
product chain.

The classical fixed-point refinement: start from the partition by output
signature, split blocks whose members disagree on the block of any
successor, repeat until stable.  ``O(k n^2)`` worst case -- plenty for the
component machines of interest (tens of states).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.fsm.machine import FSM

__all__ = ["minimize_fsm", "equivalent_state_classes", "fsms_equivalent"]


def equivalent_state_classes(
    fsm: FSM, input_alphabet: Sequence[Hashable]
) -> List[List[Hashable]]:
    """Partition the FSM's states into behavioural-equivalence classes.

    Two states are equivalent when every input sequence produces the same
    output sequence from both.  The machine must be total on the given
    alphabet.
    """
    if not input_alphabet:
        raise ValueError("input alphabet must be non-empty")
    states = fsm.states
    # Initial partition: by the full output signature over the alphabet.
    def out_sig(s):
        return tuple(fsm.output(s, u) for u in input_alphabet)

    block_of: Dict[Hashable, int] = {}
    signatures: Dict[Tuple, int] = {}
    for s in states:
        sig = out_sig(s)
        if sig not in signatures:
            signatures[sig] = len(signatures)
        block_of[s] = signatures[sig]

    while True:
        def refine_sig(s):
            return (
                block_of[s],
                tuple(block_of[fsm.next_state(s, u)] for u in input_alphabet),
            )

        new_ids: Dict[Tuple, int] = {}
        new_block_of: Dict[Hashable, int] = {}
        for s in states:
            sig = refine_sig(s)
            if sig not in new_ids:
                new_ids[sig] = len(new_ids)
            new_block_of[s] = new_ids[sig]
        if len(new_ids) == len(set(block_of.values())):
            break
        block_of = new_block_of

    classes: Dict[int, List[Hashable]] = {}
    for s in states:
        classes.setdefault(block_of[s], []).append(s)
    return [classes[b] for b in sorted(classes)]


def minimize_fsm(fsm: FSM, input_alphabet: Sequence[Hashable]) -> FSM:
    """Return an equivalent machine with one state per equivalence class.

    The minimized machine's states are tuples of the merged original
    states; its initial state is the class containing the original
    initial state.  Output behaviour is preserved for every input
    sequence (a test invariant).
    """
    classes = equivalent_state_classes(fsm, input_alphabet)
    class_of: Dict[Hashable, Tuple] = {}
    frozen = [tuple(c) for c in classes]
    for cls in frozen:
        for s in cls:
            class_of[s] = cls

    def transition_fn(cls, u):
        return class_of[fsm.next_state(cls[0], u)]

    def output_fn(cls, u):
        return fsm.output(cls[0], u)

    return FSM(
        f"{fsm.name}-min",
        states=frozen,
        initial_state=class_of[fsm.initial_state],
        transition_fn=transition_fn,
        output_fn=output_fn,
    )


def fsms_equivalent(
    a: FSM,
    b: FSM,
    input_alphabet: Sequence[Hashable],
    max_depth: int = 10_000,
) -> bool:
    """Decide behavioural equivalence of two machines (from their initial
    states) by a synchronized BFS over reachable state pairs."""
    seen = set()
    frontier = [(a.initial_state, b.initial_state)]
    seen.add(frontier[0])
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        nxt = []
        for sa, sb in frontier:
            for u in input_alphabet:
                if a.output(sa, u) != b.output(sb, u):
                    return False
                pair = (a.next_state(sa, u), b.next_state(sb, u))
                if pair not in seen:
                    seen.add(pair)
                    nxt.append(pair)
        frontier = nxt
    return True
