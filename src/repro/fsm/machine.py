"""Finite state machines.

"The hardware implementation of the phase detector has to operate at the
full data speed, hence it needs to be implemented by a relatively simple
state machine" (paper, Section 2).  :class:`FSM` is the deterministic
building block the stochastic model composes: a Mealy machine (Moore
machines are the special case of an input-independent output function)
with explicit, hashable states and arbitrary hashable inputs/outputs.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FSM"]

State = Hashable
Input = Hashable
Output = Hashable


class FSM:
    """A deterministic Mealy machine.

    Parameters
    ----------
    name:
        Identifier used for wiring inside an :class:`~repro.fsm.network.FSMNetwork`.
    states:
        The complete state set (hashable values).
    initial_state:
        Starting state; must be a member of ``states``.
    transition_fn:
        ``next_state = transition_fn(state, input)``.  Must return a member
        of ``states`` for every reachable combination.
    output_fn:
        ``output = output_fn(state, input)`` (Mealy).  For a Moore machine
        pass a function that ignores its second argument, or use
        :meth:`FSM.moore`.
    """

    def __init__(
        self,
        name: str,
        states: Sequence[State],
        initial_state: State,
        transition_fn: Callable[[State, Input], State],
        output_fn: Callable[[State, Input], Output],
        moore_output_fn: Optional[Callable[[State], Output]] = None,
    ) -> None:
        if not name:
            raise ValueError("FSM needs a non-empty name")
        states = list(states)
        if not states:
            raise ValueError("FSM needs at least one state")
        state_set = set(states)
        if len(state_set) != len(states):
            raise ValueError("duplicate states")
        if initial_state not in state_set:
            raise ValueError(f"initial state {initial_state!r} not in state set")
        self.name = name
        self._states = states
        self._state_set = state_set
        self._state_index = {s: i for i, s in enumerate(states)}
        self.initial_state = initial_state
        self._transition_fn = transition_fn
        self._output_fn = output_fn
        #: For Moore machines, the state-only output function.  Network
        #: composition pre-publishes Moore outputs before evaluating any
        #: wiring, which is what lets feedback loops (e.g. phase error ->
        #: phase detector -> counter -> phase error) close without a
        #: combinational cycle.
        self._moore_output_fn = moore_output_fn

    # ------------------------------------------------------------------ #

    @property
    def states(self) -> List[State]:
        return list(self._states)

    @property
    def is_moore(self) -> bool:
        """True when the machine declared a state-only output function."""
        return self._moore_output_fn is not None

    def moore_output(self, state: State) -> Output:
        """State-only output (Moore machines only)."""
        if self._moore_output_fn is None:
            raise TypeError(f"{self.name} is a Mealy machine; output needs the input")
        return self._moore_output_fn(state)

    @property
    def n_states(self) -> int:
        return len(self._states)

    def state_index(self, state: State) -> int:
        """Dense index of a state (stable ordering, used by builders)."""
        try:
            return self._state_index[state]
        except KeyError:
            raise KeyError(f"{self.name}: unknown state {state!r}") from None

    def next_state(self, state: State, inp: Input) -> State:
        """Apply the transition function, validating the result."""
        nxt = self._transition_fn(state, inp)
        if nxt not in self._state_set:
            raise ValueError(
                f"{self.name}: transition from {state!r} on {inp!r} "
                f"left the state set (got {nxt!r})"
            )
        return nxt

    def output(self, state: State, inp: Input) -> Output:
        """Mealy output for (state, input)."""
        return self._output_fn(state, inp)

    def step(self, state: State, inp: Input) -> Tuple[State, Output]:
        """Convenience: ``(next_state, output)``."""
        return self.next_state(state, inp), self.output(state, inp)

    def run(self, inputs: Iterable[Input], state: Optional[State] = None):
        """Run the machine over an input sequence; yields ``(state, output)``
        pairs *before* each transition (i.e. the output produced while in
        ``state`` consuming the input)."""
        s = self.initial_state if state is None else s_check(self, state)
        for u in inputs:
            y = self.output(s, u)
            yield s, y
            s = self.next_state(s, u)

    def validate_total(self, input_alphabet: Sequence[Input]) -> None:
        """Check that the transition function is total on states x alphabet."""
        for s in self._states:
            for u in input_alphabet:
                self.next_state(s, u)

    def reachable_states(self, input_alphabet: Sequence[Input]) -> List[State]:
        """States reachable from the initial state under any input sequence."""
        seen = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            s = frontier.pop()
            for u in input_alphabet:
                nxt = self.next_state(s, u)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return [s for s in self._states if s in seen]

    def __repr__(self) -> str:
        return f"FSM({self.name!r}, n_states={self.n_states})"

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_table(
        cls,
        name: str,
        transitions: Dict[Tuple[State, Input], State],
        outputs: Dict[Tuple[State, Input], Output],
        initial_state: State,
    ) -> "FSM":
        """Build from explicit transition/output tables."""
        states = sorted({s for s, _ in transitions} | set(transitions.values()), key=repr)

        def transition_fn(state, inp):
            try:
                return transitions[(state, inp)]
            except KeyError:
                raise ValueError(
                    f"{name}: no transition from {state!r} on {inp!r}"
                ) from None

        def output_fn(state, inp):
            try:
                return outputs[(state, inp)]
            except KeyError:
                raise ValueError(
                    f"{name}: no output for {state!r} on {inp!r}"
                ) from None

        return cls(name, states, initial_state, transition_fn, output_fn)

    @classmethod
    def moore(
        cls,
        name: str,
        states: Sequence[State],
        initial_state: State,
        transition_fn: Callable[[State, Input], State],
        state_output_fn: Callable[[State], Output],
    ) -> "FSM":
        """Build a Moore machine (output depends on the state only)."""
        return cls(
            name,
            states,
            initial_state,
            transition_fn,
            lambda state, _inp: state_output_fn(state),
            moore_output_fn=state_output_fn,
        )


def s_check(fsm: FSM, state: State) -> State:
    if state not in fsm._state_set:  # noqa: SLF001 - module-private helper
        raise KeyError(f"{fsm.name}: unknown state {state!r}")
    return state
