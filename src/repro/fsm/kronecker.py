"""Kronecker (stochastic-automata-network) descriptor representation.

For solving "more complex models, we are looking into using hierarchical
generalized Kronecker-algebra ... representations" (paper, Numerical
Methods; Plateau 1985, Buchholz 1999).  The idea: the global TPM of a
network of weakly-interacting components is a sum of Kronecker products of
small per-component matrices, so the matrix never needs to be formed --
matrix-vector products are computed factor-by-factor with the *shuffle
algorithm* in ``O(n * sum_i n_i)`` instead of ``O(n^2)`` (or the memory of
an explicit sparse matrix).

:class:`KroneckerDescriptor` implements the descriptor, its transpose
matvec (what stationary solvers need), conversion to an explicit sparse
matrix (for verification on small models), and a
:class:`scipy.sparse.linalg.LinearOperator` view so the iterative solvers
can run matrix-free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator

from repro.obs import get_registry, span

__all__ = [
    "KroneckerDescriptor",
    "kron_matvec",
    "kron_matmat",
    "synchronous_product",
]

Matrix = Union[np.ndarray, sp.spmatrix]


def _as_sparse(m: Matrix) -> sp.csr_matrix:
    return m.tocsr() if sp.issparse(m) else sp.csr_matrix(np.asarray(m, dtype=float))


def kron_matvec(factors: Sequence[sp.csr_matrix], v: np.ndarray) -> np.ndarray:
    """Compute ``(A_1 (x) A_2 (x) ... (x) A_K) v`` without forming the product.

    The shuffle algorithm: reshape ``v`` into a K-way tensor and contract
    one factor at a time.  Factors may be rectangular.
    """
    in_dims = [A.shape[1] for A in factors]
    if v.size != int(np.prod(in_dims)):
        raise ValueError(
            f"vector of size {v.size} incompatible with factor dims {in_dims}"
        )
    x = np.asarray(v, dtype=float).reshape(in_dims)
    for axis, A in enumerate(factors):
        x = np.moveaxis(x, axis, 0)
        head, rest = x.shape[0], x.shape[1:]
        x = A.dot(x.reshape(head, -1))
        x = np.asarray(x).reshape((A.shape[0],) + rest)
        x = np.moveaxis(x, 0, axis)
    return x.ravel()


def kron_matmat(factors: Sequence[sp.csr_matrix], V: np.ndarray) -> np.ndarray:
    """Blocked shuffle algorithm: ``(A_1 (x) ... (x) A_K) V`` for ``(n, k)``.

    The column axis rides along as one extra (never-contracted) trailing
    tensor axis, so each factor is still applied once -- the factor/index
    traffic is amortized over all ``k`` columns instead of repeating the
    full shuffle per column.
    """
    in_dims = [A.shape[1] for A in factors]
    V = np.asarray(V, dtype=float)
    if V.ndim != 2 or V.shape[0] != int(np.prod(in_dims)):
        raise ValueError(
            f"block of shape {V.shape} incompatible with factor dims {in_dims}"
        )
    k = V.shape[1]
    x = V.reshape(in_dims + [k])
    for axis, A in enumerate(factors):
        x = np.moveaxis(x, axis, 0)
        head, rest = x.shape[0], x.shape[1:]
        x = A.dot(x.reshape(head, -1))
        x = np.asarray(x).reshape((A.shape[0],) + rest)
        x = np.moveaxis(x, 0, axis)
    return x.reshape(-1, k)


class KroneckerDescriptor:
    """A matrix represented as ``sum_t c_t * (A_{t,1} (x) ... (x) A_{t,K})``.

    All terms must share the same per-component dimensions.  The
    represented matrix is square when every factor is square.
    """

    def __init__(self, component_dims: Sequence[int]) -> None:
        dims = [int(d) for d in component_dims]
        if not dims or any(d < 1 for d in dims):
            raise ValueError("component dims must be positive")
        self._dims = dims
        self._terms: List[Tuple[float, List[sp.csr_matrix]]] = []
        self._termsT: Optional[List[Tuple[float, List[sp.csr_matrix]]]] = None

    @property
    def component_dims(self) -> List[int]:
        return list(self._dims)

    @property
    def n(self) -> int:
        """Global dimension (product of component dims)."""
        return int(np.prod(self._dims))

    @property
    def n_terms(self) -> int:
        return len(self._terms)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    def add_term(self, factors: Sequence[Matrix], coefficient: float = 1.0) -> "KroneckerDescriptor":
        """Append a term ``coefficient * kron(*factors)``.

        Every factor must be square with the declared component dimension.
        """
        if len(factors) != len(self._dims):
            raise ValueError(
                f"expected {len(self._dims)} factors, got {len(factors)}"
            )
        mats = []
        for k, (f, d) in enumerate(zip(factors, self._dims)):
            A = _as_sparse(f)
            if A.shape != (d, d):
                raise ValueError(
                    f"factor {k} has shape {A.shape}, expected ({d}, {d})"
                )
            mats.append(A)
        self._terms.append((float(coefficient), mats))
        self._termsT = None
        return self

    def _transposed_terms(self) -> List[Tuple[float, List[sp.csr_matrix]]]:
        """Per-term transposed factors, cached.

        ``rmatvec`` used to rebuild ``A.T.tocsr()`` for every factor on
        *every* application -- an O(nnz) conversion tax paid thousands of
        times per stationary solve.  Now the transposes are computed once
        and invalidated by :meth:`add_term`.
        """
        if self._termsT is None:
            self._termsT = [
                (coeff, [A.T.tocsr() for A in mats])
                for coeff, mats in self._terms
            ]
        return self._termsT

    # ------------------------------------------------------------------ #
    # linear algebra
    # ------------------------------------------------------------------ #

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``M v``."""
        v = np.asarray(v, dtype=float)
        out = np.zeros(self.n)
        for coeff, mats in self._terms:
            out += coeff * kron_matvec(mats, v)
        return out

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``M^T x`` (what power iteration on a row vector needs)."""
        x = np.asarray(x, dtype=float)
        out = np.zeros(self.n)
        for coeff, mats in self._transposed_terms():
            out += coeff * kron_matvec(mats, x)
        return out

    def matmat(self, V: np.ndarray) -> np.ndarray:
        """Blocked ``M V`` via :func:`kron_matmat` (one shuffle per term)."""
        V = np.asarray(V, dtype=float)
        out = np.zeros((self.n, V.shape[1]))
        for coeff, mats in self._terms:
            out += coeff * kron_matmat(mats, V)
        return out

    def rmatmat(self, X: np.ndarray) -> np.ndarray:
        """Blocked ``M^T X`` through the cached transposed factors."""
        X = np.asarray(X, dtype=float)
        out = np.zeros((self.n, X.shape[1]))
        for coeff, mats in self._transposed_terms():
            out += coeff * kron_matmat(mats, X)
        return out

    def as_linear_operator(self) -> LinearOperator:
        """A scipy ``LinearOperator`` view (matvec and rmatvec)."""
        return LinearOperator(
            self.shape, matvec=self.matvec, rmatvec=self.rmatvec,
            matmat=self.matmat, rmatmat=self.rmatmat, dtype=float,
        )

    def diagonal(self) -> np.ndarray:
        """``diag(M)`` -- the Kronecker product of the factor diagonals."""
        out = np.zeros(self.n)
        for coeff, mats in self._terms:
            d = np.array([1.0])
            for A in mats:
                d = np.kron(d, A.diagonal())
            out += coeff * d
        return out

    def row_sums(self) -> np.ndarray:
        """``M 1`` -- the Kronecker product of the factor row sums."""
        out = np.zeros(self.n)
        for coeff, mats in self._terms:
            s = np.array([1.0])
            for A in mats:
                s = np.kron(s, np.asarray(A.sum(axis=1)).ravel())
            out += coeff * s
        return out

    def to_sparse(self) -> sp.csr_matrix:
        """Materialize the full matrix (verification on small models only)."""
        if self.n > 100_000:
            raise ValueError("descriptor too large to materialize")
        out = sp.csr_matrix(self.shape)
        for coeff, mats in self._terms:
            term = mats[0]
            for A in mats[1:]:
                term = sp.kron(term, A, format="csr")
            out = out + coeff * term
        return out.tocsr()

    def to_csr(self) -> sp.csr_matrix:
        """TransitionOperator-protocol materialization.

        Same as :meth:`to_sparse`, but the size guard raises
        :class:`~repro.markov.linop.OperatorCapabilityError` so solvers
        that need the assembled matrix fail with a clear capability message
        instead of a generic ``ValueError``.
        """
        if self.n > 100_000:
            from repro.markov.linop import OperatorCapabilityError

            raise OperatorCapabilityError(
                f"Kronecker descriptor with n={self.n} is too large to "
                "materialize; use a matrix-free solver (power, jacobi, "
                "krylov, multigrid)"
            )
        return self.to_sparse()

    def restrict(self, partition, weights=None) -> sp.csr_matrix:
        """Weighted Galerkin coarse operator (see ``lumped_tpm``).

        Built term by term so the full Kronecker product never exists as
        one matrix: each term's COO triplets are generated from its
        factor products via :meth:`to_sparse`-style expansion of that
        single term, aggregated into coarse block coordinates.  Transient
        memory is O(nnz of one term), not O(nnz of the sum).
        """
        from repro.markov.lumping import prepare_block_weights

        if partition.n_states != self.n:
            raise ValueError("partition size does not match descriptor size")
        w, block_mass = prepare_block_weights(partition, weights)
        block = partition.block_of
        nb = partition.n_blocks
        acc = sp.csr_matrix((nb, nb))
        for coeff, mats in self._terms:
            term = mats[0]
            for A in mats[1:]:
                term = sp.kron(term, A, format="coo")
            term = term.tocoo()
            chunk = sp.coo_matrix(
                (coeff * w[term.row] * term.data,
                 (block[term.row], block[term.col])),
                shape=(nb, nb),
            ).tocsr()
            acc = acc + chunk
        acc.sum_duplicates()
        return sp.diags(1.0 / block_mass).dot(acc).tocsr()

    def structure_token(self):
        """Hashable structure identity: factor sparsity patterns only.

        Coefficients and factor *values* are excluded (they carry the
        noise parameters); the per-term factor shapes and index patterns
        are the structure.  Used by
        :func:`repro.markov.context.structural_digest`.
        """
        import hashlib

        h = hashlib.sha256()
        for _, mats in self._terms:
            for A in mats:
                A = A.tocsr()
                h.update(np.asarray(A.shape, dtype=np.int64).tobytes())
                h.update(np.ascontiguousarray(A.indptr).tobytes())
                h.update(np.ascontiguousarray(A.indices).tobytes())
        return ("kronecker", tuple(self._dims), self.n_terms, h.hexdigest())

    def power_iteration_stationary(
        self,
        tol: float = 1e-10,
        max_iter: int = 100_000,
        x0: Optional[np.ndarray] = None,
        damping: float = 1.0,
    ) -> Tuple[np.ndarray, int, float]:
        """Matrix-free power iteration for a *stochastic* descriptor.

        Returns ``(stationary, iterations, residual)``.  The descriptor
        must represent a row-stochastic matrix (e.g. built via
        :func:`synchronous_product`).
        """
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        n = self.n
        x = np.full(n, 1.0 / n) if x0 is None else np.asarray(x0, dtype=float) / np.sum(x0)
        res = np.inf
        it = 0
        with span(
            "fsm.kron.power_iteration", n_states=n, n_terms=self.n_terms
        ) as kron_span:
            for it in range(1, max_iter + 1):
                y = self.rmatvec(x)
                if damping != 1.0:
                    y = damping * y + (1.0 - damping) * x
                y /= y.sum()
                res = float(np.abs(self.rmatvec(y) - y).sum())
                x = y
                if res < tol:
                    break
            kron_span.set_attributes(iterations=it, residual=res)
        get_registry().counter(
            "repro_kron_matvecs_total",
            "Matrix-free Kronecker descriptor applications",
        ).inc(2 * it)
        return x, it, res


def synchronous_product(tpms: Sequence[Matrix]) -> KroneckerDescriptor:
    """Descriptor of independent components stepping synchronously.

    The joint TPM of independent chains is the single Kronecker term
    ``P_1 (x) ... (x) P_K``; its stationary vector is the Kronecker product
    of the component stationary vectors (tested property).
    """
    mats = [_as_sparse(t) for t in tpms]
    if not mats:
        raise ValueError("need at least one component")
    desc = KroneckerDescriptor([m.shape[0] for m in mats])
    desc.add_term(mats)
    return desc
