"""Synchronous composition of FSM networks into Markov chains.

This is the generic engine behind the paper's Figure 2: "This
representation can be generalized to networks of FSMs with stochastic
inputs to describe various high-speed communication circuits."  An
:class:`FSMNetwork` owns an ordered list of stochastic sources and
deterministic machines with a wiring function per machine; the joint state
(all hidden source states, all machine states) evolves as a Markov chain
whose TPM is built by breadth-first exploration of the reachable product
state space.

Semantics of one symbol period (one global step):

1. every source emits the symbol of its current hidden state;
2. every *Moore* machine pre-publishes its state-only output -- these are
   registered signals, valid before any combinational logic runs, which is
   what closes synchronous feedback loops (the phase accumulator's current
   value feeds the phase detector that ultimately steps the accumulator);
3. machines are evaluated *in declaration order*: each machine's wiring
   function reads an environment dict holding the source symbols, all
   Moore outputs, and the Mealy outputs of machines evaluated earlier in
   the same step; the machine's (Mealy) output is then added to the
   environment (so a phase detector can feed a counter combinationally,
   exactly as in the paper's phase-selection loop);
4. all source hidden states and machine states advance simultaneously.

Global transition probabilities are products of the source hidden-chain
transition probabilities (machines are deterministic).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.fsm.machine import FSM
from repro.fsm.stochastic import MarkovSource
from repro.markov.chain import MarkovChain
from repro.obs import get_registry, span

__all__ = ["FSMNetwork", "NetworkChain"]

Env = Dict[str, Hashable]
WiringFn = Callable[[Env], Hashable]


@dataclass
class NetworkChain:
    """Result of compiling an FSM network.

    Attributes
    ----------
    chain:
        The product Markov chain over reachable joint states.  State labels
        are tuples: hidden source states first (declaration order), then
        machine states.
    build_time:
        Wall-clock seconds spent exploring and assembling.
    event_matrices:
        For every event recorder registered on the network, a sparse
        matrix ``E <= P`` holding the probability of each transition *and*
        the event firing (see :meth:`FSMNetwork.record_event`).
    """

    chain: MarkovChain
    build_time: float
    event_matrices: Dict[str, sp.csr_matrix] = field(default_factory=dict)

    @property
    def n_states(self) -> int:
        return self.chain.n_states


class FSMNetwork:
    """A network of stochastic sources and deterministic FSMs.

    Parameters
    ----------
    name:
        Network identifier (used in reprs and error messages).
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._sources: List[MarkovSource] = []
        self._machines: List[Tuple[FSM, WiringFn]] = []
        self._names: set = set()
        self._events: Dict[str, Callable[[Env], bool]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_source(self, source: MarkovSource) -> "FSMNetwork":
        """Register a stochastic source (its symbol appears in the wiring
        environment under ``source.name``)."""
        self._check_name(source.name)
        self._sources.append(source)
        return self

    def add_machine(self, machine: FSM, wiring: WiringFn) -> "FSMNetwork":
        """Register a machine evaluated after everything added before it.

        ``wiring(env)`` must compute the machine's input from the
        environment; ``env`` maps component names to this step's symbols /
        outputs of all sources and all previously-declared machines.
        """
        self._check_name(machine.name)
        self._machines.append((machine, wiring))
        return self

    def record_event(self, name: str, predicate: Callable[[Env], bool]) -> "FSMNetwork":
        """Track a per-step event (e.g. "a bit error happened").

        ``predicate(env)`` is evaluated on the completed environment of
        each step; compilation emits a sparse matrix of transition
        probabilities restricted to event-firing branches, ready for
        :func:`repro.markov.passage.stationary_event_rate`.
        """
        if name in self._events:
            raise ValueError(f"duplicate event name {name!r}")
        self._events[name] = predicate
        return self

    def _check_name(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate component name {name!r}")
        self._names.add(name)

    @property
    def source_names(self) -> List[str]:
        return [s.name for s in self._sources]

    @property
    def machine_names(self) -> List[str]:
        return [m.name for m, _ in self._machines]

    # ------------------------------------------------------------------ #
    # semantics
    # ------------------------------------------------------------------ #

    def initial_state(self) -> Tuple:
        """The joint initial state (source hidden states, machine states)."""
        return tuple(s.initial_state for s in self._sources) + tuple(
            m.initial_state for m, _ in self._machines
        )

    def step_branches(
        self, joint_state: Tuple
    ) -> List[Tuple[Tuple, float, Env]]:
        """All one-step branches from ``joint_state``.

        Returns ``(next_joint_state, probability, env)`` triples, one per
        combination of source hidden-state transitions.  ``env`` is the
        completed wiring environment of the step (used for event
        recording and by tests).
        """
        n_src = len(self._sources)
        src_states = joint_state[:n_src]
        mach_states = joint_state[n_src:]

        # Symbols are functions of the *current* hidden states, identical
        # across branches; only the hidden-state successor varies.
        env: Env = {
            s.name: s.symbol(h) for s, h in zip(self._sources, src_states)
        }
        # Pre-publish Moore outputs (registered signals): they depend only
        # on the current states, so they are valid before any wiring runs.
        # This is what lets synchronous feedback loops close -- a machine
        # declared later may still feed one declared earlier through its
        # state.
        for (machine, _), state in zip(self._machines, mach_states):
            if machine.is_moore:
                env[machine.name] = machine.moore_output(state)
        next_mach = []
        for (machine, wiring), state in zip(self._machines, mach_states):
            u = wiring(env)
            env[machine.name] = machine.output(state, u)
            next_mach.append(machine.next_state(state, u))
        next_mach = tuple(next_mach)

        branches = []
        per_source = [
            self._sources[i].branches(src_states[i]) for i in range(n_src)
        ]
        for combo in itertools.product(*per_source):
            prob = 1.0
            nxt_src = []
            for (h_next, p) in combo:
                prob *= p
                nxt_src.append(h_next)
            branches.append((tuple(nxt_src) + next_mach, prob, env))
        if not branches:  # no sources: deterministic network
            branches.append((next_mach, 1.0, env))
        return branches

    def simulate(
        self, n_steps: int, rng: np.random.Generator
    ) -> List[Env]:
        """Sample a trajectory of wiring environments (testing aid)."""
        state = self.initial_state()
        out = []
        for _ in range(n_steps):
            branches = self.step_branches(state)
            probs = np.array([p for _, p, _ in branches])
            k = rng.choice(len(branches), p=probs / probs.sum())
            nxt, _, env = branches[k]
            out.append(env)
            state = nxt
        return out

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #

    def compile(self, max_states: int = 2_000_000) -> NetworkChain:
        """Explore the reachable joint state space and build the TPM.

        Raises :class:`RuntimeError` if more than ``max_states`` joint
        states become reachable (a guard against state-space explosion --
        for very large structured models use a dedicated vectorized
        builder such as :func:`repro.cdr.model.build_cdr_chain`).
        """
        if not self._sources and not self._machines:
            raise ValueError(f"{self.name}: empty network")
        with span("fsm.network.compile", network=self.name) as compile_span:
            return self._compile(max_states, compile_span)

    def _compile(self, max_states: int, compile_span) -> NetworkChain:
        start = time.perf_counter()
        index: Dict[Tuple, int] = {}
        order: List[Tuple] = []

        def intern(state: Tuple) -> int:
            i = index.get(state)
            if i is None:
                if len(order) >= max_states:
                    raise RuntimeError(
                        f"{self.name}: reachable state space exceeds "
                        f"max_states={max_states}"
                    )
                i = len(order)
                index[state] = i
                order.append(state)
            return i

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        event_hits: Dict[str, List[Tuple[int, int, float]]] = {
            name: [] for name in self._events
        }

        intern(self.initial_state())
        frontier = 0
        while frontier < len(order):
            state = order[frontier]
            i = frontier
            frontier += 1
            for nxt, prob, env in self.step_branches(state):
                j = intern(nxt)
                rows.append(i)
                cols.append(j)
                vals.append(prob)
                for name, predicate in self._events.items():
                    if predicate(env):
                        event_hits[name].append((i, j, prob))

        n = len(order)
        P = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        P.sum_duplicates()
        chain = MarkovChain(P, state_labels=order)
        event_matrices = {}
        for name, hits in event_hits.items():
            if hits:
                er, ec, ev = zip(*hits)
                E = sp.coo_matrix((ev, (er, ec)), shape=(n, n)).tocsr()
                E.sum_duplicates()
            else:
                E = sp.csr_matrix((n, n))
            event_matrices[name] = E
        build_time = time.perf_counter() - start
        compile_span.set_attributes(
            n_states=n, nnz=int(P.nnz), n_events=len(event_matrices)
        )
        registry = get_registry()
        registry.counter(
            "repro_network_compiles_total", "FSM networks compiled to chains"
        ).inc()
        registry.histogram(
            "repro_network_compile_seconds", "Wall time of network compilation"
        ).observe(build_time)
        return NetworkChain(
            chain=chain,
            build_time=build_time,
            event_matrices=event_matrices,
        )

    def __repr__(self) -> str:
        return (
            f"FSMNetwork({self.name!r}, sources={self.source_names}, "
            f"machines={self.machine_names})"
        )
