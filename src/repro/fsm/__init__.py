"""Finite-state-machine modeling and composition.

The paper describes the analyzed circuit "as finite state machines with
inputs described as functions on a Markov chain state-space", composed into
"a larger resulting Markov system".  This subpackage provides the
deterministic machines (:mod:`repro.fsm.machine`), the stochastic sources
(:mod:`repro.fsm.stochastic`), the synchronous network composition that
compiles a network into a Markov chain (:mod:`repro.fsm.network`), and the
Kronecker/SAN descriptor representation for matrix-free analysis of very
large compositions (:mod:`repro.fsm.kronecker`).
"""

from repro.fsm.machine import FSM
from repro.fsm.stochastic import IIDSource, MarkovSource, source_from_distribution
from repro.fsm.network import FSMNetwork, NetworkChain
from repro.fsm.kronecker import (
    KroneckerDescriptor,
    kron_matvec,
    synchronous_product,
)
from repro.fsm.minimize import (
    equivalent_state_classes,
    fsms_equivalent,
    minimize_fsm,
)

__all__ = [
    "FSM",
    "minimize_fsm",
    "equivalent_state_classes",
    "fsms_equivalent",
    "MarkovSource",
    "IIDSource",
    "source_from_distribution",
    "FSMNetwork",
    "NetworkChain",
    "KroneckerDescriptor",
    "kron_matvec",
    "synchronous_product",
]
