"""Deterministic fault injection: exercise every guard instead of trusting it.

Each injector here reproduces one production failure mode on demand:

* :class:`NaNMatvecOperator` -- a transition operator whose ``rmatvec``
  starts returning NaN after a fixed number of calls (overflow / bad
  assembly mid-solve);
* :class:`StallingOperator` -- an operator that silently switches to
  ``rmatvec(x) = x + eps*u`` with mass-neutral ``u``, freezing the
  residual at a nonzero constant (the mixing-gap ~ 0 stagnation mode);
* :func:`killing_analyze_fn` -- a sweep worker that dies
  (:class:`SimulatedWorkerKill`) at chosen point indices;
* :func:`corrupt_checkpoint` -- flips checkpoint payload bytes without
  updating the integrity digest (truncated write / bit rot);
* an unreachable memory budget -- trips the peak-RSS gate of
  :func:`~repro.resilience.fallback.resilient_stationary`.

:func:`run_fault_suite` runs the whole battery on small chains and reports
one :class:`FaultOutcome` per scenario -- ``caught`` is True only when the
injected fault produced exactly the expected typed diagnosis.  CI runs the
``quick`` profile and asserts every outcome is caught
(``repro faults`` exposes the same battery from the CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.markov.linop import TransitionOperator, as_operator
from repro.resilience.checkpoint import (
    SolverCheckpoint,
    load_solver_checkpoint,
    save_solver_checkpoint,
)
from repro.resilience.errors import (
    BudgetExceeded,
    CheckpointCorrupted,
    FallbackExhausted,
    NumericalContamination,
    SolverStagnated,
)
from repro.resilience.fallback import (
    FallbackPolicy,
    FallbackStep,
    resilient_stationary,
)
from repro.resilience.guards import GuardPolicy, guarded_solve

__all__ = [
    "SimulatedWorkerKill",
    "NaNMatvecOperator",
    "StallingOperator",
    "killing_analyze_fn",
    "corrupt_checkpoint",
    "FaultOutcome",
    "run_fault_suite",
    "format_fault_report",
    "FAULT_SCENARIOS",
]


class SimulatedWorkerKill(RuntimeError):
    """Injected stand-in for a sweep worker dying mid-point (OOM kill, segfault)."""


# ---------------------------------------------------------------------- #
# operator-level injectors
# ---------------------------------------------------------------------- #

class _DelegatingOperator:
    """Forward the :class:`TransitionOperator` protocol to a wrapped operator.

    Deliberately does *not* forward ``to_csr``/``restrict``: an injected
    fault must survive in the matrix-free path, not be assembled away.
    """

    def __init__(self, inner) -> None:
        self._inner: TransitionOperator = as_operator(inner)

    @property
    def shape(self):
        return self._inner.shape

    def matvec(self, v: np.ndarray) -> np.ndarray:
        return self._inner.matvec(v)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        return self._inner.rmatvec(x)

    def diagonal(self) -> np.ndarray:
        return self._inner.diagonal()

    def row_sums(self) -> np.ndarray:
        return self._inner.row_sums()


class NaNMatvecOperator(_DelegatingOperator):
    """Return NaN from ``rmatvec`` starting at the ``after``-th call."""

    def __init__(self, inner, after: int = 5) -> None:
        super().__init__(inner)
        if after < 1:
            raise ValueError("'after' must be at least 1")
        self.after = after
        self.calls = 0

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        self.calls += 1
        out = self._inner.rmatvec(x)
        if self.calls >= self.after:
            out = out.copy()
            out[0] = np.nan
        return out


class StallingOperator(_DelegatingOperator):
    """Freeze the residual: after ``after`` calls, ``rmatvec(x) = x + eps*u``.

    ``u`` is a fixed mass-neutral perturbation (entries sum to zero), so the
    returned vector still carries total mass 1 but the residual
    ``|rmatvec(x) - x|_1 = eps * |u|_1`` never shrinks -- the exact
    signature of a solver stagnating below tolerance.  (Returning ``x``
    unchanged would instead look like perfect convergence.)
    """

    def __init__(self, inner, after: int = 3, epsilon: float = 1e-4) -> None:
        super().__init__(inner)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.after = after
        self.epsilon = epsilon
        self.calls = 0
        n = self.shape[0]
        u = np.ones(n)
        u[: n // 2] = -1.0
        if n % 2:
            u[-1] = 0.0
        self._u = u

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        self.calls += 1
        if self.calls <= self.after:
            return self._inner.rmatvec(x)
        return np.asarray(x, dtype=float) + self.epsilon * self._u


def killing_analyze_fn(
    analyze_fn: Callable[..., Any], kill_indices: Iterable[int]
) -> Callable[..., Any]:
    """Wrap a sweep's analyze function to die at chosen point indices.

    The wrapper counts calls; calls whose 0-based index is in
    ``kill_indices`` raise :class:`SimulatedWorkerKill` instead of
    analyzing -- the in-process equivalent of a worker being OOM-killed at
    that sweep point.
    """
    kills = frozenset(int(i) for i in kill_indices)
    counter = {"n": -1}

    def wrapped(*args, **kwargs):
        counter["n"] += 1
        if counter["n"] in kills:
            raise SimulatedWorkerKill(
                f"injected worker kill at sweep point {counter['n']}"
            )
        return analyze_fn(*args, **kwargs)

    return wrapped


def corrupt_checkpoint(path: str, mode: str = "payload") -> None:
    """Deterministically corrupt a checkpoint file in place.

    ``mode="payload"`` perturbs a payload field without refreshing the
    digest (bit rot); ``mode="truncate"`` chops the file mid-JSON
    (interrupted write on a filesystem without atomic rename).
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if mode == "truncate":
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text[: max(1, len(text) // 2)])
        return
    if mode == "payload":
        document = json.loads(text)
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: no payload object to corrupt")
        payload["iteration"] = int(payload.get("iteration", 0) or 0) + 1
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
        return
    raise ValueError(f"unknown corruption mode {mode!r}")


# ---------------------------------------------------------------------- #
# the scenario battery
# ---------------------------------------------------------------------- #

@dataclass
class FaultOutcome:
    """Result of one injected-fault scenario."""

    name: str
    description: str
    expected: str
    caught: bool
    diagnosis: Optional[str] = None
    message: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> Dict[str, Any]:
        return {
            "event": "fault_injection",
            "name": self.name,
            "expected": self.expected,
            "caught": self.caught,
            "diagnosis": self.diagnosis,
            "message": self.message,
            **({"detail": self.detail} if self.detail else {}),
        }


def _battery_chain(n: int = 64):
    """A small well-behaved birth-death chain for the fault battery."""
    from repro.markov.conformance import birth_death_fixture

    return birth_death_fixture(n=n)


def _expect(
    name: str,
    description: str,
    expected_type: type,
    run: Callable[[], Any],
    detail_fn: Optional[Callable[[BaseException], Dict[str, Any]]] = None,
) -> FaultOutcome:
    """Run a scenario and grade the raised diagnosis against expectations."""
    expected = expected_type.__name__
    try:
        run()
    except expected_type as exc:
        return FaultOutcome(
            name=name, description=description, expected=expected,
            caught=True, diagnosis=type(exc).__name__, message=str(exc),
            detail=detail_fn(exc) if detail_fn else {},
        )
    except BaseException as exc:  # noqa: BLE001 - grading, not handling
        return FaultOutcome(
            name=name, description=description, expected=expected,
            caught=False, diagnosis=type(exc).__name__, message=str(exc),
        )
    return FaultOutcome(
        name=name, description=description, expected=expected,
        caught=False, diagnosis=None,
        message="fault was injected but no diagnosis was raised",
    )


def _scenario_nan_matvec(profile: str) -> FaultOutcome:
    chain = _battery_chain(64 if profile == "quick" else 256)
    op = NaNMatvecOperator(chain.P, after=4)
    return _expect(
        "nan_matvec",
        "rmatvec returns NaN mid-solve; guard must abort the iteration",
        NumericalContamination,
        lambda: guarded_solve(op, method="power", tol=1e-10, precheck=False),
        lambda exc: {"iteration": exc.iteration},
    )


def _scenario_stalled_residual(profile: str) -> FaultOutcome:
    chain = _battery_chain(64 if profile == "quick" else 256)
    op = StallingOperator(chain.P, after=3, epsilon=1e-4)
    guard = GuardPolicy(stagnation_window=10)
    return _expect(
        "stalled_residual",
        "residual freezes above tolerance; guard must call stagnation",
        SolverStagnated,
        lambda: guarded_solve(
            op, method="power", tol=1e-10, guard=guard, precheck=False
        ),
        lambda exc: {"iteration": exc.iteration, "residual": exc.residual},
    )


def _scenario_killed_sweep_point(profile: str) -> FaultOutcome:
    from repro.cdr.sweep import sweep_parameter
    from repro.core.analyzer import analyze_cdr
    from repro.core.spec import CDRSpec

    spec = CDRSpec(
        n_phase_points=32, n_clock_phases=16, counter_length=2,
        max_run_length=2, nw_atoms=5,
    )
    analyze = killing_analyze_fn(analyze_cdr, kill_indices=[1])

    def run():
        result = sweep_parameter(
            spec, "transition_density", [0.4, 0.5, 0.6],
            solver="power", analyze_fn=analyze,
        )
        if len(result) != 2 or len(result.failed_points) != 1:
            raise AssertionError(
                f"expected 2 surviving points and 1 failure, got "
                f"{len(result)} and {len(result.failed_points)}"
            )
        entry = result.failed_points[0]
        raise SimulatedWorkerKill(
            f"point {entry['index']} recorded: {entry['error_type']}"
        )

    return _expect(
        "killed_sweep_point",
        "a sweep worker dies at point 1; sweep must record it and continue",
        SimulatedWorkerKill,
        run,
    )


def _scenario_corrupted_checkpoint(profile: str) -> FaultOutcome:
    import os
    import tempfile

    def run():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "solve.ckpt.json")
            save_solver_checkpoint(path, SolverCheckpoint(
                method="power", iteration=50,
                vector=np.full(8, 1.0 / 8), job={"n_states": 8},
            ))
            corrupt_checkpoint(path, mode="payload")
            load_solver_checkpoint(path)

    return _expect(
        "corrupted_checkpoint",
        "checkpoint payload mutated after write; digest check must refuse it",
        CheckpointCorrupted,
        run,
    )


def _scenario_memory_budget(profile: str) -> FaultOutcome:
    chain = _battery_chain(32)
    policy = FallbackPolicy(
        steps=(FallbackStep("power"),),
        memory_budget_bytes=1,  # any real process exceeds 1 byte of RSS
    )
    return _expect(
        "memory_budget",
        "peak RSS over budget before the attempt; solve must refuse to start",
        BudgetExceeded,
        lambda: resilient_stationary(chain, policy, tol=1e-10),
        lambda exc: {"budget": exc.budget, "observed": exc.observed},
    )


def _scenario_fallback_exhausted(profile: str) -> FaultOutcome:
    chain = _battery_chain(32)
    op = StallingOperator(chain.P, after=0, epsilon=1e-4)
    policy = FallbackPolicy(
        steps=(FallbackStep("power", max_iter=200),
               FallbackStep("krylov", max_iter=100)),
        guard=GuardPolicy(stagnation_window=10),
        retry_perturbed=True,
    )

    def detail(exc: BaseException) -> Dict[str, Any]:
        attempts = getattr(exc, "attempts", [])
        if len(attempts) < 2:
            raise AssertionError(
                f"expected a multi-attempt trail, got {len(attempts)}"
            )
        return {"attempts": [a["method"] for a in attempts]}

    return _expect(
        "fallback_exhausted",
        "every chain method stalls; driver must return the full attempt trail",
        FallbackExhausted,
        lambda: resilient_stationary(op, policy, tol=1e-10),
        detail,
    )


#: Scenario name -> callable(profile) -> FaultOutcome.
FAULT_SCENARIOS: Dict[str, Callable[[str], FaultOutcome]] = {
    "nan_matvec": _scenario_nan_matvec,
    "stalled_residual": _scenario_stalled_residual,
    "killed_sweep_point": _scenario_killed_sweep_point,
    "corrupted_checkpoint": _scenario_corrupted_checkpoint,
    "memory_budget": _scenario_memory_budget,
    "fallback_exhausted": _scenario_fallback_exhausted,
}


def run_fault_suite(
    profile: str = "quick",
    names: Optional[Sequence[str]] = None,
    suite: str = "core",
) -> List[FaultOutcome]:
    """Run a fault battery; one :class:`FaultOutcome` per scenario.

    ``profile`` is ``"quick"`` (CI smoke: tiny chains) or ``"full"``
    (larger chains, same scenarios).  ``suite`` picks the battery:
    ``"core"`` (this module's solver/checkpoint faults), ``"workers"``
    (the :mod:`repro.resilience.worker_faults` chaos battery against the
    elastic executor) or ``"all"``.  ``names`` restricts the run to a
    subset of the selected suite's scenarios.
    """
    if profile not in ("quick", "full"):
        raise ValueError(f"unknown fault profile {profile!r}; use 'quick' or 'full'")
    scenarios: Dict[str, Callable[[str], FaultOutcome]] = {}
    if suite in ("core", "all"):
        scenarios.update(FAULT_SCENARIOS)
    if suite in ("workers", "all"):
        from repro.resilience.worker_faults import WORKER_FAULT_SCENARIOS

        scenarios.update(WORKER_FAULT_SCENARIOS)
    if not scenarios:
        raise ValueError(
            f"unknown fault suite {suite!r}; use 'core', 'workers' or 'all'"
        )
    selected = list(scenarios) if names is None else list(names)
    unknown = [n for n in selected if n not in scenarios]
    if unknown:
        raise ValueError(
            f"unknown fault scenario(s) {unknown}; choose from "
            f"{sorted(scenarios)}"
        )
    return [scenarios[name](profile) for name in selected]


def format_fault_report(outcomes: Sequence[FaultOutcome]) -> str:
    """Human-readable battery report (what ``repro faults`` prints)."""
    lines = ["fault-injection battery", "======================="]
    for o in outcomes:
        status = "caught" if o.caught else "MISSED"
        lines.append(f"[{status}] {o.name}: expected {o.expected}, got {o.diagnosis}")
        lines.append(f"    {o.description}")
        if o.message:
            lines.append(f"    -> {o.message}")
    caught = sum(1 for o in outcomes if o.caught)
    lines.append(f"{caught}/{len(outcomes)} faults caught and classified")
    return "\n".join(lines)
