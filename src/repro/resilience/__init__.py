"""Pipeline-wide fault tolerance: guards, fallback, checkpoints, faults.

Long-lived stationary solves (the ROADMAP's million-state multigrid jobs)
fail in characteristic ways -- NaN contamination, silent stagnation,
divergence, exhausted budgets, killed sweep workers.  This package makes
every one of those loud, typed and recoverable:

* :mod:`repro.resilience.errors` -- the typed failure taxonomy;
* :mod:`repro.resilience.guards` -- per-iteration numerical guards riding
  the :class:`~repro.markov.monitor.SolverMonitor` hook, plus
  :func:`guarded_solve`;
* :mod:`repro.resilience.fallback` -- declarative solver escalation
  (:class:`FallbackPolicy`) with per-attempt budgets and structured
  attempt trails for the run manifest;
* :mod:`repro.resilience.checkpoint` -- digest-verified solver-state and
  per-point checkpoints behind ``--resume``;
* :mod:`repro.resilience.faults` -- deterministic fault injection so CI
  exercises every guard path (``repro faults``).
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    POINTS_SCHEMA,
    PointCheckpointer,
    SolverCheckpoint,
    SolverCheckpointer,
    decode_array,
    encode_array,
    load_solver_checkpoint,
    save_solver_checkpoint,
)
from repro.resilience.errors import (
    BudgetExceeded,
    CheckpointCorrupted,
    CheckpointError,
    CheckpointMismatch,
    ExecutorError,
    ExecutorInterrupted,
    FallbackExhausted,
    NumericalContamination,
    PointTimeout,
    PoolUnavailable,
    ResilienceError,
    SolverDiverged,
    SolverFailure,
    SolverStagnated,
    WorkerLost,
    failure_entry,
)
from repro.resilience.fallback import (
    AttemptRecord,
    FallbackPolicy,
    FallbackStep,
    ResilientSolveOutcome,
    resilient_stationary,
)
from repro.resilience.guards import (
    GuardedMonitor,
    GuardPolicy,
    check_operator,
    check_result,
    guarded_solve,
)

__all__ = [
    # errors
    "ResilienceError",
    "SolverFailure",
    "SolverDiverged",
    "SolverStagnated",
    "NumericalContamination",
    "BudgetExceeded",
    "CheckpointError",
    "CheckpointCorrupted",
    "CheckpointMismatch",
    "FallbackExhausted",
    "ExecutorError",
    "PointTimeout",
    "WorkerLost",
    "PoolUnavailable",
    "ExecutorInterrupted",
    "failure_entry",
    # guards
    "GuardPolicy",
    "GuardedMonitor",
    "check_operator",
    "check_result",
    "guarded_solve",
    # fallback
    "FallbackStep",
    "FallbackPolicy",
    "AttemptRecord",
    "ResilientSolveOutcome",
    "resilient_stationary",
    # checkpoints
    "CHECKPOINT_SCHEMA",
    "POINTS_SCHEMA",
    "SolverCheckpoint",
    "SolverCheckpointer",
    "PointCheckpointer",
    "save_solver_checkpoint",
    "load_solver_checkpoint",
    "encode_array",
    "decode_array",
]
