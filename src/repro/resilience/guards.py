"""Numerical guards: watch every solver iterate, diagnose instead of drift.

The existing :class:`~repro.markov.monitor.SolverMonitor` hook already sees
every iteration of every stationary solver; :class:`GuardedMonitor` rides
that stream and raises a typed diagnosis (:mod:`repro.resilience.errors`)
the moment the iteration goes wrong:

* a non-finite residual -> :class:`NumericalContamination`;
* residual growing ``divergence_factor`` x beyond the best seen ->
  :class:`SolverDiverged`;
* no relative improvement over a sliding ``stagnation_window`` while still
  above tolerance -> :class:`SolverStagnated`;
* wall-clock over ``wall_clock_budget`` -> :class:`BudgetExceeded`.

:func:`guarded_solve` wraps :func:`repro.markov.stationary.stationary_distribution`
with the monitor plus the checks a per-iteration stream cannot express:
operator row-sum drift before the solve, and non-finite values / negative
probability mass / an exhausted iteration budget on the returned result.
All checks are float comparisons per iteration, so the happy-path overhead
is unmeasurable next to a matvec (the acceptance test in
``tests/obs/test_overhead.py`` holds the pipeline to < 5%).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.markov.monitor import SolverMonitor
from repro.resilience.errors import (
    BudgetExceeded,
    NumericalContamination,
    SolverDiverged,
    SolverStagnated,
)

__all__ = ["GuardPolicy", "GuardedMonitor", "check_operator", "check_result", "guarded_solve"]


@dataclass(frozen=True)
class GuardPolicy:
    """Thresholds for the per-iteration and pre/post solve guards.

    Attributes
    ----------
    stagnation_window:
        Number of iterations over which *some* relative residual
        improvement is required (compared against the residual that many
        iterations ago).  0 disables the stagnation guard.  The default is
        deliberately wide: power iteration from a uniform guess sits on a
        near-flat residual plateau for ~100 iterations before its
        asymptotic decay kicks in, and a healthy solve must never be
        diagnosed as stagnated.
    stagnation_rtol:
        Minimum relative improvement over the window: the solve is
        declared stagnated when
        ``residual >= (1 - stagnation_rtol) * residual[window ago]``
        while still above tolerance.
    divergence_factor:
        Residual exceeding ``divergence_factor * best_residual`` (after
        ``divergence_grace`` iterations) is divergence.  0 disables.
    divergence_grace:
        Iterations before the divergence guard arms (early iterations of
        restarted methods wobble legitimately).
    wall_clock_budget:
        Optional per-solve wall-clock budget in seconds.
    row_sum_tol:
        Allowed drift of operator row sums from 1 in the pre-solve check.
    mass_tol:
        Allowed negative mass / normalization drift on the final vector.
    """

    stagnation_window: int = 250
    stagnation_rtol: float = 1e-3
    divergence_factor: float = 1e4
    divergence_grace: int = 10
    wall_clock_budget: Optional[float] = None
    row_sum_tol: float = 1e-8
    mass_tol: float = 1e-8

    def __post_init__(self) -> None:
        if self.stagnation_window < 0:
            raise ValueError("stagnation_window must be non-negative")
        if not 0.0 < self.stagnation_rtol < 1.0:
            raise ValueError("stagnation_rtol must be in (0, 1)")
        if self.divergence_factor < 0:
            raise ValueError("divergence_factor must be non-negative")
        if self.wall_clock_budget is not None and self.wall_clock_budget <= 0:
            raise ValueError("wall_clock_budget must be positive")


class GuardedMonitor:
    """A :class:`SolverMonitor` that diagnoses the event stream in flight.

    Tees every event to an optional ``inner`` monitor *first* (so the
    telemetry trail survives the abort), then applies the guard policy and
    raises from inside ``iteration_finished`` -- which unwinds the solver's
    iteration loop immediately instead of letting it burn the rest of
    ``max_iter`` on garbage.
    """

    def __init__(
        self,
        policy: Optional[GuardPolicy] = None,
        inner: Optional[SolverMonitor] = None,
    ) -> None:
        self.policy = policy or GuardPolicy()
        self.inner = inner
        self.method: Optional[str] = None
        self.tol: float = 0.0
        self.history: List[float] = []
        self.best_residual: float = math.inf

    # -- SolverMonitor protocol ---------------------------------------- #

    def solve_started(self, method: str, n_states: int, tol: float) -> None:
        if self.inner is not None:
            self.inner.solve_started(method, n_states, tol)
        self.method = method
        self.tol = tol

    def vcycle_level(self, *args) -> None:
        if self.inner is not None:
            self.inner.vcycle_level(*args)

    def solve_finished(
        self, converged: bool, iterations: int, residual: float, elapsed: float
    ) -> None:
        if self.inner is not None:
            self.inner.solve_finished(converged, iterations, residual, elapsed)

    def iteration_finished(
        self, iteration: int, residual: float, elapsed: float
    ) -> None:
        if self.inner is not None:
            self.inner.iteration_finished(iteration, residual, elapsed)
        pol = self.policy
        if not math.isfinite(residual):
            raise NumericalContamination(
                f"{self.method}: non-finite residual {residual!r} at "
                f"iteration {iteration} -- NaN/inf contaminated the iterate",
                method=self.method, iteration=iteration, residual=residual,
            )
        self.history.append(residual)
        if residual < self.best_residual:
            self.best_residual = residual
        if (
            pol.divergence_factor
            and iteration > pol.divergence_grace
            and self.best_residual > 0
            and residual > pol.divergence_factor * self.best_residual
        ):
            raise SolverDiverged(
                f"{self.method}: residual {residual:.3e} at iteration "
                f"{iteration} is {residual / self.best_residual:.1e}x the "
                f"best seen ({self.best_residual:.3e}) -- iteration is "
                "diverging",
                method=self.method, iteration=iteration, residual=residual,
            )
        window = pol.stagnation_window
        if window and len(self.history) > window and residual >= self.tol:
            ref = self.history[-(window + 1)]
            if ref > 0 and residual >= (1.0 - pol.stagnation_rtol) * ref:
                raise SolverStagnated(
                    f"{self.method}: residual stuck at {residual:.3e} "
                    f"(was {ref:.3e} {window} iterations ago, tolerance "
                    f"{self.tol:.1e}) -- no meaningful progress",
                    method=self.method, iteration=iteration, residual=residual,
                )
        budget = pol.wall_clock_budget
        if budget is not None and elapsed > budget:
            raise BudgetExceeded(
                f"{self.method}: wall-clock budget of {budget:g}s exhausted "
                f"at iteration {iteration} ({elapsed:.1f}s elapsed, residual "
                f"{residual:.3e})",
                budget="wall_clock", limit=budget, observed=elapsed,
                method=self.method, iteration=iteration, residual=residual,
            )


def check_operator(op, policy: Optional[GuardPolicy] = None) -> None:
    """Pre-solve sanity: row sums of the transition operator near one.

    A zero row (a state with no outgoing probability) or general row-sum
    drift means the "transition matrix" is not stochastic; every solver
    downstream would return garbage or hang, so fail here with a
    :class:`NumericalContamination` naming the worst offender.
    """
    policy = policy or GuardPolicy()
    sums = np.asarray(op.row_sums(), dtype=float)
    if not np.all(np.isfinite(sums)):
        bad = int(np.flatnonzero(~np.isfinite(sums))[0])
        raise NumericalContamination(
            f"transition operator has a non-finite row sum at state {bad}"
        )
    drift = np.abs(sums - 1.0)
    worst = int(np.argmax(drift))
    if drift[worst] > policy.row_sum_tol:
        detail = "a zero row" if sums[worst] == 0.0 else "row-sum drift"
        raise NumericalContamination(
            f"transition operator is not stochastic: {detail} at state "
            f"{worst} (row sum {sums[worst]!r}, allowed drift "
            f"{policy.row_sum_tol:g})"
        )


def check_result(result, policy: Optional[GuardPolicy] = None) -> None:
    """Post-solve sanity on a :class:`StationaryResult`.

    Raises :class:`NumericalContamination` for non-finite entries or
    negative probability mass beyond ``mass_tol``, and
    :class:`BudgetExceeded` when the solver ran out of iterations without
    converging (the "looped to max_iter" failure the guards exist to make
    loud).
    """
    policy = policy or GuardPolicy()
    x = result.distribution
    if not np.all(np.isfinite(x)):
        raise NumericalContamination(
            f"{result.method}: stationary vector contains non-finite "
            "entries",
            method=result.method, iteration=result.iterations,
            residual=result.residual,
        )
    neg = float(-np.minimum(x, 0.0).sum())
    if neg > policy.mass_tol:
        raise NumericalContamination(
            f"{result.method}: stationary vector carries negative "
            f"probability mass {neg:.3e} (allowed {policy.mass_tol:g})",
            method=result.method, iteration=result.iterations,
            residual=result.residual,
        )
    if not result.converged:
        raise BudgetExceeded(
            f"{result.method}: iteration budget exhausted after "
            f"{result.iterations} iterations at residual "
            f"{result.residual:.3e} without converging",
            budget="iterations", limit=result.iterations,
            observed=result.iterations, method=result.method,
            iteration=result.iterations, residual=result.residual,
        )


def guarded_solve(
    chain,
    method: str = "auto",
    *,
    guard: Optional[GuardPolicy] = None,
    monitor: Optional[SolverMonitor] = None,
    precheck: bool = True,
    **solve_kwargs,
):
    """A guarded :func:`~repro.markov.stationary.stationary_distribution`.

    Same signature and return value, but the solve runs under a
    :class:`GuardedMonitor` and is bracketed by :func:`check_operator` /
    :func:`check_result`: instead of looping to ``max_iter`` or returning
    a contaminated vector, the solve raises one of the typed diagnoses of
    :mod:`repro.resilience.errors`.

    Pass ``precheck=False`` to skip the row-sum scan (e.g. when the
    operator was just validated, or row sums are expensive to compute).
    """
    from repro.markov.linop import as_operator
    from repro.markov.stationary import stationary_distribution

    guard = guard or GuardPolicy()
    op = as_operator(chain)
    if precheck:
        check_operator(op, guard)
    guarded = GuardedMonitor(guard, inner=monitor)
    start = time.perf_counter()
    result = stationary_distribution(
        op, method=method, monitor=guarded, **solve_kwargs
    )
    # Direct/eigen solves emit a single event, so the in-flight wall-clock
    # guard may never fire; enforce the budget on the way out too.
    if (
        guard.wall_clock_budget is not None
        and time.perf_counter() - start > guard.wall_clock_budget
    ):
        raise BudgetExceeded(
            f"{result.method}: wall-clock budget of "
            f"{guard.wall_clock_budget:g}s exhausted",
            budget="wall_clock", limit=guard.wall_clock_budget,
            observed=time.perf_counter() - start, method=result.method,
            iteration=result.iterations, residual=result.residual,
        )
    check_result(result, guard)
    return result
