"""Declarative solver-fallback escalation built on the solver registry.

A :class:`FallbackPolicy` is an ordered chain of :class:`FallbackStep`\\ s
(method + per-attempt iteration / wall-clock budgets).  The default chain
is derived from :mod:`repro.markov.registry` capability metadata -- each
registered solver may declare a ``fallback_priority``; the chain is those
solvers in priority order, filtered to what the operator can support
(matrix-free operators drop solvers that need the assembled matrix, and
the direct LU terminal fallback is only admitted below an assembly-size
cutoff).

:func:`resilient_stationary` walks the chain under the numerical guards of
:mod:`repro.resilience.guards`:

* every attempt runs with per-attempt budgets and raises a typed diagnosis
  instead of looping;
* a :class:`~repro.resilience.errors.SolverStagnated` diagnosis first
  triggers one retry of the *same* method from a perturbed initial vector
  (stagnation is often a bad starting subspace, not a bad method);
* any other failure escalates to the next method in the chain;
* an exceeded memory budget (peak RSS, mirrored to the
  ``repro_peak_rss_bytes`` obs gauge) aborts with
  :class:`~repro.resilience.errors.BudgetExceeded` so the caller (the
  analyzer) can degrade to a matrix-free backend instead;
* every attempt is recorded as a structured :class:`AttemptRecord` -- the
  trail the ``repro.run-trace/1`` manifest embeds and ``repro stats``
  prints.

When the whole chain fails, :class:`~repro.resilience.errors.FallbackExhausted`
carries the full trail.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.markov.linop import OperatorCapabilityError, as_operator
from repro.markov.monitor import SolverMonitor
from repro.markov.registry import solver_table
from repro.resilience.checkpoint import SolverCheckpointer, load_solver_checkpoint
from repro.resilience.errors import (
    BudgetExceeded,
    CheckpointMismatch,
    FallbackExhausted,
    SolverFailure,
    SolverStagnated,
)
from repro.resilience.guards import GuardPolicy, guarded_solve

__all__ = [
    "FallbackStep",
    "FallbackPolicy",
    "AttemptRecord",
    "ResilientSolveOutcome",
    "resilient_stationary",
]

#: States above which the direct LU terminal fallback is not admitted into
#: a default chain (assembling + factoring would dwarf the iterative cost).
_DIRECT_FALLBACK_CUTOFF = 50_000


@dataclass(frozen=True)
class FallbackStep:
    """One method in an escalation chain, with its per-attempt budgets."""

    method: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    max_iter: Optional[int] = None
    wall_clock_budget: Optional[float] = None


@dataclass(frozen=True)
class FallbackPolicy:
    """Declarative escalation: which methods to try, with which budgets.

    Attributes
    ----------
    steps:
        The escalation chain, tried in order.
    guard:
        Numerical-guard thresholds applied to every attempt
        (per-step ``wall_clock_budget`` overrides the guard's).
    retry_perturbed:
        Retry a stagnated method once from a perturbed initial vector
        before escalating.
    perturbation_scale:
        Relative magnitude of the (deterministic, seeded) multiplicative
        perturbation applied to the initial guess on such retries.
    perturbation_seed:
        Seed of the perturbation RNG, recorded so retries reproduce.
    memory_budget_bytes:
        Optional peak-RSS ceiling checked before every attempt; exceeding
        it raises ``BudgetExceeded(budget="memory")`` immediately (more
        methods cannot un-allocate memory -- the caller must degrade the
        backend instead).
    """

    steps: Tuple[FallbackStep, ...]
    guard: GuardPolicy = GuardPolicy()
    retry_perturbed: bool = True
    perturbation_scale: float = 1e-3
    perturbation_seed: int = 0
    memory_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a FallbackPolicy needs at least one step")
        if self.perturbation_scale <= 0:
            raise ValueError("perturbation_scale must be positive")

    @classmethod
    def from_registry(
        cls,
        operator=None,
        *,
        guard: Optional[GuardPolicy] = None,
        first_method: Optional[str] = None,
        first_kwargs: Optional[Dict[str, Any]] = None,
        **policy_kwargs,
    ) -> "FallbackPolicy":
        """Build the default chain from solver-registry capability metadata.

        Solvers that declared a ``fallback_priority`` at registration are
        ordered by it (multigrid -> krylov -> power -> direct).  Solvers
        that need the assembled matrix are dropped for operators without
        ``to_csr``; the direct terminal fallback is additionally dropped
        above ``{cutoff}`` states.  ``first_method`` pins the head of the
        chain (the method the caller actually wanted), with
        ``first_kwargs`` forwarded to that attempt only.
        """
        can_assemble = True
        n = None
        if operator is not None:
            op = as_operator(operator)
            n = op.shape[0]
            can_assemble = hasattr(op, "to_csr")
        ranked = sorted(
            (e for e in solver_table() if e.fallback_priority is not None),
            key=lambda e: e.fallback_priority,
        )
        steps: List[FallbackStep] = []
        if first_method is not None:
            steps.append(
                FallbackStep(first_method, kwargs=dict(first_kwargs or {}))
            )
        for entry in ranked:
            if any(s.method == entry.name for s in steps):
                continue
            if not entry.matrix_free and not can_assemble:
                continue
            if entry.name == "direct" and n is not None and n > _DIRECT_FALLBACK_CUTOFF:
                continue
            steps.append(FallbackStep(entry.name, max_iter=entry.default_max_iter))
        if not steps:
            raise ValueError(
                "no registered solver is eligible for a fallback chain on "
                "this operator"
            )
        return cls(steps=tuple(steps), guard=guard or GuardPolicy(), **policy_kwargs)

    if from_registry.__func__.__doc__:
        from_registry.__func__.__doc__ = from_registry.__func__.__doc__.format(
            cutoff=_DIRECT_FALLBACK_CUTOFF
        )


@dataclass
class AttemptRecord:
    """One solve attempt in an escalation chain (structured event)."""

    method: str
    status: str  # "converged" | "failed"
    error_type: Optional[str] = None
    message: Optional[str] = None
    iterations: Optional[int] = None
    residual: Optional[float] = None
    wall_seconds: float = 0.0
    perturbed_x0: bool = False
    #: The attempt started from a warm vector -- either a solve-context
    #: solution of a structurally identical chain, or the last finite
    #: iterate of the previous (failed) attempt in this chain.
    warm_x0: bool = False

    def to_event(self) -> Dict[str, Any]:
        return {
            "event": "solver_attempt",
            "method": self.method,
            "status": self.status,
            "error_type": self.error_type,
            "message": self.message,
            "iterations": self.iterations,
            "residual": self.residual,
            "wall_seconds": self.wall_seconds,
            "perturbed_x0": self.perturbed_x0,
            "warm_x0": self.warm_x0,
        }


@dataclass
class ResilientSolveOutcome:
    """What :func:`resilient_stationary` returns.

    ``result`` is the converged
    :class:`~repro.markov.solvers.result.StationaryResult`; ``attempts``
    is the full trail including the failures that were escalated past.
    """

    result: Any
    attempts: List[AttemptRecord]
    checkpoint_saves: int = 0
    resumed_from_iteration: Optional[int] = None

    @property
    def method(self) -> str:
        return self.result.method

    @property
    def escalations(self) -> int:
        """How many failed attempts preceded the converged one."""
        return len(self.attempts) - 1

    def events(self) -> List[Dict[str, Any]]:
        events = [a.to_event() for a in self.attempts]
        if self.resumed_from_iteration is not None:
            events.insert(0, {
                "event": "checkpoint_resume",
                "iteration": self.resumed_from_iteration,
            })
        return events


def _perturbed_guess(n: int, x0: Optional[np.ndarray], policy: FallbackPolicy) -> np.ndarray:
    base = np.full(n, 1.0 / n) if x0 is None else np.asarray(x0, dtype=float)
    rng = np.random.default_rng(policy.perturbation_seed)
    x = base * (1.0 + policy.perturbation_scale * rng.uniform(-1.0, 1.0, size=n))
    x = np.clip(x, 1e-300, None)
    return x / x.sum()


def _check_memory_budget(policy: FallbackPolicy, method: str) -> None:
    if policy.memory_budget_bytes is None:
        return
    from repro.obs import get_registry
    from repro.obs.manifest import peak_rss_bytes

    rss = peak_rss_bytes()
    if rss is None:
        return
    get_registry().gauge(
        "repro_peak_rss_bytes", "Peak resident set size of the process"
    ).set(float(rss))
    if rss > policy.memory_budget_bytes:
        raise BudgetExceeded(
            f"peak RSS {rss / 1e6:.1f} MB exceeds the memory budget of "
            f"{policy.memory_budget_bytes / 1e6:.1f} MB before the "
            f"{method!r} attempt; degrade to a matrix-free backend or "
            "raise the budget",
            budget="memory", limit=float(policy.memory_budget_bytes),
            observed=float(rss), method=method,
        )


def resilient_stationary(
    chain,
    policy: Optional[FallbackPolicy] = None,
    *,
    tol: float = 1e-10,
    x0: Optional[np.ndarray] = None,
    monitor: Optional[SolverMonitor] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 25,
    resume: bool = False,
    solve_context=None,
) -> ResilientSolveOutcome:
    """Solve for the stationary vector with guards, fallback and checkpoints.

    Parameters
    ----------
    chain:
        Anything :func:`repro.markov.linop.as_operator` accepts.
    policy:
        The escalation chain; defaults to
        :meth:`FallbackPolicy.from_registry` for this operator.
    tol, x0, monitor:
        As for :func:`~repro.markov.stationary.stationary_distribution`;
        the monitor sees every attempt's telemetry (fresh ``solve_started``
        per attempt -- pass a :class:`~repro.markov.monitor.TeeMonitor`
        of fresh recorders to keep them separate).
    checkpoint_path:
        When given, the winning attempt's iterates are snapshotted there
        every ``checkpoint_interval`` iterations
        (:class:`~repro.resilience.checkpoint.SolverCheckpointer`).
    resume:
        Load ``checkpoint_path`` (when it exists) and seed ``x0`` from the
        snapshot; a checkpoint for a different operator size raises
        :class:`~repro.resilience.errors.CheckpointMismatch`.
    solve_context:
        Optional :class:`~repro.markov.SolveContext`.  Its cached
        coarsening hierarchy feeds multigrid and Krylov+AMG attempts (so
        the second fallback rung is preconditioned instead of cold), a
        remembered solution of a structurally identical chain seeds
        ``x0`` when none was given, and the converged distribution is
        recorded back into the context.  Independently of the context,
        escalation chains the iterate forward: the last finite iterate
        of a failed attempt becomes the next rung's starting vector, so
        later methods inherit the progress already paid for.

    Raises
    ------
    FallbackExhausted
        When every step (and its perturbed retry, where applicable)
        failed; ``exc.attempts`` holds the structured trail.
    BudgetExceeded
        Immediately, when the memory budget is already exceeded (fallback
        cannot recover memory -- the caller must degrade the backend).
    """
    from repro.obs import get_registry, span

    op = as_operator(chain)
    n = op.shape[0]
    if policy is None:
        policy = FallbackPolicy.from_registry(op)

    resumed_iteration: Optional[int] = None
    if resume and checkpoint_path is not None:
        import os

        if os.path.exists(checkpoint_path):
            snapshot = load_solver_checkpoint(checkpoint_path)
            if snapshot.job.get("n_states") not in (None, n):
                raise CheckpointMismatch(
                    f"{checkpoint_path}: checkpoint holds a "
                    f"{snapshot.job.get('n_states')}-state solve, this "
                    f"operator has {n} states"
                )
            x0 = snapshot.vector
            resumed_iteration = snapshot.iteration

    context_warm = False
    if x0 is None and solve_context is not None:
        x0 = solve_context.warm_start_for(op)
        context_warm = x0 is not None

    registry = get_registry()
    attempts_counter = registry.counter(
        "repro_fallback_attempts_total",
        "Solve attempts made by the resilient fallback driver",
    )
    faults_counter = registry.counter(
        "repro_solver_faults_total",
        "Typed solver diagnoses raised under the numerical guards",
    )

    attempts: List[AttemptRecord] = []
    checkpoint_saves = 0
    # Last finite iterate seen by *any* attempt: on escalation it becomes
    # the next rung's starting vector, so a fallback method resumes from
    # the progress the failed one already made instead of restarting cold.
    last_iterate: Dict[str, Optional[np.ndarray]] = {"x": None}

    def _usable_iterate() -> Optional[np.ndarray]:
        x = last_iterate["x"]
        if x is None:
            return None
        x = np.asarray(x, dtype=float)
        if x.shape != (n,) or not np.all(np.isfinite(x)):
            return None
        x = np.clip(x, 0.0, None)
        total = x.sum()
        if total <= 0:
            return None
        return x / total

    def run_attempt(step: FallbackStep, guess, perturbed: bool, warm: bool) -> Any:
        nonlocal checkpoint_saves
        _check_memory_budget(policy, step.method)
        guard = policy.guard
        if step.wall_clock_budget is not None:
            guard = dataclasses.replace(
                guard, wall_clock_budget=step.wall_clock_budget
            )
        kwargs = dict(step.kwargs)
        if solve_context is not None:
            # Feed the cached hierarchy to the methods that can use it.
            # The analyzer may already have put one in the head step's
            # kwargs; setdefault keeps that (and any explicit strategy).
            if step.method == "multigrid" and "strategy" not in kwargs:
                kwargs.setdefault("hierarchy", solve_context.hierarchy_for(op))
            elif step.method == "krylov":
                kwargs.setdefault("preconditioner", "amg")
                kwargs.setdefault("hierarchy", solve_context.hierarchy_for(op))
        checkpointer = None
        if checkpoint_path is not None:
            checkpointer = SolverCheckpointer(
                checkpoint_path,
                interval=checkpoint_interval,
                method=step.method,
                job={"n_states": n},
            )

        def on_iterate(iteration: int, vector: np.ndarray) -> None:
            last_iterate["x"] = vector
            if checkpointer is not None:
                checkpointer(iteration, vector)

        kwargs["on_iterate"] = on_iterate
        start = time.perf_counter()
        with span(
            "resilience.attempt", method=step.method, perturbed_x0=perturbed
        ) as attempt_span:
            try:
                result = guarded_solve(
                    op,
                    method=step.method,
                    guard=guard,
                    monitor=monitor,
                    tol=tol,
                    max_iter=step.max_iter,
                    x0=guess,
                    precheck=not attempts,  # row sums can't change mid-chain
                    **kwargs,
                )
            except (SolverFailure, ArithmeticError, OperatorCapabilityError) as exc:
                wall = time.perf_counter() - start
                attempts.append(AttemptRecord(
                    method=step.method, status="failed",
                    error_type=type(exc).__name__, message=str(exc),
                    iterations=getattr(exc, "iteration", None),
                    residual=getattr(exc, "residual", None),
                    wall_seconds=wall, perturbed_x0=perturbed, warm_x0=warm,
                ))
                attempt_span.set_attributes(
                    status="failed", error=type(exc).__name__
                )
                attempts_counter.inc(method=step.method, status="failed")
                faults_counter.inc(diagnosis=type(exc).__name__)
                if checkpointer is not None:
                    checkpoint_saves += checkpointer.saves
                raise
            wall = time.perf_counter() - start
            attempts.append(AttemptRecord(
                method=step.method, status="converged",
                iterations=result.iterations, residual=result.residual,
                wall_seconds=wall, perturbed_x0=perturbed, warm_x0=warm,
            ))
            attempt_span.set_attributes(
                status="converged", iterations=result.iterations
            )
            attempts_counter.inc(method=step.method, status="converged")
            if checkpointer is not None:
                checkpoint_saves += checkpointer.saves
            return result

    last_error: Optional[BaseException] = None
    guess = x0
    warm = context_warm
    for step in policy.steps:
        try:
            result = run_attempt(step, guess, perturbed=False, warm=warm)
            break
        except BudgetExceeded as exc:
            if exc.budget == "memory":
                raise  # escalating methods cannot recover memory
            last_error = exc
        except SolverStagnated as exc:
            last_error = exc
            if policy.retry_perturbed:
                try:
                    result = run_attempt(
                        step, _perturbed_guess(n, guess, policy),
                        perturbed=True, warm=warm,
                    )
                    break
                except (SolverFailure, ArithmeticError, OperatorCapabilityError) as retry_exc:
                    last_error = retry_exc
        except (SolverFailure, ArithmeticError, OperatorCapabilityError) as exc:
            # ArithmeticError: a sweep annihilated the iterate / singular LU;
            # OperatorCapabilityError: the step needs the assembled matrix
            # on a matrix-free operator.  Both escalate like any failure.
            last_error = exc
        carried = _usable_iterate()
        if carried is not None:
            guess, warm = carried, True
    else:
        registry.counter(
            "repro_fallback_exhausted_total",
            "Resilient solves whose whole fallback chain failed",
        ).inc()
        raise FallbackExhausted(
            f"all {len(policy.steps)} fallback methods failed for the "
            f"{n}-state chain (last: {type(last_error).__name__}: "
            f"{last_error})",
            attempts=[a.to_event() for a in attempts],
        )

    if len(attempts) > 1:
        registry.counter(
            "repro_fallback_escalations_total",
            "Solves that needed at least one fallback escalation",
        ).inc()
    result.warm_started = attempts[-1].warm_x0
    if solve_context is not None and result.converged:
        solve_context.record_solution(op, result.distribution)
    return ResilientSolveOutcome(
        result=result,
        attempts=attempts,
        checkpoint_saves=checkpoint_saves,
        resumed_from_iteration=resumed_iteration,
    )
