"""Checkpoint/resume for long-lived solves, sweeps and MC campaigns.

Two artifact kinds, both JSON with a SHA-256 integrity digest and an atomic
write (temp file + rename) so a kill mid-write can never leave a
half-checkpoint that silently resumes wrong:

* **solver checkpoints** (schema ``repro.checkpoint/1``) -- the current
  iterate vector (exact float64 bytes, base64), iteration number, residual
  history tail and optional RNG state of one stationary solve.  Saved
  periodically by :class:`SolverCheckpointer` riding the solvers'
  ``on_iterate`` hook; a resumed solve seeds ``x0`` from the snapshot and,
  because every stationary iteration here is memoryless in the iterate,
  continues exactly the trajectory the interrupted run would have taken.
* **point checkpoints** (schema ``repro.points/1``) -- per-point progress
  of a sweep or Monte-Carlo campaign: which points completed (with their
  result records), which failed (with their typed error entries), keyed to
  a job fingerprint so ``--resume`` refuses to splice foreign results.

Corruption is detected, not trusted: a payload whose digest does not match
raises :class:`~repro.resilience.errors.CheckpointCorrupted`; resuming
against a different job raises
:class:`~repro.resilience.errors.CheckpointMismatch`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.resilience.errors import CheckpointCorrupted, CheckpointMismatch

__all__ = [
    "CHECKPOINT_SCHEMA",
    "POINTS_SCHEMA",
    "SolverCheckpoint",
    "SolverCheckpointer",
    "PointCheckpointer",
    "save_solver_checkpoint",
    "load_solver_checkpoint",
    "encode_array",
    "decode_array",
]

#: Schema tag of solver-state checkpoints.
CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: Schema tag of per-point (sweep / MC campaign) checkpoints.
POINTS_SCHEMA = "repro.points/1"

#: Residual-history tail kept in solver checkpoints (full histories of a
#: 100k-iteration solve would dominate the file for no diagnostic value).
_HISTORY_TAIL = 256


def encode_array(a: np.ndarray) -> Dict[str, Any]:
    """Exact, JSON-safe encoding of an ndarray (dtype, shape, raw bytes)."""
    a = np.ascontiguousarray(a)
    return {
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def decode_array(payload: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array` (bit-exact round trip)."""
    try:
        raw = base64.b64decode(payload["data"].encode("ascii"))
        arr = np.frombuffer(raw, dtype=payload["dtype"]).copy()
        return arr.reshape(payload["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointCorrupted(f"undecodable array payload: {exc}") from exc


def _payload_digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def _atomic_write_json(path: str, document: Dict[str, Any]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _load_verified(path: str, schema: str) -> Dict[str, Any]:
    """Read a checkpoint document, verifying schema tag and digest."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointCorrupted(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict) or document.get("schema") != schema:
        raise CheckpointCorrupted(
            f"{path}: schema {document.get('schema') if isinstance(document, dict) else None!r}, "
            f"expected {schema!r}"
        )
    payload = document.get("payload")
    digest = document.get("sha256")
    if not isinstance(payload, dict) or not isinstance(digest, str):
        raise CheckpointCorrupted(f"{path}: missing payload or digest")
    if _payload_digest(payload) != digest:
        raise CheckpointCorrupted(
            f"{path}: integrity digest mismatch -- the checkpoint is "
            "corrupted (truncated write or bit rot); delete it and restart "
            "from scratch"
        )
    return payload


# ---------------------------------------------------------------------- #
# solver-state checkpoints
# ---------------------------------------------------------------------- #

@dataclass
class SolverCheckpoint:
    """One snapshot of an in-flight stationary solve."""

    method: str
    iteration: int
    vector: np.ndarray
    residual_history: List[float] = field(default_factory=list)
    job: Dict[str, Any] = field(default_factory=dict)
    rng_state: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "iteration": int(self.iteration),
            "vector": encode_array(np.asarray(self.vector, dtype=float)),
            "residual_history": [float(r) for r in self.residual_history[-_HISTORY_TAIL:]],
            "job": self.job,
            "rng_state": self.rng_state,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SolverCheckpoint":
        try:
            return cls(
                method=payload["method"],
                iteration=int(payload["iteration"]),
                vector=decode_array(payload["vector"]),
                residual_history=list(payload.get("residual_history", [])),
                job=dict(payload.get("job") or {}),
                rng_state=payload.get("rng_state"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorrupted(
                f"malformed solver checkpoint payload: {exc}"
            ) from exc


def save_solver_checkpoint(path: str, checkpoint: SolverCheckpoint) -> None:
    """Atomically write a solver checkpoint with its integrity digest."""
    payload = checkpoint.to_payload()
    _atomic_write_json(
        path,
        {
            "schema": CHECKPOINT_SCHEMA,
            "payload": payload,
            "sha256": _payload_digest(payload),
        },
    )


def load_solver_checkpoint(path: str) -> SolverCheckpoint:
    """Read a solver checkpoint back, verifying integrity."""
    return SolverCheckpoint.from_payload(_load_verified(path, CHECKPOINT_SCHEMA))


class SolverCheckpointer:
    """Periodic solver-state snapshots riding the ``on_iterate`` hook.

    Pass the instance as ``on_iterate=`` to any iterative stationary solver
    (or let :func:`repro.resilience.fallback.resilient_stationary` wire it
    up); every ``interval`` iterations the current iterate is written to
    ``path``.  After the solve, :attr:`saves` tells how many snapshots were
    taken and :meth:`load` (or module-level
    :func:`load_solver_checkpoint`) reads the latest back.

    Resuming: seed the new solve with ``x0=checkpoint.vector``.  Because
    each supported iteration (power/Jacobi/GS/SOR sweeps, multigrid
    V-cycles, Krylov restarts from a snapshot) depends only on the current
    iterate, the resumed trajectory is the continuation of the interrupted
    one, and both converge to the same stationary vector.
    """

    def __init__(
        self,
        path: str,
        interval: int = 25,
        method: str = "",
        job: Optional[Dict[str, Any]] = None,
        rng_state: Optional[Callable[[], Optional[Dict[str, Any]]]] = None,
    ) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be at least 1")
        self.path = path
        self.interval = interval
        self.method = method
        self.job = dict(job or {})
        self._rng_state = rng_state
        self.saves = 0
        self._history: List[float] = []

    def note_residual(self, residual: float) -> None:
        """Optionally feed residuals so snapshots carry a history tail."""
        self._history.append(float(residual))

    def __call__(self, iteration: int, x: np.ndarray) -> None:
        if iteration % self.interval != 0:
            return
        save_solver_checkpoint(
            self.path,
            SolverCheckpoint(
                method=self.method,
                iteration=iteration,
                vector=x,
                residual_history=self._history,
                job=self.job,
                rng_state=self._rng_state() if self._rng_state else None,
            ),
        )
        self.saves += 1

    def load(self) -> SolverCheckpoint:
        return load_solver_checkpoint(self.path)


# ---------------------------------------------------------------------- #
# per-point checkpoints (sweeps, MC campaigns)
# ---------------------------------------------------------------------- #

class PointCheckpointer:
    """Per-point progress ledger for sweeps and Monte-Carlo campaigns.

    The job fingerprint (spec digest, swept parameter, value list, ...) is
    written into the checkpoint; :meth:`resume` verifies it so a
    checkpoint from a different sweep cannot be spliced into this one.
    Every :meth:`record` / :meth:`record_failure` persists immediately, so
    a kill between points loses at most the in-flight point.
    """

    def __init__(self, path: str, job: Dict[str, Any]) -> None:
        self.path = path
        self.job = dict(job)
        self.completed: Dict[str, Dict[str, Any]] = {}
        self.failed: Dict[str, Dict[str, Any]] = {}
        self.aux: Dict[str, Dict[str, Any]] = {}

    @property
    def job_digest(self) -> str:
        return _payload_digest(self.job)

    @staticmethod
    def peek_job(path: str) -> Optional[Dict[str, Any]]:
        """The job fingerprint of an existing ledger, or None if absent.

        Used by the elastic executor to recover resume-relevant execution
        settings (e.g. the warm-start lineage count) *before* constructing
        the job dict it will verify against -- those settings must match
        the interrupted run, not the current command line.  Integrity is
        still verified; corruption raises as usual.
        """
        if not os.path.exists(path):
            return None
        payload = _load_verified(path, POINTS_SCHEMA)
        return dict(payload.get("job") or {})

    def resume(self) -> bool:
        """Load prior progress; returns False when no checkpoint exists."""
        if not os.path.exists(self.path):
            return False
        payload = _load_verified(self.path, POINTS_SCHEMA)
        if payload.get("job_digest") != self.job_digest:
            raise CheckpointMismatch(
                f"{self.path}: checkpoint belongs to a different job "
                f"(digest {payload.get('job_digest')!r} != "
                f"{self.job_digest!r}); point the resume at the original "
                "run directory or delete the stale checkpoint"
            )
        self.completed = dict(payload.get("completed") or {})
        self.failed = dict(payload.get("failed") or {})
        self.aux = dict(payload.get("aux") or {})
        return True

    def is_done(self, index: int) -> bool:
        return str(index) in self.completed

    def completed_record(self, index: int) -> Dict[str, Any]:
        return self.completed[str(index)]

    def aux_for(self, index: int) -> Optional[Dict[str, Any]]:
        """Side-band payload saved with a completed point (or None)."""
        return self.aux.get(str(index))

    def record(
        self,
        index: int,
        record: Dict[str, Any],
        aux: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.completed[str(index)] = record
        if aux is not None:
            self.aux[str(index)] = aux
        self.failed.pop(str(index), None)
        self.save()

    def record_failure(self, index: int, entry: Dict[str, Any]) -> None:
        self.failed[str(index)] = entry
        self.save()

    def save(self) -> None:
        payload = {
            "job_digest": self.job_digest,
            "job": self.job,
            "completed": self.completed,
            "failed": self.failed,
        }
        if self.aux:
            payload["aux"] = self.aux
        _atomic_write_json(
            self.path,
            {
                "schema": POINTS_SCHEMA,
                "payload": payload,
                "sha256": _payload_digest(payload),
            },
        )
