"""Typed failure taxonomy for the resilient solve pipeline.

Every way a long-running solve can go wrong gets its own exception class,
so callers (the fallback escalation of :mod:`repro.resilience.fallback`,
the sweep driver, the CLI) can react to the *kind* of failure instead of
pattern-matching error strings:

``SolverDiverged``
    The residual blew up relative to the best value seen -- the iteration
    is moving away from the fixed point (wrong damping, ill-conditioned
    splitting, broken operator).
``SolverStagnated``
    The residual stopped improving while still above tolerance -- the
    classic silent failure mode where a solver burns its whole iteration
    budget making no progress (mixing gap ~ 0, bad coarsening, Krylov
    breakdown).
``NumericalContamination``
    A non-finite residual/iterate, negative probability mass beyond
    round-off, or transition-operator row sums drifting from one -- the
    answer would be garbage even if the iteration "converged".
``BudgetExceeded``
    An explicit resource budget (iterations, wall-clock seconds, memory
    bytes) ran out before convergence.
``CheckpointCorrupted`` / ``CheckpointMismatch``
    A checkpoint file failed its integrity digest / belongs to a
    different job than the one being resumed.
``FallbackExhausted``
    Every method in a :class:`~repro.resilience.fallback.FallbackPolicy`
    chain failed; carries the full attempt trail for the run manifest.

The module is intentionally dependency-light (stdlib only) so low-level
code like :func:`repro.markov.solvers.result.iterate_fixed_point` can
raise these without import cycles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "ResilienceError",
    "SolverFailure",
    "SolverDiverged",
    "SolverStagnated",
    "NumericalContamination",
    "BudgetExceeded",
    "CheckpointError",
    "CheckpointCorrupted",
    "CheckpointMismatch",
    "FallbackExhausted",
]


class ResilienceError(Exception):
    """Base class of every typed diagnosis raised by the resilience layer."""


class SolverFailure(ResilienceError):
    """A stationary solve failed with a diagnosable numerical condition.

    Attributes
    ----------
    method:
        Solver name as reported to the telemetry layer (``"multigrid"``,
        ``"power"``, ...), or None when unknown.
    iteration:
        Iteration at which the condition was diagnosed (solver's natural
        unit), or None for pre-/post-solve checks.
    residual:
        Residual observed at diagnosis time, or None.
    """

    def __init__(
        self,
        message: str,
        *,
        method: Optional[str] = None,
        iteration: Optional[int] = None,
        residual: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.method = method
        self.iteration = iteration
        self.residual = residual

    def to_event(self) -> Dict[str, Any]:
        """Structured form for run manifests / fault-suite reports."""
        return {
            "diagnosis": type(self).__name__,
            "message": str(self),
            "method": self.method,
            "iteration": self.iteration,
            "residual": self.residual,
        }


class SolverDiverged(SolverFailure):
    """The residual grew far beyond the best value seen during the solve."""


class SolverStagnated(SolverFailure):
    """The residual stopped improving while still above tolerance."""


class NumericalContamination(SolverFailure):
    """Non-finite values, negative mass, or row-sum drift in the solve."""


class BudgetExceeded(SolverFailure):
    """An explicit iteration / wall-clock / memory budget ran out.

    Attributes
    ----------
    budget:
        Which budget tripped: ``"iterations"``, ``"wall_clock"`` or
        ``"memory"``.
    limit, observed:
        The configured limit and the value that exceeded it (same unit).
    """

    def __init__(
        self,
        message: str,
        *,
        budget: str,
        limit: float,
        observed: float,
        method: Optional[str] = None,
        iteration: Optional[int] = None,
        residual: Optional[float] = None,
    ) -> None:
        super().__init__(
            message, method=method, iteration=iteration, residual=residual
        )
        self.budget = budget
        self.limit = limit
        self.observed = observed

    def to_event(self) -> Dict[str, Any]:
        event = super().to_event()
        event.update(budget=self.budget, limit=self.limit, observed=self.observed)
        return event


class CheckpointError(ResilienceError):
    """Base class for checkpoint save/load failures."""


class CheckpointCorrupted(CheckpointError):
    """A checkpoint file failed schema or integrity-digest validation."""


class CheckpointMismatch(CheckpointError):
    """A checkpoint belongs to a different job than the resume target."""


class FallbackExhausted(ResilienceError):
    """Every method in the fallback chain failed.

    Attributes
    ----------
    attempts:
        The structured attempt records
        (:meth:`repro.resilience.fallback.AttemptRecord.to_event` dicts)
        accumulated before giving up -- the trail the run manifest embeds.
    """

    def __init__(self, message: str, attempts: Sequence[Dict[str, Any]] = ()) -> None:
        super().__init__(message)
        self.attempts: List[Dict[str, Any]] = list(attempts)
