"""Typed failure taxonomy for the resilient solve pipeline.

Every way a long-running solve can go wrong gets its own exception class,
so callers (the fallback escalation of :mod:`repro.resilience.fallback`,
the sweep driver, the CLI) can react to the *kind* of failure instead of
pattern-matching error strings:

``SolverDiverged``
    The residual blew up relative to the best value seen -- the iteration
    is moving away from the fixed point (wrong damping, ill-conditioned
    splitting, broken operator).
``SolverStagnated``
    The residual stopped improving while still above tolerance -- the
    classic silent failure mode where a solver burns its whole iteration
    budget making no progress (mixing gap ~ 0, bad coarsening, Krylov
    breakdown).
``NumericalContamination``
    A non-finite residual/iterate, negative probability mass beyond
    round-off, or transition-operator row sums drifting from one -- the
    answer would be garbage even if the iteration "converged".
``BudgetExceeded``
    An explicit resource budget (iterations, wall-clock seconds, memory
    bytes) ran out before convergence.
``CheckpointCorrupted`` / ``CheckpointMismatch``
    A checkpoint file failed its integrity digest / belongs to a
    different job than the one being resumed.
``FallbackExhausted``
    Every method in a :class:`~repro.resilience.fallback.FallbackPolicy`
    chain failed; carries the full attempt trail for the run manifest.
``PointTimeout`` / ``WorkerLost`` / ``PoolUnavailable`` /
``ExecutorInterrupted``
    The executor-side failure modes of :mod:`repro.exec`: a sweep point
    exceeded its wall-clock budget, a worker process died (or returned a
    corrupt payload) while holding a point, the process pool could not be
    started or sustained, and a campaign was interrupted by
    SIGINT/SIGTERM after flushing its ledger.

The module is intentionally dependency-light (stdlib only) so low-level
code like :func:`repro.markov.solvers.result.iterate_fixed_point` can
raise these without import cycles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "ResilienceError",
    "SolverFailure",
    "SolverDiverged",
    "SolverStagnated",
    "NumericalContamination",
    "BudgetExceeded",
    "CheckpointError",
    "CheckpointCorrupted",
    "CheckpointMismatch",
    "FallbackExhausted",
    "ExecutorError",
    "PointTimeout",
    "WorkerLost",
    "PoolUnavailable",
    "ExecutorInterrupted",
    "failure_entry",
]


class ResilienceError(Exception):
    """Base class of every typed diagnosis raised by the resilience layer."""


class SolverFailure(ResilienceError):
    """A stationary solve failed with a diagnosable numerical condition.

    Attributes
    ----------
    method:
        Solver name as reported to the telemetry layer (``"multigrid"``,
        ``"power"``, ...), or None when unknown.
    iteration:
        Iteration at which the condition was diagnosed (solver's natural
        unit), or None for pre-/post-solve checks.
    residual:
        Residual observed at diagnosis time, or None.
    """

    def __init__(
        self,
        message: str,
        *,
        method: Optional[str] = None,
        iteration: Optional[int] = None,
        residual: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.method = method
        self.iteration = iteration
        self.residual = residual

    def to_event(self) -> Dict[str, Any]:
        """Structured form for run manifests / fault-suite reports."""
        return {
            "diagnosis": type(self).__name__,
            "message": str(self),
            "method": self.method,
            "iteration": self.iteration,
            "residual": self.residual,
        }


class SolverDiverged(SolverFailure):
    """The residual grew far beyond the best value seen during the solve."""


class SolverStagnated(SolverFailure):
    """The residual stopped improving while still above tolerance."""


class NumericalContamination(SolverFailure):
    """Non-finite values, negative mass, or row-sum drift in the solve."""


class BudgetExceeded(SolverFailure):
    """An explicit iteration / wall-clock / memory budget ran out.

    Attributes
    ----------
    budget:
        Which budget tripped: ``"iterations"``, ``"wall_clock"`` or
        ``"memory"``.
    limit, observed:
        The configured limit and the value that exceeded it (same unit).
    """

    def __init__(
        self,
        message: str,
        *,
        budget: str,
        limit: float,
        observed: float,
        method: Optional[str] = None,
        iteration: Optional[int] = None,
        residual: Optional[float] = None,
    ) -> None:
        super().__init__(
            message, method=method, iteration=iteration, residual=residual
        )
        self.budget = budget
        self.limit = limit
        self.observed = observed

    def to_event(self) -> Dict[str, Any]:
        event = super().to_event()
        event.update(budget=self.budget, limit=self.limit, observed=self.observed)
        return event


class CheckpointError(ResilienceError):
    """Base class for checkpoint save/load failures."""


class CheckpointCorrupted(CheckpointError):
    """A checkpoint file failed schema or integrity-digest validation."""


class CheckpointMismatch(CheckpointError):
    """A checkpoint belongs to a different job than the resume target."""


class FallbackExhausted(ResilienceError):
    """Every method in the fallback chain failed.

    Attributes
    ----------
    attempts:
        The structured attempt records
        (:meth:`repro.resilience.fallback.AttemptRecord.to_event` dicts)
        accumulated before giving up -- the trail the run manifest embeds.
    """

    def __init__(self, message: str, attempts: Sequence[Dict[str, Any]] = ()) -> None:
        super().__init__(message)
        self.attempts: List[Dict[str, Any]] = list(attempts)


class ExecutorError(ResilienceError):
    """Base class of the elastic-executor failure modes (:mod:`repro.exec`)."""


class PointTimeout(ExecutorError):
    """A sweep/campaign point exceeded its per-point wall-clock budget.

    Attributes
    ----------
    index:
        The 0-based point index within the campaign.
    timeout_s:
        The configured per-point budget in seconds.
    attempts:
        How many attempts (initial + retries) were made before giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        index: Optional[int] = None,
        timeout_s: Optional[float] = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.timeout_s = timeout_s
        self.attempts = attempts


class WorkerLost(ExecutorError):
    """A worker process died (or returned garbage) while holding a point.

    ``reason`` distinguishes the flavors: ``"killed"`` (nonzero/signal
    exit), ``"stale-heartbeat"`` (alive but unresponsive), and
    ``"corrupt-payload"`` (the returned record failed its integrity
    digest, so the worker's output cannot be trusted).
    """

    def __init__(
        self,
        message: str,
        *,
        index: Optional[int] = None,
        worker_id: Optional[int] = None,
        exitcode: Optional[int] = None,
        reason: str = "killed",
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.index = index
        self.worker_id = worker_id
        self.exitcode = exitcode
        self.reason = reason
        self.attempts = attempts


class PoolUnavailable(ExecutorError):
    """The worker pool could not be started or sustained.

    Raised internally to trigger graceful degradation to serial
    execution; surfaces to the caller only when serial fallback was
    explicitly disabled.
    """


class ExecutorInterrupted(ExecutorError):
    """A campaign was interrupted (SIGINT/SIGTERM) and shut down cleanly.

    By the time this is raised the workers have been terminated and every
    completed point has been flushed to the ledger, so ``--resume`` can
    continue the campaign.  ``completed``/``failed``/``pending`` count the
    points in each state at interrupt time.
    """

    def __init__(
        self,
        message: str,
        *,
        completed: int = 0,
        failed: int = 0,
        pending: int = 0,
    ) -> None:
        super().__init__(message)
        self.completed = completed
        self.failed = failed
        self.pending = pending


#: The taxonomy families failures are grouped under in ledgers, manifests
#: and ``repro stats`` (leaf classes map onto the nearest family).
_TAXONOMY_FAMILIES = (
    "SolverDiverged",
    "SolverStagnated",
    "NumericalContamination",
    "BudgetExceeded",
    "PointTimeout",
    "WorkerLost",
    "PoolUnavailable",
    "ExecutorInterrupted",
    "CheckpointCorrupted",
    "CheckpointMismatch",
    "FallbackExhausted",
    "SolverFailure",
    "ExecutorError",
    "CheckpointError",
    "ResilienceError",
)


def failure_entry(exc: BaseException) -> Dict[str, Any]:
    """The canonical ledger/manifest record of one failure.

    Carries the exact exception class (``error_type``), the nearest
    taxonomy family (``taxonomy`` -- ``"external"`` for exceptions from
    outside the resilience taxonomy) and the message, so round-tripping a
    failure through a ``repro.points/1`` ledger or a run manifest never
    loses the *kind* of failure and ``repro stats`` can group by cause.
    """
    taxonomy = "external"
    if isinstance(exc, ResilienceError):
        names = {c.__name__ for c in type(exc).__mro__}
        taxonomy = next(
            (f for f in _TAXONOMY_FAMILIES if f in names), "ResilienceError"
        )
    return {
        "error_type": type(exc).__name__,
        "taxonomy": taxonomy,
        "message": str(exc),
    }
