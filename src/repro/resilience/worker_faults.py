"""Worker-chaos battery: prove the elastic executor survives real deaths.

Where :mod:`repro.resilience.faults` injects *numerical* faults into
solves, this battery injects *process* faults into the elastic executor
(:mod:`repro.exec`) and grades the recovery:

* ``worker_sigkill`` -- a worker SIGKILLs itself mid-point (OOM killer,
  preemption); the parent must detect the death, respawn, requeue the
  in-flight point exactly once and finish the sweep;
* ``worker_hang`` -- a point blocks forever while its worker's heartbeat
  thread keeps beating (deadlocked solve); the per-point timeout must
  SIGKILL the worker and retry the point;
* ``worker_corrupt_payload`` -- a worker returns a result whose wire
  digest does not verify; the payload must be discarded, the worker
  dropped, and the point recomputed;
* ``pool_start_failure`` -- the pool cannot be brought up at all; the
  sweep must degrade gracefully to serial in-parent execution and still
  complete every point.

Every scenario asserts the exactly-once invariant (each sweep point
appears exactly once in the result, in order) on top of its specific
recovery expectations.  ``repro faults --suite workers`` runs the
battery; CI runs it under a hard timeout so a regression that reintroduces
a hang fails loudly instead of wedging the job.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Dict, List

from repro.resilience.faults import FaultOutcome

__all__ = ["WORKER_FAULT_SCENARIOS", "run_worker_fault_suite"]


def _battery_sweep(profile: str, *, chaos=None, config=None):
    """One small sweep through the elastic executor, chaos attached."""
    from repro.core.spec import CDRSpec
    from repro.exec import ExecConfig, elastic_sweep

    spec = CDRSpec(
        n_phase_points=32, n_clock_phases=16, counter_length=2,
        max_run_length=2, nw_atoms=5,
    )
    values = [0.4, 0.5, 0.6] if profile == "quick" else [0.35, 0.4, 0.45, 0.5, 0.55, 0.6]
    if config is None:
        config = ExecConfig(jobs=2)
    result = elastic_sweep(
        spec, "transition_density", values, solver="power",
        config=config, chaos=chaos,
    )
    return values, result


def _grade(
    name: str,
    description: str,
    expected: str,
    values: List[float],
    result,
    checks: Dict[str, bool],
) -> FaultOutcome:
    """Exactly-once + scenario-specific recovery checks -> FaultOutcome."""
    stats = result.exec_stats or {}
    swept = [record["transition_density"] for record in result]
    invariants = {
        "every_point_exactly_once": swept == list(values),
        "no_failed_points": not result.failed_points,
        **checks,
    }
    caught = all(invariants.values())
    failed_checks = sorted(k for k, ok in invariants.items() if not ok)
    return FaultOutcome(
        name=name, description=description, expected=expected, caught=caught,
        diagnosis=expected if caught else None,
        message=(
            "recovered; " + result.summary() if caught
            else f"violated: {', '.join(failed_checks)}; {result.summary()}"
        ),
        detail={"exec_stats": stats},
    )


def _scenario_worker_sigkill(profile: str) -> FaultOutcome:
    from repro.exec import WorkerChaos

    with tempfile.TemporaryDirectory() as tmp:
        chaos = WorkerChaos(
            "sigkill", index=1, flag_path=os.path.join(tmp, "sigkill.flag")
        )
        values, result = _battery_sweep(profile, chaos=chaos)
    stats = result.exec_stats or {}
    return _grade(
        "worker_sigkill",
        "a worker SIGKILLs itself mid-point; parent must respawn and "
        "requeue the point exactly once",
        "WorkerLost",
        values, result,
        {
            "worker_loss_detected": stats.get("workers_lost", 0) >= 1,
            "point_requeued": stats.get("requeues", 0) >= 1,
            "worker_respawned": stats.get("respawns", 0) >= 1
            or stats.get("mode") != "pool",
        },
    )


def _scenario_worker_hang(profile: str) -> FaultOutcome:
    from repro.exec import ExecConfig, WorkerChaos

    with tempfile.TemporaryDirectory() as tmp:
        chaos = WorkerChaos(
            "hang", index=1, flag_path=os.path.join(tmp, "hang.flag")
        )
        values, result = _battery_sweep(
            profile, chaos=chaos,
            config=ExecConfig(jobs=2, timeout_s=3.0, heartbeat_s=0.2),
        )
    stats = result.exec_stats or {}
    return _grade(
        "worker_hang",
        "a point blocks forever (heartbeats still flowing); the per-point "
        "timeout must kill the worker and retry the point",
        "PointTimeout",
        values, result,
        {
            "timeout_fired": stats.get("timeouts", 0) >= 1,
            "point_requeued": stats.get("requeues", 0) >= 1,
        },
    )


def _scenario_worker_corrupt_payload(profile: str) -> FaultOutcome:
    from repro.exec import WorkerChaos

    with tempfile.TemporaryDirectory() as tmp:
        chaos = WorkerChaos(
            "corrupt", index=1, flag_path=os.path.join(tmp, "corrupt.flag")
        )
        values, result = _battery_sweep(profile, chaos=chaos)
    stats = result.exec_stats or {}
    return _grade(
        "worker_corrupt_payload",
        "a worker returns a payload failing its integrity digest; it must "
        "be discarded and the point recomputed",
        "WorkerLost",
        values, result,
        {
            "corruption_detected": stats.get("workers_lost", 0) >= 1,
            "point_requeued": stats.get("requeues", 0) >= 1,
        },
    )


def _scenario_pool_start_failure(profile: str) -> FaultOutcome:
    from repro.exec import ExecConfig

    values, result = _battery_sweep(
        profile, config=ExecConfig(jobs=2, fail_start=True)
    )
    stats = result.exec_stats or {}
    return _grade(
        "pool_start_failure",
        "the worker pool cannot be started; the sweep must degrade "
        "gracefully to serial execution and still complete",
        "PoolUnavailable",
        values, result,
        {
            "degraded_to_serial": stats.get("mode") == "serial-fallback",
            "all_points_ran_serially": stats.get("serial_points", 0)
            == len(values),
        },
    )


#: Scenario name -> callable(profile) -> FaultOutcome.
WORKER_FAULT_SCENARIOS: Dict[str, Callable[[str], FaultOutcome]] = {
    "worker_sigkill": _scenario_worker_sigkill,
    "worker_hang": _scenario_worker_hang,
    "worker_corrupt_payload": _scenario_worker_corrupt_payload,
    "pool_start_failure": _scenario_pool_start_failure,
}


def run_worker_fault_suite(profile: str = "quick") -> List[FaultOutcome]:
    """Run every worker-chaos scenario; one :class:`FaultOutcome` each."""
    return [fn(profile) for fn in WORKER_FAULT_SCENARIOS.values()]
