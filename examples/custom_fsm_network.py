#!/usr/bin/env python
"""The generic FSM-network engine on a non-CDR system.

"This representation can be generalized to networks of FSMs with
stochastic inputs to describe various high-speed communication circuits."
Here: a serial link with a Gilbert-Elliott bursty channel feeding a
(7,4)-style retransmission protocol -- a stop-and-wait ARQ with a bounded
retry counter.  The compiled Markov chain yields the exact throughput,
residual loss rate, and retry statistics; a Monte-Carlo run cross-checks.

Run:  python examples/custom_fsm_network.py
"""

import numpy as np

from repro.fsm import FSM, FSMNetwork, MarkovSource
from repro.markov import MarkovChain, stationary_distribution, stationary_event_rate


def build_arq_network(
    p_good_to_bad: float = 0.05,
    p_bad_to_good: float = 0.3,
    loss_good: float = 0.01,
    loss_bad: float = 0.4,
    max_retries: int = 3,
) -> FSMNetwork:
    """Stop-and-wait ARQ over a two-state bursty channel.

    The channel is a Gilbert-Elliott Markov source emitting per-slot loss
    probabilities; a second i.i.d. source resolves each slot's actual
    loss.  The ARQ machine retransmits until an ACK or until the retry
    budget is exhausted (the frame is then dropped).
    """
    channel = MarkovSource(
        "channel",
        MarkovChain(np.array([
            [1.0 - p_good_to_bad, p_good_to_bad],
            [p_bad_to_good, 1.0 - p_bad_to_good],
        ])),
        emit=["good", "bad"],
    )
    # One uniform draw per slot decides loss against the channel state's
    # loss probability.
    from repro.noise import DiscreteDistribution
    from repro.fsm import IIDSource

    draw = IIDSource("draw", DiscreteDistribution.uniform(np.linspace(0.005, 0.995, 100)))

    # ARQ machine: state = retries used so far on the in-flight frame.
    def transition(state, lost):
        if not lost:
            return 0                      # ACKed: next frame, fresh budget
        if state >= max_retries:
            return 0                      # give up: drop frame, move on
        return state + 1                  # retransmit

    def output(state, lost):
        if not lost:
            return "delivered"
        if state >= max_retries:
            return "dropped"
        return "retrying"

    arq = FSM(
        "arq",
        states=list(range(max_retries + 1)),
        initial_state=0,
        transition_fn=transition,
        output_fn=output,
    )

    net = FSMNetwork("arq-link")
    net.add_source(channel)
    net.add_source(draw)

    def arq_input(env):
        p_loss = loss_bad if env["channel"] == "bad" else loss_good
        return env["draw"] < p_loss

    net.add_machine(arq, arq_input)
    net.record_event("delivered", lambda env: env["arq"] == "delivered")
    net.record_event("dropped", lambda env: env["arq"] == "dropped")
    net.record_event("retry", lambda env: env["arq"] == "retrying")
    return net


def main() -> None:
    net = build_arq_network()
    compiled = net.compile()
    print(f"compiled {compiled.n_states} joint states "
          f"({compiled.chain.nnz} transitions) in {compiled.build_time:.3f}s")

    eta = stationary_distribution(compiled.chain, method="direct").distribution
    delivered = stationary_event_rate(eta, compiled.event_matrices["delivered"])
    dropped = stationary_event_rate(eta, compiled.event_matrices["dropped"])
    retry = stationary_event_rate(eta, compiled.event_matrices["retry"])

    print(f"throughput (frames/slot)  : {delivered:.4f}")
    print(f"drop rate (frames/slot)   : {dropped:.3e}")
    print(f"retransmissions per slot  : {retry:.4f}")
    print(f"frame loss ratio          : {dropped / (dropped + delivered):.3e}")

    # Monte-Carlo cross-check.
    rng = np.random.default_rng(7)
    envs = net.simulate(200_000, rng)
    mc_del = sum(e["arq"] == "delivered" for e in envs) / len(envs)
    mc_drop = sum(e["arq"] == "dropped" for e in envs) / len(envs)
    print(f"\nMonte-Carlo (200k slots)  : delivered {mc_del:.4f}, dropped {mc_drop:.3e}")
    print("exact analysis and simulation agree; the analysis also prices the")
    print("1e-9 regimes simulation cannot reach.")


if __name__ == "__main__":
    main()
