#!/usr/bin/env python
"""Tour of the observability layer: spans, metrics, run manifests.

Runs one CDR analysis under a tracer, then walks through everything
`repro.obs` recorded about it:

1. the nested span tree (where the wall/CPU time went, with structured
   attributes like state counts, nonzeros, solver residuals);
2. the process-wide metrics registry, rendered both as a JSON snapshot
   and in Prometheus text exposition format;
3. a `repro.run-trace/1` run manifest -- the single JSON artifact the
   CLI writes with `--metrics` and pretty-prints with `repro stats`.

Run:  python examples/observability_demo.py
"""

import json

from repro import CDRSpec, analyze_cdr
from repro.obs import (
    Tracer,
    build_run_manifest,
    format_run_manifest,
    get_registry,
    use_tracer,
)


def main() -> None:
    spec = CDRSpec(
        n_phase_points=128,
        n_clock_phases=16,
        counter_length=4,
        max_run_length=2,
        nw_std=0.05,
        nw_atoms=9,
    )

    # --- 1. trace one analysis ---------------------------------------- #
    tracer = Tracer()
    with use_tracer(tracer):
        analysis = analyze_cdr(spec, solver="auto")

    print("== span tree ==")
    def show(node, depth=0):
        attrs = ", ".join(f"{k}={v}" for k, v in node.attributes.items())
        print(f"{'  ' * depth}{node.name}: {node.wall_time * 1e3:.1f} ms"
              + (f"  [{attrs}]" if attrs else ""))
        for child in node.children:
            show(child, depth + 1)
    for root in tracer.roots:
        show(root)

    print("\n== per-stage summary (analysis.stage_seconds) ==")
    for stage, seconds in analysis.stage_seconds.items():
        print(f"  {stage}: {seconds * 1e3:.1f} ms")
    # The old flat timings survive as build_seconds / solve_seconds:
    print(f"  build+solve = "
          f"{analysis.build_seconds + analysis.solve_seconds:.3f} s")

    # --- 2. process-wide metrics --------------------------------------- #
    registry = get_registry()
    print("\n== metrics (Prometheus exposition) ==")
    print(registry.render_prometheus())

    # --- 3. run manifest ------------------------------------------------ #
    manifest = build_run_manifest(
        kind="analysis", spec=spec, analysis=analysis, tracer=tracer,
    )
    print("== run manifest (repro stats rendering) ==")
    print(format_run_manifest(manifest))
    print("\nmanifest keys:", ", ".join(sorted(manifest)))
    print("result digest:", manifest["digests"]["results_sha256"][:16], "...")
    print(f"(manifest JSON is {len(json.dumps(manifest))} bytes; the CLI "
          f"writes the same thing via `python -m repro analyze --metrics "
          f"run.json`)")


if __name__ == "__main__":
    main()
