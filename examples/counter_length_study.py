#!/usr/bin/env python
"""Loop-filter design study: the paper's Figure 5 as a design-space sweep.

"We observe that the best BER performance is obtained when counter length
is set to 8 ... When the length is set [small] the loop has high
bandwidth ... the system tends to follow the dominant noise source n_w ...
When the length is set [large], the effect of the noise source n_r becomes
predominant: the loop response becomes too slow to follow the drift ...
Hence, there is an optimal counter length for given levels of noise, the
computation of which is enabled by the accurate and efficient analysis
method described in the paper."

This example sweeps the counter length over powers of two and prints the
BER / slip-rate table plus the located optimum.

Run:  python examples/counter_length_study.py
"""

from repro import CDRSpec, optimal_counter_length, sweep_counter_length
from repro.core import format_table


def main() -> None:
    # A noise mix where both n_w and n_r matter: coarse phase step (8
    # selectable phases) so bang-bang dither punishes high-bandwidth
    # loops, plus a real frequency-offset drift that punishes slow ones.
    spec = CDRSpec(
        n_phase_points=128,
        n_clock_phases=8,
        transition_density=0.5,
        max_run_length=3,
        nw_std=0.1,
        nw_atoms=11,
        nr_max=0.016,
        nr_mean=0.008,
    )
    print(spec.describe())
    print()

    lengths = [1, 2, 4, 8, 16, 32]
    records = sweep_counter_length(spec, lengths, solver="direct")
    print(
        format_table(
            records,
            columns=[
                "counter_length",
                "ber",
                "slip_rate",
                "phase_rms",
                "n_states",
                "solve_time_s",
            ],
        )
    )
    print()

    best = optimal_counter_length(spec, lengths, solver="direct")
    print(f"optimal counter length: {best['counter_length']} "
          f"(BER {best['ber']:.3e})")
    worst_short = records[0]
    worst_long = records[-1]
    print(f"penalty at length {worst_short['counter_length']}: "
          f"{worst_short['ber'] / best['ber']:.1f}x worse BER")
    print(f"penalty at length {worst_long['counter_length']}: "
          f"{worst_long['ber'] / best['ber']:.1f}x worse BER")


if __name__ == "__main__":
    main()
