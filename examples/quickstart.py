#!/usr/bin/env python
"""Quickstart: analyze one CDR design point, paper-style.

Builds the Markov-chain model of a digital phase-selection CDR loop
(Figure 2 of Demir & Feldmann, DATE 2000), computes its stationary
distribution, and prints the paper's Figure-4-style readout: the
stationary phase-error density, the noisy sampling-phase density, the BER
from its tails, and the cycle-slip statistics.

Run:  python examples/quickstart.py
"""

from repro import CDRSpec, analyze_cdr
from repro.core import format_pdf_ascii

def main() -> None:
    # A SONET-flavoured design point: 16 selectable clock phases, an
    # up/down-by-8 counter loop filter, 2% UI RMS eye jitter, 0.8% UI
    # bounded drift with a 0.2% UI/symbol frequency-offset bias.
    spec = CDRSpec(
        n_phase_points=256,
        n_clock_phases=16,
        counter_length=8,
        transition_density=0.5,
        max_run_length=3,
        nw_std=0.02,
        nr_max=0.008,
        nr_mean=0.002,
    )
    print(spec.describe())
    print()

    analysis = analyze_cdr(spec)

    values, probs = analysis.phase_error_pdf()
    print(format_pdf_ascii(values, probs, title="stationary phase error PDF  (Phi)"))
    print()
    svalues, sprobs = analysis.sampled_phase_pdf()
    print(format_pdf_ascii(svalues, sprobs, title="noisy sampling phase PDF  (Phi + n_w)"))
    print()

    # The paper's annotation lines.
    print(analysis.report())
    print()
    print(f"BER (Gaussian n_w tail)     : {analysis.ber:.3e}")
    print(f"BER (discretized tail)      : {analysis.ber_discrete:.3e}")
    print(f"cycle-slip rate             : {analysis.slip_rate:.3e} /symbol")
    print(f"mean symbols between slips  : {analysis.mean_symbols_between_slips:.3e}")
    print(f"phase error mean / std (UI) : "
          f"{analysis.phase_stats['mean_ui']:+.4f} / {analysis.phase_stats['std_ui']:.4f}")


if __name__ == "__main__":
    main()
