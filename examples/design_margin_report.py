#!/usr/bin/env python
"""A one-shot design-review report for a CDR design point.

Pulls together the whole library the way a signal-integrity review would:
stationary performance, lock acquisition, jitter tolerances (bisection),
sensitivity of the BER to every noise knob, and the numerical condition
of the model itself -- all from exact analyses, no simulation.

Run:  python examples/design_margin_report.py
"""

from repro import (
    CDRSpec,
    analyze_acquisition,
    analyze_cdr,
    random_jitter_tolerance,
    sinusoidal_jitter_tolerance,
)
from repro.core import format_table, sensitivity_table


def main() -> None:
    spec = CDRSpec(
        n_phase_points=128,
        n_clock_phases=16,
        counter_length=4,
        max_run_length=3,
        nw_std=0.03,
        nw_atoms=11,
        nr_max=0.008,
        nr_mean=0.002,
    )
    ber_spec = 1e-12

    print("=" * 68)
    print("CDR DESIGN REVIEW")
    print("=" * 68)
    print(spec.describe())
    print()

    # 1. Nominal performance.
    analysis = analyze_cdr(spec)
    print("-- nominal performance " + "-" * 44)
    print(analysis.report())
    verdict = "PASS" if analysis.ber <= ber_spec else "FAIL"
    print(f"BER {analysis.ber:.2e} vs spec {ber_spec:.0e}: {verdict}")
    print(f"slip MTBF: {analysis.mean_symbols_between_slips:.2e} symbols")
    print()

    # 2. Acquisition.
    model = analysis.model
    acq = analyze_acquisition(model, locked_threshold_ui=0.1)
    print("-- lock acquisition " + "-" * 47)
    print(acq.summary())
    print()

    # 3. Jitter tolerances (bisection over exact analyses).
    print("-- jitter tolerance at the BER spec " + "-" * 31)
    rj = random_jitter_tolerance(spec, ber_target=ber_spec, lo=0.005, hi=0.2)
    print(rj.summary())
    margin = rj.tolerance / spec.nw_std
    print(f"  -> {margin:.2f}x margin over the nominal STDnw")
    sj = sinusoidal_jitter_tolerance(spec, ber_target=ber_spec, lo=0.005, hi=0.45)
    print(sj.summary())
    print()

    # 4. Sensitivities: decades of BER per unit of each noise knob.
    print("-- BER sensitivities " + "-" * 46)
    records = sensitivity_table(
        spec, parameters=("nw_std", "nr_mean", "nr_max"), solver="auto"
    )
    print(format_table(records,
                       columns=["parameter", "value", "ber", "dlog10(ber)/dx"]))
    print()
    steep = max(records, key=lambda r: abs(r["dlog10(ber)/dx"]) * r["value"])
    print(f"dominant knob (relative): {steep['parameter']}")


if __name__ == "__main__":
    main()
