#!/usr/bin/env python
"""Sinusoidal-jitter frequency response of the phase-selection loop.

The paper notes that deterministic sinusoidal jitter can be mimicked by
"assigning the amplitude distribution of n_r appropriately" -- an
approximation valid only when the loop cannot track the sinusoid.  The
Markov-modulated extension (`repro.cdr.modulated`) models the sinusoid as
a *hidden rotating state*, so the loop's tracking is captured exactly.

This example sweeps the sinusoid's period at fixed amplitude and prints
the BER and peak phase error per period -- the analysis-domain version of
a jitter-tolerance frequency mask: slow jitter is tracked (flat, benign),
jitter faster than the loop bandwidth is not (BER wall).  The white-noise
(amplitude-distribution) approximation is printed alongside to show where
the paper's shortcut becomes accurate: at high modulation frequencies.

Run:  python examples/sinusoidal_jitter_transfer.py
"""

import numpy as np

from repro.cdr import (
    PhaseGrid,
    build_cdr_chain,
    build_modulated_cdr_chain,
    sinusoidal_drift_source,
)
from repro.core import format_table
from repro.core.measures import bit_error_rate, phase_statistics
from repro.markov import solve_direct
from repro.noise import DiscreteDistribution, eye_opening_noise, sinusoidal_jitter


def main() -> None:
    grid = PhaseGrid(32)
    nw = eye_opening_noise(0.06, n_atoms=7)
    nr = DiscreteDistribution([-grid.step, 0.0, grid.step], [0.25, 0.5, 0.25])
    amplitude = 0.12
    common = dict(
        grid=grid, nw=nw, nr=nr, counter_length=2, phase_step_units=2,
        max_run_length=2,
    )

    rows = []
    for period in (128, 64, 32, 16, 8, 4):
        sj = sinusoidal_drift_source("sj", amplitude, period)
        model = build_modulated_cdr_chain(drift_source=sj, **common)
        eta = solve_direct(model.chain.P).distribution
        stats = phase_statistics(model, eta)
        rows.append(
            {
                "SJ_period_symbols": period,
                "SJ_freq_per_symbol": 1.0 / period,
                "ber": bit_error_rate(model, eta),
                "phase_rms": stats["rms_ui"],
                "n_states": model.n_states,
            }
        )
    print(f"sinusoidal jitter, amplitude {amplitude} UI, hidden-state model:")
    print(format_table(rows))
    print()

    # The paper's white-noise shortcut: fold the arcsine amplitude law of
    # the sinusoid into the per-symbol drift distribution.
    sj_white = sinusoidal_jitter(amplitude, n_atoms=9)
    # per-symbol increments, not absolute amplitude: differentiate by
    # treating the increment as bounded by the max slope 2*pi*A/T at the
    # fastest swept period.
    approx = build_cdr_chain(
        grid=grid,
        nw=nw.convolve(sj_white),  # high-frequency limit: SJ closes the eye
        nr=nr,
        counter_length=2,
        phase_step_units=2,
        max_run_length=2,
    )
    eta = solve_direct(approx.chain.P).distribution
    print("white-noise (amplitude-distribution) approximation of the same SJ:")
    print(f"  BER = {bit_error_rate(approx, eta):.3e}")
    print()
    print("Reading: below the loop bandwidth (long periods) the loop tracks")
    print("the sinusoid and the BER stays near the no-SJ floor; above it the")
    print("BER converges toward the white-noise approximation — exactly the")
    print("regime where the paper's amplitude-distribution trick is valid.")


if __name__ == "__main__":
    main()
