#!/usr/bin/env python
"""Why the paper exists: Markov-chain analysis vs. Monte-Carlo simulation.

At simulation-accessible error rates the two must agree -- and do.  Then
the script extrapolates the simulation cost down to SONET-grade BER
(1e-10 and below) and prints the wall the paper's introduction describes:
"It is not feasible to predict such error rates with straightforward,
simulation based, approaches."

Run:  python examples/analysis_vs_montecarlo.py
"""

import numpy as np

from repro import CDRSpec, analyze_cdr
from repro.cdr import required_symbols_for_ber, simulate_cdr
from repro.core import format_table


def main() -> None:
    # A noisy design point so Monte Carlo converges in seconds.
    spec = CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=3,
        nw_std=0.17,
        nw_atoms=11,
        nr_max=0.03,
        nr_mean=0.008,
    )
    print(spec.describe())
    print()

    analysis = analyze_cdr(spec, solver="direct")
    print("Markov-chain analysis:")
    print(analysis.report())
    print()

    rng = np.random.default_rng(2000)
    mc = simulate_cdr(
        grid=spec.grid,
        nw=spec.nw_distribution(),
        nr=spec.nr_distribution(),
        counter_length=spec.counter_length,
        phase_step_units=spec.phase_step_units,
        data_source=spec.data_source(),
        n_symbols=400_000,
        warmup_symbols=5_000,
        rng=rng,
    )
    print("Monte-Carlo simulation:")
    print(mc.summary())
    lo, hi = mc.ber_confidence_interval(z=3.0)
    agrees = lo <= analysis.ber_discrete <= hi
    print(f"analysis BER {analysis.ber_discrete:.3e} inside MC 3-sigma CI: {agrees}")
    print()

    # The extrapolation that motivates the whole method.
    print("Monte-Carlo cost extrapolation (+-10% at 95% confidence):")
    sym_per_s = mc.n_symbols / mc.sim_time
    rows = []
    for target in (1e-4, 1e-6, 1e-8, 1e-10, 1e-12):
        n = required_symbols_for_ber(target)
        rows.append(
            {
                "target BER": f"{target:.0e}",
                "symbols needed": f"{n:.2e}",
                "sim time at this host": f"{n / sym_per_s / 3600.0:.2e} hours",
            }
        )
    print(format_table(rows))
    print()
    print(f"...versus {analysis.build_seconds + analysis.solve_seconds:.2f} seconds for the analysis,")
    print("independent of the BER magnitude.")


if __name__ == "__main__":
    main()
