#!/usr/bin/env python
"""Jitter-tolerance characterization of a CDR design.

Sweeps the input eye-opening jitter (``STDnw``) and the frequency-offset
drift (``MEANnr``) and reports the BER wall -- the analysis-based
equivalent of a lab jitter-tolerance measurement, and the kind of what-if
exploration the paper argues simulation cannot deliver ("the evaluation of
a number of alternative algorithms, architectures, circuit techniques, and
technologies in a short time").

Run:  python examples/jitter_tolerance.py
"""

from repro import CDRSpec, sweep_parameter
from repro.core import format_table


def main() -> None:
    base = CDRSpec(
        n_phase_points=128,
        n_clock_phases=16,
        counter_length=8,
        max_run_length=3,
        nw_atoms=11,
        nr_max=0.008,
        nr_mean=0.002,
    )
    print(base.describe())

    print("\n--- eye-opening jitter sweep (STDnw) ---")
    records = sweep_parameter(
        base, "nw_std", [0.01, 0.02, 0.04, 0.08, 0.12, 0.16], solver="direct"
    )
    print(format_table(records, columns=["nw_std", "ber", "slip_rate", "phase_rms"]))

    # Locate the tolerance threshold: largest jitter still meeting a
    # BER spec of 1e-10.
    spec_limit = 1e-10
    passing = [r for r in records if r["ber"] <= spec_limit]
    if passing:
        print(f"\nlargest STDnw meeting BER <= {spec_limit:g}: "
              f"{max(r['nw_std'] for r in passing):g} UI rms")
    else:
        print(f"\nno swept STDnw meets BER <= {spec_limit:g}")

    print("\n--- frequency-offset drift sweep (MEANnr) ---")
    drift = sweep_parameter(
        base.replace(nw_std=0.05, nr_max=0.02),
        "nr_mean",
        [0.0, 0.002, 0.005, 0.01, 0.015],
        solver="direct",
    )
    print(format_table(
        drift,
        columns=["nr_mean", "ber", "slip_rate", "mean_symbols_between_slips"],
    ))
    print("\nNote how drift degrades slip MTBF long before it moves the BER:")
    print("cycle slips, not bit decisions, are the first casualty of a")
    print("frequency offset the loop is too slow to track.")


if __name__ == "__main__":
    main()
