#!/usr/bin/env python
"""Lock-acquisition study: how fast does the loop pull in?

The stationary analyses of the paper answer "how does the locked loop
err?"; the same compiled Markov chain also answers "how long until it
locks?" through mean first-passage times ("mean transition times between
certain sets of MC states") and transient distribution propagation.

This example sweeps the loop-filter counter length and prints, for each,
the worst-case and average acquisition times into a +-0.1 UI lock window,
plus the lock-probability-vs-time curve for the optimal-BER design --
making the bandwidth-vs-accuracy tradeoff of Figure 5 visible in the time
domain: short counters lock fast but jitter more; long counters are quiet
but glacial to acquire.

Run:  python examples/lock_acquisition.py
"""

import numpy as np

from repro import CDRSpec, analyze_acquisition, analyze_cdr, lock_probability_curve
from repro.core import format_table


def main() -> None:
    base = CDRSpec(
        n_phase_points=64,
        n_clock_phases=16,
        max_run_length=2,
        nw_std=0.05,
        nw_atoms=9,
        nr_max=0.016,
        nr_mean=0.002,
    )
    print(base.replace(counter_length=8).describe())
    print()

    rows = []
    for counter in (1, 2, 4, 8, 16):
        spec = base.replace(counter_length=counter)
        model = spec.build_model()
        acq = analyze_acquisition(model, locked_threshold_ui=0.1)
        analysis = analyze_cdr(spec, solver="direct")
        rows.append(
            {
                "counter": counter,
                "worst_lock_symbols": acq.worst_case_symbols,
                "mean_lock_symbols": acq.mean_from_uniform,
                "ber_when_locked": analysis.ber,
                "phase_rms": analysis.phase_rms,
            }
        )
    print(format_table(rows))
    print()
    print("Short counters acquire in tens of symbols but pay in BER;")
    print("long counters are quiet but take thousands of symbols to lock —")
    print("the time-domain face of the Figure-5 tradeoff.")
    print()

    # Lock-probability curve for the counter=4 design from the worst start.
    model = base.replace(counter_length=4).build_model()
    curve = lock_probability_curve(
        model, 400, start_phase_ui=-0.49, locked_threshold_ui=0.1
    )
    checkpoints = [0, 25, 50, 100, 200, 400]
    print("P(locked at symbol k), counter=4, start at -0.49 UI:")
    for k in checkpoints:
        bar = "#" * int(round(curve[k] * 40))
        print(f"  k={k:>4}: {curve[k]:6.3f} {bar}")
    k90 = int(np.argmax(curve >= 0.9)) if np.any(curve >= 0.9) else -1
    if k90 >= 0:
        print(f"90% lock probability reached at symbol {k90}")


if __name__ == "__main__":
    main()
