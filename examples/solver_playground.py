#!/usr/bin/env python
"""Stationary-solver shoot-out on one CDR chain.

Builds a moderately stiff CDR Markov chain and runs every stationary
solver in the library on it -- power iteration, weighted Jacobi,
Gauss-Seidel, preconditioned GMRES, sparse LU, two-level
aggregation/disaggregation, and the paper's multi-level (multigrid)
aggregation with phase-pairing coarsening -- printing iterations,
residuals, and wall-clock times side by side.

Run:  python examples/solver_playground.py
"""

import numpy as np

from repro import CDRSpec
from repro.core import format_table
from repro.markov import (
    Partition,
    solve_aggregation_disaggregation,
    solve_direct,
    solve_gauss_seidel,
    solve_jacobi,
    solve_krylov,
    solve_multigrid,
    solve_power,
)


def main() -> None:
    spec = CDRSpec(
        n_phase_points=256,
        n_clock_phases=16,
        counter_length=16,
        max_run_length=2,
        nw_std=0.01,
        nr_max=0.002,
        nr_mean=0.0005,
    )
    model = spec.build_model()
    P = model.chain.P
    print(f"{model!r}\n")

    tol = 1e-10
    results = [
        solve_direct(P),
        solve_power(P, tol=tol, max_iter=100_000),
        solve_jacobi(P, tol=tol, max_iter=100_000),
        solve_gauss_seidel(P, tol=tol, max_iter=20_000),
        solve_krylov(P, tol=tol),
        solve_aggregation_disaggregation(
            P, model.phase_pairing_partitions()[0], tol=tol, max_iter=2_000
        ),
        solve_multigrid(
            P, strategy=model.multigrid_strategy(), tol=tol,
            nu_pre=8, nu_post=8, max_cycles=400,
        ),
    ]

    reference = results[0].distribution
    rows = []
    for res in results:
        rows.append(
            {
                "method": res.method,
                "iterations": res.iterations,
                "residual": res.residual,
                "time_s": res.solve_time,
                "err_vs_direct": float(np.abs(res.distribution - reference).sum()),
            }
        )
    print(format_table(rows))
    print()
    print("Iteration units differ (sweeps / matvecs / V-cycles); the paper's")
    print("point is the multigrid cycle count stays nearly flat as the model")
    print("grows -- see benchmarks/bench_solver_comparison.py for the sweep.")


if __name__ == "__main__":
    main()
