import setuptools; setuptools.setup()
