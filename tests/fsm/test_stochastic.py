"""Tests for repro.fsm.stochastic (S11)."""

import numpy as np
import pytest

from repro.fsm import IIDSource, MarkovSource, source_from_distribution
from repro.markov import MarkovChain
from repro.noise import DiscreteDistribution


def bursty_chain():
    """2-state Gilbert channel: good/bad bursts."""
    return MarkovChain(np.array([[0.95, 0.05], [0.2, 0.8]]))


class TestMarkovSource:
    def test_basic(self):
        src = MarkovSource("gilbert", bursty_chain(), emit=["good", "bad"])
        assert src.n_states == 2
        assert src.symbol(0) == "good"
        assert src.symbols == ["good", "bad"]
        assert "gilbert" in repr(src)

    def test_emit_callable(self):
        src = MarkovSource("sq", bursty_chain(), emit=lambda i: i * i)
        assert src.symbols == [0, 1]

    def test_emit_length_mismatch(self):
        with pytest.raises(ValueError, match="symbols"):
            MarkovSource("m", bursty_chain(), emit=["only-one"])

    def test_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            MarkovSource("", bursty_chain(), emit=["a", "b"])

    def test_initial_state_range(self):
        with pytest.raises(ValueError, match="initial_state"):
            MarkovSource("m", bursty_chain(), emit=["a", "b"], initial_state=5)

    def test_branches(self):
        src = MarkovSource("m", bursty_chain(), emit=["a", "b"])
        branches = dict(src.branches(0))
        assert branches[0] == pytest.approx(0.95)
        assert branches[1] == pytest.approx(0.05)

    def test_sample_path_statistics(self):
        rng = np.random.default_rng(7)
        src = MarkovSource("m", bursty_chain(), emit=[0, 1])
        path = src.sample_path(30_000, rng)
        # stationary of the Gilbert chain: eta_bad = 0.05/(0.05+0.2) = 0.2
        assert abs(np.mean(path) - 0.2) < 0.02


class TestIIDSource:
    def test_rows_equal_distribution(self):
        d = DiscreteDistribution([-1.0, 0.0, 1.0], [0.25, 0.5, 0.25])
        src = IIDSource("nw", d)
        P = src.chain.to_dense()
        for row in P:
            np.testing.assert_allclose(row, d.probs)

    def test_symbols_are_atom_values(self):
        d = DiscreteDistribution([-0.5, 0.5], [0.5, 0.5])
        src = IIDSource("nw", d)
        assert src.symbols == [-0.5, 0.5]

    def test_consecutive_symbols_uncorrelated(self):
        rng = np.random.default_rng(3)
        d = DiscreteDistribution([0.0, 1.0], [0.5, 0.5])
        src = IIDSource("nw", d)
        path = np.array(src.sample_path(20_000, rng))
        corr = np.corrcoef(path[:-1], path[1:])[0, 1]
        assert abs(corr) < 0.03

    def test_initial_state_is_mode(self):
        d = DiscreteDistribution([0.0, 1.0], [0.9, 0.1])
        assert IIDSource("nw", d).initial_state == 0

    def test_distribution_attached(self):
        d = DiscreteDistribution([0.0, 1.0], [0.5, 0.5])
        assert IIDSource("nw", d).distribution == d

    def test_convenience_alias(self):
        d = DiscreteDistribution.delta(0.0)
        src = source_from_distribution("z", d)
        assert isinstance(src, IIDSource)
        assert src.name == "z"
