"""Tests for the Kronecker/SAN descriptor (S13)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm import KroneckerDescriptor, kron_matvec, synchronous_product
from repro.markov import MarkovChain, random_chain, solve_direct


def random_stochastic(n, seed):
    return random_chain(n, np.random.default_rng(seed)).to_dense()


class TestKronMatvec:
    def test_matches_explicit_kron_two_factors(self):
        rng = np.random.default_rng(0)
        A = rng.random((3, 3))
        B = rng.random((4, 4))
        v = rng.random(12)
        expected = np.kron(A, B) @ v
        got = kron_matvec([sp.csr_matrix(A), sp.csr_matrix(B)], v)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_matches_explicit_kron_three_factors(self):
        rng = np.random.default_rng(1)
        mats = [rng.random((n, n)) for n in (2, 3, 2)]
        v = rng.random(12)
        expected = np.kron(np.kron(mats[0], mats[1]), mats[2]) @ v
        got = kron_matvec([sp.csr_matrix(m) for m in mats], v)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_rectangular_factors(self):
        rng = np.random.default_rng(2)
        A = rng.random((2, 3))
        B = rng.random((5, 4))
        v = rng.random(12)
        expected = np.kron(A, B) @ v
        got = kron_matvec([sp.csr_matrix(A), sp.csr_matrix(B)], v)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_size_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            kron_matvec([sp.identity(2, format="csr")], np.ones(3))

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_dense_kron(self, n1, n2, seed):
        rng = np.random.default_rng(seed)
        A, B = rng.random((n1, n1)), rng.random((n2, n2))
        v = rng.random(n1 * n2)
        np.testing.assert_allclose(
            kron_matvec([sp.csr_matrix(A), sp.csr_matrix(B)], v),
            np.kron(A, B) @ v,
            atol=1e-10,
        )


class TestDescriptor:
    def test_validation(self):
        with pytest.raises(ValueError):
            KroneckerDescriptor([])
        with pytest.raises(ValueError):
            KroneckerDescriptor([0, 2])
        d = KroneckerDescriptor([2, 3])
        with pytest.raises(ValueError, match="factors"):
            d.add_term([np.eye(2)])
        with pytest.raises(ValueError, match="shape"):
            d.add_term([np.eye(2), np.eye(4)])

    def test_shape_and_dims(self):
        d = KroneckerDescriptor([2, 3, 4])
        assert d.n == 24
        assert d.shape == (24, 24)
        assert d.component_dims == [2, 3, 4]
        assert d.n_terms == 0

    def test_sum_of_terms(self):
        rng = np.random.default_rng(3)
        A1, B1 = rng.random((2, 2)), rng.random((3, 3))
        A2, B2 = rng.random((2, 2)), rng.random((3, 3))
        d = KroneckerDescriptor([2, 3])
        d.add_term([A1, B1], coefficient=0.5)
        d.add_term([A2, B2], coefficient=2.0)
        M = 0.5 * np.kron(A1, B1) + 2.0 * np.kron(A2, B2)
        v = rng.random(6)
        np.testing.assert_allclose(d.matvec(v), M @ v, atol=1e-12)
        np.testing.assert_allclose(d.rmatvec(v), M.T @ v, atol=1e-12)
        np.testing.assert_allclose(d.to_sparse().toarray(), M, atol=1e-12)

    def test_linear_operator_view(self):
        rng = np.random.default_rng(4)
        A = random_stochastic(3, 0)
        B = random_stochastic(2, 1)
        d = synchronous_product([A, B])
        op = d.as_linear_operator()
        v = rng.random(6)
        np.testing.assert_allclose(op.matvec(v), d.matvec(v))
        np.testing.assert_allclose(op.rmatvec(v), d.rmatvec(v))

    def test_to_sparse_size_guard(self):
        d = KroneckerDescriptor([1000, 1000])
        with pytest.raises(ValueError, match="too large"):
            d.to_sparse()


class TestSynchronousProduct:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            synchronous_product([])

    def test_product_is_stochastic(self):
        A = random_stochastic(3, 10)
        B = random_stochastic(4, 11)
        M = synchronous_product([A, B]).to_sparse()
        sums = np.asarray(M.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-10)

    def test_stationary_is_kron_of_stationaries(self):
        """Independent components: joint stationary = kron of marginals."""
        A = random_stochastic(3, 20)
        B = random_stochastic(4, 21)
        eta_a = solve_direct(MarkovChain(A).P).distribution
        eta_b = solve_direct(MarkovChain(B).P).distribution
        d = synchronous_product([A, B])
        eta, iters, res = d.power_iteration_stationary(tol=1e-12)
        np.testing.assert_allclose(eta, np.kron(eta_a, eta_b), atol=1e-8)
        assert res < 1e-10

    def test_matrix_free_matches_explicit(self):
        A = random_stochastic(4, 30)
        B = random_stochastic(3, 31)
        d = synchronous_product([A, B])
        eta_free, _, _ = d.power_iteration_stationary(tol=1e-13)
        eta_explicit = solve_direct(MarkovChain(d.to_sparse()).P).distribution
        np.testing.assert_allclose(eta_free, eta_explicit, atol=1e-8)

    def test_power_iteration_damping_validation(self):
        d = synchronous_product([np.eye(2)])
        with pytest.raises(ValueError):
            d.power_iteration_stationary(damping=1.5)
