"""Tests for FSM-network composition (S12)."""

import numpy as np
import pytest

from repro.fsm import FSM, FSMNetwork, IIDSource, MarkovSource
from repro.markov import MarkovChain, solve_direct, stationary_event_rate
from repro.noise import DiscreteDistribution


def coin_source(name="coin", p=0.5):
    return IIDSource(name, DiscreteDistribution([0.0, 1.0], [1.0 - p, p]))


def toggle_machine(name="toggle"):
    return FSM.moore(
        name, [0, 1], 0,
        transition_fn=lambda s, u: s ^ int(u),
        state_output_fn=lambda s: s,
    )


def counter_machine(name, modulo):
    return FSM.moore(
        name, list(range(modulo)), 0,
        transition_fn=lambda s, u: (s + int(u)) % modulo,
        state_output_fn=lambda s: s,
    )


class TestConstruction:
    def test_duplicate_names_rejected(self):
        net = FSMNetwork()
        net.add_source(coin_source("x"))
        with pytest.raises(ValueError, match="duplicate"):
            net.add_machine(toggle_machine("x"), lambda env: env["x"])

    def test_duplicate_event_rejected(self):
        net = FSMNetwork()
        net.record_event("e", lambda env: True)
        with pytest.raises(ValueError, match="duplicate event"):
            net.record_event("e", lambda env: False)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError, match="empty network"):
            FSMNetwork().compile()

    def test_names_and_repr(self):
        net = FSMNetwork("n")
        net.add_source(coin_source())
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        assert net.source_names == ["coin"]
        assert net.machine_names == ["toggle"]
        assert "toggle" in repr(net)


class TestSemantics:
    def test_initial_state(self):
        net = FSMNetwork()
        net.add_source(coin_source(p=0.9))  # mode is 1 -> hidden init 1
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        joint = net.initial_state()
        assert len(joint) == 2
        assert joint[1] == 0

    def test_step_branches_probabilities(self):
        net = FSMNetwork()
        net.add_source(coin_source(p=0.25))
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        branches = net.step_branches(net.initial_state())
        probs = sorted(p for _, p, _ in branches)
        assert probs == [pytest.approx(0.25), pytest.approx(0.75)]
        assert sum(p for _, p, _ in branches) == pytest.approx(1.0)

    def test_pipeline_evaluation_order(self):
        """A Mealy machine's output feeds the next machine in the same step."""
        net = FSMNetwork()
        net.add_source(coin_source(p=1.0))  # always emits 1
        inverter = FSM("inv", [0], 0, lambda s, u: 0, lambda s, u: 1 - int(u))
        net.add_machine(inverter, lambda env: env["coin"])
        counter = counter_machine("cnt", 4)
        net.add_machine(counter, lambda env: env["inv"])
        # inverter turns the constant 1 into 0, counter never advances
        nxt, prob, env = net.step_branches(net.initial_state())[0]
        assert env["inv"] == 0
        assert nxt[-1] == 0

    def test_deterministic_network_single_branch(self):
        net = FSMNetwork()
        net.add_machine(
            counter_machine("cnt", 3), lambda env: 1
        )
        branches = net.step_branches(net.initial_state())
        assert len(branches) == 1
        assert branches[0][1] == 1.0

    def test_simulate_trajectory(self):
        rng = np.random.default_rng(0)
        net = FSMNetwork()
        net.add_source(coin_source(p=0.5))
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        envs = net.simulate(100, rng)
        assert len(envs) == 100
        assert all(set(e) == {"coin", "toggle"} for e in envs)


class TestCompile:
    def test_single_iid_source(self):
        net = FSMNetwork()
        net.add_source(coin_source(p=0.3))
        nc = net.compile()
        assert nc.n_states == 2
        eta = solve_direct(nc.chain.P).distribution
        # hidden state == last symbol; stationary = marginal law
        idx0 = nc.chain.state_labels.index((0,))
        assert eta[idx0] == pytest.approx(0.7)

    def test_toggle_driven_by_coin(self):
        net = FSMNetwork()
        net.add_source(coin_source(p=0.5))
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        nc = net.compile()
        assert nc.n_states == 4
        eta = solve_direct(nc.chain.P).distribution
        # by symmetry the toggle is uniform
        mass1 = sum(
            eta[i] for i, lab in enumerate(nc.chain.state_labels) if lab[1] == 1
        )
        assert mass1 == pytest.approx(0.5, abs=1e-10)

    def test_reachability_pruning(self):
        # counter mod 4 driven by constant 0 never leaves state 0
        net = FSMNetwork()
        net.add_machine(counter_machine("cnt", 4), lambda env: 0)
        nc = net.compile()
        assert nc.n_states == 1

    def test_max_states_guard(self):
        net = FSMNetwork()
        net.add_source(coin_source())
        net.add_machine(counter_machine("cnt", 64), lambda env: env["coin"])
        with pytest.raises(RuntimeError, match="max_states"):
            net.compile(max_states=10)

    def test_transition_probabilities_correct(self):
        net = FSMNetwork()
        net.add_source(coin_source(p=0.25))
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        nc = net.compile()
        c = nc.chain
        # From (hidden=0 i.e. symbol 0, toggle=0): toggle stays 0, hidden
        # goes to 1 w.p. 0.25.
        i = c.index_of((0, 0))
        j = c.index_of((1, 0))
        assert c.transition_prob(i, j) == pytest.approx(0.25)

    def test_markov_source_composition(self):
        gilbert = MarkovChain(np.array([[0.9, 0.1], [0.5, 0.5]]))
        src = MarkovSource("channel", gilbert, emit=[0, 1])
        net = FSMNetwork()
        net.add_source(src)
        net.add_machine(counter_machine("errors", 8), lambda env: env["channel"])
        nc = net.compile()
        assert nc.n_states <= 16
        eta = solve_direct(nc.chain.P).distribution
        bad_mass = sum(
            eta[i] for i, lab in enumerate(nc.chain.state_labels) if lab[0] == 1
        )
        assert bad_mass == pytest.approx(0.1 / 0.6, abs=1e-10)

    def test_two_sources_product_branches(self):
        net = FSMNetwork()
        net.add_source(coin_source("a", p=0.5))
        net.add_source(coin_source("b", p=0.5))
        net.add_machine(
            toggle_machine(), lambda env: int(env["a"]) ^ int(env["b"])
        )
        nc = net.compile()
        assert nc.n_states == 8
        sums = nc.chain.row_sums()
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)

    def test_build_time_recorded(self):
        net = FSMNetwork()
        net.add_source(coin_source())
        nc = net.compile()
        assert nc.build_time >= 0.0


class TestEvents:
    def test_event_rate_matches_analytic(self):
        """Event = coin shows 1 this step; rate must equal p."""
        net = FSMNetwork()
        net.add_source(coin_source(p=0.3))
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        net.record_event("one", lambda env: env["coin"] == 1.0)
        nc = net.compile()
        eta = solve_direct(nc.chain.P).distribution
        rate = stationary_event_rate(eta, nc.event_matrices["one"])
        assert rate == pytest.approx(0.3, abs=1e-10)

    def test_never_firing_event_is_empty(self):
        net = FSMNetwork()
        net.add_source(coin_source())
        net.record_event("impossible", lambda env: False)
        nc = net.compile()
        assert nc.event_matrices["impossible"].nnz == 0

    def test_event_matrix_dominated_by_tpm(self):
        net = FSMNetwork()
        net.add_source(coin_source(p=0.4))
        net.add_machine(toggle_machine(), lambda env: env["coin"])
        net.record_event("toggle-high", lambda env: env["toggle"] == 1)
        nc = net.compile()
        E = nc.event_matrices["toggle-high"]
        P = nc.chain.P
        diff = (P - E).toarray()
        assert diff.min() >= -1e-12
