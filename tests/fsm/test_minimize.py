"""Tests for FSM minimization."""

import numpy as np
import pytest

from repro.fsm import (
    FSM,
    equivalent_state_classes,
    fsms_equivalent,
    minimize_fsm,
)


def redundant_toggle():
    """A toggle padded with duplicate states: {0, 2} and {1, 3} behave
    identically (output = parity, input flips parity)."""
    return FSM(
        "redundant",
        states=[0, 1, 2, 3],
        initial_state=0,
        transition_fn=lambda s, u: (s + u) % 4 if u else s,
        output_fn=lambda s, u: s % 2,
    )


def already_minimal_counter(n=4):
    return FSM.moore(
        "cnt", list(range(n)), 0,
        transition_fn=lambda s, u: (s + int(u)) % n,
        state_output_fn=lambda s: s,
    )


class TestEquivalenceClasses:
    def test_redundant_states_merged(self):
        classes = equivalent_state_classes(redundant_toggle(), [0, 1])
        assert sorted(sorted(c) for c in classes) == [[0, 2], [1, 3]]

    def test_minimal_machine_untouched(self):
        m = already_minimal_counter()
        classes = equivalent_state_classes(m, [0, 1])
        assert all(len(c) == 1 for c in classes)
        assert len(classes) == 4

    def test_constant_output_machine_collapses(self):
        m = FSM(
            "const", [0, 1, 2], 0,
            transition_fn=lambda s, u: (s + 1) % 3,
            output_fn=lambda s, u: "x",
        )
        classes = equivalent_state_classes(m, [None])
        assert len(classes) == 1

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            equivalent_state_classes(redundant_toggle(), [])


class TestMinimize:
    def test_minimized_size(self):
        mini = minimize_fsm(redundant_toggle(), [0, 1])
        assert mini.n_states == 2

    def test_behaviour_preserved(self):
        rng = np.random.default_rng(0)
        original = redundant_toggle()
        mini = minimize_fsm(original, [0, 1])
        inputs = rng.integers(0, 2, size=500).tolist()
        out_a = [y for _, y in original.run(inputs)]
        out_b = [y for _, y in mini.run(inputs)]
        assert out_a == out_b

    def test_equivalence_checker_confirms(self):
        original = redundant_toggle()
        mini = minimize_fsm(original, [0, 1])
        assert fsms_equivalent(original, mini, [0, 1])

    def test_minimizing_minimal_is_isomorphic(self):
        m = already_minimal_counter()
        mini = minimize_fsm(m, [0, 1])
        assert mini.n_states == m.n_states
        assert fsms_equivalent(m, mini, [0, 1])


class TestFSMsEquivalent:
    def test_different_machines_detected(self):
        a = already_minimal_counter(4)
        b = already_minimal_counter(3)
        assert not fsms_equivalent(a, b, [0, 1])

    def test_same_machine(self):
        a = already_minimal_counter(4)
        assert fsms_equivalent(a, a, [0, 1])

    def test_cdr_counter_is_already_minimal(self):
        """The paper's loop-filter counter has no redundant states: every
        state responds differently to some input sequence."""
        from repro.cdr import updown_counter

        counter = updown_counter("c", 4)
        classes = equivalent_state_classes(counter, [-1, 0, 1])
        assert len(classes) == counter.n_states
