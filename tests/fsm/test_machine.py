"""Tests for repro.fsm.machine (S10)."""

import pytest

from repro.fsm import FSM


def toggle_fsm():
    """1-bit toggle: flips state when input is 1; Moore output = state."""
    return FSM.moore(
        "toggle",
        states=[0, 1],
        initial_state=0,
        transition_fn=lambda s, u: s ^ (u & 1),
        state_output_fn=lambda s: s,
    )


def parity_fsm():
    """Mealy parity detector: output = state XOR input."""
    return FSM(
        "parity",
        states=[0, 1],
        initial_state=0,
        transition_fn=lambda s, u: s ^ u,
        output_fn=lambda s, u: s ^ u,
    )


class TestConstruction:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            FSM("", [0], 0, lambda s, u: s, lambda s, u: s)

    def test_rejects_empty_states(self):
        with pytest.raises(ValueError, match="at least one state"):
            FSM("m", [], None, lambda s, u: s, lambda s, u: s)

    def test_rejects_duplicate_states(self):
        with pytest.raises(ValueError, match="duplicate"):
            FSM("m", [0, 0], 0, lambda s, u: s, lambda s, u: s)

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError, match="initial state"):
            FSM("m", [0, 1], 2, lambda s, u: s, lambda s, u: s)

    def test_properties(self):
        m = toggle_fsm()
        assert m.n_states == 2
        assert m.states == [0, 1]
        assert m.state_index(1) == 1
        assert "toggle" in repr(m)

    def test_state_index_unknown(self):
        with pytest.raises(KeyError, match="unknown state"):
            toggle_fsm().state_index(5)


class TestStepping:
    def test_next_state(self):
        m = toggle_fsm()
        assert m.next_state(0, 1) == 1
        assert m.next_state(1, 1) == 0
        assert m.next_state(1, 0) == 1

    def test_transition_leaving_state_set_detected(self):
        m = FSM("bad", [0, 1], 0, lambda s, u: s + u, lambda s, u: s)
        with pytest.raises(ValueError, match="left the state set"):
            m.next_state(1, 1)

    def test_mealy_output(self):
        m = parity_fsm()
        assert m.output(0, 1) == 1
        assert m.output(1, 1) == 0

    def test_step(self):
        m = parity_fsm()
        nxt, out = m.step(0, 1)
        assert (nxt, out) == (1, 1)

    def test_run(self):
        m = parity_fsm()
        trace = list(m.run([1, 1, 0, 1]))
        states = [s for s, _ in trace]
        outs = [y for _, y in trace]
        assert states == [0, 1, 0, 0]
        assert outs == [1, 0, 0, 1]

    def test_run_with_explicit_state(self):
        m = parity_fsm()
        trace = list(m.run([0], state=1))
        assert trace == [(1, 1)]

    def test_run_rejects_unknown_state(self):
        m = parity_fsm()
        with pytest.raises(KeyError):
            list(m.run([0], state=7))


class TestValidationHelpers:
    def test_validate_total_passes(self):
        toggle_fsm().validate_total([0, 1])

    def test_validate_total_catches_partial(self):
        m = FSM("partial", [0, 1], 0,
                lambda s, u: {(0, 0): 0, (0, 1): 1}[(s, u)],
                lambda s, u: 0)
        with pytest.raises(KeyError):
            m.validate_total([0, 1])

    def test_reachable_states(self):
        # state 2 is unreachable from 0
        m = FSM(
            "m", [0, 1, 2], 0,
            lambda s, u: (s ^ u) if s != 2 else 2,
            lambda s, u: s,
        )
        assert m.reachable_states([0, 1]) == [0, 1]


class TestFromTable:
    def test_table_machine(self):
        m = FSM.from_table(
            "tbl",
            transitions={(0, "a"): 1, (0, "b"): 0, (1, "a"): 0, (1, "b"): 1},
            outputs={(0, "a"): "x", (0, "b"): "y", (1, "a"): "y", (1, "b"): "x"},
            initial_state=0,
        )
        assert m.next_state(0, "a") == 1
        assert m.output(1, "b") == "x"

    def test_table_missing_transition(self):
        m = FSM.from_table(
            "tbl", transitions={(0, "a"): 0}, outputs={(0, "a"): 0}, initial_state=0
        )
        with pytest.raises(ValueError, match="no transition"):
            m.next_state(0, "b")
        with pytest.raises(ValueError, match="no output"):
            m.output(0, "b")

    def test_moore_constructor(self):
        m = FSM.moore("moo", [0, 1], 0, lambda s, u: 1 - s, lambda s: s * 10)
        assert m.output(1, "ignored") == 10
