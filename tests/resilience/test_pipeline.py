"""Resilience threaded through the pipeline: analyzer, sweep, MC campaign,
manifest and CLI.  Includes the mid-sweep-kill bit-identity acceptance test
and the stagnating-head fallback demo with its attempt chain in the
manifest."""

import numpy as np
import pytest

from repro import CDRSpec, analyze_cdr, sweep_parameter
from repro.resilience import FallbackPolicy, FallbackStep
from repro.resilience.faults import SimulatedWorkerKill, killing_analyze_fn


def small_spec(**overrides):
    base = dict(
        n_phase_points=64,
        n_clock_phases=16,
        counter_length=2,
        max_run_length=2,
        nw_std=0.08,
        nw_atoms=7,
    )
    base.update(overrides)
    return CDRSpec(**base)


class TestAnalyzerResilience:
    def test_resilient_analysis_records_attempts(self):
        analysis = analyze_cdr(small_spec(), solver="power", resilience=True)
        events = analysis.resilience_events
        assert events and events[-1]["event"] == "solver_attempt"
        assert events[-1]["status"] == "converged"
        assert events[-1]["method"] == "power"

    def test_plain_analysis_has_no_events(self):
        analysis = analyze_cdr(small_spec(), solver="power")
        assert analysis.resilience_events == []

    def test_resilient_matches_plain_result(self):
        spec = small_spec()
        plain = analyze_cdr(spec, solver="power", tol=1e-11)
        resilient = analyze_cdr(spec, solver="power", tol=1e-11,
                                resilience=True)
        np.testing.assert_allclose(
            resilient.stationary, plain.stationary, atol=1e-12
        )
        assert resilient.ber == pytest.approx(plain.ber, rel=1e-9)

    def test_fallback_demo_chain_visible(self):
        # Acceptance demo: the requested head is strangled (3 iterations),
        # the analysis still completes via the declared fallback, and the
        # attempt chain is on the analysis for the manifest to embed.
        policy = FallbackPolicy(
            steps=(
                FallbackStep("power", max_iter=3),
                FallbackStep("krylov", max_iter=500),
            ),
            retry_perturbed=False,
        )
        analysis = analyze_cdr(small_spec(), solver="power",
                               resilience=policy)
        attempts = [e for e in analysis.resilience_events
                    if e["event"] == "solver_attempt"]
        assert [a["status"] for a in attempts] == ["failed", "converged"]
        assert attempts[0]["error_type"] == "BudgetExceeded"
        assert analysis.solver_result.converged

    def test_memory_budget_degrades_to_matrix_free(self):
        policy = FallbackPolicy(
            steps=(FallbackStep("power"),), memory_budget_bytes=1,
        )
        analysis = analyze_cdr(small_spec(), solver="power",
                               resilience=policy)
        assert analysis.backend == "matrix-free"
        kinds = [e["event"] for e in analysis.resilience_events]
        assert kinds[0] == "backend_degraded"
        assert "solver_attempt" in kinds


class TestManifest:
    def test_manifest_embeds_and_renders_the_trail(self, tmp_path):
        from repro.obs import (
            Tracer,
            build_run_manifest,
            format_run_manifest,
            use_tracer,
        )

        tracer = Tracer()
        with use_tracer(tracer):
            analysis = analyze_cdr(small_spec(), solver="power",
                                   resilience=True)
        manifest = build_run_manifest(
            kind="analysis", spec=small_spec(), analysis=analysis,
            tracer=tracer,
        )
        assert manifest["resilience"] == analysis.resilience_events
        text = format_run_manifest(manifest)
        assert "resilience:" in text
        assert "[converged] power" in text

    def test_manifest_round_trips_through_json(self, tmp_path):
        from repro.obs import (
            Tracer,
            build_run_manifest,
            load_run_manifest,
            use_tracer,
            write_run_manifest,
        )

        tracer = Tracer()
        with use_tracer(tracer):
            analysis = analyze_cdr(small_spec(), solver="power",
                                   resilience=True)
        manifest = build_run_manifest(
            kind="analysis", spec=small_spec(), analysis=analysis,
            tracer=tracer,
        )
        path = str(tmp_path / "run.json")
        write_run_manifest(path, manifest)
        back = load_run_manifest(path)
        assert back["resilience"] == manifest["resilience"]

    def test_plain_manifest_omits_resilience(self):
        from repro.obs import Tracer, build_run_manifest, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            analysis = analyze_cdr(small_spec(), solver="power")
        manifest = build_run_manifest(
            kind="analysis", spec=small_spec(), analysis=analysis,
            tracer=tracer,
        )
        assert manifest["resilience"] is None


class TestSweepResilience:
    def test_failing_point_recorded_sweep_continues(self):
        values = [0.4, 0.5, 0.6]
        records = sweep_parameter(
            small_spec(), "transition_density", values, solver="power",
            analyze_fn=killing_analyze_fn(analyze_cdr, [1]),
        )
        assert len(records) == 2
        assert records.n_failed == 1
        entry = records.failed_points[0]
        assert entry["index"] == 1
        assert entry["error_type"] == "SimulatedWorkerKill"
        assert "FAILED" in records.summary()

    def test_keyboard_interrupt_still_propagates(self):
        def interrupted(spec, **kwargs):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            sweep_parameter(
                small_spec(), "transition_density", [0.5], solver="power",
                analyze_fn=interrupted,
            )

    def test_mid_sweep_kill_then_resume_is_bit_identical(self, tmp_path):
        # Acceptance: kill the sweep at point 1, resume, and get records
        # bit-identical to an uninterrupted sweep for the completed points.
        spec = small_spec()
        values = [0.4, 0.5, 0.6]
        path = str(tmp_path / "sweep.ckpt.json")

        killer = killing_analyze_fn(analyze_cdr, [1])

        def dying(s, **kwargs):
            result = killer(s, **kwargs)
            return result

        first = sweep_parameter(
            spec, "transition_density", values, solver="power",
            checkpoint_path=path, analyze_fn=dying,
        )
        assert len(first) == 2 and first.n_failed == 1

        resumed = sweep_parameter(
            spec, "transition_density", values, solver="power",
            checkpoint_path=path, resume=True,
        )
        assert len(resumed) == 3
        assert resumed.n_failed == 0
        assert resumed.resumed_points == 2
        # The replayed records are the exact persisted dicts: compare
        # against the first run's records field-by-field (floats included).
        completed_values = [r["transition_density"] for r in first]
        for record in resumed:
            if record["transition_density"] in completed_values:
                assert record in list(first)

    def test_foreign_checkpoint_refused(self, tmp_path):
        from repro.resilience import CheckpointMismatch

        path = str(tmp_path / "sweep.ckpt.json")
        sweep_parameter(
            small_spec(), "transition_density", [0.5], solver="power",
            checkpoint_path=path,
        )
        with pytest.raises(CheckpointMismatch):
            sweep_parameter(
                small_spec(), "transition_density", [0.4, 0.5],
                solver="power", checkpoint_path=path, resume=True,
            )


class TestCampaignResilience:
    def _campaign_kwargs(self):
        from repro.cdr import transition_run_length_source
        from repro.noise import eye_opening_noise, sonet_drift_noise

        spec = small_spec()
        grid = spec.grid
        return dict(
            grid=grid,
            nw=eye_opening_noise(0.18, n_atoms=9),
            nr=sonet_drift_noise(
                max_ui=grid.step, mean_ui=0.3 * grid.step,
                grid_step=grid.step,
            ),
            counter_length=2,
            phase_step_units=spec.phase_step_units,
            data_source=transition_run_length_source("data", 0.5, 3),
            n_symbols=500,
        )

    def test_campaign_pools_seed_records(self):
        from repro.cdr.montecarlo import simulate_cdr_campaign

        campaign = simulate_cdr_campaign(
            seeds=[1, 2, 3], **self._campaign_kwargs()
        )
        assert len(campaign.records) == 3
        assert campaign.n_symbols == 1500
        assert 0.0 <= campaign.ber <= 1.0

    def test_campaign_kill_then_resume_is_bit_identical(
        self, tmp_path, monkeypatch
    ):
        import repro.cdr.montecarlo as mc
        from repro.cdr.montecarlo import simulate_cdr_campaign

        kwargs = self._campaign_kwargs()
        path = str(tmp_path / "mc.ckpt.json")

        # Kill the process (KeyboardInterrupt) while the third seed runs.
        real = mc.simulate_cdr
        calls = {"n": 0}

        def dying(*args, **kw):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real(*args, **kw)

        monkeypatch.setattr(mc, "simulate_cdr", dying)
        with pytest.raises(KeyboardInterrupt):
            simulate_cdr_campaign(
                seeds=[1, 2, 3], checkpoint_path=path, **kwargs
            )
        monkeypatch.setattr(mc, "simulate_cdr", real)

        resumed = simulate_cdr_campaign(
            seeds=[1, 2, 3], checkpoint_path=path, resume=True, **kwargs
        )
        uninterrupted = simulate_cdr_campaign(seeds=[1, 2, 3], **kwargs)
        assert resumed.resumed_seeds == 2
        assert resumed.n_symbols == uninterrupted.n_symbols
        for a, b in zip(resumed.records, uninterrupted.records):
            for key in ("seed", "n_symbols", "n_errors", "n_slips"):
                assert a[key] == b[key], key
        assert resumed.ber == uninterrupted.ber


class TestCLI:
    def test_faults_command_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["faults", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "faults caught" in out

    def test_analyze_resilient_flag(self, capsys):
        from repro.cli import main

        rc = main([
            "analyze", "--n-phase-points", "64", "--n-clock-phases", "16",
            "--counter-length", "2", "--max-run-length", "2",
            "--nw-atoms", "7", "--nw-std", "0.08",
            "--solver", "power", "--resilient",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "resilience trail" in captured.err
        assert "[converged] power" in captured.err

    def test_resume_requires_checkpoint(self, capsys):
        from repro.cli import main

        rc = main([
            "analyze", "--n-phase-points", "64", "--n-clock-phases", "16",
            "--counter-length", "2", "--max-run-length", "2",
            "--nw-atoms", "7", "--resume",
        ])
        assert rc == 1
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_sweep_checkpoint_resume_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "sweep.ckpt.json")
        argv = [
            "sweep", "--n-phase-points", "64", "--n-clock-phases", "16",
            "--counter-length", "2", "--max-run-length", "2",
            "--nw-atoms", "7", "--solver", "power",
            "--parameter", "transition_density", "--values", "0.4,0.6",
            "--checkpoint", path,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert captured.out == first  # bit-identical replayed table
        assert "replayed from checkpoint" in captured.err
